package repro

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/exper"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// TestEndToEndPipeline drives the whole system the way cmd/schedbench does:
// generate a paper-family instance, serialize it through the text format,
// solve it with every algorithm, and cross-check the ordering of results.
func TestEndToEndPipeline(t *testing.T) {
	for _, fam := range workload.Families {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			n := 40
			if fam == workload.Um_2m1 {
				n = 2*8 + 1
			}
			in := workload.MustGenerate(workload.Spec{Family: fam, M: 8, N: n, Seed: 99})

			// Round-trip the instance through the on-disk format.
			var buf bytes.Buffer
			if err := pcmax.WriteText(&buf, in); err != nil {
				t.Fatal(err)
			}
			loaded, err := pcmax.ReadText(&buf)
			if err != nil {
				t.Fatal(err)
			}

			exactSched, res, err := solver.Exact(context.Background(), loaded, solver.ExactOptions{TimeLimit: 20 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal {
				t.Skipf("optimum not proved for %v within limits", fam)
			}
			opt := exactSched.Makespan(loaded)

			ptasSeq, _, err := solver.PTAS(context.Background(), loaded, solver.DefaultPTASOptions())
			if err != nil {
				t.Fatal(err)
			}
			parOpts := solver.DefaultPTASOptions()
			parOpts.Workers = 4
			ptasPar, _, err := solver.PTAS(context.Background(), loaded, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			lpt, err := solver.LPT(context.Background(), loaded)
			if err != nil {
				t.Fatal(err)
			}
			ls, err := solver.LS(context.Background(), loaded)
			if err != nil {
				t.Fatal(err)
			}
			mf, err := solver.MultiFit(context.Background(), loaded)
			if err != nil {
				t.Fatal(err)
			}

			if ptasSeq.Makespan(loaded) != ptasPar.Makespan(loaded) {
				t.Fatalf("parallel PTAS %d != sequential %d", ptasPar.Makespan(loaded), ptasSeq.Makespan(loaded))
			}
			for name, s := range map[string]*pcmax.Schedule{
				"ptas": ptasSeq, "lpt": lpt, "ls": ls, "multifit": mf,
			} {
				if err := s.Validate(loaded); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if s.Makespan(loaded) < opt {
					t.Fatalf("%s beat the proved optimum: %d < %d", name, s.Makespan(loaded), opt)
				}
			}
			if r := ptasSeq.Ratio(loaded, opt); r > 1.3+1e-9 {
				t.Fatalf("PTAS ratio %.4f above 1.3", r)
			}
			if r := ls.Ratio(loaded, opt); r > 2.0+1e-9 {
				t.Fatalf("LS ratio %.4f above 2", r)
			}
			if r := lpt.Ratio(loaded, opt); r > 4.0/3.0+1e-9 {
				t.Fatalf("LPT ratio %.4f above 4/3", r)
			}
		})
	}
}

// TestHarnessSmoke runs a miniature version of every experiment the paper
// reports, rendering into a buffer, as an executable table of contents for
// the reproduction.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is not short")
	}
	var out bytes.Buffer
	cfg := exper.DefaultConfig()
	cfg.Reps = 1
	cfg.Cores = []int{1, 4}
	cfg.WallClock = false
	cfg.ExactTimeLimit = 10 * time.Second
	cfg.ExactNodeLimit = 1_000_000
	cfg.Out = &out

	fig, err := cfg.RunSpeedupFigure(context.Background(), "mini2", 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Render(cfg); err != nil {
		t.Fatal(err)
	}
	ratios, err := cfg.RunRatioFigure(context.Background(), "mini5", []exper.RatioInstance{
		{ID: "M1", Fam: workload.Um_2m1, M: 4, N: 9},
		{ID: "M2", Fam: workload.U1_100, M: 4, N: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ratios.Render(cfg, "mini tables", "mini ratios"); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("harness produced no output")
	}
	// The adversarial mini-instance must show the PTAS beating LPT, the
	// paper's central ratio observation.
	if ratios.PTAS[0] >= ratios.LPT[0] {
		t.Fatalf("on the adversarial family the PTAS (%.3f) should beat LPT (%.3f)",
			ratios.PTAS[0], ratios.LPT[0])
	}
}
