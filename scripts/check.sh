#!/bin/sh
# Repo-wide verification: build, vet, full test suite, then the race
# detector over the packages with real concurrency (worker pool, parallel
# DP fill + cache, solver facade). This is the gate every PR runs before
# merging; ROADMAP.md points here.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/par ./internal/dp ./solver
