#!/bin/sh
# Repo-wide verification: formatting, build, vet (the binaries get an
# explicit pass so a library-only vet invocation can never silently skip
# them), the schedlint invariant gate, the full test suite with shuffled
# test order, then the race detector over the packages with real
# concurrency (worker pool, parallel DP fills, exact solver, core driver,
# solver facade). Every `go test` carries a -timeout guard so a hung test
# fails the pipeline instead of wedging it. This is the gate every PR runs
# before merging; ROADMAP.md points here.
set -eux

cd "$(dirname "$0")/.."

# gofmt prints nothing when the tree is formatted; any output is a failure.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go vet ./cmd/...

# schedlint enforces the repo's concurrency/determinism invariants with all
# sixteen analyzers, including the dataflow-based concurrency checks
# (ALGORITHM.md sections 9 and 11), the value-flow provers (section 14) and
# the may-happen-in-parallel race/latency provers (section 16). Exit 1 on
# any finding is a hard failure.
go run ./cmd/schedlint ./...

# The value-flow gate gets its own named invocation: a regression in the
# overflow, bounds-proof or escape certification of the DP kernels and the
# parse boundary fails here under its own heading.
go run ./cmd/schedlint -only intoverflow,boundsproof,escape ./...

# The parallel-substrate gate: every write reachable from a parallel region
# must carry a race-freedom certificate (sharedwrite) and every loop on a
# solver-to-kernel path a proven cancellation poll stride (cancelpoll).
go run ./cmd/schedlint -only sharedwrite,cancelpoll ./...

# Suppression hygiene, second half: collectDirectives already rejects
# malformed //lint:ignore comments as findings; -suppressions additionally
# fails on stale ones, whose excused finding no longer exists.
go run ./cmd/schedlint -suppressions ./...

go test -shuffle=on -timeout 10m ./...

# Fuzz smoke over both instance parsers: five seconds of random streams each
# against the accept->validate->round-trip invariants of pcmax.FuzzReadText
# and pcmax.FuzzReadJSON (the corpora include near-MaxInt64 values, so the
# Validate overflow caps are exercised). Catches format-grammar regressions
# the fixed test corpus misses.
go test -timeout 5m -run '^$' -fuzz 'FuzzReadText' -fuzztime 5s ./pcmax
go test -timeout 5m -run '^$' -fuzz 'FuzzReadJSON' -fuzztime 5s ./pcmax

# internal/lint rides along in the race pass: its loader and runner fan out
# over the worker pool and must stay clean under the detector.
# internal/trsched joins it: the variant solver shares the configuration
# enumeration with the concurrent fill paths, and ./solver's race run now
# also covers the variant dispatch layer in front of them.
go test -race -timeout 15m ./internal/par ./internal/dp ./internal/exact ./internal/core ./internal/lint ./internal/trsched ./solver

# Dedicated pass over the incremental-solving layer: the session
# differential harness (warm-vs-cold certificates, adversarial mutation
# streams, concurrent mutators and readers on one Session) must hold under
# the race detector.
go test -race -timeout 10m -run 'Session' ./solver

# Dedicated stress pass over the barrier pool: its park/wake, panic and
# cancellation handoffs are the trickiest lock-free code in the tree, so run
# the Barrier suite twice more under the race detector.
go test -race -timeout 5m -count=2 -run 'Barrier' ./internal/par
