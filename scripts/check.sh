#!/bin/sh
# Repo-wide verification: build, vet (the binaries get an explicit pass so a
# library-only vet invocation can never silently skip them), full test suite,
# then the race detector over the packages with real concurrency (worker
# pool, parallel DP fill + cache, solver facade). Every `go test` carries a
# -timeout guard so a hung test fails the pipeline instead of wedging it.
# This is the gate every PR runs before merging; ROADMAP.md points here.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go vet ./cmd/...
go test -timeout 10m ./...
go test -race -timeout 15m ./internal/par ./internal/dp ./solver
