package sahni

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/rng"
	"repro/pcmax"
)

func TestExactMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%9) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(40))
		}
		in := &pcmax.Instance{M: m, Times: times}
		sched, err := Solve(context.Background(), in, Options{Epsilon: 0})
		if err != nil || sched.Validate(in) != nil {
			return false
		}
		bf, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		return sched.Makespan(in) == bf.Makespan(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestExactMatchesTwoMachineDP(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		n := 5 + src.Intn(15)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: 2, Times: times}
		sched, err := Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := exact.TwoMachineOpt(in)
		if err != nil {
			t.Fatal(err)
		}
		if sched.Makespan(in) != want {
			t.Fatalf("trial %d: %d vs %d", trial, sched.Makespan(in), want)
		}
	}
}

func TestFPTASGuaranteeProperty(t *testing.T) {
	f := func(seed uint64, nRaw, epsRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%12) + 1
		epsChoices := []float64{0.1, 0.3, 0.5}
		eps := epsChoices[int(epsRaw)%len(epsChoices)]
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(300))
		}
		in := &pcmax.Instance{M: 3, Times: times}
		approx, err := Solve(context.Background(), in, Options{Epsilon: eps})
		if err != nil || approx.Validate(in) != nil {
			return false
		}
		opt, err := Solve(context.Background(), in, Options{Epsilon: 0})
		if err != nil {
			return false
		}
		return float64(approx.Makespan(in)) <= (1+eps)*float64(opt.Makespan(in))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizationShrinksStates(t *testing.T) {
	// On a large-range instance the FPTAS must succeed where the exact DP
	// would still be fine, but with visibly coarser effort: both must solve
	// and the approximate makespan must be >= the exact one.
	src := rng.New(9)
	times := make([]pcmax.Time, 14)
	for j := range times {
		times[j] = pcmax.Time(1 + src.Int64n(200))
	}
	in := &pcmax.Instance{M: 3, Times: times}
	exactSched, err := Solve(context.Background(), in, Options{Epsilon: 0, MaxStates: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Solve(context.Background(), in, Options{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Makespan(in) < exactSched.Makespan(in) {
		t.Fatal("approximation beat the exact optimum")
	}
	if float64(approx.Makespan(in)) > 1.4*float64(exactSched.Makespan(in)) {
		t.Fatalf("guarantee violated: %d vs %d", approx.Makespan(in), exactSched.Makespan(in))
	}
}

func TestMachineLimit(t *testing.T) {
	in := &pcmax.Instance{M: 10, Times: []pcmax.Time{1, 2}}
	if _, err := Solve(context.Background(), in, Options{}); !errors.Is(err, ErrTooManyMachines) {
		t.Fatalf("want ErrTooManyMachines, got %v", err)
	}
	// But a raised limit accepts it (n tiny, so the states stay small).
	if _, err := Solve(context.Background(), in, Options{MaxMachines: 10}); err != nil {
		t.Fatalf("raised limit: %v", err)
	}
}

func TestStateBudget(t *testing.T) {
	src := rng.New(4)
	times := make([]pcmax.Time, 30)
	for j := range times {
		times[j] = pcmax.Time(1 + src.Int64n(10000))
	}
	in := &pcmax.Instance{M: 4, Times: times}
	if _, err := Solve(context.Background(), in, Options{Epsilon: 0, MaxStates: 100}); !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("want ErrTooManyStates, got %v", err)
	}
}

func TestBadEpsilon(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{1}}
	if _, err := Solve(context.Background(), in, Options{Epsilon: -0.1}); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("want ErrBadEpsilon, got %v", err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := &pcmax.Instance{M: 3}
	s, err := Solve(context.Background(), empty, Options{})
	if err != nil || s.Makespan(empty) != 0 {
		t.Fatalf("empty: %v", err)
	}
	one := &pcmax.Instance{M: 3, Times: []pcmax.Time{42}}
	s, err = Solve(context.Background(), one, Options{})
	if err != nil || s.Makespan(one) != 42 {
		t.Fatalf("single: %v %d", err, s.Makespan(one))
	}
}

func TestSingleMachine(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{4, 6, 8}}
	s, err := Solve(context.Background(), in, Options{})
	if err != nil || s.Makespan(in) != 18 {
		t.Fatalf("m=1: %v %d", err, s.Makespan(in))
	}
}

func TestRejectsInvalidInstance(t *testing.T) {
	if _, err := Solve(context.Background(), &pcmax.Instance{M: 0, Times: []pcmax.Time{1}}, Options{}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestExactMatchesBranchAndBoundLarger(t *testing.T) {
	// Beyond brute-force reach: m=3 instances with up to 22 jobs,
	// cross-checked against the bin-completion branch-and-bound.
	src := rng.New(71)
	for trial := 0; trial < 15; trial++ {
		n := 12 + src.Intn(11)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(50))
		}
		in := &pcmax.Instance{M: 3, Times: times}
		sched, err := Solve(context.Background(), in, Options{Epsilon: 0, MaxStates: 1 << 21})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, res, err := exact.Solve(context.Background(), in, exact.Options{})
		if err != nil || !res.Optimal {
			t.Fatalf("trial %d: exact %v optimal=%v", trial, err, res.Optimal)
		}
		if sched.Makespan(in) != res.Makespan {
			t.Fatalf("trial %d: Sahni %d != B&B %d", trial, sched.Makespan(in), res.Makespan)
		}
	}
}
