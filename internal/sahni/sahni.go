// Package sahni implements Sahni's dynamic-programming scheme for P||Cmax
// with a fixed number of machines, cited in the paper's related work
// ("Sahni proposed a FPTAS for the special case in which the number of
// parallel machines is fixed"). It complements the Hochbaum–Shmoys PTAS: for
// small m it is exact or an FPTAS, while the PTAS handles m as part of the
// input.
//
// The algorithm sweeps the jobs once, maintaining the set of reachable
// machine-load vectors in canonical (sorted) form. With Epsilon == 0 the set
// is exact (loads are integers, so states are finite); with Epsilon > 0 the
// load space is quantized to a grid of delta = eps*LB/(2n), keeping one
// representative per grid cell, which bounds every load's drift by
// n*delta <= eps*LB/2 and yields a (1+eps)-approximation. The state set is
// exponential in m, so the solver enforces a machine and state budget and
// fails fast beyond it.
package sahni

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/pcmax"
)

// Options configures Solve.
type Options struct {
	// Epsilon selects the approximation: 0 means exact, > 0 means a
	// (1+Epsilon)-approximation via load quantization.
	Epsilon float64
	// MaxStates bounds the state set per job step; <= 0 selects
	// DefaultMaxStates. ErrTooManyStates is returned beyond it.
	MaxStates int
	// MaxMachines bounds m; <= 0 selects DefaultMaxMachines.
	MaxMachines int
}

// Defaults for the state and machine budgets.
const (
	DefaultMaxStates   = 1 << 19
	DefaultMaxMachines = 5
)

// Typed failures.
var (
	ErrTooManyStates   = errors.New("sahni: state budget exceeded")
	ErrTooManyMachines = errors.New("sahni: machine count too large for fixed-m dynamic programming")
	ErrBadEpsilon      = errors.New("sahni: epsilon must be >= 0")
)

// state is one reachable load vector in canonical non-decreasing order,
// with provenance for schedule reconstruction.
type state struct {
	loads  []pcmax.Time
	parent int32 // index into the previous job's state arena
	slot   int8  // which canonical slot received the job
}

// Solve schedules the instance exactly (Epsilon == 0) or within (1+Epsilon)
// of optimal, for instances with at most Options.MaxMachines machines. ctx
// is checked once per job sweep and every few thousand expanded states
// inside a sweep (state expansion dominates the run time), so cancellation
// lands promptly even when a single sweep is large; it surfaces as the
// structured cancel error with no schedule.
func Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.Epsilon < 0 {
		return nil, fmt.Errorf("%w (eps=%v)", ErrBadEpsilon, opts.Epsilon)
	}
	maxM := opts.MaxMachines
	if maxM <= 0 {
		maxM = DefaultMaxMachines
	}
	if in.M > maxM {
		return nil, fmt.Errorf("%w (m=%d, limit %d)", ErrTooManyMachines, in.M, maxM)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	m, n := in.M, in.N()
	sched := pcmax.NewSchedule(m, n)
	if n == 0 {
		return sched, nil
	}

	// Quantization grid. delta = 1 keeps exact integer states.
	delta := pcmax.Time(1)
	if opts.Epsilon > 0 {
		delta = pcmax.Time(opts.Epsilon * float64(in.LowerBound()) / float64(2*n))
		if delta < 1 {
			delta = 1
		}
	}

	// Generation 0: all machines empty.
	cur := []state{{loads: make([]pcmax.Time, m), parent: -1, slot: -1}}
	// history[j] is the state arena after placing job j.
	history := make([][]state, n)

	keyBuf := make([]pcmax.Time, m)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	const checkEvery = 4096
	for j := 0; j < n; j++ {
		if err := cancel.Check(ctx); err != nil {
			return nil, err
		}
		t := in.Times[j]
		next := make([]state, 0, len(cur))
		seen := make(map[string]bool, len(cur)*m)
		for pi := range cur {
			if done != nil && pi%checkEvery == checkEvery-1 {
				select {
				case <-done:
					return nil, cancel.From(ctx)
				default:
				}
			}
			p := &cur[pi]
			for s := 0; s < m; s++ {
				// Equal canonical loads are interchangeable slots.
				if s > 0 && p.loads[s] == p.loads[s-1] {
					continue
				}
				loads := make([]pcmax.Time, m)
				copy(loads, p.loads)
				loads[s] += t
				sort.Slice(loads, func(a, b int) bool { return loads[a] < loads[b] })
				for i, l := range loads {
					keyBuf[i] = l / delta
				}
				k := key(keyBuf)
				if seen[k] {
					continue
				}
				seen[k] = true
				if len(next) >= maxStates {
					return nil, fmt.Errorf("%w (job %d, limit %d)", ErrTooManyStates, j, maxStates)
				}
				next = append(next, state{loads: loads, parent: int32(pi), slot: int8(s)})
			}
		}
		history[j] = next
		cur = next
	}

	// Pick the final state with the smallest makespan (last canonical load).
	best := 0
	for i := range cur {
		if cur[i].loads[m-1] < cur[best].loads[m-1] {
			best = i
		}
	}

	// Walk parents to recover each job's canonical slot, then replay
	// forward against actual machine identities: the multiset of actual
	// loads always equals the state's canonical loads, so a machine with
	// the canonical pre-assignment load always exists.
	slots := make([]int8, n)
	idx := int32(best)
	for j := n - 1; j >= 0; j-- {
		st := &history[j][idx]
		slots[j] = st.slot
		idx = st.parent
	}
	actual := make([]pcmax.Time, m)
	canon := make([]pcmax.Time, m) // canonical loads before the current job
	for j := 0; j < n; j++ {
		target := canon[slots[j]]
		mi := -1
		for i := 0; i < m; i++ {
			if actual[i] == target {
				mi = i
				break
			}
		}
		if mi < 0 {
			return nil, fmt.Errorf("sahni: internal error: no machine with load %d before job %d", target, j)
		}
		sched.Assignment[j] = mi
		actual[mi] += in.Times[j]
		// The canonical loads after job j are exactly sorted(actual): the
		// state chain built them the same way.
		canon = append(canon[:0:0], actual...)
		sort.Slice(canon, func(a, b int) bool { return canon[a] < canon[b] })
	}
	if err := sched.Validate(in); err != nil {
		return nil, fmt.Errorf("sahni: produced invalid schedule: %v", err)
	}
	return sched, nil
}

// key encodes quantized loads as a compact map key.
func key(loads []pcmax.Time) string {
	buf := make([]byte, 0, len(loads)*9)
	for _, l := range loads {
		for l >= 0x80 {
			buf = append(buf, byte(l)|0x80)
			l >>= 7
		}
		buf = append(buf, byte(l))
	}
	return string(buf)
}
