package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/pcmax"
)

// The paper evaluates uniform processing times only. Real job traces are
// rarely uniform, so the library additionally ships two common shapes for
// downstream users: a bimodal mix (many small interactive jobs, a few large
// batch jobs — the renderfarm example's shape) and a log-uniform
// distribution (heavy right tail across several orders of magnitude).

// Bimodal generates n jobs of which roughly longFrac (in [0,1]) are drawn
// from U(longLo, longHi) and the rest from U(shortLo, shortHi).
func Bimodal(m, n int, shortLo, shortHi, longLo, longHi int64, longFrac float64, seed uint64) (*pcmax.Instance, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w (m=%d)", ErrBadMachines, m)
	}
	if n < 1 {
		return nil, fmt.Errorf("%w (n=%d)", ErrBadJobs, n)
	}
	if shortLo < 1 || shortHi < shortLo || longLo < 1 || longHi < longLo {
		return nil, fmt.Errorf("workload: bimodal intervals invalid: short [%d,%d], long [%d,%d]",
			shortLo, shortHi, longLo, longHi)
	}
	if longFrac < 0 || longFrac > 1 || math.IsNaN(longFrac) {
		return nil, fmt.Errorf("workload: longFrac %v outside [0,1]", longFrac)
	}
	src := rng.New(seed ^ 0x62696d6f64)
	times := make([]pcmax.Time, n)
	for j := range times {
		if src.Float64() < longFrac {
			times[j] = pcmax.Time(src.MustUniform(longLo, longHi))
		} else {
			times[j] = pcmax.Time(src.MustUniform(shortLo, shortHi))
		}
	}
	return &pcmax.Instance{M: m, Times: times}, nil
}

// LogUniform generates n jobs whose processing times are log-uniform on
// [lo, hi]: uniform in the exponent, so each decade of sizes is equally
// likely. lo must be >= 1 and hi >= lo.
func LogUniform(m, n int, lo, hi int64, seed uint64) (*pcmax.Instance, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w (m=%d)", ErrBadMachines, m)
	}
	if n < 1 {
		return nil, fmt.Errorf("%w (n=%d)", ErrBadJobs, n)
	}
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("workload: log-uniform interval [%d,%d] invalid", lo, hi)
	}
	src := rng.New(seed ^ 0x6c6f6775)
	logLo, logHi := math.Log(float64(lo)), math.Log(float64(hi))
	times := make([]pcmax.Time, n)
	for j := range times {
		v := math.Exp(logLo + src.Float64()*(logHi-logLo))
		t := pcmax.Time(math.Round(v))
		if t < pcmax.Time(lo) {
			t = pcmax.Time(lo)
		}
		if t > pcmax.Time(hi) {
			t = pcmax.Time(hi)
		}
		times[j] = t
	}
	return &pcmax.Instance{M: m, Times: times}, nil
}
