// Package workload generates the problem instances used throughout the
// paper's evaluation (Section V.A). Processing times are drawn from uniform
// distributions whose bounds may depend on the number of machines m or the
// number of jobs n:
//
//	U(1, 2m-1)   machine-coupled range
//	U(1, 100)    medium fixed range
//	U(1, 10)     small fixed range ("small processing times")
//	U(1, 10n)    job-coupled heavy range ("large processing times")
//	U(m, 2m-1)   the LPT-adversarial family (used with n = 2m+1, Section V.B)
//	U(95, 105)   narrow range family (Section V.B)
//
// Every generator takes an explicit seed so that instance (family, m, n,
// seed) is a pure function.
package workload

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/pcmax"
)

// Family identifies one of the paper's processing-time distributions.
type Family int

// The paper's six instance families.
const (
	// U1_2m1 is U(1, 2m-1).
	U1_2m1 Family = iota
	// U1_100 is U(1, 100).
	U1_100
	// U1_10 is U(1, 10).
	U1_10
	// U1_10n is U(1, 10n).
	U1_10n
	// Um_2m1 is U(m, 2m-1), the near-worst-case family for LPT.
	Um_2m1
	// U95_105 is U(95, 105), a narrow range of processing times.
	U95_105
	numFamilies
)

// Families lists every family in declaration order, for iteration in
// experiments and tests.
var Families = []Family{U1_2m1, U1_100, U1_10, U1_10n, Um_2m1, U95_105}

// SpeedupFamilies lists the four families used in the paper's speedup and
// running-time experiments (Figures 2-4).
var SpeedupFamilies = []Family{U1_2m1, U1_100, U1_10, U1_10n}

// String returns the paper's notation for the family.
func (f Family) String() string {
	switch f {
	case U1_2m1:
		return "U(1,2m-1)"
	case U1_100:
		return "U(1,100)"
	case U1_10:
		return "U(1,10)"
	case U1_10n:
		return "U(1,10n)"
	case Um_2m1:
		return "U(m,2m-1)"
	case U95_105:
		return "U(95,105)"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ParseFamily converts the paper notation (as printed by String) back to a
// Family. It accepts a few common spelling variants.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "U(1,2m-1)", "u1-2m1", "U1_2m1":
		return U1_2m1, nil
	case "U(1,100)", "u1-100", "U1_100":
		return U1_100, nil
	case "U(1,10)", "u1-10", "U1_10":
		return U1_10, nil
	case "U(1,10n)", "u1-10n", "U1_10n":
		return U1_10n, nil
	case "U(m,2m-1)", "um-2m1", "Um_2m1":
		return Um_2m1, nil
	case "U(95,105)", "u95-105", "U95_105":
		return U95_105, nil
	}
	return 0, fmt.Errorf("workload: unknown family %q", s)
}

// Bounds returns the inclusive interval [lo, hi] of the family for the given
// instance dimensions.
func (f Family) Bounds(m, n int) (lo, hi int64, err error) {
	switch f {
	case U1_2m1:
		lo, hi = 1, 2*int64(m)-1
	case U1_100:
		lo, hi = 1, 100
	case U1_10:
		lo, hi = 1, 10
	case U1_10n:
		lo, hi = 1, 10*int64(n)
	case Um_2m1:
		lo, hi = int64(m), 2*int64(m)-1
	case U95_105:
		lo, hi = 95, 105
	default:
		return 0, 0, fmt.Errorf("workload: unknown family %d", int(f))
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("workload: family %v with m=%d n=%d has empty interval [%d,%d]", f, m, n, lo, hi)
	}
	return lo, hi, nil
}

// Spec fully determines one random instance.
type Spec struct {
	Family Family
	M      int // machines
	N      int // jobs
	Seed   uint64
}

// Validation errors.
var (
	ErrBadMachines = errors.New("workload: spec needs at least one machine")
	ErrBadJobs     = errors.New("workload: spec needs at least one job")
)

// Generate materializes the instance described by the spec. The result is a
// pure function of the spec: same spec, same instance.
func Generate(spec Spec) (*pcmax.Instance, error) {
	if spec.M < 1 {
		return nil, fmt.Errorf("%w (m=%d)", ErrBadMachines, spec.M)
	}
	if spec.N < 1 {
		return nil, fmt.Errorf("%w (n=%d)", ErrBadJobs, spec.N)
	}
	lo, hi, err := spec.Family.Bounds(spec.M, spec.N)
	if err != nil {
		return nil, err
	}
	src := rng.New(seedFor(spec))
	times := make([]pcmax.Time, spec.N)
	for j := range times {
		times[j] = pcmax.Time(src.MustUniform(lo, hi))
	}
	return &pcmax.Instance{M: spec.M, Times: times}, nil
}

// MustGenerate is Generate for statically valid specs; it panics on error.
func MustGenerate(spec Spec) *pcmax.Instance {
	in, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// seedFor folds all spec fields into the RNG seed so that two specs that
// differ in any field (not just Seed) generate independent instances.
func seedFor(spec Spec) uint64 {
	h := spec.Seed
	mix := func(v uint64) {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	mix(uint64(spec.Family) + 1)
	mix(uint64(spec.M))
	mix(uint64(spec.N))
	return h
}

// AdversarialLPT builds the deterministic textbook worst case for LPT with
// ratio approaching 4/3: n = 2m+1 jobs with sizes
// 2m-1, 2m-1, 2m-2, 2m-2, ..., m+1, m+1, m, m, m. Its optimal makespan is 3m.
// The paper's Section V.B random family U(m,2m-1) with n=2m+1 is a noisy
// version of this instance; the deterministic one is useful in tests because
// its optimum is known in closed form.
func AdversarialLPT(m int) (*pcmax.Instance, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w (m=%d)", ErrBadMachines, m)
	}
	times := make([]pcmax.Time, 0, 2*m+1)
	for s := 2*m - 1; s >= m+1; s-- {
		times = append(times, pcmax.Time(s), pcmax.Time(s))
	}
	times = append(times, pcmax.Time(m), pcmax.Time(m), pcmax.Time(m))
	return &pcmax.Instance{M: m, Times: times}, nil
}
