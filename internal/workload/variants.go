package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/pcmax"
)

// Variant workload generation: every processing-time family can be decorated
// with release times, machine-dependent setup times and per-machine
// availability windows, giving a (family x variant) grid of instance
// distributions for the variant solvers' experiments and tests. Like
// Generate, GenerateVariant is a pure function of its spec.

// VariantSpec extends Spec with the optional instance-model features to
// generate. The zero values of the parameter fields select sensible defaults
// relative to the processing-time scale, so setting just Variant works.
type VariantSpec struct {
	Spec
	// Variant selects which optional sections to generate.
	Variant pcmax.Variant
	// ReleaseSpread stretches the release-time range: releases are drawn
	// uniformly from [0, ReleaseSpread * sum(t)/m]. 0 selects 0.5, so jobs
	// keep arriving through roughly the first half of a balanced schedule.
	ReleaseSpread float64
	// SetupMax bounds the per-machine setup times, drawn uniformly from
	// [0, SetupMax]. 0 selects a tenth of the family's upper processing
	// bound (at least 1).
	SetupMax int64
	// WindowCount is the number of availability windows per restricted
	// machine; 0 selects 2.
	WindowCount int
	// WindowDuty is the fraction of the horizon a restricted machine is
	// available, in (0, 1]; 0 selects 0.75. Lower duty means tighter
	// windows.
	WindowDuty float64
}

// GenerateVariant materializes the variant instance described by the spec.
// The plain sections match Generate exactly: a VariantSpec with
// Variant == Plain returns the same instance as its embedded Spec, and the
// decorated sections are seeded independently per section so e.g. adding
// windows does not change the release times.
//
// Feasibility is guaranteed by construction: every machine's last window is
// open-ended enough to hold the whole workload (setup included), so every
// job fits somewhere and greedy solvers cannot strand.
func GenerateVariant(spec VariantSpec) (*pcmax.Instance, error) {
	in, err := Generate(spec.Spec)
	if err != nil {
		return nil, err
	}
	if spec.Variant&^pcmax.AllVariants != 0 {
		return nil, fmt.Errorf("workload: unknown variant bits in %v", spec.Variant)
	}

	_, hi, err := spec.Family.Bounds(spec.M, spec.N)
	if err != nil {
		return nil, err
	}
	var total pcmax.Time
	for _, t := range in.Times {
		total += t
	}

	if spec.Variant.Has(pcmax.SetupTimes) {
		setupMax := spec.SetupMax
		if setupMax <= 0 {
			setupMax = hi / 10
			if setupMax < 1 {
				setupMax = 1
			}
		}
		src := rng.New(seedFor(spec.Spec) ^ 0x5e7f_1a2b_3c4d_5e6f)
		in.Setup = make([]pcmax.Time, spec.M)
		for i := range in.Setup {
			in.Setup[i] = pcmax.Time(src.MustUniform(0, setupMax))
		}
	}

	if spec.Variant.Has(pcmax.ReleaseTimes) {
		spread := spec.ReleaseSpread
		if spread == 0 {
			spread = 0.5
		}
		if spread < 0 {
			return nil, fmt.Errorf("workload: negative release spread %v", spread)
		}
		rmax := int64(spread * float64(total) / float64(spec.M))
		src := rng.New(seedFor(spec.Spec) ^ 0x9e1e_a5e5_0f0f_b4b4)
		in.Release = make([]pcmax.Time, spec.N)
		if rmax > 0 {
			for j := range in.Release {
				in.Release[j] = pcmax.Time(src.MustUniform(0, rmax))
			}
		}
	}

	if spec.Variant.Has(pcmax.TimeRestricted) {
		if err := addWindows(in, spec, total); err != nil {
			return nil, err
		}
	}

	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid variant instance: %w", err)
	}
	return in, nil
}

// addWindows decorates the instance with per-machine availability windows:
// WindowCount-1 bounded windows of duty-cycle length spread over the horizon,
// then one final open-enough window that alone holds the whole workload plus
// per-job setups — the feasibility guarantee.
func addWindows(in *pcmax.Instance, spec VariantSpec, total pcmax.Time) error {
	duty := spec.WindowDuty
	if duty == 0 {
		duty = 0.75
	}
	if duty <= 0 || duty > 1 {
		return fmt.Errorf("workload: window duty %v outside (0, 1]", duty)
	}
	count := spec.WindowCount
	if count == 0 {
		count = 2
	}
	if count < 1 {
		return fmt.Errorf("workload: window count %d < 1", count)
	}

	// Horizon for the bounded windows: a balanced machine's share of work.
	horizon := int64(total)/int64(spec.M) + 1
	// The final window must hold everything even if a greedy puts all jobs
	// (each paying the machine's setup) on this one machine.
	var worstSetup pcmax.Time
	for i := 0; i < spec.M; i++ {
		if s := in.SetupTime(i); s > worstSetup {
			worstSetup = s
		}
	}
	slack := int64(total) + int64(worstSetup)*int64(spec.N) + 1

	src := rng.New(seedFor(spec.Spec) ^ 0x0bad_cafe_f00d_d00d)
	in.Windows = make([][]pcmax.Window, spec.M)
	for mi := range in.Windows {
		ws := make([]pcmax.Window, 0, count)
		cur := int64(0)
		for k := 0; k < count-1; k++ {
			span := horizon / int64(count)
			if span < 2 {
				span = 2
			}
			open := int64(float64(span) * duty)
			if open < 1 {
				open = 1
			}
			start := cur + src.MustUniform(0, span-open)
			ws = append(ws, pcmax.Window{Start: pcmax.Time(start), End: pcmax.Time(start + open)})
			cur = start + span
		}
		start := cur + src.MustUniform(0, horizon/int64(count)+1)
		ws = append(ws, pcmax.Window{Start: pcmax.Time(start), End: pcmax.Time(start + slack)})
		in.Windows[mi] = ws
	}
	return nil
}

// MustGenerateVariant is GenerateVariant for statically valid specs; it
// panics on error.
func MustGenerateVariant(spec VariantSpec) *pcmax.Instance {
	in, err := GenerateVariant(spec)
	if err != nil {
		panic(err)
	}
	return in
}
