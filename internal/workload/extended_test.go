package workload_test

import (
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
)

func TestBimodalBounds(t *testing.T) {
	in, err := workload.Bimodal(5, 500, 1, 10, 100, 200, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	small, large := 0, 0
	for _, tt := range in.Times {
		switch {
		case tt >= 1 && tt <= 10:
			small++
		case tt >= 100 && tt <= 200:
			large++
		default:
			t.Fatalf("time %d in neither mode", tt)
		}
	}
	// ~20% large with 500 draws: between 5% and 40% with overwhelming odds.
	if large < 25 || large > 200 {
		t.Fatalf("large mode count %d implausible for frac 0.2", large)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBimodalFractionExtremes(t *testing.T) {
	allShort, err := workload.Bimodal(2, 50, 1, 5, 100, 200, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range allShort.Times {
		if tt > 5 {
			t.Fatalf("longFrac=0 produced long job %d", tt)
		}
	}
	allLong, err := workload.Bimodal(2, 50, 1, 5, 100, 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range allLong.Times {
		if tt < 100 {
			t.Fatalf("longFrac=1 produced short job %d", tt)
		}
	}
}

func TestBimodalDeterministic(t *testing.T) {
	a, _ := workload.Bimodal(3, 40, 1, 9, 50, 90, 0.3, 11)
	b, _ := workload.Bimodal(3, 40, 1, 9, 50, 90, 0.3, 11)
	for j := range a.Times {
		if a.Times[j] != b.Times[j] {
			t.Fatal("bimodal not deterministic")
		}
	}
}

func TestBimodalErrors(t *testing.T) {
	cases := []struct{ m, n int }{{0, 5}, {2, 0}}
	for _, c := range cases {
		if _, err := workload.Bimodal(c.m, c.n, 1, 5, 10, 20, 0.5, 1); err == nil {
			t.Fatalf("m=%d n=%d accepted", c.m, c.n)
		}
	}
	if _, err := workload.Bimodal(2, 5, 5, 1, 10, 20, 0.5, 1); err == nil {
		t.Fatal("inverted short interval accepted")
	}
	if _, err := workload.Bimodal(2, 5, 1, 5, 10, 20, 1.5, 1); err == nil {
		t.Fatal("longFrac > 1 accepted")
	}
	if _, err := workload.Bimodal(2, 5, 0, 5, 10, 20, 0.5, 1); err == nil {
		t.Fatal("zero lower bound accepted")
	}
}

func TestLogUniformBounds(t *testing.T) {
	in, err := workload.LogUniform(4, 1000, 1, 100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tt := range in.Times {
		if tt < 1 || tt > 100000 {
			t.Fatalf("time %d out of range", tt)
		}
	}
	// Log-uniform: the median should sit near sqrt(lo*hi) ~ 316, far below
	// the arithmetic midpoint 50000. Count how many fall below 1000.
	below := 0
	for _, tt := range in.Times {
		if tt < 1000 {
			below++
		}
	}
	if below < 400 {
		t.Fatalf("only %d/1000 samples below 1000 — not log-uniform (uniform would give ~10)", below)
	}
}

func TestLogUniformDegenerate(t *testing.T) {
	in, err := workload.LogUniform(2, 20, 7, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range in.Times {
		if tt != 7 {
			t.Fatalf("point interval produced %d", tt)
		}
	}
}

func TestLogUniformErrors(t *testing.T) {
	if _, err := workload.LogUniform(0, 5, 1, 10, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := workload.LogUniform(2, 0, 1, 10, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := workload.LogUniform(2, 5, 0, 10, 1); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := workload.LogUniform(2, 5, 10, 5, 1); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestExtendedFamiliesSchedulable(t *testing.T) {
	// The generators must produce instances every solver handles.
	bi, err := workload.Bimodal(6, 80, 10, 50, 500, 900, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := workload.LogUniform(6, 80, 1, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []*pcmax.Instance{bi, lu} {
		if in.LowerBound() <= 0 || in.UpperBound() < in.LowerBound() {
			t.Fatalf("bounds broken: %v", in)
		}
	}
}
