package workload

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/pcmax"
)

func TestFamilyStringParseRoundTrip(t *testing.T) {
	for _, f := range Families {
		got, err := ParseFamily(f.String())
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if got != f {
			t.Fatalf("round trip %v -> %v", f, got)
		}
	}
}

func TestParseFamilyAliases(t *testing.T) {
	for alias, want := range map[string]Family{
		"u1-100": U1_100, "U1_10n": U1_10n, "um-2m1": Um_2m1,
	} {
		got, err := ParseFamily(alias)
		if err != nil || got != want {
			t.Fatalf("ParseFamily(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
}

func TestParseFamilyUnknown(t *testing.T) {
	if _, err := ParseFamily("U(2,3)"); err == nil {
		t.Fatal("expected error for unknown family")
	}
}

func TestBoundsPerFamily(t *testing.T) {
	cases := []struct {
		fam    Family
		m, n   int
		lo, hi int64
	}{
		{U1_2m1, 10, 50, 1, 19},
		{U1_100, 10, 50, 1, 100},
		{U1_10, 10, 50, 1, 10},
		{U1_10n, 10, 50, 1, 500},
		{Um_2m1, 10, 21, 10, 19},
		{U95_105, 10, 50, 95, 105},
	}
	for _, c := range cases {
		lo, hi, err := c.fam.Bounds(c.m, c.n)
		if err != nil {
			t.Fatalf("%v: %v", c.fam, err)
		}
		if lo != c.lo || hi != c.hi {
			t.Fatalf("%v bounds = [%d,%d], want [%d,%d]", c.fam, lo, hi, c.lo, c.hi)
		}
	}
}

func TestGenerateWithinBounds(t *testing.T) {
	for _, fam := range Families {
		in, err := Generate(Spec{Family: fam, M: 10, N: 200, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if in.M != 10 || in.N() != 200 {
			t.Fatalf("%v: got m=%d n=%d", fam, in.M, in.N())
		}
		lo, hi, _ := fam.Bounds(10, 200)
		for j, tt := range in.Times {
			if int64(tt) < lo || int64(tt) > hi {
				t.Fatalf("%v: job %d time %d outside [%d,%d]", fam, j, tt, lo, hi)
			}
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%v: invalid instance: %v", fam, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Family: U1_100, M: 10, N: 50, Seed: 7}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	for j := range a.Times {
		if a.Times[j] != b.Times[j] {
			t.Fatalf("same spec diverged at job %d", j)
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	a := MustGenerate(Spec{Family: U1_100, M: 10, N: 50, Seed: 7})
	b := MustGenerate(Spec{Family: U1_100, M: 10, N: 50, Seed: 8})
	same := 0
	for j := range a.Times {
		if a.Times[j] == b.Times[j] {
			same++
		}
	}
	if same == len(a.Times) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestGenerateFamilyMatters(t *testing.T) {
	// Same seed, different family: the seed folding must separate streams
	// even when the value ranges overlap.
	a := MustGenerate(Spec{Family: U1_100, M: 10, N: 50, Seed: 7})
	b := MustGenerate(Spec{Family: U1_10n, M: 10, N: 50, Seed: 7})
	same := 0
	for j := range a.Times {
		if a.Times[j] == b.Times[j] {
			same++
		}
	}
	if same == len(a.Times) {
		t.Fatal("different families produced identical instances")
	}
}

func TestGenerateDimensionsMatter(t *testing.T) {
	a := MustGenerate(Spec{Family: U1_100, M: 10, N: 50, Seed: 7})
	b := MustGenerate(Spec{Family: U1_100, M: 20, N: 50, Seed: 7})
	same := 0
	for j := range a.Times {
		if a.Times[j] == b.Times[j] {
			same++
		}
	}
	if same == len(a.Times) {
		t.Fatal("different m produced identical instances")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Family: U1_100, M: 0, N: 5}); !errors.Is(err, ErrBadMachines) {
		t.Fatalf("want ErrBadMachines, got %v", err)
	}
	if _, err := Generate(Spec{Family: U1_100, M: 5, N: 0}); !errors.Is(err, ErrBadJobs) {
		t.Fatalf("want ErrBadJobs, got %v", err)
	}
	if _, err := Generate(Spec{Family: Family(99), M: 5, N: 5}); err == nil {
		t.Fatal("want error for unknown family")
	}
}

func TestU12m1DegenerateSingleMachine(t *testing.T) {
	// m=1 gives U(1,1): all jobs take one unit.
	in := MustGenerate(Spec{Family: U1_2m1, M: 1, N: 10, Seed: 3})
	for _, tt := range in.Times {
		if tt != 1 {
			t.Fatalf("U(1,1) produced %d", tt)
		}
	}
}

func TestAdversarialLPTStructure(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 10} {
		in, err := AdversarialLPT(m)
		if err != nil {
			t.Fatal(err)
		}
		if in.M != m || in.N() != 2*m+1 {
			t.Fatalf("m=%d: got m=%d n=%d, want n=%d", m, in.M, in.N(), 2*m+1)
		}
		// Total work is exactly 3m per machine.
		if got, want := in.TotalTime(), pcmax.Time(3*m*m); got != want {
			t.Fatalf("m=%d: total %d, want %d", m, got, want)
		}
		if got := in.LowerBound(); got != pcmax.Time(3*m) && m > 1 {
			t.Fatalf("m=%d: lower bound %d, want %d", m, got, 3*m)
		}
	}
}

func TestAdversarialLPTRejectsBadM(t *testing.T) {
	if _, err := AdversarialLPT(0); !errors.Is(err, ErrBadMachines) {
		t.Fatalf("want ErrBadMachines, got %v", err)
	}
}

func TestGeneratePureFunctionProperty(t *testing.T) {
	f := func(seed uint64, famRaw, mRaw, nRaw uint8) bool {
		spec := Spec{
			Family: Families[int(famRaw)%len(Families)],
			M:      int(mRaw%20) + 1,
			N:      int(nRaw%60) + 1,
			Seed:   seed,
		}
		a, errA := Generate(spec)
		b, errB := Generate(spec)
		if errA != nil || errB != nil {
			return errA != nil && errB != nil
		}
		for j := range a.Times {
			if a.Times[j] != b.Times[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
