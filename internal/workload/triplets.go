package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/pcmax"
)

// Triplets generates the classic "triplet" hard instances for exact P||Cmax
// solvers: n = 3m jobs constructed so that a perfect schedule exists in
// which every machine runs exactly three jobs summing to the same value B.
// Because the load bound is tight everywhere, branch-and-bound search gets
// no slack from the trivial lower bound and must essentially solve a
// 3-partition feasibility problem — the known worst case for this problem
// class. The optimal makespan of the returned instance is exactly B.
//
// Construction: for each machine, draw a, b from U(B/4, B/3]-ish ranges and
// set the third job to B-a-b, resampling until all three parts lie in
// (B/5, B/2), which keeps the parts "triplet-shaped" (no part can pair with
// two others from different triples to beat B... the bound stays tight).
func Triplets(m int, targetB pcmax.Time, seed uint64) (*pcmax.Instance, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w (m=%d)", ErrBadMachines, m)
	}
	if targetB < 12 {
		return nil, fmt.Errorf("workload: triplet target B=%d too small (need >= 12)", targetB)
	}
	src := rng.New(seed ^ 0x7472697065)
	lo := targetB/5 + 1
	hi := targetB / 2
	times := make([]pcmax.Time, 0, 3*m)
	for i := 0; i < m; i++ {
		for {
			a := pcmax.Time(src.MustUniform(int64(lo), int64(hi)))
			b := pcmax.Time(src.MustUniform(int64(lo), int64(hi)))
			c := targetB - a - b
			if c > lo && c < hi {
				times = append(times, a, b, c)
				break
			}
		}
	}
	src.Shuffle(times)
	return &pcmax.Instance{M: m, Times: times}, nil
}
