package workload

import (
	"testing"

	"repro/internal/listsched"
	"repro/pcmax"
)

func TestGenerateVariantDeterministic(t *testing.T) {
	spec := VariantSpec{
		Spec:    Spec{Family: U1_100, M: 3, N: 15, Seed: 7},
		Variant: pcmax.AllVariants,
	}
	a := MustGenerateVariant(spec)
	b := MustGenerateVariant(spec)
	if a.Variant() != pcmax.AllVariants {
		t.Fatalf("variant = %v, want all", a.Variant())
	}
	for j := range a.Times {
		if a.Times[j] != b.Times[j] || a.Release[j] != b.Release[j] {
			t.Fatalf("job %d differs across identical specs", j)
		}
	}
	for i := range a.Setup {
		if a.Setup[i] != b.Setup[i] {
			t.Fatalf("setup %d differs across identical specs", i)
		}
	}
	for i := range a.Windows {
		for k := range a.Windows[i] {
			if a.Windows[i][k] != b.Windows[i][k] {
				t.Fatalf("window %d/%d differs across identical specs", i, k)
			}
		}
	}
}

func TestGenerateVariantPlainMatchesGenerate(t *testing.T) {
	spec := Spec{Family: U1_10, M: 4, N: 20, Seed: 3}
	plain := MustGenerate(spec)
	variant := MustGenerateVariant(VariantSpec{Spec: spec})
	if variant.Variant() != pcmax.Plain {
		t.Fatalf("zero VariantSpec produced %v", variant.Variant())
	}
	for j := range plain.Times {
		if plain.Times[j] != variant.Times[j] {
			t.Fatalf("times differ at %d", j)
		}
	}
}

func TestGenerateVariantSectionsIndependent(t *testing.T) {
	// Adding a section must not perturb the others: the setup vector under
	// "s" alone equals the setup vector under "rsw".
	spec := Spec{Family: U1_100, M: 3, N: 12, Seed: 11}
	sOnly := MustGenerateVariant(VariantSpec{Spec: spec, Variant: pcmax.SetupTimes})
	all := MustGenerateVariant(VariantSpec{Spec: spec, Variant: pcmax.AllVariants})
	for i := range sOnly.Setup {
		if sOnly.Setup[i] != all.Setup[i] {
			t.Fatalf("setup %d changed when other sections were added", i)
		}
	}
	rOnly := MustGenerateVariant(VariantSpec{Spec: spec, Variant: pcmax.ReleaseTimes})
	for j := range rOnly.Release {
		if rOnly.Release[j] != all.Release[j] {
			t.Fatalf("release %d changed when other sections were added", j)
		}
	}
	// Plain part untouched by any decoration.
	plain := MustGenerate(spec)
	for j := range plain.Times {
		if plain.Times[j] != all.Times[j] {
			t.Fatalf("processing time %d changed by decoration", j)
		}
	}
}

func TestGenerateVariantFeasibleByConstruction(t *testing.T) {
	for _, fam := range []Family{U1_10, U1_100, U1_2m1, Um_2m1} {
		for seed := uint64(1); seed <= 5; seed++ {
			n := 20
			if fam == Um_2m1 {
				n = 7 // 2m+1 for m=3
			}
			in, err := GenerateVariant(VariantSpec{
				Spec:    Spec{Family: fam, M: 3, N: n, Seed: seed},
				Variant: pcmax.AllVariants,
			})
			if err != nil {
				t.Fatalf("%v seed %d: %v", fam, seed, err)
			}
			sched, err := listsched.LPTGeneral(in)
			if err != nil {
				t.Fatalf("%v seed %d: greedy stranded on feasible-by-construction instance: %v", fam, seed, err)
			}
			if err := sched.Feasible(in); err != nil {
				t.Fatalf("%v seed %d: %v", fam, seed, err)
			}
		}
	}
}

func TestGenerateVariantParameterValidation(t *testing.T) {
	base := Spec{Family: U1_10, M: 2, N: 5, Seed: 1}
	cases := []VariantSpec{
		{Spec: base, Variant: pcmax.Variant(1 << 7)},
		{Spec: base, Variant: pcmax.ReleaseTimes, ReleaseSpread: -1},
		{Spec: base, Variant: pcmax.TimeRestricted, WindowDuty: 1.5},
		{Spec: base, Variant: pcmax.TimeRestricted, WindowCount: -2},
	}
	for i, spec := range cases {
		if _, err := GenerateVariant(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}
