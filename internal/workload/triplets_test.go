package workload_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/listsched"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestTripletsShape(t *testing.T) {
	for _, m := range []int{1, 2, 5, 10} {
		in, err := workload.Triplets(m, 120, uint64(m))
		if err != nil {
			t.Fatal(err)
		}
		if in.M != m || in.N() != 3*m {
			t.Fatalf("m=%d: got n=%d, want %d", m, in.N(), 3*m)
		}
		if got, want := in.TotalTime(), pcmax.Time(120*m); got != want {
			t.Fatalf("m=%d: total %d, want %d", m, got, want)
		}
		if got := in.LowerBound(); got != 120 {
			t.Fatalf("m=%d: lower bound %d, want 120 (perfect partition)", m, got)
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTripletsDeterministic(t *testing.T) {
	a, err := workload.Triplets(6, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Triplets(6, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Times {
		if a.Times[j] != b.Times[j] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTripletsOptimumIsB(t *testing.T) {
	// A perfect schedule with makespan exactly B exists by construction;
	// the exact solver must find it.
	for _, m := range []int{2, 4, 6, 8} {
		in, err := workload.Triplets(m, 100, uint64(3*m))
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := exact.Solve(context.Background(), in, exact.Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal || res.Makespan != 100 {
			t.Fatalf("m=%d: makespan %d (optimal %v), want 100", m, res.Makespan, res.Optimal)
		}
	}
}

func TestTripletsHardForLPT(t *testing.T) {
	// Not a theorem per instance, but across seeds LPT should miss the
	// perfect partition on a solid fraction of triplet instances — that is
	// the point of the family.
	misses := 0
	for seed := uint64(0); seed < 20; seed++ {
		in, err := workload.Triplets(8, 999, seed)
		if err != nil {
			t.Fatal(err)
		}
		if listsched.LPT(in).Makespan(in) > 999 {
			misses++
		}
	}
	if misses < 5 {
		t.Fatalf("LPT solved %d/20 triplet instances perfectly; family too easy", 20-misses)
	}
}

func TestTripletsErrors(t *testing.T) {
	if _, err := workload.Triplets(0, 100, 1); err == nil {
		t.Fatal("want error for m=0")
	}
	if _, err := workload.Triplets(3, 5, 1); err == nil {
		t.Fatal("want error for tiny B")
	}
}
