package conf

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/pcmax"
)

// strides computes row-major table strides for the given availability, the
// layout dp.New uses.
func strides(counts []int) []int64 {
	d := len(counts)
	stride := make([]int64, d)
	s := int64(1)
	for i := d - 1; i >= 0; i-- {
		stride[i] = s
		s *= int64(counts[i] + 1)
	}
	return stride
}

func key(counts []int32) string { return fmt.Sprint(counts) }

func TestEnumerateSparsePaperExample(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	full, err := Enumerate(sizes, counts, T, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	sparse, stats, err := EnumerateSparse(sizes, counts, T, stride, 0, DefaultSparseOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Enumerated != len(full) {
		t.Fatalf("enumerated %d, faithful set has %d", stats.Enumerated, len(full))
	}
	if stats.Retained != len(sparse) {
		t.Fatalf("stats.Retained %d != len %d", stats.Retained, len(sparse))
	}
	if stats.Enumerated != stats.Retained+stats.PrunedSupport+stats.PrunedDominated {
		t.Fatalf("stats don't add up: %+v", stats)
	}
}

// TestEnumerateSparseVsBruteForce is the defining property of the sparse
// enumerator, checked against the faithful enumeration on random boxes:
//
//   - the retained set is a subsequence of the faithful set (same feasible
//     configurations, same lexicographic order, same Weight/Jobs/Offset);
//   - every retained configuration above the KeepJobs pool honors the
//     support cap;
//   - every pruned configuration above the KeepJobs pool violates the
//     support cap or is dominated (extensible by one more job within T);
//   - every configuration in the KeepJobs pool is retained unconditionally;
//   - the stats partition the enumeration exactly.
func TestEnumerateSparseVsBruteForce(t *testing.T) {
	f := func(seed uint64, dRaw, supRaw uint8) bool {
		src := rng.New(seed)
		d := int(dRaw%3) + 1
		sizes := make([]pcmax.Time, d)
		counts := make([]int, d)
		base := pcmax.Time(1)
		for i := range sizes {
			base += pcmax.Time(1 + src.Int64n(7))
			sizes[i] = base
			counts[i] = int(src.Int64n(5))
		}
		T := base + pcmax.Time(src.Int64n(4*int64(base)))
		stride := strides(counts)
		opts := SparseOptions{MaxSupport: int(supRaw%3) + 1, KeepJobs: 2}

		full, err := Enumerate(sizes, counts, T, stride, 0)
		if err != nil {
			t.Fatal(err)
		}
		sparse, stats, err := EnumerateSparse(sizes, counts, T, stride, 0, opts)
		if err != nil {
			t.Fatal(err)
		}

		if stats.Enumerated != len(full) {
			t.Fatalf("enumerated %d != faithful %d", stats.Enumerated, len(full))
		}
		if stats.Retained != len(sparse) ||
			stats.Enumerated != stats.Retained+stats.PrunedSupport+stats.PrunedDominated {
			t.Fatalf("inconsistent stats %+v (retained %d)", stats, len(sparse))
		}

		// Subsequence check: walk the faithful list once, matching retained
		// configurations in order; classify each pruned one.
		retained := make(map[string]bool, len(sparse))
		next := 0
		for _, c := range full {
			if next < len(sparse) && key(sparse[next].Counts) == key(c.Counts) {
				s := sparse[next]
				if s.Weight != c.Weight || s.Jobs != c.Jobs || s.Offset != c.Offset {
					t.Fatalf("retained %v differs from faithful: %+v vs %+v", c.Counts, s, c)
				}
				retained[key(c.Counts)] = true
				next++
				continue
			}
			// Pruned: must be above the pool and oversupport or dominated.
			if c.Jobs <= 2 {
				t.Fatalf("KeepJobs pool config %v pruned", c.Counts)
			}
			if support(c.Counts) <= opts.MaxSupport &&
				!dominated(c.Counts, sizes, counts, c.Weight, T) {
				t.Fatalf("config %v pruned but neither oversupport nor dominated", c.Counts)
			}
		}
		if next != len(sparse) {
			t.Fatalf("retained set is not a subsequence: %d of %d matched", next, len(sparse))
		}
		for _, c := range sparse {
			if c.Jobs > 2 && opts.MaxSupport > 0 && support(c.Counts) > opts.MaxSupport {
				t.Fatalf("retained config %v violates support cap %d", c.Counts, opts.MaxSupport)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateSparseNoDominance(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	sparse, stats, err := EnumerateSparse(sizes, counts, T, stride, 0,
		SparseOptions{MaxSupport: 1, KeepJobs: 1, NoDominance: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedDominated != 0 {
		t.Fatalf("NoDominance pruned %d as dominated", stats.PrunedDominated)
	}
	for _, c := range sparse {
		if c.Jobs > 1 && support(c.Counts) > 1 {
			t.Fatalf("retained %v violates support cap", c.Counts)
		}
	}
}

func TestDefaultSparseOptionsSupportGrowsLogarithmically(t *testing.T) {
	cases := []struct{ k, want int }{
		{1, 3}, {2, 3}, {4, 4}, {10, 6}, {100, 9},
	}
	for _, c := range cases {
		if got := DefaultSparseOptions(c.k).MaxSupport; got != c.want {
			t.Fatalf("DefaultSparseOptions(%d).MaxSupport = %d, want %d", c.k, got, c.want)
		}
	}
}
