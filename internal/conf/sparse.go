package conf

import (
	"fmt"
	"math/bits"

	"repro/pcmax"
)

// This file implements the sparsified configuration enumerator behind the
// ptas-sparse registry algorithm. "Closing the Gap for Makespan Scheduling
// via Sparsification Techniques" (Jansen–Klein–Verschae) proves that optimal
// solutions of the configuration ILP need only configurations with small
// support — O(log 1/eps) distinct job sizes each — and that the remaining
// configurations are structurally redundant. EnumerateSparse applies two
// prunes in that spirit:
//
//   - support cap: configurations using more than MaxSupport distinct size
//     classes are dropped;
//   - dominance: a configuration is dominated when another feasible
//     configuration extends it — some class still has availability and
//     capacity left (weight + size_i <= T, s_i < counts_i). Dominated
//     configurations are "wasteful" machine assignments: the same machine
//     could carry strictly more load within T.
//
// Pruning a configuration can only raise OPT(v) values of the partition DP
// (fewer moves), never produce invalid schedules, so a sparse table's
// reconstruction is always a valid (if possibly conservative) packing. Two
// structural floors keep the sparse DP total and the driver's certification
// cheap:
//
//   - every configuration with Jobs <= KeepJobs survives (the singleton and
//     pair pool), so every non-zero entry retains at least one candidate and
//     OPT stays finite everywhere;
//   - the full-vector entry keeps a certified escape hatch one level up: the
//     driver (core.Solve with Options.Sparsify) re-verifies the converged
//     target against the faithful enumeration, so over-pruning degrades to a
//     detected fallback, never to a silently weaker guarantee.
type SparseOptions struct {
	// MaxSupport caps the number of distinct size classes per retained
	// configuration; <= 0 disables the support cap. Configurations in the
	// KeepJobs pool are exempt (their support is at most KeepJobs anyway).
	MaxSupport int
	// KeepJobs is the unconditional retention floor: every configuration
	// placing at most this many jobs is kept regardless of support or
	// dominance. Values < 1 are treated as 1 (singletons are always kept;
	// the DP requires every non-zero entry to admit a candidate).
	KeepJobs int32
	// NoDominance disables the dominance prune, leaving only the support
	// cap. Ablation/debug knob.
	NoDominance bool
}

// DefaultSparseOptions derives the Jansen–Klein–Verschae-style defaults for
// k = ceil(1/eps): support capped at ceil(log2 k) + 2 (at least 3), with the
// singleton-and-pair pool retained.
func DefaultSparseOptions(k int) SparseOptions {
	if k < 1 {
		k = 1
	}
	sup := bits.Len(uint(k-1)) + 2 // ceil(log2 k) + 2
	if sup < 3 {
		sup = 3
	}
	return SparseOptions{MaxSupport: sup, KeepJobs: 2}
}

// SparseStats reports what EnumerateSparse did: how many feasible non-zero
// configurations the box held and where the pruned ones went. Enumerated ==
// Retained + PrunedSupport + PrunedDominated.
type SparseStats struct {
	// Enumerated counts every feasible non-zero configuration visited.
	Enumerated int
	// Retained counts configurations kept in the sparse set.
	Retained int
	// PrunedSupport counts configurations dropped by the support cap.
	PrunedSupport int
	// PrunedDominated counts configurations dropped as dominated.
	PrunedDominated int
}

// Reduction returns Enumerated/Retained, the config-count shrink factor
// (1 when nothing was pruned or the set is empty).
func (s SparseStats) Reduction() float64 {
	if s.Retained == 0 || s.Enumerated == 0 {
		return 1
	}
	return float64(s.Enumerated) / float64(s.Retained)
}

// dominated reports whether the configuration held in cur (weight w, visited
// left-to-right over all d classes) can be extended by one more job of any
// class within capacity T and availability counts — i.e. whether a strictly
// larger feasible configuration exists. sizes, counts and cur are parallel.
//
//lint:hotpath dominance test runs once per enumerated configuration
func dominated(cur []int32, sizes []pcmax.Time, counts []int, w, T pcmax.Time) bool {
	if len(cur) < len(sizes) || len(counts) < len(sizes) {
		return false // never taken: the parallel slices share length d
	}
	for i, s := range sizes {
		if int(cur[i]) < counts[i] && w+s <= T {
			return true
		}
	}
	return false
}

// support counts the distinct size classes a configuration uses.
//
//lint:hotpath support count runs once per enumerated configuration
func support(cur []int32) int {
	n := 0
	for _, c := range cur {
		if c != 0 {
			n++
		}
	}
	return n
}

// EnumerateSparse lists the sparse subset of the non-zero configurations for
// the given distinct sizes, availability, capacity T and table strides, in
// lexicographic order of the count vector (the same order and Config layout
// as Enumerate, so SortByJobs/NewSet and every DP fill path apply
// unchanged). maxConfigs <= 0 selects DefaultMaxConfigs and bounds the
// retained set, not the enumeration.
func EnumerateSparse(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int, opts SparseOptions) ([]Config, SparseStats, error) {
	var stats SparseStats
	if len(sizes) != len(counts) || len(sizes) != len(stride) {
		return nil, stats, fmt.Errorf("conf: mismatched dimensions (sizes=%d counts=%d stride=%d)",
			len(sizes), len(counts), len(stride))
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, stats, fmt.Errorf("conf: size class %d has non-positive size %d", i, s)
		}
		if s > T {
			return nil, stats, fmt.Errorf("conf: size class %d (%d) exceeds capacity T=%d", i, s, T)
		}
		if counts[i] < 0 {
			return nil, stats, fmt.Errorf("conf: size class %d has negative count %d", i, counts[i])
		}
	}
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigs
	}
	keep := opts.KeepJobs
	if keep < 1 {
		keep = 1
	}
	d := len(sizes)
	var out []Config
	cur := make([]int32, d)
	var rec func(dim int, weight pcmax.Time, jobs int32, offset int64) error
	rec = func(dim int, weight pcmax.Time, jobs int32, offset int64) error {
		if dim == d {
			if jobs == 0 {
				return nil // exclude the zero configuration
			}
			stats.Enumerated++
			if jobs > keep {
				if opts.MaxSupport > 0 && support(cur) > opts.MaxSupport {
					stats.PrunedSupport++
					return nil
				}
				if !opts.NoDominance && dominated(cur, sizes, counts, weight, T) {
					stats.PrunedDominated++
					return nil
				}
			}
			if len(out) >= maxConfigs {
				return fmt.Errorf("%w (limit %d)", ErrTooMany, maxConfigs)
			}
			stats.Retained++
			out = append(out, Config{
				Counts: append([]int32(nil), cur...),
				Weight: weight,
				Jobs:   jobs,
				Offset: offset,
			})
			return nil
		}
		for s := 0; s <= counts[dim]; s++ {
			w := weight + pcmax.Time(s)*sizes[dim]
			if w > T {
				break // sizes are positive; larger s only grows the weight
			}
			cur[dim] = int32(s)
			if err := rec(dim+1, w, jobs+int32(s), offset+int64(s)*stride[dim]); err != nil {
				return err
			}
		}
		cur[dim] = 0
		return nil
	}
	if err := rec(0, 0, 0, 0); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}
