package conf

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/pcmax"
)

// paperExample returns the configuration inputs of the paper's Section III
// example: two rounded sizes 6 and 11 with counts (2, 3) and target T=30.
func paperExample() (sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64) {
	return []pcmax.Time{6, 11}, []int{2, 3}, 30, []int64{4, 1}
}

func TestPaperExampleConfigurationSet(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	configs, err := Enumerate(sizes, counts, T, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's equation (7) lists C = {(0,0),(0,1),(0,2),(1,0),(1,1),
	// (1,2),(2,0),(2,1)}; Enumerate excludes the zero vector, leaving 7.
	want := map[[2]int32]bool{
		{0, 1}: true, {0, 2}: true, {1, 0}: true, {1, 1}: true,
		{1, 2}: true, {2, 0}: true, {2, 1}: true,
	}
	if len(configs) != len(want) {
		t.Fatalf("got %d configurations, want %d", len(configs), len(want))
	}
	for _, c := range configs {
		key := [2]int32{c.Counts[0], c.Counts[1]}
		if !want[key] {
			t.Fatalf("unexpected configuration %v", c.Counts)
		}
		delete(want, key)
	}
}

func TestWeightsAndOffsets(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	configs, err := Enumerate(sizes, counts, T, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range configs {
		wantW := pcmax.Time(c.Counts[0])*6 + pcmax.Time(c.Counts[1])*11
		if c.Weight != wantW {
			t.Fatalf("config %v weight %d, want %d", c.Counts, c.Weight, wantW)
		}
		if c.Weight > T {
			t.Fatalf("config %v exceeds T", c.Counts)
		}
		wantOff := int64(c.Counts[0])*stride[0] + int64(c.Counts[1])*stride[1]
		if c.Offset != wantOff {
			t.Fatalf("config %v offset %d, want %d", c.Counts, c.Offset, wantOff)
		}
		if c.Jobs != c.Counts[0]+c.Counts[1] {
			t.Fatalf("config %v jobs %d", c.Counts, c.Jobs)
		}
	}
}

func TestZeroVectorExcluded(t *testing.T) {
	configs, err := Enumerate([]pcmax.Time{5}, []int{3}, 100, []int64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range configs {
		if c.Jobs == 0 {
			t.Fatal("zero configuration included")
		}
	}
	if len(configs) != 3 {
		t.Fatalf("got %d configs, want 3 (s=1,2,3)", len(configs))
	}
}

func TestCapacityPrunes(t *testing.T) {
	// Size 5 with count 10 but T=12: only s=1,2 fit.
	configs, err := Enumerate([]pcmax.Time{5}, []int{10}, 12, []int64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 2 {
		t.Fatalf("got %d configs, want 2", len(configs))
	}
}

func TestEmptyDimensions(t *testing.T) {
	configs, err := Enumerate(nil, nil, 10, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 0 {
		t.Fatalf("no dimensions should give no configs, got %d", len(configs))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Enumerate([]pcmax.Time{5}, []int{1, 2}, 10, []int64{1}, 0); err == nil {
		t.Fatal("want mismatched-dimension error")
	}
	if _, err := Enumerate([]pcmax.Time{0}, []int{1}, 10, []int64{1}, 0); err == nil {
		t.Fatal("want non-positive size error")
	}
	if _, err := Enumerate([]pcmax.Time{11}, []int{1}, 10, []int64{1}, 0); err == nil {
		t.Fatal("want size-exceeds-T error")
	}
	if _, err := Enumerate([]pcmax.Time{5}, []int{-1}, 10, []int64{1}, 0); err == nil {
		t.Fatal("want negative-count error")
	}
}

func TestTooManyConfigs(t *testing.T) {
	_, err := Enumerate([]pcmax.Time{1, 2}, []int{50, 50}, 1000, []int64{51, 1}, 10)
	if !errors.Is(err, ErrTooMany) {
		t.Fatalf("want ErrTooMany, got %v", err)
	}
}

func TestFits(t *testing.T) {
	if !Fits([]int32{1, 2}, []int32{1, 2}) {
		t.Fatal("equal vectors must fit")
	}
	if !Fits([]int32{0, 1}, []int32{2, 3}) {
		t.Fatal("smaller vector must fit")
	}
	if Fits([]int32{2, 0}, []int32{1, 5}) {
		t.Fatal("larger component must not fit")
	}
	if !Fits(nil, nil) {
		t.Fatal("empty fits empty")
	}
}

// naiveEnumerate counts configurations by brute force over the full box.
func naiveEnumerate(sizes []pcmax.Time, counts []int, T pcmax.Time) int {
	total := 0
	var rec func(dim int, weight pcmax.Time, jobs int)
	rec = func(dim int, weight pcmax.Time, jobs int) {
		if weight > T {
			return
		}
		if dim == len(sizes) {
			if jobs > 0 {
				total++
			}
			return
		}
		for s := 0; s <= counts[dim]; s++ {
			rec(dim+1, weight+pcmax.Time(s)*sizes[dim], jobs+s)
		}
	}
	rec(0, 0, 0)
	return total
}

func TestCountMatchesNaiveProperty(t *testing.T) {
	f := func(s1Raw, s2Raw, c1Raw, c2Raw, tRaw uint8) bool {
		s1 := pcmax.Time(s1Raw%20) + 1
		s2 := s1 + pcmax.Time(s2Raw%20) + 1
		c1 := int(c1Raw % 6)
		c2 := int(c2Raw % 6)
		T := s2 + pcmax.Time(tRaw%100) // ensure every size <= T
		stride := []int64{int64(c2) + 1, 1}
		configs, err := Enumerate([]pcmax.Time{s1, s2}, []int{c1, c2}, T, stride, 0)
		if err != nil {
			return false
		}
		return len(configs) == naiveEnumerate([]pcmax.Time{s1, s2}, []int{c1, c2}, T)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortByJobsBounds(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	configs, err := Enumerate(sizes, counts, T, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	bounds := SortByJobs(configs)
	for i := 1; i < len(configs); i++ {
		if configs[i-1].Jobs > configs[i].Jobs {
			t.Fatalf("configs not sorted by Jobs at %d: %d > %d", i, configs[i-1].Jobs, configs[i].Jobs)
		}
	}
	// Bounds[l] must count exactly the configs with Jobs <= l.
	for l := int32(0); l < int32(len(bounds)); l++ {
		want := 0
		for _, c := range configs {
			if c.Jobs <= l {
				want++
			}
		}
		if int(bounds.Upto(l)) != want {
			t.Fatalf("Upto(%d) = %d, want %d", l, bounds.Upto(l), want)
		}
	}
	// Clamping beyond the largest configuration covers everything.
	if int(bounds.Upto(1000)) != len(configs) {
		t.Fatalf("Upto(1000) = %d, want %d", bounds.Upto(1000), len(configs))
	}
	if bounds.Upto(-1) != 0 {
		t.Fatalf("Upto(-1) = %d, want 0", bounds.Upto(-1))
	}
}

func TestSortByJobsStable(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	configs, err := Enumerate(sizes, counts, T, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	SortByJobs(configs)
	// Within equal Jobs, the lexicographic enumeration order must survive:
	// offsets ascend because enumeration emits count vectors lexicographically
	// and offset is monotone in the vector for this stride layout.
	for i := 1; i < len(configs); i++ {
		if configs[i-1].Jobs == configs[i].Jobs && configs[i-1].Offset >= configs[i].Offset {
			t.Fatalf("equal-Jobs order not stable at %d: offsets %d >= %d",
				i, configs[i-1].Offset, configs[i].Offset)
		}
	}
}

func TestEmptyJobsBounds(t *testing.T) {
	bounds := SortByJobs(nil)
	if bounds.Upto(0) != 0 || bounds.Upto(5) != 0 {
		t.Fatalf("empty bounds should always return 0, got %d/%d", bounds.Upto(0), bounds.Upto(5))
	}
}

func TestSetMatchesConfigs(t *testing.T) {
	sizes, counts, T, stride := paperExample()
	configs, err := Enumerate(sizes, counts, T, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	bounds := SortByJobs(configs)
	set := NewSet(configs, len(sizes), bounds)
	if set.N != len(configs) || set.D != len(sizes) {
		t.Fatalf("set dims N=%d D=%d", set.N, set.D)
	}
	for i, c := range configs {
		row := set.Row(i)
		for j := range row {
			if row[j] != c.Counts[j] {
				t.Fatalf("row %d = %v, want %v", i, row, c.Counts)
			}
		}
		if set.Offsets[i] != c.Offset || set.Jobs[i] != c.Jobs {
			t.Fatalf("row %d offset/jobs mismatch", i)
		}
	}
}

func TestDefaultLimitApplied(t *testing.T) {
	// maxConfigs <= 0 must select the default rather than zero.
	configs, err := Enumerate([]pcmax.Time{3}, []int{2}, 10, []int64{1}, -1)
	if err != nil || len(configs) != 2 {
		t.Fatalf("got %d configs, err %v", len(configs), err)
	}
}
