// Package conf enumerates machine configurations for the Hochbaum–Shmoys
// dynamic program. A machine configuration is a vector (s_1, ..., s_d) over
// the d distinct rounded long-job sizes, giving how many jobs of each size
// one machine runs, subject to the paper's equation (3):
//
//	sum_i s_i * size_i <= T
//
// and to availability s_i <= counts_i. The zero configuration (no
// assignment) is excluded, as in the paper's Parallel DP where C_{v} "does
// not include the zero vector".
package conf

import (
	"errors"
	"fmt"

	"repro/pcmax"
)

// Config is one machine configuration.
type Config struct {
	// Counts holds s_i for every distinct size class.
	Counts []int32
	// Weight is sum_i s_i*size_i, the machine completion time of the
	// configuration on rounded jobs.
	Weight pcmax.Time
	// Jobs is sum_i s_i.
	Jobs int32
	// Offset is the mixed-radix table-index displacement of the
	// configuration: sum_i s_i*stride_i. Because a configuration is only
	// applied to entries v with s <= v componentwise, subtracting Offset
	// from idx(v) yields idx(v-s) without any digit borrowing.
	Offset int64
}

// ErrTooMany reports that enumeration exceeded the configured limit.
var ErrTooMany = errors.New("conf: too many machine configurations")

// DefaultMaxConfigs bounds enumeration; the PTAS with eps=0.3 (k=4) needs at
// most a few thousand configurations, so hitting this limit indicates an
// extreme epsilon rather than a legitimate instance.
const DefaultMaxConfigs = 4 << 20

// Enumerate lists every non-zero configuration for the given distinct sizes,
// per-size availability, capacity T and table strides, in lexicographic
// order of the count vector. maxConfigs <= 0 selects DefaultMaxConfigs.
func Enumerate(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int) ([]Config, error) {
	if len(sizes) != len(counts) || len(sizes) != len(stride) {
		return nil, fmt.Errorf("conf: mismatched dimensions (sizes=%d counts=%d stride=%d)",
			len(sizes), len(counts), len(stride))
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("conf: size class %d has non-positive size %d", i, s)
		}
		if s > T {
			return nil, fmt.Errorf("conf: size class %d (%d) exceeds capacity T=%d", i, s, T)
		}
		if counts[i] < 0 {
			return nil, fmt.Errorf("conf: size class %d has negative count %d", i, counts[i])
		}
	}
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigs
	}
	d := len(sizes)
	var out []Config
	cur := make([]int32, d)
	var rec func(dim int, weight pcmax.Time, jobs int32, offset int64) error
	rec = func(dim int, weight pcmax.Time, jobs int32, offset int64) error {
		if dim == d {
			if jobs == 0 {
				return nil // exclude the zero configuration
			}
			if len(out) >= maxConfigs {
				return fmt.Errorf("%w (limit %d)", ErrTooMany, maxConfigs)
			}
			out = append(out, Config{
				Counts: append([]int32(nil), cur...),
				Weight: weight,
				Jobs:   jobs,
				Offset: offset,
			})
			return nil
		}
		for s := 0; s <= counts[dim]; s++ {
			w := weight + pcmax.Time(s)*sizes[dim]
			if w > T {
				break // sizes are positive; larger s only grows the weight
			}
			cur[dim] = int32(s)
			if err := rec(dim+1, w, jobs+int32(s), offset+int64(s)*stride[dim]); err != nil {
				return err
			}
		}
		cur[dim] = 0
		return nil
	}
	if err := rec(0, 0, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Fits reports whether configuration counts s can be applied to entry digits
// v, i.e. s <= v componentwise.
func Fits(s, v []int32) bool {
	for i := range s {
		if s[i] > v[i] {
			return false
		}
	}
	return true
}
