// Package conf enumerates machine configurations for the Hochbaum–Shmoys
// dynamic program. A machine configuration is a vector (s_1, ..., s_d) over
// the d distinct rounded long-job sizes, giving how many jobs of each size
// one machine runs, subject to the paper's equation (3):
//
//	sum_i s_i * size_i <= T
//
// and to availability s_i <= counts_i. The zero configuration (no
// assignment) is excluded, as in the paper's Parallel DP where C_{v} "does
// not include the zero vector".
package conf

import (
	"errors"
	"fmt"
	"sort"

	"repro/pcmax"
)

// Config is one machine configuration.
type Config struct {
	// Counts holds s_i for every distinct size class.
	Counts []int32
	// Weight is sum_i s_i*size_i, the machine completion time of the
	// configuration on rounded jobs.
	Weight pcmax.Time
	// Jobs is sum_i s_i.
	Jobs int32
	// Offset is the mixed-radix table-index displacement of the
	// configuration: sum_i s_i*stride_i. Because a configuration is only
	// applied to entries v with s <= v componentwise, subtracting Offset
	// from idx(v) yields idx(v-s) without any digit borrowing.
	Offset int64
}

// ErrTooMany reports that enumeration exceeded the configured limit.
var ErrTooMany = errors.New("conf: too many machine configurations")

// DefaultMaxConfigs bounds enumeration; the PTAS with eps=0.3 (k=4) needs at
// most a few thousand configurations, so hitting this limit indicates an
// extreme epsilon rather than a legitimate instance.
const DefaultMaxConfigs = 4 << 20

// Enumerate lists every non-zero configuration for the given distinct sizes,
// per-size availability, capacity T and table strides, in lexicographic
// order of the count vector. maxConfigs <= 0 selects DefaultMaxConfigs.
func Enumerate(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int) ([]Config, error) {
	if len(sizes) != len(counts) || len(sizes) != len(stride) {
		return nil, fmt.Errorf("conf: mismatched dimensions (sizes=%d counts=%d stride=%d)",
			len(sizes), len(counts), len(stride))
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("conf: size class %d has non-positive size %d", i, s)
		}
		if s > T {
			return nil, fmt.Errorf("conf: size class %d (%d) exceeds capacity T=%d", i, s, T)
		}
		if counts[i] < 0 {
			return nil, fmt.Errorf("conf: size class %d has negative count %d", i, counts[i])
		}
	}
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigs
	}
	d := len(sizes)
	var out []Config
	cur := make([]int32, d)
	var rec func(dim int, weight pcmax.Time, jobs int32, offset int64) error
	rec = func(dim int, weight pcmax.Time, jobs int32, offset int64) error {
		if dim == d {
			if jobs == 0 {
				return nil // exclude the zero configuration
			}
			if len(out) >= maxConfigs {
				return fmt.Errorf("%w (limit %d)", ErrTooMany, maxConfigs)
			}
			out = append(out, Config{
				Counts: append([]int32(nil), cur...),
				Weight: weight,
				Jobs:   jobs,
				Offset: offset,
			})
			return nil
		}
		for s := 0; s <= counts[dim]; s++ {
			w := weight + pcmax.Time(s)*sizes[dim]
			if w > T {
				break // sizes are positive; larger s only grows the weight
			}
			cur[dim] = int32(s)
			if err := rec(dim+1, w, jobs+int32(s), offset+int64(s)*stride[dim]); err != nil {
				return err
			}
		}
		cur[dim] = 0
		return nil
	}
	if err := rec(0, 0, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Fits reports whether configuration counts s can be applied to entry digits
// v, i.e. s <= v componentwise.
func Fits(s, v []int32) bool {
	for i := range s {
		if s[i] > v[i] {
			return false
		}
	}
	return true
}

// JobsBounds holds, per anti-diagonal level, the scan bound of a Jobs-sorted
// configuration list: JobsBounds[l] is the number of configurations placing
// at most l jobs. A configuration with Jobs > l cannot fit any DP entry on
// level l (its digit sum exceeds the entry's), so a fill scanning a
// Jobs-sorted list may stop at Upto(l) without changing any minimum.
type JobsBounds []int32

// Upto returns the number of configurations with Jobs <= level, clamping
// levels beyond the largest configuration.
func (b JobsBounds) Upto(level int32) int32 {
	if len(b) == 0 || level < 0 {
		return 0
	}
	if int(level) >= len(b) {
		return b[len(b)-1]
	}
	return b[level]
}

// SortByJobs stably re-orders configs in place by ascending Jobs (ties keep
// enumeration order) and returns the per-level scan bounds. The DP fills
// depend on this order for level-aware pruning; the min in the recurrence is
// order-independent, so Opt tables are unchanged by the reordering.
func SortByJobs(configs []Config) JobsBounds {
	sort.SliceStable(configs, func(a, b int) bool { return configs[a].Jobs < configs[b].Jobs })
	maxJobs := int32(0)
	if n := len(configs); n > 0 {
		maxJobs = configs[n-1].Jobs
	}
	bounds := make(JobsBounds, maxJobs+1)
	ci := 0
	for l := int32(0); l <= maxJobs; l++ {
		for ci < len(configs) && configs[ci].Jobs <= l {
			ci++
		}
		bounds[l] = int32(ci)
	}
	return bounds
}

// Set is a scan-optimized view of a Jobs-sorted configuration list: the same
// configurations flattened structure-of-arrays, so the DP inner loop walks
// one contiguous counts block instead of chasing a heap slice per Config.
// Row i of Counts spans [i*D, (i+1)*D). A Set is immutable after NewSet and
// safe to share between tables and goroutines.
type Set struct {
	// D is the number of size classes (row width of Counts).
	D int
	// N is the number of configurations.
	N int
	// Counts holds all configuration count vectors, row-major.
	Counts []int32
	// Offsets holds each configuration's mixed-radix table displacement.
	Offsets []int64
	// Jobs holds each configuration's job total (ascending).
	Jobs []int32
	// Bounds are the per-level scan bounds over the Jobs-sorted rows.
	Bounds JobsBounds
}

// NewSet flattens a Jobs-sorted configuration list (see SortByJobs) into a
// Set with the given bounds. d is the number of size classes, which must
// match every configuration's dimension.
func NewSet(configs []Config, d int, bounds JobsBounds) *Set {
	s := &Set{
		D:       d,
		N:       len(configs),
		Counts:  make([]int32, len(configs)*d),
		Offsets: make([]int64, len(configs)),
		Jobs:    make([]int32, len(configs)),
		Bounds:  bounds,
	}
	for i := range configs {
		copy(s.Counts[i*d:(i+1)*d], configs[i].Counts)
		s.Offsets[i] = configs[i].Offset
		s.Jobs[i] = configs[i].Jobs
	}
	return s
}

// Row returns configuration i's count vector (a view into the flat block;
// callers must not modify it).
func (s *Set) Row(i int) []int32 {
	return s.Counts[i*s.D : (i+1)*s.D]
}
