package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/workload"
)

// TestSmokePaperScale exercises the paper's largest instance shape
// (m=20, n=100, eps=0.3) across all four speedup families, checking that
// sequential and parallel agree and that the exact solver confirms the
// (1+eps) guarantee.
func TestSmokePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke is not short")
	}
	for _, fam := range workload.SpeedupFamilies {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			in := workload.MustGenerate(workload.Spec{Family: fam, M: 20, N: 100, Seed: 42})
			t0 := time.Now()
			seq, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 1})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			seqDur := time.Since(t0)
			t0 = time.Now()
			parSched, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: runtime.GOMAXPROCS(0)})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			parDur := time.Since(t0)
			if seq.Makespan(in) != parSched.Makespan(in) {
				t.Fatalf("parallel makespan %d != sequential %d", parSched.Makespan(in), seq.Makespan(in))
			}
			_, res, err := exact.Solve(context.Background(), in, exact.Options{TimeLimit: 30 * time.Second})
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			ms := seq.Makespan(in)
			t.Logf("seq=%v par=%v iter=%d sigma=%d configs=%d long=%d ptas=%d opt=%d (optimal=%v, nodes=%d) ratio=%.4f",
				seqDur, parDur, st.Iterations, st.TableEntries, st.Configs, st.LongJobs,
				ms, res.Makespan, res.Optimal, res.Nodes, float64(ms)/float64(res.Makespan))
			if res.Optimal && float64(ms) > 1.3*float64(res.Makespan) {
				t.Fatalf("ratio %.4f exceeds 1.3", float64(ms)/float64(res.Makespan))
			}
		})
	}
}
