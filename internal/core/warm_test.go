package core

import (
	"context"
	"testing"

	"repro/internal/dp"
	"repro/internal/workload"
	"repro/pcmax"
)

// warmTestInstance builds a mid-sized instance whose cold bracket is wide
// enough for a warm bracket to visibly shrink it.
func warmTestInstance(t testing.TB) *pcmax.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Spec{Family: workload.U1_100, M: 10, N: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestWarmBracketTightensAndPreservesResult(t *testing.T) {
	in := warmTestInstance(t)
	opts := Options{Epsilon: 0.2, Workers: 1}
	coldSched, cold, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStart {
		t.Fatal("cold solve reported WarmStart")
	}
	coldMS := coldSched.Makespan(in)

	// The converged target of a faithful solve is a certified lower bound
	// (infeasibility at FinalT-1 witnesses OPT >= FinalT) and any valid
	// schedule's makespan is an upper bound — the exact contract WarmBracket
	// documents.
	wopts := opts
	wopts.WarmBracket = &Bracket{LB: cold.FinalT, UB: coldMS}
	warmSched, warm, err := Solve(context.Background(), in, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStart {
		t.Fatal("warm solve did not report WarmStart")
	}
	if warm.LB0 < cold.LB0 || warm.UB0 > cold.UB0 {
		t.Fatalf("warm bracket [%d,%d] not within cold [%d,%d]",
			warm.LB0, warm.UB0, cold.LB0, cold.UB0)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm solve took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
	if warm.FinalT != cold.FinalT {
		t.Fatalf("warm FinalT = %d, cold FinalT = %d", warm.FinalT, cold.FinalT)
	}
	if got := warmSched.Makespan(in); got != coldMS {
		t.Fatalf("warm makespan = %d, cold = %d", got, coldMS)
	}
}

func TestWarmBracketExactPinSkipsBisection(t *testing.T) {
	in := warmTestInstance(t)
	opts := Options{Epsilon: 0.2, Workers: 1}
	_, cold, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pinning LB == UB == FinalT collapses the interval: zero bisection
	// iterations, one direct attempt at the converged target.
	wopts := opts
	wopts.WarmBracket = &Bracket{LB: cold.FinalT, UB: cold.FinalT}
	sched, warm, err := Solve(context.Background(), in, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations != 0 {
		t.Fatalf("pinned bracket still ran %d bisection iterations", warm.Iterations)
	}
	if warm.FinalT != cold.FinalT {
		t.Fatalf("pinned FinalT = %d, want %d", warm.FinalT, cold.FinalT)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestWarmBracketInconsistentIsIgnored(t *testing.T) {
	in := warmTestInstance(t)
	opts := Options{Epsilon: 0.2, Workers: 1}
	_, cold, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A bracket entirely below the fresh lower bound has an empty
	// intersection with [LB0, UB0]; Solve must ignore it and still converge
	// to the cold answer.
	wopts := opts
	wopts.WarmBracket = &Bracket{LB: 1, UB: cold.LB0 - 1}
	_, warm, err := Solve(context.Background(), in, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStart {
		t.Fatal("inconsistent bracket was applied")
	}
	if warm.FinalT != cold.FinalT || warm.LB0 != cold.LB0 || warm.UB0 != cold.UB0 {
		t.Fatalf("ignored bracket changed the solve: warm %+v vs cold %+v", warm, cold)
	}
}

func TestSharedCacheStatsArePerSolve(t *testing.T) {
	in := warmTestInstance(t)
	cache := dp.NewCache()
	opts := Options{Epsilon: 0.2, Workers: 1, Cache: cache}
	_, first, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := cache.Stats()
	firstLookups := first.Cache.ConfigHits + first.Cache.ConfigMisses
	secondLookups := second.Cache.ConfigHits + second.Cache.ConfigMisses
	if firstLookups+secondLookups != total.ConfigHits+total.ConfigMisses {
		t.Fatalf("per-solve deltas %d + %d do not sum to cache total %d",
			firstLookups, secondLookups, total.ConfigHits+total.ConfigMisses)
	}
	// The second solve repeats the first's probe targets, so on a shared
	// cache its enumerations must all be hits.
	if second.Cache.ConfigMisses != 0 {
		t.Fatalf("second solve on shared cache missed %d times (stats %+v)",
			second.Cache.ConfigMisses, second.Cache)
	}
	if second.Cache.ConfigHits == 0 {
		t.Fatal("second solve reported no cache traffic at all")
	}
}
