package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simsched"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestKForValues(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{
		{0.3, 4}, {0.25, 4}, {0.5, 2}, {1.0, 1}, {2.0, 1},
		{1.0 / 3.0, 3}, {0.1, 10}, {0.2, 5},
	}
	for _, c := range cases {
		got, err := KFor(c.eps)
		if err != nil {
			t.Fatalf("KFor(%v): %v", c.eps, err)
		}
		if got != c.want {
			t.Fatalf("KFor(%v) = %d, want %d", c.eps, got, c.want)
		}
	}
}

func TestKForErrors(t *testing.T) {
	for _, eps := range []float64{0, -0.1, math.NaN()} {
		if _, err := KFor(eps); !errors.Is(err, ErrBadEpsilon) {
			t.Fatalf("KFor(%v): want ErrBadEpsilon, got %v", eps, err)
		}
	}
	if _, err := KFor(1e-9); !errors.Is(err, ErrEpsilonTooSmall) {
		t.Fatalf("want ErrEpsilonTooSmall, got %v", err)
	}
}

func TestSolveRejectsBadEpsilon(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{3}}
	if _, _, err := Solve(context.Background(), in, Options{Epsilon: 0}); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("want ErrBadEpsilon, got %v", err)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := &pcmax.Instance{M: 0, Times: []pcmax.Time{3}}
	if _, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	in := &pcmax.Instance{M: 3}
	sched, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan(in) != 0 || st.Iterations != 0 {
		t.Fatalf("empty instance: makespan %d, iterations %d", sched.Makespan(in), st.Iterations)
	}
}

func TestSolveSingleJob(t *testing.T) {
	in := &pcmax.Instance{M: 3, Times: []pcmax.Time{42}}
	sched, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(in); got != 42 {
		t.Fatalf("makespan = %d, want 42", got)
	}
}

func TestSolveSingleMachine(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{5, 9, 3}}
	sched, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(in); got != 17 {
		t.Fatalf("makespan = %d, want 17 (everything on the one machine)", got)
	}
}

func TestSolveEqualJobsExact(t *testing.T) {
	// 2m equal jobs: optimal is 2t, and the PTAS must find it (T = 2t is
	// feasible, T = 2t-1 is not).
	in := &pcmax.Instance{M: 4, Times: []pcmax.Time{9, 9, 9, 9, 9, 9, 9, 9}}
	sched, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(in); got != 18 {
		t.Fatalf("makespan = %d, want 18", got)
	}
	if st.FinalT != 18 {
		t.Fatalf("final T = %d, want 18", st.FinalT)
	}
}

func TestSolveMoreMachinesThanJobs(t *testing.T) {
	in := &pcmax.Instance{M: 10, Times: []pcmax.Time{7, 5, 3}}
	sched, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(in); got != 7 {
		t.Fatalf("makespan = %d, want 7", got)
	}
}

func TestSolveLargeEpsilonIsPureLPT(t *testing.T) {
	// eps >= 1 makes every job short (t <= T/1 always holds at T >= max),
	// so the result is exactly the LPT schedule.
	src := rng.New(5)
	times := make([]pcmax.Time, 30)
	for j := range times {
		times[j] = pcmax.Time(1 + src.Int64n(50))
	}
	in := &pcmax.Instance{M: 4, Times: times}
	sched, st, err := Solve(context.Background(), in, Options{Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if st.LongJobs != 0 {
		t.Fatalf("eps=1 produced %d long jobs", st.LongJobs)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSanity(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 4})
	_, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 4 {
		t.Fatalf("k = %d", st.K)
	}
	// The initial brackets are the paper's equations (1)-(2) tightened by an
	// LPT pass (lb.FromLPT and LPT's makespan), so they may be strictly
	// inside the equations' interval — but must still bracket each other.
	if st.LB0 < in.LowerBound() || st.UB0 > in.UpperBound() || st.LB0 > st.UB0 {
		t.Fatalf("bounds %d/%d not within %d/%d", st.LB0, st.UB0, in.LowerBound(), in.UpperBound())
	}
	if st.FinalT < st.LB0 || st.FinalT > st.UB0 {
		t.Fatalf("final T %d outside [%d,%d]", st.FinalT, st.LB0, st.UB0)
	}
	// Bisection halves the interval each step.
	width := st.UB0 - st.LB0
	maxIter := 1
	for width > 0 {
		width /= 2
		maxIter++
	}
	if st.Iterations > maxIter {
		t.Fatalf("%d iterations for interval %d", st.Iterations, st.UB0-st.LB0)
	}
	if st.LongJobs+st.ShortJobs != in.N() {
		t.Fatalf("long %d + short %d != n %d", st.LongJobs, st.ShortJobs, in.N())
	}
	if st.MachinesUsed > in.M {
		t.Fatalf("machines used %d > m %d", st.MachinesUsed, in.M)
	}
}

func TestFinalTNeverBelowOptimum(t *testing.T) {
	// The bisection's invariant LB <= OPT means FinalT <= OPT; combined
	// with the makespan guarantee this is the dual approximation at work.
	src := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		m := 2 + src.Intn(3)
		n := 3 + src.Intn(8)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(30))
		}
		in := &pcmax.Instance{M: m, Times: times}
		_, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalT > opt.Makespan(in) {
			t.Fatalf("trial %d: final T %d > OPT %d (times %v, m=%d)",
				trial, st.FinalT, opt.Makespan(in), times, m)
		}
	}
}

func TestShortRuleLSStillWithinGuarantee(t *testing.T) {
	src := rng.New(13)
	for trial := 0; trial < 30; trial++ {
		m := 2 + src.Intn(3)
		n := 4 + src.Intn(8)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(40))
		}
		in := &pcmax.Instance{M: m, Times: times}
		sched, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, ShortRule: ShortLS})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if float64(sched.Makespan(in)) > 1.3*float64(opt.Makespan(in))+1e-9 {
			t.Fatalf("trial %d: LS short rule broke the guarantee: %d vs opt %d",
				trial, sched.Makespan(in), opt.Makespan(in))
		}
	}
}

func TestShortRuleLPTNeverWorseThanLSHere(t *testing.T) {
	// The paper's claim for switching to LPT: better in practice. Compare
	// on the speedup families; allow rare ties going either way but LPT
	// must win on aggregate.
	var lptTotal, lsTotal pcmax.Time
	for _, fam := range workload.SpeedupFamilies {
		for rep := 0; rep < 5; rep++ {
			in := workload.MustGenerate(workload.Spec{Family: fam, M: 6, N: 40, Seed: uint64(100 + rep)})
			a, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, ShortRule: ShortLPT})
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, ShortRule: ShortLS})
			if err != nil {
				t.Fatal(err)
			}
			lptTotal += a.Makespan(in)
			lsTotal += b.Makespan(in)
		}
	}
	if lptTotal > lsTotal {
		t.Fatalf("LPT short rule worse on aggregate: %d vs %d", lptTotal, lsTotal)
	}
}

func TestPaperFaithfulVariantsIdenticalMakespan(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 50, Seed: 21})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Epsilon: 0.3, SeqFill: SeqRecursive},
		{Epsilon: 0.3, PerEntryConfigs: true},
		{Epsilon: 0.3, SeqFill: SeqRecursive, PerEntryConfigs: true},
		{Epsilon: 0.3, Workers: 3, LevelMode: dp.LevelScan},
		{Epsilon: 0.3, Workers: 3, LevelMode: dp.LevelScan, PerEntryConfigs: true},
		{Epsilon: 0.3, Workers: 5, Strategy: par.Chunked},
		{Epsilon: 0.3, Workers: 5, Strategy: par.Dynamic},
	}
	for i, opts := range variants {
		got, _, err := Solve(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got.Makespan(in) != ref.Makespan(in) {
			t.Fatalf("variant %d makespan %d != reference %d", i, got.Makespan(in), ref.Makespan(in))
		}
	}
}

func TestExternalPoolReuse(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 6, N: 40, Seed: 3})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4, Pool: pool})
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		if got.Makespan(in) != ref.Makespan(in) {
			t.Fatalf("reuse %d: makespan %d != %d", i, got.Makespan(in), ref.Makespan(in))
		}
	}
}

func TestTableBudgetError(t *testing.T) {
	// A tiny entry budget must surface dp.ErrTableTooLarge through Solve.
	in := workload.MustGenerate(workload.Spec{Family: workload.Um_2m1, M: 20, N: 41, Seed: 1})
	_, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, MaxTableEntries: 4})
	if !errors.Is(err, dp.ErrTableTooLarge) {
		t.Fatalf("want ErrTableTooLarge, got %v", err)
	}
}

func TestProfileCollection(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 9})
	profile := &simsched.Profile{}
	_, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.Levels) != len(profile.Configs) {
		t.Fatalf("profile shape: %d levels, %d configs", len(profile.Levels), len(profile.Configs))
	}
	if len(profile.Levels) == 0 {
		t.Fatal("no profile collected")
	}
	if profile.SeqFill != st.FillTime {
		t.Fatalf("profile fill %v != stats fill %v", profile.SeqFill, st.FillTime)
	}
	// Each iteration's level sizes must sum to that table's sigma; check
	// total against TotalEntriesFilled.
	var sum int64
	for _, levels := range profile.Levels {
		for _, q := range levels {
			sum += q
		}
	}
	if sum != st.TotalEntriesFilled {
		t.Fatalf("profile entries %d != stats %d", sum, st.TotalEntriesFilled)
	}
}

func TestGuaranteeAcrossEpsilonsProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, epsRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		epsChoices := []float64{0.2, 0.3, 0.5, 0.8}
		eps := epsChoices[int(epsRaw)%len(epsChoices)]
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: m, Times: times}
		sched, _, err := Solve(context.Background(), in, Options{Epsilon: eps})
		if err != nil || sched.Validate(in) != nil {
			return false
		}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		return float64(sched.Makespan(in)) <= (1+eps)*float64(opt.Makespan(in))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitInvariantsProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8, tRaw uint16) bool {
		src := rng.New(seed)
		k := int(kRaw%8) + 1
		T := pcmax.Time(tRaw%2000) + 1
		n := 1 + src.Intn(40)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(int64(T))) // every job <= T
		}
		in := &pcmax.Instance{M: 3, Times: times}
		sp, err := newSplit(in, k, T)
		if err != nil {
			return false
		}
		// Partition is exact.
		total := len(sp.short)
		for _, b := range sp.buckets {
			total += len(b)
		}
		if total != n {
			return false
		}
		// Short jobs satisfy t < k*u (the integer-robust threshold; see
		// round.go); long jobs land in the right class.
		k2 := pcmax.Time(k) * pcmax.Time(k)
		u := (T + k2 - 1) / k2
		if sp.u != u {
			return false
		}
		threshold := pcmax.Time(k) * u
		for _, j := range sp.short {
			if in.Times[j] >= threshold {
				return false
			}
		}
		for c, b := range sp.buckets {
			size := sp.sizes[c]
			// Classes sit on the grid within [k*u, k^2*u]: exactly the
			// invariant the (1+1/k)T long-load bound needs.
			if size%u != 0 || size < threshold || size > k2*u {
				return false
			}
			if len(b) != sp.counts[c] {
				return false
			}
			for _, j := range b {
				tj := in.Times[j]
				if tj < threshold {
					return false // long job misclassified
				}
				if size > tj || tj >= size+u {
					return false // rounding window violated
				}
			}
		}
		// Sizes strictly ascending.
		for c := 1; c < len(sp.sizes); c++ {
			if sp.sizes[c-1] >= sp.sizes[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionStringsAndDefaults(t *testing.T) {
	if ShortLPT.String() != "LPT" || ShortLS.String() != "LS" {
		t.Fatal("short-rule names changed")
	}
	if ShortRule(9).String() == "" {
		t.Fatal("unknown short rule should render")
	}
	if SeqBottomUp.String() != "bottom-up" || SeqRecursive.String() != "recursive" {
		t.Fatal("fill names changed")
	}
	if SeqFill(9).String() == "" {
		t.Fatal("unknown fill should render")
	}
	def := DefaultOptions()
	if def.Epsilon != 0.3 || def.Workers != 1 {
		t.Fatalf("defaults = %+v, want the paper's configuration", def)
	}
}

func TestTimeLimit(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 2})
	// A zero-duration-ish limit must trip before the first probe.
	_, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, TimeLimit: time.Nanosecond})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("want ErrTimeLimit, got %v", err)
	}
	// A generous limit must not interfere.
	if _, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, TimeLimit: time.Minute}); err != nil {
		t.Fatalf("generous limit failed: %v", err)
	}
	// Speculative path honours the limit too.
	_, _, err = Solve(context.Background(), in, Options{Epsilon: 0.3, SpeculativeProbes: 4, TimeLimit: time.Nanosecond})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("speculative: want ErrTimeLimit, got %v", err)
	}
}
