package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/cancel"
	"repro/internal/dp"
	"repro/internal/par"
	"repro/pcmax"
)

// This file implements speculative bisection, an extension beyond the paper:
// instead of parallelizing within one DP fill (the paper's Parallel DP), the
// bisection search itself is parallelized by probing P target makespans
// concurrently per round, each with a sequential fill. The interval shrinks
// by a factor of about P+1 per round instead of 2, so the number of rounds
// drops from log2(range) to log_{P+1}(range). The two parallelizations are
// complementary: speculative probing wins when tables are small (fill
// parallelism has nothing to chew on) and wastes work when tables are large
// (all but one probe's fill is thrown away).
//
// Correctness does not rely on feasibility being monotone in T (rounding
// changes with T, so in principle a smaller T can be feasible while a larger
// one is not):
//
//   - an infeasible probe T proves OPT > T, because rounded-down jobs
//     needing more than m machines within T implies the original jobs do
//     too, so raising LB to T+1 keeps LB <= OPT;
//   - a feasible probe T yields a concrete schedule with makespan at most
//     (1+eps)T, so lowering UB to T keeps "UB is feasible";
//   - if a feasible probe ever lands below an infeasible one, the feasible
//     construction simply wins: the search settles on it immediately, and
//     its T is below OPT, preserving the (1+eps) guarantee.

// adaptiveFillThreshold is the sigma*|C| work level below which the
// sequential fill beats the level-synchronous parallel fill (the per-level
// barrier costs more than the level's work; see EXPERIMENTS.md fig2/fig3
// analysis and BenchmarkPoolRound).
const adaptiveFillThreshold = 1 << 17

// attemptResult carries one probe's outcome.
type attemptResult struct {
	sp       *split
	tbl      *dp.Table // nil when the probe has no long jobs
	feasible bool
	fill     time.Duration
	auto     dp.AutoStats // level routing, when the adaptive fill ran
}

// runAttempt builds and fills the DP table for target T. With a non-nil
// bpool the fill runs adaptively on the barrier pool (dp.FillAutoCtx); with
// a non-nil pool it runs on the pool's workers (the paper's Parallel DP);
// otherwise it runs sequentially per opts.SeqFill. It touches no shared
// state, so concurrent calls with pool == bpool == nil are safe. The fill
// honors ctx cooperatively: a mid-fill cancellation surfaces as the
// structured cancel error within the fills' check granularity.
func runAttempt(ctx context.Context, in *pcmax.Instance, k int, T pcmax.Time, opts Options, pool *par.Pool, bpool *par.BarrierPool) (attemptResult, error) {
	sp, err := newSplit(in, k, T)
	if err != nil {
		return attemptResult{}, err
	}
	if opts.Sparsify {
		sp.group(opts.groupDelta())
	}
	if len(sp.sizes) == 0 {
		return attemptResult{sp: sp, feasible: true}, nil // no long jobs
	}
	var tbl *dp.Table
	if opts.Sparsify {
		tbl, err = dp.NewSparse(sp.sizes, sp.counts, T, opts.MaxTableEntries, opts.MaxConfigs, opts.Cache, opts.sparseOptions(k))
	} else {
		tbl, err = dp.NewCached(sp.sizes, sp.counts, T, opts.MaxTableEntries, opts.MaxConfigs, opts.Cache)
	}
	if err != nil {
		return attemptResult{}, err
	}
	tbl.PerEntryEnum = opts.PerEntryConfigs
	useParallel := pool != nil
	if useParallel && opts.AdaptiveFill && tbl.Sigma*int64(len(tbl.Configs)) < adaptiveFillThreshold {
		useParallel = false
	}
	t0 := time.Now()
	switch {
	case bpool != nil:
		err = tbl.FillAutoCtx(ctx, bpool)
	case useParallel && opts.Dataflow:
		err = tbl.FillDataflowCtx(ctx, pool.Workers())
	case useParallel:
		err = tbl.FillParallelCtx(ctx, pool, opts.LevelMode, opts.Strategy)
	default:
		switch opts.SeqFill {
		case SeqRecursive:
			err = tbl.FillRecursiveCtx(ctx)
		default:
			err = tbl.FillSequentialCtx(ctx)
		}
	}
	fill := time.Since(t0)
	if err != nil {
		return attemptResult{fill: fill}, err
	}
	opt, err := tbl.OptValue()
	if err != nil {
		return attemptResult{}, err
	}
	return attemptResult{sp: sp, tbl: tbl, feasible: opt <= in.M, fill: fill, auto: tbl.AutoStats}, nil
}

// speculativeBisection narrows [lbT, ubT] with opts.SpeculativeProbes
// concurrent probes per round and returns the final split/table at the
// converged target (which it also returns). The caller re-attempts the
// converged T itself when the returned split does not match.
func speculativeBisection(ctx context.Context, in *pcmax.Instance, k int, lbT, ubT pcmax.Time, opts Options, stats *Stats) (*split, *dp.Table, pcmax.Time, error) {
	probes := opts.SpeculativeProbes
	var (
		finalSplit *split
		finalTable *dp.Table
	)
	for lbT < ubT {
		if err := cancel.Check(ctx); err != nil {
			return nil, nil, 0, err
		}
		stats.Iterations++
		targets := probeTargets(lbT, ubT, probes)
		results := make([]attemptResult, len(targets))
		errs := make([]error, len(targets))
		var wg sync.WaitGroup
		wg.Add(len(targets))
		for i, T := range targets {
			go func(i int, T pcmax.Time) {
				defer wg.Done()
				results[i], errs[i] = runAttempt(ctx, in, k, T, opts, nil, nil)
			}(i, T)
		}
		wg.Wait()
		for i := range errs {
			if errs[i] != nil {
				return nil, nil, 0, errs[i]
			}
			stats.FillTime += results[i].fill
			if results[i].tbl != nil {
				stats.TotalEntriesFilled += results[i].tbl.Sigma
			}
		}
		// Narrow: the smallest feasible probe bounds UB; infeasible probes
		// below it raise LB.
		newLB, newUB := lbT, ubT
		feasibleAt := -1
		for i, T := range targets {
			if results[i].feasible {
				if T < newUB {
					newUB = T
					feasibleAt = i
				}
			}
		}
		for i, T := range targets {
			if !results[i].feasible && T+1 > newLB && T+1 <= newUB {
				newLB = T + 1
			}
		}
		if feasibleAt >= 0 {
			finalSplit, finalTable = results[feasibleAt].sp, results[feasibleAt].tbl
		}
		if newLB == lbT && newUB == ubT {
			// Every probe landed feasible above ubT-1 impossible by
			// construction; this can only mean a single repeated target.
			// Fall back to a plain halving step to guarantee progress.
			newLB = lbT + 1
		}
		lbT, ubT = newLB, newUB
	}
	return finalSplit, finalTable, lbT, nil
}

// probeTargets picks up to n distinct targets strictly inside [lo, hi),
// spaced evenly, always including the midpoint.
func probeTargets(lo, hi pcmax.Time, n int) []pcmax.Time {
	width := hi - lo
	seen := make(map[pcmax.Time]bool, n)
	var out []pcmax.Time
	add := func(t pcmax.Time) {
		if t >= lo && t < hi && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	add(lo + width/2)
	for i := 1; i <= n; i++ {
		add(lo + width*pcmax.Time(i)/pcmax.Time(n+1))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
