package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestSpeculativeMatchesSequentialOnPaperFamilies(t *testing.T) {
	for _, fam := range workload.SpeedupFamilies {
		in := workload.MustGenerate(workload.Spec{Family: fam, M: 10, N: 50, Seed: 19})
		ref, refStats, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		for _, probes := range []int{2, 4, 8} {
			got, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3, SpeculativeProbes: probes})
			if err != nil {
				t.Fatalf("%v probes=%d: %v", fam, probes, err)
			}
			if got.Makespan(in) != ref.Makespan(in) {
				t.Fatalf("%v probes=%d: makespan %d != %d", fam, probes, got.Makespan(in), ref.Makespan(in))
			}
			if st.Iterations > refStats.Iterations {
				t.Fatalf("%v probes=%d: %d rounds, sequential needed %d",
					fam, probes, st.Iterations, refStats.Iterations)
			}
		}
	}
}

func TestSpeculativeFewerRounds(t *testing.T) {
	// With a wide [LB, UB] interval, 8 probes should cut rounds roughly to
	// log_9 instead of log_2.
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10n, M: 10, N: 50, Seed: 5})
	_, seq, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	_, spec, err := Solve(context.Background(), in, Options{Epsilon: 0.3, SpeculativeProbes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Iterations >= 6 && spec.Iterations*2 > seq.Iterations {
		t.Fatalf("speculative rounds %d vs sequential %d: expected a clear reduction",
			spec.Iterations, seq.Iterations)
	}
}

func TestSpeculativeGuaranteeProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, probesRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		probes := int(probesRaw%7) + 2
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: m, Times: times}
		sched, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, SpeculativeProbes: probes})
		if err != nil || sched.Validate(in) != nil {
			return false
		}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		return float64(sched.Makespan(in)) <= 1.3*float64(opt.Makespan(in))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeTargets(t *testing.T) {
	ts := probeTargets(10, 20, 4)
	if len(ts) == 0 {
		t.Fatal("no targets")
	}
	seen := map[pcmax.Time]bool{}
	for _, x := range ts {
		if x < 10 || x >= 20 {
			t.Fatalf("target %d outside [10,20)", x)
		}
		if seen[x] {
			t.Fatalf("duplicate target %d", x)
		}
		seen[x] = true
	}
	if !seen[15] {
		t.Fatalf("midpoint missing from %v", ts)
	}
	// Sorted ascending.
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("targets not sorted: %v", ts)
		}
	}
}

func TestProbeTargetsNarrowInterval(t *testing.T) {
	// Width 1: the only legal probe is lo itself.
	ts := probeTargets(7, 8, 8)
	if len(ts) != 1 || ts[0] != 7 {
		t.Fatalf("targets = %v, want [7]", ts)
	}
}
