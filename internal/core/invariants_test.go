package core

import (
	"context"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

// TestLongJobLoadBound checks the theoretical backbone of the approximation
// proof: on the final schedule, every machine's load from long jobs alone is
// at most T + (jobs on machine)*u, because each rounded job fits within T
// and un-rounding adds less than u per job. Combined with the short-job
// argument this yields the (1+eps) guarantee.
func TestLongJobLoadBound(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 60; trial++ {
		m := 2 + src.Intn(6)
		n := 5 + src.Intn(40)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(200))
		}
		in := &pcmax.Instance{M: m, Times: times}
		sched, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		T, u, k := st.FinalT, st.RoundingUnit, pcmax.Time(st.K)
		// Identify long jobs the same way the final split did (t >= k*u,
		// the integer-robust threshold of round.go).
		longLoads := make([]pcmax.Time, m)
		longCount := make([]pcmax.Time, m)
		for j, tt := range in.Times {
			if tt >= k*u {
				mi := sched.Assignment[j]
				longLoads[mi] += tt
				longCount[mi]++
			}
		}
		for mi := range longLoads {
			if longCount[mi] > k {
				t.Fatalf("trial %d machine %d: %d long jobs exceed k=%d — the (1+1/k)T invariant is broken",
					trial, mi, longCount[mi], k)
			}
			if longLoads[mi] > T+longCount[mi]*u {
				t.Fatalf("trial %d machine %d: long-job load %d > T=%d + %d*u(%d)",
					trial, mi, longLoads[mi], T, longCount[mi], u)
			}
		}
	}
}

// TestUnroundingIsDeterministic runs the same solve twice and demands
// identical assignments, not just identical makespans: every tie-break in
// the pipeline (bucket order, reconstruction, heap) must be stable.
func TestUnroundingIsDeterministic(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 31})
	a, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Assignment {
		if a.Assignment[j] != b.Assignment[j] {
			t.Fatalf("job %d assigned to %d then %d", j, a.Assignment[j], b.Assignment[j])
		}
	}
}

// TestParallelUnroundingIdenticalAssignments demands that the parallel DP
// produce not only the same makespan but the very same assignment as the
// sequential DP: both fills compute identical OPT tables and the
// reconstruction is deterministic.
func TestParallelUnroundingIdenticalAssignments(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.Um_2m1, M: 10, N: 21, Seed: 8})
	seq, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for j := range seq.Assignment {
		if seq.Assignment[j] != parallel.Assignment[j] {
			t.Fatalf("job %d: sequential machine %d, parallel machine %d",
				j, seq.Assignment[j], parallel.Assignment[j])
		}
	}
}

// TestMachinesUsedNeverExceedsNeeded checks that the long-job schedule uses
// exactly OPT(N) machines and leaves the rest for short jobs.
func TestMachinesUsedNeverExceedsNeeded(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10n, M: 10, N: 30, Seed: 3})
	_, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if st.MachinesUsed > in.M {
		t.Fatalf("used %d machines of %d", st.MachinesUsed, in.M)
	}
	if st.LongJobs > 0 && st.MachinesUsed == 0 {
		t.Fatal("long jobs exist but no machines were used")
	}
}

// TestSpeculativeWithProfileDoesNotCrash guards the interaction of two
// options that use the attempt machinery differently.
func TestSpeculativeWithPaperFaithful(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 6, N: 30, Seed: 17})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Solve(context.Background(), in, Options{
		Epsilon: 0.3, SpeculativeProbes: 3,
		PerEntryConfigs: true, SeqFill: SeqRecursive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan(in) != ref.Makespan(in) {
		t.Fatalf("makespan %d != %d", got.Makespan(in), ref.Makespan(in))
	}
}

// TestDataflowFillThroughDriver checks the barrier-free fill end to end.
func TestDataflowFillThroughDriver(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.Um_2m1, M: 10, N: 21, Seed: 23})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4, Dataflow: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref.Assignment {
		if ref.Assignment[j] != got.Assignment[j] {
			t.Fatalf("job %d differs under dataflow fill", j)
		}
	}
}

// TestAdaptiveFillIdenticalResults verifies the adaptive policy never
// changes the computed schedule, only which fill engine ran.
func TestAdaptiveFillIdenticalResults(t *testing.T) {
	for _, spec := range []workload.Spec{
		{Family: workload.U1_100, M: 8, N: 50, Seed: 3},  // small tables: falls back
		{Family: workload.Um_2m1, M: 20, N: 41, Seed: 3}, // large tables: stays parallel
	} {
		in := workload.MustGenerate(spec)
		ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4, AdaptiveFill: true})
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref.Assignment {
			if ref.Assignment[j] != got.Assignment[j] {
				t.Fatalf("%v: job %d differs under adaptive fill", spec.Family, j)
			}
		}
	}
}

// TestIntegerRoundingRegression pins the instance that exposed the
// guarantee violation of the paper's long-job threshold under integer
// arithmetic (see round.go and ALGORITHM.md §2): thirteen U(m,2m-1) jobs on
// six machines with optimum 21, where "long iff t > T/k" at eps=0.5 let
// three jobs of 11 share a machine (makespan 33 > 31.5). With the grid-cut
// threshold the construction stays within the guarantee, fallback or not.
func TestIntegerRoundingRegression(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.Um_2m1, M: 6, N: 13, Seed: 556})
	const opt = 21 // certified by exact.Solve; pinned to keep this test self-contained
	for _, eps := range []float64{0.5, 0.3} {
		sched, _, err := Solve(context.Background(), in, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := float64(sched.Makespan(in)), (1+eps)*opt; got > bound+1e-9 {
			t.Fatalf("eps=%v: makespan %v > %v — the rounding regression is back", eps, got, bound)
		}
	}
}
