package core

import (
	"context"
	"testing"

	"repro/internal/par"
	"repro/internal/workload"
)

// TestAutoFillMatchesSequential checks the AutoFill route end to end: same
// schedule as the sequential reference, and Stats.Auto accounts for every
// anti-diagonal level the bisection filled.
func TestAutoFillMatchesSequential(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 11})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4, AutoFill: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan(in) != ref.Makespan(in) {
		t.Fatalf("AutoFill makespan %d != sequential %d", got.Makespan(in), ref.Makespan(in))
	}
	total := st.Auto.LevelsInline + st.Auto.LevelsFused + st.Auto.LevelsParallel
	if total == 0 {
		t.Fatalf("Stats.Auto empty after an AutoFill solve: %+v", st.Auto)
	}
}

// TestAutoFillExternalBarrierPool reuses one caller-owned barrier pool
// across several solves, mirroring the external Pool contract.
func TestAutoFillExternalBarrierPool(t *testing.T) {
	bp := par.NewBarrierPool(4)
	defer bp.Close()
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 6, N: 40, Seed: 3})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4, AutoFill: true, BarrierPool: bp})
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		if got.Makespan(in) != ref.Makespan(in) {
			t.Fatalf("reuse %d: makespan %d != %d", i, got.Makespan(in), ref.Makespan(in))
		}
		if st.Auto.LevelsInline+st.Auto.LevelsFused+st.Auto.LevelsParallel == 0 {
			t.Fatalf("reuse %d: Stats.Auto empty", i)
		}
	}
	// The caller's pool must survive the solves.
	var n int
	bp.For(1, func(int) { n++ })
	if n != 1 {
		t.Fatal("barrier pool unusable after solves")
	}
}

// TestAutoFillIgnoredWithDataflow pins the precedence: Dataflow keeps its
// dedicated fill even when AutoFill is requested.
func TestAutoFillIgnoredWithDataflow(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10, M: 5, N: 30, Seed: 7})
	ref, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Solve(context.Background(), in, Options{Epsilon: 0.3, Workers: 4, AutoFill: true, Dataflow: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan(in) != ref.Makespan(in) {
		t.Fatalf("makespan %d != %d", got.Makespan(in), ref.Makespan(in))
	}
	if st.Auto.LevelsInline+st.Auto.LevelsFused+st.Auto.LevelsParallel != 0 {
		t.Fatalf("Dataflow solve reported adaptive routing: %+v", st.Auto)
	}
}
