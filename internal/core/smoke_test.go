package core

import (
	"context"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
	"repro/pcmax"
)

// TestSmokePTASAgainstBruteForce cross-checks the full PTAS pipeline
// (bisection, rounding, DP, reconstruction, short jobs) against the
// brute-force optimum on many small random instances, sequential and
// parallel, and checks the (1+eps) guarantee.
func TestSmokePTASAgainstBruteForce(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 120; trial++ {
		m := 1 + src.Intn(4)
		n := 1 + src.Intn(9)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(40))
		}
		in := &pcmax.Instance{M: m, Times: times}
		optSched, err := exact.BruteForce(in)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		opt := optSched.Makespan(in)
		for _, eps := range []float64{0.1, 0.3, 0.5, 1.0} {
			seq, _, err := Solve(context.Background(), in, Options{Epsilon: eps, Workers: 1})
			if err != nil {
				t.Fatalf("trial %d eps=%v: sequential solve: %v", trial, eps, err)
			}
			if err := seq.Validate(in); err != nil {
				t.Fatalf("trial %d eps=%v: invalid schedule: %v", trial, eps, err)
			}
			ms := seq.Makespan(in)
			if float64(ms) > (1+eps)*float64(opt)+1e-9 {
				t.Fatalf("trial %d eps=%v m=%d times=%v: makespan %d > (1+eps)*opt (opt=%d)",
					trial, eps, m, times, ms, opt)
			}
			parSched, _, err := Solve(context.Background(), in, Options{Epsilon: eps, Workers: 4})
			if err != nil {
				t.Fatalf("trial %d eps=%v: parallel solve: %v", trial, eps, err)
			}
			if pm := parSched.Makespan(in); pm != ms {
				t.Fatalf("trial %d eps=%v: parallel makespan %d != sequential %d", trial, eps, pm, ms)
			}
		}
	}
}
