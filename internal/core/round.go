package core

import (
	"fmt"
	"sort"

	"repro/pcmax"
)

// split is the short/long partition and long-job rounding of one bisection
// iteration at target makespan T (paper Algorithm 1, Lines 7-24).
//
// Arithmetic is exact, with one deliberate correction to the paper. The
// paper's real-arithmetic presentation takes jobs with t > T/k as long and
// rounds them down to multiples of T/k^2; its (1+1/k)T bound for the
// long-job schedule needs every rounded size to stay >= T/k, which holds in
// real arithmetic because T/k is itself a multiple of T/k^2. With integer
// rounding unit u = ceil(T/k^2) that divisibility breaks: a job just above
// T/k can round to below T/k (e.g. T=21, k=2: u=6 and t=11 rounds to 6),
// letting one machine hold more than k long jobs and pushing the un-rounded
// load past (1+1/k)T — an observable guarantee violation. The repository
// therefore defines long as t >= k*u, which restores the invariant exactly:
//
//   - every long job's class index i = floor(t/u) satisfies k <= i <= k^2,
//     so every rounded size is >= k*u >= T/k and a machine fits at most k
//     long jobs within T;
//   - un-rounding adds less than u per job, at most k*u - k <= T/k + k per
//     machine, keeping the long-job schedule within (1+1/k)T + k;
//   - jobs in the reclassified band (T/k, k*u) are short; they are at most
//     k*u - 1 <= T/k + k long, which keeps the short-job LPT argument intact
//     up to the same +k additive slop (absorbed by the driver's LPT
//     fallback; see core.Solve).
type split struct {
	k int
	T pcmax.Time
	u pcmax.Time // rounding unit ceil(T/k^2)

	short []int // indices of short jobs, in input order

	// Per distinct rounded size, ascending by size:
	sizes   []pcmax.Time // rounded size i*u
	counts  []int        // n_i
	buckets [][]int      // original long-job indices of the class
}

// newSplit partitions and rounds the instance's jobs for target T.
func newSplit(in *pcmax.Instance, k int, T pcmax.Time) (*split, error) {
	k2 := pcmax.Time(k) * pcmax.Time(k)
	sp := &split{
		k: k,
		T: T,
		u: (T + k2 - 1) / k2,
	}
	threshold := pcmax.Time(k) * sp.u
	byClass := make(map[pcmax.Time][]int)
	for j, t := range in.Times {
		if t < threshold {
			sp.short = append(sp.short, j)
			continue
		}
		if t > T {
			return nil, fmt.Errorf("core: internal error: job %d (t=%d) exceeds target T=%d", j, t, T)
		}
		i := t / sp.u
		if i < pcmax.Time(k) || i > k2 {
			return nil, fmt.Errorf("core: internal error: job %d (t=%d) rounds to class %d outside [%d,%d] at T=%d u=%d",
				j, t, i, k, k2, T, sp.u)
		}
		byClass[i] = append(byClass[i], j)
	}
	classes := make([]pcmax.Time, 0, len(byClass))
	for i := range byClass {
		classes = append(classes, i)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
	for _, i := range classes {
		sp.sizes = append(sp.sizes, i*sp.u)
		sp.counts = append(sp.counts, len(byClass[i]))
		sp.buckets = append(sp.buckets, byClass[i])
	}
	return sp, nil
}

// RoundedClasses exposes the long-job rounding of one bisection probe: the
// distinct rounded sizes and per-class counts the DP table would be built
// over at target makespan T with k = ceil(1/eps). Benchmark harnesses
// (bench_test.go, cmd/schedbench) use it to isolate the DP fill a solve
// performs at its converged target.
func RoundedClasses(in *pcmax.Instance, k int, T pcmax.Time) (sizes []pcmax.Time, counts []int, err error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k=%d < 1", k)
	}
	sp, err := newSplit(in, k, T)
	if err != nil {
		return nil, nil, err
	}
	return sp.sizes, sp.counts, nil
}

// SparseRoundedClasses is RoundedClasses for the sparse pipeline: the size
// classes after geometric grouping with band delta (what a sparse solve's DP
// table is built over at target T). Benchmark harnesses use it to isolate
// the sparse fill; delta <= 0 degenerates to RoundedClasses.
func SparseRoundedClasses(in *pcmax.Instance, k int, T pcmax.Time, delta float64) (sizes []pcmax.Time, counts []int, err error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k=%d < 1", k)
	}
	sp, err := newSplit(in, k, T)
	if err != nil {
		return nil, nil, err
	}
	sp.group(delta)
	return sp.sizes, sp.counts, nil
}

// group merges consecutive rounded classes whose sizes lie within (1+delta)
// of the group's smallest member, rounding every member down to that size —
// the geometric grouping of the sparsification literature (Jansen–Klein–
// Verschae Section 3), applied on top of the paper's arithmetic rounding.
// Rounding down preserves completeness (any packing of the true sizes packs
// the grouped ones), so a grouped DP can only be more often feasible at a
// given T; the under-estimation is bounded by delta per job and is enforced
// a posteriori by the driver's quality gate (core.Solve certifies the
// converged target and measures the construction before returning it).
// Merged classes pool their unrounding buckets, so reconstruction is
// unchanged. delta <= 0 is a no-op.
func (sp *split) group(delta float64) {
	if delta <= 0 || len(sp.sizes) < 2 {
		return
	}
	var (
		sizes   []pcmax.Time
		counts  []int
		buckets [][]int
	)
	i := 0
	for i < len(sp.sizes) {
		base := sp.sizes[i]
		limit := pcmax.Time(float64(base) * (1 + delta))
		count := 0
		var bucket []int
		for i < len(sp.sizes) && sp.sizes[i] <= limit {
			count += sp.counts[i]
			bucket = append(bucket, sp.buckets[i]...)
			i++
		}
		sizes = append(sizes, base)
		counts = append(counts, count)
		buckets = append(buckets, bucket)
	}
	sp.sizes, sp.counts, sp.buckets = sizes, counts, buckets
}

// longJobs returns the number of long jobs.
func (sp *split) longJobs() int {
	n := 0
	for _, c := range sp.counts {
		n += c
	}
	return n
}
