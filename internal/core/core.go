// Package core implements the paper's contribution: the Hochbaum–Shmoys
// PTAS for P||Cmax (Algorithm 1) with either the sequential DP (Algorithm 2)
// or the Parallel DP (Algorithm 3) filling the dynamic-programming table.
//
// The driver performs a bisection search for the smallest target makespan T
// in [LB, UB] for which the rounded long jobs fit on at most m machines,
// reconstructs the long-job schedule at the final T, replaces rounded jobs
// by the original ones, and packs the short jobs greedily (LPT by default,
// the paper's practical improvement; LS reproduces the original
// Hochbaum–Shmoys rule). With Workers > 1 the DP table is filled level by
// level over its anti-diagonals by a pool of goroutines, which is the
// paper's shared-memory parallelization.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cancel"
	"repro/internal/conf"
	"repro/internal/dp"
	"repro/internal/lb"
	"repro/internal/listsched"
	"repro/internal/par"
	"repro/internal/simsched"
	"repro/pcmax"
)

// ShortRule selects how short jobs extend the long-job schedule.
type ShortRule int

const (
	// ShortLPT places short jobs in non-increasing size order (paper).
	ShortLPT ShortRule = iota
	// ShortLS places short jobs in input order (original Hochbaum–Shmoys).
	ShortLS
)

// String names the rule.
func (r ShortRule) String() string {
	switch r {
	case ShortLPT:
		return "LPT"
	case ShortLS:
		return "LS"
	default:
		return fmt.Sprintf("ShortRule(%d)", int(r))
	}
}

// SeqFill selects the sequential DP fill variant used when Workers == 1.
type SeqFill int

const (
	// SeqBottomUp sweeps the table in index order (fastest).
	SeqBottomUp SeqFill = iota
	// SeqRecursive is the paper-faithful memoized recursion (Algorithm 2).
	SeqRecursive
)

// String names the fill variant.
func (f SeqFill) String() string {
	switch f {
	case SeqBottomUp:
		return "bottom-up"
	case SeqRecursive:
		return "recursive"
	default:
		return fmt.Sprintf("SeqFill(%d)", int(f))
	}
}

// Options configures one Solve call. The zero value is not valid because
// Epsilon must be positive; DefaultOptions gives the paper's configuration.
type Options struct {
	// Epsilon is the relative error; the algorithm is a (1+Epsilon)
	// approximation. The paper's experiments use 0.3.
	Epsilon float64
	// Workers is the number of DP workers P. 1 runs the sequential PTAS;
	// values below 1 select GOMAXPROCS.
	Workers int
	// Strategy schedules level entries onto workers (default RoundRobin,
	// the paper's round-robin assignment).
	Strategy par.Strategy
	// LevelMode selects anti-diagonal discovery (default LevelBuckets;
	// LevelScan is the paper-faithful full scan per level).
	LevelMode dp.LevelMode
	// ShortRule selects the short-job placement rule (default ShortLPT).
	ShortRule ShortRule
	// SeqFill selects the sequential fill variant (default SeqBottomUp).
	SeqFill SeqFill
	// PerEntryConfigs re-enumerates each table entry's configuration set
	// instead of filtering a shared list (paper-faithful Algorithm 3
	// Line 17; slower, for fidelity runs and ablations).
	PerEntryConfigs bool
	// SpeculativeProbes, when > 1, parallelizes the bisection itself: each
	// round evaluates that many target makespans T concurrently (each with
	// a sequential DP fill) and narrows the interval by all results. This
	// is an extension beyond the paper, which parallelizes within one DP
	// fill; see speculative.go. Values <= 1 use the paper's bisection.
	SpeculativeProbes int
	// Dataflow replaces the paper's level-synchronous parallel fill with
	// the barrier-free dependency-counter fill (dp.FillDataflow) when
	// Workers != 1. An extension/ablation; results are identical.
	Dataflow bool
	// AdaptiveFill lets the driver fall back to the sequential fill for
	// tables too small to amortize per-level barriers, even when
	// Workers > 1. The EXPERIMENTS.md ablations show paper-scale tables
	// (sigma < ~10^4) are barrier-bound; this is the practical default a
	// production caller wants (the solver facade enables it).
	AdaptiveFill bool
	// AutoFill routes parallel fills through dp.FillAutoCtx on a persistent
	// barrier pool instead of the per-level Pool dispatch: narrow levels run
	// inline, runs of mid-width levels fuse into one dispatch, and only wide
	// levels fan out. Ignored when Workers == 1 or Dataflow is set. Stats.Auto
	// reports how levels were routed. The solver facade enables it by default.
	AutoFill bool
	// TimeLimit aborts the solve with ErrTimeLimit when exceeded. It is a
	// back-compat shim over context deadlines: Solve installs it via
	// context.WithTimeout on the caller's ctx, so the abort lands inside a
	// running DP fill (within the fills' cooperative-check granularity), not
	// just between bisection probes. <= 0 disables. New callers should pass
	// a context with a deadline instead.
	TimeLimit time.Duration
	// LPTFallback returns plain LPT's schedule when it beats the PTAS
	// construction. It never hurts, and it caps the guarantee at LPT's
	// 4/3 - 1/(3m), which absorbs the +k additive slop of integer rounding
	// (round.go) whenever eps >= 1/3. The paper's algorithm has no such
	// fallback (its Table III shows LPT winning by up to 0.13), so the
	// experiment harness leaves this off; the solver facade enables it.
	LPTFallback bool
	// MaxTableEntries caps the DP table size; <= 0 uses dp.DefaultMaxEntries.
	MaxTableEntries int64
	// MaxConfigs caps configuration enumeration; <= 0 uses the conf default.
	MaxConfigs int
	// Pool optionally supplies an externally managed worker pool, reused
	// across Solve calls. When nil and Workers != 1, Solve creates and
	// closes its own pool.
	Pool *par.Pool
	// BarrierPool optionally supplies an externally managed barrier pool for
	// AutoFill, reused across Solve calls. When nil and AutoFill applies,
	// Solve creates and closes its own.
	BarrierPool *par.BarrierPool
	// Sparsify enables the sparsified DP pipeline (the ptas-sparse registry
	// algorithm): geometric grouping of the rounded size classes (see
	// split.group) shrinks the table's index space, and the sparse
	// configuration enumerator (conf.EnumerateSparse: support cap plus
	// dominance pruning) shrinks the candidate-move set. Both shrink the
	// per-probe DP cost; the (1+eps) guarantee is preserved a posteriori:
	// the driver certifies the converged target against the faithful
	// enumeration and measures the constructed makespan, falling back to the
	// faithful pipeline when either check fails (Stats.SparseCertified,
	// Stats.SparseFallback).
	Sparsify bool
	// SparseOpts overrides the sparse enumerator's parameters. The zero
	// value selects conf.DefaultSparseOptions(k). Ignored unless Sparsify.
	SparseOpts conf.SparseOptions
	// GroupDelta is the geometric grouping band: consecutive rounded classes
	// within a (1+GroupDelta) factor merge, rounded down to the group floor.
	// 0 selects the default (Epsilon); negative disables grouping. Ignored
	// unless Sparsify.
	GroupDelta float64
	// Cache optionally supplies a DP cache shared across Solve calls, so
	// repeated solves over similar instances reuse configuration
	// enumerations and level-bucket indexes. When nil, Solve creates a
	// per-call cache — the bisection still reuses work across its own
	// probes (the converged target is always attempted twice, and counts
	// vectors repeat between probes). Stats.Cache reports this solve's own
	// traffic even on a shared cache (a before/after snapshot delta).
	Cache *dp.Cache
	// WarmBracket optionally tightens the bisection's initial interval with
	// knowledge from a previous solve of a related instance (see
	// solver.Session). Its LB must be a certified lower bound on this
	// instance's OPT and its UB the makespan of some valid schedule of this
	// instance; Solve intersects it with the fresh [LB0, UB0] bounds and
	// ignores it entirely when the intersection is empty (an inconsistent
	// bracket would break the bisection invariants, and emptiness means one
	// side was wrong). Stats.WarmStart reports whether it was applied.
	WarmBracket *Bracket
	// Profile, when non-nil, receives the work profile of every DP fill
	// (anti-diagonal level sizes, configuration-set sizes and total fill
	// time) for the simulated-multicore model in package simsched. Profiles
	// intended for calibration should come from Workers == 1 runs.
	Profile *simsched.Profile
}

// DefaultOptions returns the paper's configuration: eps = 0.3 (k = 4),
// sequential execution, LPT short-job rule.
func DefaultOptions() Options {
	return Options{Epsilon: 0.3, Workers: 1}
}

// Bracket is a [LB, UB] interval bracketing the optimal makespan, used to
// warm-start the bisection (Options.WarmBracket). LB must be a certified
// lower bound on OPT (so the converged target retains its OPT-witness
// meaning) and UB must be achieved by some valid schedule of the instance
// (so the probe at UB is guaranteed feasible).
type Bracket struct {
	LB, UB pcmax.Time
}

// groupDelta resolves the effective geometric-grouping band: 0 unless
// Sparsify, Epsilon when GroupDelta is unset, GroupDelta itself otherwise
// (negative values disable grouping).
func (o Options) groupDelta() float64 {
	if !o.Sparsify {
		return 0
	}
	if o.GroupDelta != 0 {
		if o.GroupDelta < 0 {
			return 0
		}
		return o.GroupDelta
	}
	return o.Epsilon
}

// sparseOptions resolves the effective sparse-enumerator parameters for k.
func (o Options) sparseOptions(k int) conf.SparseOptions {
	if o.SparseOpts == (conf.SparseOptions{}) {
		return conf.DefaultSparseOptions(k)
	}
	return o.SparseOpts
}

// Stats reports what one Solve call did.
type Stats struct {
	K          int // ceil(1/eps)
	Iterations int // bisection iterations
	// LB0 and UB0 are the initial bisection brackets: the paper's equations
	// (1)-(2), tightened by the bounds an LPT run yields (lb.FromLPT below,
	// and LPT's makespan as the upper bracket). Both still bracket OPT.
	LB0, UB0 pcmax.Time
	FinalT   pcmax.Time // converged target makespan

	// At the final T:
	LongJobs, ShortJobs int
	RoundingUnit        pcmax.Time
	SizeClasses         int
	TableEntries        int64 // sigma of the final table
	Configs             int   // machine configurations of the final table
	MachinesUsed        int   // machines used by the long-job schedule

	// Across all bisection iterations:
	TotalEntriesFilled int64
	// FillTime is the wall-clock time spent inside DP table fills.
	FillTime time.Duration
	// Auto accumulates, over all bisection probes, how the adaptive fill
	// routed anti-diagonal levels (inline / fused / dedicated parallel
	// rounds). All-zero unless Options.AutoFill applied.
	Auto dp.AutoStats
	// UsedLPTFallback reports that plain LPT beat the PTAS construction on
	// this instance and its schedule was returned instead. The fallback
	// costs O(n log n), never hurts, and caps the guarantee at LPT's
	// 4/3 - 1/(3m) — which absorbs the +k additive slop of integer rounding
	// (see round.go) whenever eps >= 1/3.
	UsedLPTFallback bool
	// WarmStart reports that Options.WarmBracket was supplied and consistent
	// with the fresh bounds, so the bisection started from the intersected
	// (tighter) interval. LB0/UB0 hold the intersected bracket.
	WarmStart bool
	// Cache reports DP-cache traffic for the solve (enumeration and
	// level-index reuse across bisection probes).
	Cache dp.CacheStats

	// Sparse-pipeline observability (Options.Sparsify / the ptas-sparse
	// registry algorithm); all zero on faithful runs.

	// ConfigsEnumerated counts the feasible configurations the sparse
	// enumerator visited at the converged target (after grouping, before
	// pruning); ConfigsAfterSparsification counts the ones it retained —
	// their ratio is the configuration-set reduction of the final table.
	ConfigsEnumerated          int
	ConfigsAfterSparsification int
	// SparseCertified reports that the converged target T was proven to be
	// at most OPT — either T equaled the initial lower bracket, or a faithful
	// DP at T-1 was infeasible (infeasibility of rounded-down jobs is an OPT
	// witness) — so the returned schedule carries the full (1+eps)
	// guarantee. False only when the faithful verification table exceeded
	// the entry budget: the schedule is then valid and gate-checked against
	// (1+eps)T, but T <= OPT is unproven.
	SparseCertified bool
	// SparseFallback reports that a sparse run failed certification or the
	// (1+eps)T quality gate and the result came from a faithful re-solve
	// (FillTime then includes the abandoned sparse attempt).
	SparseFallback bool
}

// Typed failures.
var (
	ErrBadEpsilon      = errors.New("core: epsilon must be positive")
	ErrEpsilonTooSmall = errors.New("core: epsilon too small (k exceeds limit)")
	ErrInternal        = errors.New("core: internal invariant violated")
)

// ErrTimeLimit is a deprecated alias for cancel.ErrDeadline, kept so
// pre-context callers testing errors.Is(err, core.ErrTimeLimit) keep working
// now that TimeLimit is a context-deadline shim. It also matches
// cancel.ErrCanceled (a deadline is one kind of cancellation).
var ErrTimeLimit = cancel.ErrDeadline

// maxK bounds k = ceil(1/eps); beyond this the DP table cannot possibly fit
// any entry budget, so fail fast with a clear error.
const maxK = 1 << 20

// KFor returns k = ceil(1/eps) with a tiny slack so that eps values like
// 1.0/3.0 map to k = 3 despite floating-point rounding.
func KFor(eps float64) (int, error) {
	if eps <= 0 || math.IsNaN(eps) {
		return 0, fmt.Errorf("%w (eps=%v)", ErrBadEpsilon, eps)
	}
	k := int(math.Ceil(1/eps - 1e-9))
	if k < 1 {
		k = 1
	}
	if k > maxK {
		return 0, fmt.Errorf("%w (eps=%v gives k=%d > %d)", ErrEpsilonTooSmall, eps, k, maxK)
	}
	return k, nil
}

// Solve runs the (parallel) PTAS on the instance and returns the schedule
// and run statistics.
//
// Cancellation: when ctx dies (deadline, explicit cancel, parent teardown)
// the solve aborts cooperatively — inside a running DP fill, not just
// between probes — and degrades gracefully: it returns plain LPT's schedule
// (non-nil, valid, just without the PTAS guarantee), the partial Stats
// accumulated so far, and a *cancel.Error matching cancel.ErrCanceled (and
// cancel.ErrDeadline when a deadline caused it) that carries the iteration
// and entry counts at interruption time. A nil ctx is treated as
// context.Background().
func Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, *Stats, error) {
	if ctx == nil {
		//lint:ignore ctxfirst canonical nil-ctx normalization at the API boundary, not a minted root for new work
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	k, err := KFor(opts.Epsilon)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{K: k}
	n, m := in.N(), in.M
	if n == 0 {
		return pcmax.NewSchedule(m, 0), stats, nil
	}

	// Paper Lines 2-3: bounds on the optimal makespan — tightened by an LPT
	// run ("LPT revisited": inverting LPT's approximation guarantees turns
	// its makespan W into a lower bound, and W itself is an upper bound that
	// is never worse than equation (2)). The schedule is kept for the
	// LPT-fallback comparison and the graceful-degradation path, so the
	// tightening costs one O(n log n) pass.
	lptSched := listsched.LPT(in)
	lptMS := lptSched.Makespan(in)
	lbT := in.LowerBound()
	if b := lb.FromLPT(in, lptSched); b > lbT {
		lbT = b
	}
	ubT := in.UpperBound()
	if lptMS < ubT {
		ubT = lptMS
	}
	// A warm bracket (Options.WarmBracket) narrows the interval further when
	// it is consistent with the fresh bounds. Intersecting keeps both
	// invariants intact — the warm LB is certified <= OPT by contract, the
	// warm UB is some valid schedule's makespan (>= OPT, hence feasible) —
	// and an empty intersection means the caller's bracket was wrong for
	// this instance, so it is ignored wholesale rather than half-applied.
	if wb := opts.WarmBracket; wb != nil {
		wlb, wub := lbT, ubT
		if wb.LB > wlb {
			wlb = wb.LB
		}
		if wb.UB < wub {
			wub = wb.UB
		}
		if wlb <= wub {
			lbT, ubT = wlb, wub
			stats.WarmStart = true
		}
	}
	stats.LB0, stats.UB0 = lbT, ubT

	var (
		pool  *par.Pool
		bpool *par.BarrierPool
	)
	workers := par.Normalize(opts.Workers)
	if workers > 1 {
		if opts.AutoFill && !opts.Dataflow {
			bpool = opts.BarrierPool
			if bpool == nil {
				bpool = par.NewBarrierPool(workers)
				defer bpool.Close()
			}
		} else {
			pool = opts.Pool
			if pool == nil {
				pool = par.NewPool(workers)
				defer pool.Close()
			}
		}
	}

	// Every probe of the bisection shares one DP cache: the converged target
	// is always attempted twice, counts vectors repeat across probes, and a
	// caller-supplied cache extends the reuse across Solve calls.
	if opts.Cache == nil {
		opts.Cache = dp.NewCache()
	}
	// Report this solve's own cache traffic: on a caller-shared cache the
	// lifetime counters keep growing across solves, so snapshot them here
	// and store the delta on the way out.
	cacheBefore := opts.Cache.Stats()
	defer func() { stats.Cache = opts.Cache.Stats().Sub(cacheBefore) }()

	// The legacy TimeLimit option becomes a context deadline, so the DP
	// fills' cooperative checks honor it mid-fill.
	ctx, cancelTL := cancel.WithTimeout(ctx, opts.TimeLimit)
	defer cancelTL()

	// degrade converts a cancellation into the graceful-fallback result:
	// plain LPT's schedule (valid, no PTAS guarantee), the partial stats,
	// and the structured error stamped with the progress made. Any other
	// error passes through with no schedule.
	degrade := func(err error) (*pcmax.Schedule, *Stats, error) {
		var cerr *cancel.Error
		if !errors.As(err, &cerr) {
			return nil, nil, err
		}
		cerr.Iterations = stats.Iterations
		cerr.EntriesFilled += stats.TotalEntriesFilled
		stats.UsedLPTFallback = true
		return lptSched, stats, err
	}

	// attempt builds and fills the DP table for target T and reports whether
	// the rounded long jobs fit on at most m machines. The table and split
	// are returned for reuse when T turns out to be the final target.
	attempt := func(T pcmax.Time) (*split, *dp.Table, bool, error) {
		if err := cancel.Check(ctx); err != nil {
			return nil, nil, false, err
		}
		res, err := runAttempt(ctx, in, k, T, opts, pool, bpool)
		if err != nil {
			return nil, nil, false, err
		}
		stats.FillTime += res.fill
		stats.Auto.LevelsInline += res.auto.LevelsInline
		stats.Auto.LevelsFused += res.auto.LevelsFused
		stats.Auto.LevelsParallel += res.auto.LevelsParallel
		if res.tbl != nil {
			stats.TotalEntriesFilled += res.tbl.Sigma
			if opts.Profile != nil {
				opts.Profile.Levels = append(opts.Profile.Levels, dp.LevelSizes(res.sp.counts))
				opts.Profile.Configs = append(opts.Profile.Configs, len(res.tbl.Configs))
				opts.Profile.SeqFill = stats.FillTime
			}
		}
		return res.sp, res.tbl, res.feasible, nil
	}

	// Paper Lines 5-30: bisection search on T (optionally probing several
	// targets concurrently — see speculative.go).
	var (
		finalSplit *split
		finalTable *dp.Table
	)
	if opts.SpeculativeProbes > 1 {
		sp, tbl, T, err := speculativeBisection(ctx, in, k, lbT, ubT, opts, stats)
		if err != nil {
			return degrade(err)
		}
		finalSplit, finalTable = sp, tbl
		lbT = T
	} else {
		for lbT < ubT {
			stats.Iterations++
			T := lbT + (ubT-lbT)/2
			sp, tbl, ok, err := attempt(T)
			if err != nil {
				return degrade(err)
			}
			if ok {
				ubT = T
				finalSplit, finalTable = sp, tbl
			} else {
				lbT = T + 1
			}
		}
	}
	T := lbT
	stats.FinalT = T
	if finalSplit == nil || finalSplit.T != T {
		// The converged T was never attempted (e.g. LB == UB initially, or
		// the last feasible probe was at a larger T). Attempt it now; it is
		// feasible because every T >= OPT is.
		sp, tbl, ok, err := attempt(T)
		if err != nil {
			return degrade(err)
		}
		if !ok {
			if opts.Sparsify {
				// Sparse feasibility is not monotone in T the way faithful
				// feasibility is: pruning only removes configurations and
				// grouping shifts with T's rounding unit, so the bisection can
				// converge on a target whose own sparse DP is infeasible (e.g.
				// when no probe ever succeeded and T is the initial upper
				// bracket). Over-pruning is a detected condition, not an
				// invariant violation: re-solve faithfully.
				return sparseFaithfulFallback(ctx, in, opts, stats)
			}
			return nil, nil, fmt.Errorf("%w: converged T=%d is infeasible", ErrInternal, T)
		}
		finalSplit, finalTable = sp, tbl
	}
	stats.LongJobs = finalSplit.longJobs()
	stats.ShortJobs = len(finalSplit.short)
	stats.RoundingUnit = finalSplit.u
	stats.SizeClasses = len(finalSplit.sizes)

	// Paper Lines 31-40: reconstruct the long-job schedule and replace the
	// rounded jobs with the original ones.
	sched := pcmax.NewSchedule(m, n)
	if finalTable != nil {
		stats.TableEntries = finalTable.Sigma
		stats.Configs = len(finalTable.Configs)
		machines, err := finalTable.Reconstruct()
		if err != nil {
			return nil, nil, err
		}
		if len(machines) > m {
			return nil, nil, fmt.Errorf("%w: reconstruction used %d machines for m=%d", ErrInternal, len(machines), m)
		}
		stats.MachinesUsed = len(machines)
		remaining := make([][]int, len(finalSplit.buckets))
		for c := range remaining {
			remaining[c] = finalSplit.buckets[c]
		}
		for r, cfg := range machines {
			for c, cnt := range cfg {
				for x := int32(0); x < cnt; x++ {
					if len(remaining[c]) == 0 {
						return nil, nil, fmt.Errorf("%w: class %d exhausted during unrounding", ErrInternal, c)
					}
					j := remaining[c][0]
					remaining[c] = remaining[c][1:]
					sched.Assignment[j] = r
				}
			}
		}
		for c := range remaining {
			if len(remaining[c]) != 0 {
				return nil, nil, fmt.Errorf("%w: %d long jobs of class %d left unscheduled", ErrInternal, len(remaining[c]), c)
			}
		}
	}

	// Paper Lines 41-51: extend the schedule with the short jobs.
	order := append([]int(nil), finalSplit.short...)
	if opts.ShortRule == ShortLPT {
		sortJobsDesc(in, order)
	}
	listsched.AssignGreedy(in, sched, order)

	if err := sched.Validate(in); err != nil {
		return nil, nil, fmt.Errorf("%w: produced invalid schedule: %v", ErrInternal, err)
	}

	// Optionally return the better of the construction and plain LPT.
	// Deterministic (strict improvement only), guarantee-preserving in both
	// directions.
	if opts.LPTFallback {
		if lptMS < sched.Makespan(in) {
			sched = lptSched
			stats.UsedLPTFallback = true
		}
	}

	// Sparse mode surrenders per-probe exactness (grouping under-estimates
	// sizes, pruning drops configurations), so the (1+eps) guarantee is
	// re-established a posteriori before returning; see sparseVerify.
	if opts.Sparsify {
		if finalTable != nil {
			stats.ConfigsEnumerated = finalTable.SparseStats.Enumerated
			stats.ConfigsAfterSparsification = finalTable.SparseStats.Retained
		}
		fallback, err := sparseVerify(ctx, in, k, T, sched, opts, stats, pool, bpool)
		if err != nil {
			return degrade(err)
		}
		if fallback {
			return sparseFaithfulFallback(ctx, in, opts, stats)
		}
	}
	return sched, stats, nil
}

// sparseFaithfulFallback transparently re-solves the instance with the
// faithful pipeline after a sparse run failed verification (certification,
// the quality gate, or outright over-pruned infeasibility at the converged
// target). The returned stats are the faithful solve's, flagged with
// SparseFallback and carrying the abandoned sparse attempt's enumeration
// counts and fill time.
func sparseFaithfulFallback(ctx context.Context, in *pcmax.Instance, opts Options, stats *Stats) (*pcmax.Schedule, *Stats, error) {
	fopts := opts
	fopts.Sparsify = false
	fsched, fstats, ferr := Solve(ctx, in, fopts)
	if fstats != nil {
		fstats.SparseFallback = true
		fstats.ConfigsEnumerated = stats.ConfigsEnumerated
		fstats.ConfigsAfterSparsification = stats.ConfigsAfterSparsification
		fstats.FillTime += stats.FillTime
	}
	return fsched, fstats, ferr
}

// sparseVerify re-establishes the (1+eps) guarantee after a sparse solve
// converged at T and built sched. Two independent checks:
//
//   - certification that T <= OPT: trivially true when T is the initial
//     lower bracket; otherwise one faithful DP at T-1 decides it — faithful
//     infeasibility at T-1 proves OPT > T-1 (rounded-DOWN long jobs needing
//     more than m machines within T-1 means the originals do too), while
//     faithful feasibility means the sparse bisection over-pruned its way
//     past targets the faithful pipeline can meet, and the solve must fall
//     back. When the verification table exceeds the entry budget — sparse
//     mode solves instances the faithful enumeration cannot — the result is
//     kept but flagged uncertified (Stats.SparseCertified stays false).
//   - a quality gate on the measured construction: makespan <= (1+eps)T.
//     Together with T <= OPT this yields makespan <= (1+eps)OPT, the same
//     guarantee grade as the faithful pipeline; grouping's worst-case
//     under-estimation can exceed the gate, so a violation triggers the
//     faithful fallback rather than a silently weaker schedule.
//
// Returns whether the caller must fall back to a faithful re-solve. Only
// cancellation-grade errors are returned.
func sparseVerify(ctx context.Context, in *pcmax.Instance, k int, T pcmax.Time, sched *pcmax.Schedule, opts Options, stats *Stats, pool *par.Pool, bpool *par.BarrierPool) (fallback bool, err error) {
	certified := T <= stats.LB0
	if !certified {
		fopts := opts
		fopts.Sparsify = false
		res, aerr := runAttempt(ctx, in, k, T-1, fopts, pool, bpool)
		switch {
		case errors.Is(aerr, dp.ErrTableTooLarge):
			// Faithful verification doesn't fit; keep the sparse result,
			// uncertified.
		case aerr != nil:
			return false, aerr
		default:
			stats.FillTime += res.fill
			if res.tbl != nil {
				stats.TotalEntriesFilled += res.tbl.Sigma
			}
			if res.feasible {
				return true, nil
			}
			certified = true
		}
	}
	stats.SparseCertified = certified
	if float64(sched.Makespan(in)) > (1+opts.Epsilon)*float64(T)+1e-9 {
		return true, nil
	}
	return false, nil
}

// sortJobsDesc orders job indices by non-increasing processing time, ties by
// index (stable and deterministic).
func sortJobsDesc(in *pcmax.Instance, order []int) {
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := in.Times[order[a]], in.Times[order[b]]
		if ta != tb {
			return ta > tb
		}
		return order[a] < order[b]
	})
}
