package simsched

import (
	"testing"
	"testing/quick"
	"time"
)

// flatProfile builds a profile with one table whose levels all hold q
// entries, `levels` levels total, a single config per entry and the given
// measured sequential fill time.
func flatProfile(levels int, q int64, seqFill time.Duration) *Profile {
	ls := make([]int64, levels)
	for i := range ls {
		ls[i] = q
	}
	return &Profile{
		Levels:  [][]int64{ls},
		Configs: []int{1},
		SeqFill: seqFill,
	}
}

func TestTotalWork(t *testing.T) {
	p := &Profile{
		Levels:  [][]int64{{1, 2, 3}, {4}},
		Configs: []int{10, 5},
	}
	// (1+2+3)*10 + 4*5 = 80.
	if got := p.TotalWork(); got != 80 {
		t.Fatalf("TotalWork = %v, want 80", got)
	}
}

func TestTotalWorkZeroConfigsClamped(t *testing.T) {
	p := &Profile{Levels: [][]int64{{5}}, Configs: []int{0}}
	if got := p.TotalWork(); got != 5 {
		t.Fatalf("TotalWork = %v, want 5 (configs clamped to 1)", got)
	}
}

func TestSingleWorkerMatchesSequentialTime(t *testing.T) {
	// With 1 worker and no barriers, the model must return exactly the
	// calibration time.
	p := flatProfile(10, 8, 800*time.Nanosecond) // 80 entries, 10ns each
	got, err := Machine{Workers: 1}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 800*time.Nanosecond {
		t.Fatalf("FillTime(1) = %v, want 800ns", got)
	}
}

func TestPerfectDivisionSpeedup(t *testing.T) {
	// 10 levels x 8 entries on 4 workers with zero barrier: each level is
	// ceil(8/4)=2 rounds -> exactly 4x speedup.
	p := flatProfile(10, 8, 8000*time.Nanosecond)
	sp, err := Speedup(p, 4, -1) // negative barrier: keep explicit zero out of the default
	if err != nil {
		t.Fatal(err)
	}
	_ = sp
	one, err := Machine{Workers: 1, BarrierNs: -1}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Machine{Workers: 4, BarrierNs: -1}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if one != 4*four {
		t.Fatalf("one=%v four=%v, want exact 4x", one, four)
	}
}

func TestCeilDivisionRemainder(t *testing.T) {
	// q=9 on 4 workers: ceil(9/4)=3 rounds per level, not 2.25.
	p := flatProfile(1, 9, 900*time.Nanosecond) // 100ns per entry
	got, err := Machine{Workers: 4, BarrierNs: -1}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 300*time.Nanosecond {
		t.Fatalf("FillTime = %v, want 300ns (3 rounds x 100ns)", got)
	}
}

func TestUndersubscribedLevels(t *testing.T) {
	// q=2 with 16 workers: one round per level regardless of P — the
	// paper's "q_l processors out of P" case.
	p := flatProfile(5, 2, 1000*time.Nanosecond)
	t16, err := Machine{Workers: 16, BarrierNs: -1}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Machine{Workers: 2, BarrierNs: -1}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if t16 != t2 {
		t.Fatalf("16 workers (%v) should not beat 2 workers (%v) when q_l=2", t16, t2)
	}
}

func TestBarrierPenalizesManyLevels(t *testing.T) {
	// Small levels + barrier: parallel can lose to sequential, which is
	// exactly the small-table regime discussed in EXPERIMENTS.md.
	p := flatProfile(100, 1, 1000*time.Nanosecond) // 10ns per entry
	seq, err := Machine{Workers: 1, BarrierNs: 2000}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	parT, err := Machine{Workers: 8, BarrierNs: 2000}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if parT <= seq {
		t.Fatalf("barrier-dominated profile should slow down: seq=%v par=%v", seq, parT)
	}
}

func TestSpeedupMonotoneProperty(t *testing.T) {
	// With zero barrier, more workers never hurt.
	f := func(levelsRaw, qRaw uint8) bool {
		levels := int(levelsRaw%20) + 1
		q := int64(qRaw%60) + 1
		p := flatProfile(levels, q, time.Duration(levels)*time.Duration(q)*100)
		prev := time.Duration(1 << 62)
		for _, w := range []int{1, 2, 4, 8, 16, 32} {
			ft, err := Machine{Workers: w, BarrierNs: -1}.FillTime(p)
			if err != nil {
				return false
			}
			if ft > prev {
				return false
			}
			prev = ft
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	p := flatProfile(2, 2, time.Microsecond)
	if _, err := (Machine{Workers: 0}).FillTime(p); err == nil {
		t.Fatal("want error for 0 workers")
	}
	bad := &Profile{Levels: [][]int64{{1}}, Configs: []int{1, 2}, SeqFill: time.Second}
	if _, err := (Machine{Workers: 1}).FillTime(bad); err == nil {
		t.Fatal("want error for mismatched profile")
	}
	noTime := &Profile{Levels: [][]int64{{1}}, Configs: []int{1}}
	if _, err := (Machine{Workers: 1}).FillTime(noTime); err == nil {
		t.Fatal("want error for zero SeqFill")
	}
}

func TestEmptyWorkProfile(t *testing.T) {
	p := &Profile{Levels: [][]int64{}, Configs: []int{}, SeqFill: time.Second}
	ft, err := Machine{Workers: 4}.FillTime(p)
	if err != nil || ft != 0 {
		t.Fatalf("empty profile: %v, %v", ft, err)
	}
}

func TestSpeedupHelper(t *testing.T) {
	p := flatProfile(4, 16, 6400*time.Nanosecond)
	sp, err := Speedup(p, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 3.99 || sp > 4.01 {
		t.Fatalf("Speedup = %v, want ~4", sp)
	}
	sp1, err := Speedup(p, 1, -1)
	if err != nil || sp1 != 1 {
		t.Fatalf("Speedup(1) = %v, %v", sp1, err)
	}
}

func TestDefaultBarrierUsedWhenZero(t *testing.T) {
	p := flatProfile(10, 1, time.Microsecond)
	withDefault, err := Machine{Workers: 2, BarrierNs: 0}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	withExplicit, err := Machine{Workers: 2, BarrierNs: DefaultBarrierNs}.FillTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if withDefault != withExplicit {
		t.Fatalf("default barrier not applied: %v vs %v", withDefault, withExplicit)
	}
}
