// Package simsched models the execution time of the paper's Parallel DP on
// a P-core shared-memory machine from a measured work profile.
//
// The paper's Section IV analysis states the cost model exactly: the
// Parallel DP performs n'+1 sequential iterations (one per anti-diagonal
// level); in iteration l, "if q_l >= P then each of the P processors compute
// at most ceil(q_l/P) subproblems from diagonal l; else q_l processors out
// of P compute the q_l subproblems, one per processor". Each subproblem costs
// the same (one sweep over the machine-configuration set), so the simulated
// time of one table fill on P cores is
//
//	sum over levels l of ( ceil(q_l / P) * entryCost + barrierCost )
//
// where entryCost is calibrated from the measured sequential fill time of
// the same table(s) and barrierCost models the level barrier.
//
// The simulator exists because parallel *wall-clock* speedup needs parallel
// hardware: the reproduction environment may have a single core, where
// goroutines interleave instead of overlapping. The profile is taken from
// the real fill of the real tables, so the simulation exercises exactly the
// schedules the paper analyzes; only the clock is modeled. Experiment output
// reports measured wall-clock and simulated speedup side by side.
package simsched

import (
	"errors"
	"fmt"
	"time"
)

// Profile is the work profile of one complete PTAS run: one entry per
// bisection iteration that filled a DP table.
type Profile struct {
	// Levels[i][l] is q_l, the number of DP entries on anti-diagonal l of
	// iteration i's table.
	Levels [][]int64
	// Configs[i] is the size of iteration i's machine-configuration set;
	// the per-entry work is proportional to it.
	Configs []int
	// SeqFill is the measured wall-clock time of all sequential table fills
	// combined; it calibrates the per-unit cost.
	SeqFill time.Duration
}

// TotalWork returns the profile's total work in config-scan units:
// sum over iterations of sigma_i * |C_i|.
func (p *Profile) TotalWork() float64 {
	var w float64
	for i, levels := range p.Levels {
		var sigma int64
		for _, q := range levels {
			sigma += q
		}
		c := p.Configs[i]
		if c < 1 {
			c = 1
		}
		w += float64(sigma) * float64(c)
	}
	return w
}

// Machine models the target multicore system.
type Machine struct {
	// Workers is P, the number of cores.
	Workers int
	// BarrierNs is the per-level barrier cost in nanoseconds. Shared-memory
	// barrier latencies on commodity multicores are on the order of a few
	// microseconds. 0 selects DefaultBarrierNs; negative values model an
	// ideal free barrier.
	BarrierNs float64
}

// DefaultBarrierNs approximates an OpenMP-style barrier on a 16-core
// shared-memory machine.
const DefaultBarrierNs = 2000

// ErrBadProfile reports an unusable profile.
var ErrBadProfile = errors.New("simsched: unusable profile")

// FillTime returns the simulated wall-clock time of all the profile's table
// fills on the machine.
func (m Machine) FillTime(p *Profile) (time.Duration, error) {
	if m.Workers < 1 {
		return 0, fmt.Errorf("simsched: machine needs at least one worker, got %d", m.Workers)
	}
	if len(p.Levels) != len(p.Configs) {
		return 0, fmt.Errorf("%w: %d level profiles but %d config counts", ErrBadProfile, len(p.Levels), len(p.Configs))
	}
	if p.SeqFill <= 0 {
		return 0, fmt.Errorf("%w: non-positive sequential fill time %v", ErrBadProfile, p.SeqFill)
	}
	total := p.TotalWork()
	if total <= 0 {
		return 0, nil // trivial tables fill in no modeled time
	}
	unitNs := float64(p.SeqFill.Nanoseconds()) / total // ns per config scan
	barrier := m.BarrierNs
	if barrier == 0 {
		barrier = DefaultBarrierNs
	} else if barrier < 0 {
		barrier = 0
	}
	P := int64(m.Workers)
	var ns float64
	for i, levels := range p.Levels {
		entryCost := unitNs * float64(max(p.Configs[i], 1))
		for _, q := range levels {
			if q == 0 {
				continue
			}
			rounds := (q + P - 1) / P // ceil(q_l / P) subproblems per core
			ns += float64(rounds) * entryCost
			if m.Workers > 1 {
				ns += barrier
			}
		}
	}
	return time.Duration(ns), nil
}

// Speedup returns the simulated speedup of the profile's fills on P cores
// relative to one core: FillTime(1) / FillTime(P).
func Speedup(p *Profile, workers int, barrierNs float64) (float64, error) {
	one, err := Machine{Workers: 1, BarrierNs: barrierNs}.FillTime(p)
	if err != nil {
		return 0, err
	}
	many, err := Machine{Workers: workers, BarrierNs: barrierNs}.FillTime(p)
	if err != nil {
		return 0, err
	}
	if many <= 0 {
		return 1, nil
	}
	return float64(one) / float64(many), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
