package trsched

import (
	"context"
	"errors"
	"testing"

	"repro/internal/exact"
	"repro/internal/listsched"
	"repro/internal/workload"
	"repro/pcmax"
)

func solveOK(t *testing.T, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Stats) {
	t.Helper()
	sched, st, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if err := sched.Feasible(in); err != nil {
		t.Fatalf("infeasible schedule: %v", err)
	}
	return sched, st
}

func TestSolveWindowsHandInstance(t *testing.T) {
	// See the brute-force twin: optimum 13 (one 4 per machine in [0,4), one
	// 3 per machine in [10,13)). Four distinct-size values, so exact mode.
	ws := []pcmax.Window{{Start: 0, End: 5}, {Start: 10, End: 14}}
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{4, 4, 3, 3},
		Windows: [][]pcmax.Window{ws, ws}}
	sched, st := solveOK(t, in, Options{Epsilon: 0.3})
	if !st.Exact {
		t.Fatalf("expected exact mode, got %+v", st)
	}
	if ms := sched.Makespan(in); ms != 13 {
		t.Fatalf("makespan %d, want 13", ms)
	}
	if st.FinalT != 13 {
		t.Fatalf("FinalT %d, want 13", st.FinalT)
	}
}

func TestSolvePlainDegeneratesToOptimal(t *testing.T) {
	// A plain instance is within the capability set; exact mode must
	// converge to the certified plain optimum.
	for seed := uint64(1); seed <= 4; seed++ {
		in := workload.MustGenerate(workload.Spec{Family: workload.U1_10, M: 3, N: 9, Seed: seed})
		opt, err := exact.BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		sched, st := solveOK(t, in, Options{Epsilon: 0.3})
		if !st.Exact {
			t.Fatalf("seed %d: expected exact mode (distinct sizes <= 10)", seed)
		}
		if got, want := sched.Makespan(in), opt.Makespan(in); got != want {
			t.Fatalf("seed %d: trsched %d, optimum %d", seed, got, want)
		}
	}
}

func TestSolveExactModeMatchesBruteForce(t *testing.T) {
	for _, v := range []pcmax.Variant{pcmax.SetupTimes, pcmax.TimeRestricted, pcmax.SetupTimes | pcmax.TimeRestricted} {
		for seed := uint64(1); seed <= 5; seed++ {
			in := workload.MustGenerateVariant(workload.VariantSpec{
				Spec:    workload.Spec{Family: workload.U1_10, M: 3, N: 8, Seed: seed},
				Variant: v,
			})
			opt, _, err := exact.BruteForceVariant(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			sched, st := solveOK(t, in, Options{Epsilon: 0.3})
			if !st.Exact {
				t.Fatalf("%v seed %d: expected exact mode", v, seed)
			}
			if got, want := sched.Makespan(in), opt.Makespan(in); got != want {
				t.Fatalf("%v seed %d: trsched %d, brute optimum %d", v, seed, got, want)
			}
		}
	}
}

func TestSolveGroupedModeSoundUpperBound(t *testing.T) {
	// Force grouped mode with MaxDistinctExact=1: the result must stay
	// feasible, no better than the true optimum, and no worse than the
	// generalized-LPT incumbent.
	for seed := uint64(1); seed <= 5; seed++ {
		in := workload.MustGenerateVariant(workload.VariantSpec{
			Spec:    workload.Spec{Family: workload.U1_100, M: 3, N: 8, Seed: seed},
			Variant: pcmax.TimeRestricted,
		})
		opt, _, err := exact.BruteForceVariant(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		lpt, err := listsched.LPTGeneral(in)
		if err != nil {
			t.Fatal(err)
		}
		sched, st := solveOK(t, in, Options{Epsilon: 0.3, MaxDistinctExact: 1})
		if st.Exact {
			t.Fatalf("seed %d: grouped mode not forced", seed)
		}
		ms := sched.Makespan(in)
		if ms < opt.Makespan(in) {
			t.Fatalf("seed %d: makespan %d beats the certified optimum %d", seed, ms, opt.Makespan(in))
		}
		if ms > lpt.Makespan(in) {
			t.Fatalf("seed %d: makespan %d worse than the LPT incumbent %d", seed, ms, lpt.Makespan(in))
		}
	}
}

func TestSolveRejectsReleaseTimes(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{3}, Release: []pcmax.Time{2}}
	if _, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestSolveInfeasibleInstance(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{7},
		Windows: [][]pcmax.Window{{{Start: 0, End: 5}}}}
	if _, _, err := Solve(context.Background(), in, Options{Epsilon: 0.3}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := workload.MustGenerateVariant(workload.VariantSpec{
		Spec:    workload.Spec{Family: workload.U1_100, M: 4, N: 20, Seed: 1},
		Variant: pcmax.TimeRestricted,
	})
	if _, _, err := Solve(ctx, in, Options{Epsilon: 0.3}); err == nil {
		t.Fatal("want cancellation error")
	}
}

func TestSolveSetupOnlyExact(t *testing.T) {
	// Setup-only instances run through the same machinery with an
	// unrestricted segment per machine; cross-check a hand case. Machine 0
	// pays 1 per job, machine 1 pays 5: jobs 6,6 split one per machine is
	// 6+1=7 vs 6+5=11; both on machine 0 is 14. Optimum 11.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{6, 6}, Setup: []pcmax.Time{1, 5}}
	sched, st := solveOK(t, in, Options{Epsilon: 0.3})
	if !st.Exact {
		t.Fatal("expected exact mode")
	}
	if ms := sched.Makespan(in); ms != 11 {
		t.Fatalf("makespan %d, want 11", ms)
	}
}
