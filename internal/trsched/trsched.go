// Package trsched solves the time-restricted scheduling variant: P||Cmax
// with per-machine availability windows (and optionally machine-dependent
// setup times), following the configuration-IP viewpoint of the EPTAS for
// scheduling with time restrictions. The solver reuses the repository's
// machinery end to end: a bisection over target makespans T, the
// configuration enumeration of internal/conf at every probe, and a
// level-style dynamic program — here over machines instead of
// anti-diagonals — deciding whether the enumerated configurations cover all
// jobs.
//
// A probe at target T clips every machine's windows to [0, T] (an
// unrestricted machine is one segment [0, T]), enumerates candidate machine
// configurations over the job size classes with internal/conf, filters each
// against the machine's segments by an exact first-fit-decreasing search
// (setup included: a job occupies setup+size contiguously inside one
// window), and runs a DP over machines whose state is the remaining
// size-class vector. Feasibility is certified constructively: the DP's
// witness is turned into a schedule whose earliest-fit replay can only
// finish earlier than the packing, so Makespan <= T always holds for the
// returned schedule.
//
// Size classes come in two modes. Exact mode uses the true distinct sizes
// (chosen when there are at most MaxDistinctExact of them): the bisection
// predicate is then exact and monotone, so the solver converges to the
// certified optimal makespan. Grouped mode rounds sizes up to multiples of
// u = max(1, eps*T/4) first: every certified probe still yields a feasible
// schedule with makespan <= T (rounding up is sound against window walls),
// but the smallest feasible T found is only an upper bound, so the solver
// keeps the best certified schedule — never worse than the generalized-LPT
// incumbent it starts from. Stats.Exact records which mode ran.
package trsched

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/internal/conf"
	"repro/internal/listsched"
	"repro/pcmax"
)

// Options configures Solve. The zero value is invalid; Epsilon must be
// positive (it controls grouped-mode rounding only — exact mode ignores it).
type Options struct {
	// Epsilon is the grouped-mode rounding coarseness: sizes are rounded up
	// to multiples of max(1, eps*T/4) when the instance has more than
	// MaxDistinctExact distinct sizes.
	Epsilon float64
	// MaxConfigs caps per-probe configuration enumeration; <= 0 uses
	// conf.DefaultMaxConfigs.
	MaxConfigs int
	// MaxStates caps the machine-DP state space (the product of
	// per-size-class counts+1); <= 0 uses DefaultMaxStates.
	MaxStates int64
	// MaxDistinctExact is the distinct-size threshold below which exact mode
	// runs; <= 0 uses DefaultMaxDistinctExact.
	MaxDistinctExact int
}

// Defaults for the solver budgets.
const (
	DefaultMaxStates        = int64(1) << 20
	DefaultMaxDistinctExact = 16
)

// Stats reports what one Solve run did.
type Stats struct {
	// Iterations counts bisection probes.
	Iterations int
	// LB and UB bracket the initial bisection interval.
	LB, UB pcmax.Time
	// FinalT is the smallest certified-feasible target found.
	FinalT pcmax.Time
	// Configs counts the configurations enumerated at the final feasible
	// probe (before per-machine segment filtering).
	Configs int
	// States is the machine-DP state-space size at the final feasible probe.
	States int64
	// SizeClasses is the number of distinct (possibly rounded) sizes.
	SizeClasses int
	// Exact reports exact mode: FinalT is the certified optimal makespan.
	Exact bool
	// UsedLPTFallback reports that the generalized-LPT incumbent was
	// returned because no probe beat it (grouped mode only).
	UsedLPTFallback bool
}

// Solver errors.
var (
	// ErrUnsupported reports an instance whose variant uses features beyond
	// windows and setup times (release times are out of scope here).
	ErrUnsupported = errors.New("trsched: solver supports only the setup and window variants")
	// ErrTooManyStates reports a machine-DP state space beyond MaxStates.
	ErrTooManyStates = errors.New("trsched: size-class state space exceeds the budget")
	// ErrInfeasible reports an instance with a job that fits no machine's
	// windows at any time.
	ErrInfeasible = errors.New("trsched: instance is infeasible")
)

// Capabilities is the variant feature set Solve accepts.
const Capabilities = pcmax.SetupTimes | pcmax.TimeRestricted

// Solve schedules the instance. See the package comment for the algorithm
// and the exact/grouped mode split. ctx is checked between bisection probes
// and inside the per-probe DP sweeps.
func Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Stats, error) {
	var st Stats
	if err := in.Validate(); err != nil {
		return nil, st, err
	}
	if v := in.Variant(); v&^Capabilities != 0 {
		return nil, st, fmt.Errorf("%w (instance variant %v)", ErrUnsupported, v)
	}
	if err := cancel.Check(ctx); err != nil {
		return nil, st, err
	}

	// Generalized LPT supplies the incumbent schedule and the upper bracket.
	lpt, err := listsched.LPTGeneral(in)
	if err != nil {
		return nil, st, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	best := lpt
	bestT := lpt.Makespan(in)
	st.UsedLPTFallback = true

	lo := in.LowerBound()
	if solo := soloBound(in); solo > lo {
		lo = solo
	}
	hi := bestT
	st.LB, st.UB = lo, hi
	if in.N() == 0 || lo >= hi {
		// The incumbent already matches the lower bracket: it is optimal.
		st.FinalT = bestT
		st.Exact = true
		return best, st, nil
	}

	exact, sizes, counts, classOf := sizeClasses(in, opts)
	st.Exact = exact
	st.SizeClasses = len(sizes)

	for lo < hi {
		if err := cancel.Check(ctx); err != nil {
			return best, st, err
		}
		mid := lo + (hi-lo)/2
		st.Iterations++
		sched, pst, err := probe(ctx, in, mid, exact, sizes, counts, classOf, opts)
		if err != nil {
			return best, st, err
		}
		if sched != nil {
			st.Configs = pst.Configs
			st.States = pst.States
			if ms := sched.Makespan(in); ms < bestT {
				best, bestT = sched, ms
				st.UsedLPTFallback = false
			}
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	st.FinalT = bestT
	return best, st, nil
}

// soloBound is the window-aware single-job lower bound: every job must
// complete somewhere, so the earliest completion it can achieve on its best
// machine bounds the makespan from below.
func soloBound(in *pcmax.Instance) pcmax.Time {
	var lb pcmax.Time
	for j, t := range in.Times {
		solo := pcmax.Infeasible
		for mi := 0; mi < in.M; mi++ {
			dur := in.SetupTime(mi) + t
			est := in.ReleaseTime(j)
			if start, ok := in.EarliestStart(mi, est, dur); ok && start+dur < solo {
				solo = start + dur
			}
		}
		if solo != pcmax.Infeasible && solo > lb {
			lb = solo
		}
	}
	return lb
}

// sizeClasses builds the distinct-size classes. Exact mode (few distinct
// sizes) uses them as-is; grouped mode defers rounding to each probe, since
// the rounding unit depends on the probe target, and returns classOf == nil.
func sizeClasses(in *pcmax.Instance, opts Options) (exact bool, sizes []pcmax.Time, counts []int, classOf map[pcmax.Time]int) {
	maxD := opts.MaxDistinctExact
	if maxD <= 0 {
		maxD = DefaultMaxDistinctExact
	}
	distinct := map[pcmax.Time]int{}
	for _, t := range in.Times {
		distinct[t]++
	}
	if len(distinct) > maxD {
		return false, nil, nil, nil
	}
	sizes = make([]pcmax.Time, 0, len(distinct))
	for s := range distinct {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(a, b int) bool { return sizes[a] > sizes[b] })
	counts = make([]int, len(sizes))
	classOf = make(map[pcmax.Time]int, len(sizes))
	for i, s := range sizes {
		counts[i] = distinct[s]
		classOf[s] = i
	}
	return true, sizes, counts, classOf
}

// groupedClasses rounds every size up to a multiple of u = max(1, eps*T/4)
// and returns the resulting classes, largest first.
func groupedClasses(in *pcmax.Instance, T pcmax.Time, eps float64) (sizes []pcmax.Time, counts []int, classOf map[pcmax.Time]int) {
	u := pcmax.Time(eps * float64(T) / 4)
	if u < 1 {
		u = 1
	}
	rounded := map[pcmax.Time]int{}
	for _, t := range in.Times {
		r := (t + u - 1) / u * u
		rounded[r]++
	}
	sizes = make([]pcmax.Time, 0, len(rounded))
	for s := range rounded {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(a, b int) bool { return sizes[a] > sizes[b] })
	counts = make([]int, len(sizes))
	classOf = make(map[pcmax.Time]int, len(sizes))
	for i, s := range sizes {
		counts[i] = rounded[s]
		classOf[s] = i
	}
	return sizes, counts, classOf
}

// probeStats carries the per-probe observability back to Solve.
type probeStats struct {
	Configs int
	States  int64
}

// probe decides feasibility of target T and, when feasible, constructs a
// schedule with Makespan <= T. A nil schedule with a nil error means
// "infeasible at T".
func probe(ctx context.Context, in *pcmax.Instance, T pcmax.Time, exact bool,
	sizes []pcmax.Time, counts []int, classOf map[pcmax.Time]int, opts Options) (*pcmax.Schedule, probeStats, error) {
	var pst probeStats
	if !exact {
		sizes, counts, classOf = groupedClasses(in, T, opts.Epsilon)
	}
	d := len(sizes)
	for _, s := range sizes {
		if s > T {
			return nil, pst, nil // a (rounded) job exceeds the whole target
		}
	}

	// Mixed-radix strides over the class counts, exactly like the DP table.
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	stride := make([]int64, d)
	states := int64(1)
	for i := d - 1; i >= 0; i-- {
		stride[i] = states
		states *= int64(counts[i] + 1)
		if states > maxStates {
			return nil, pst, fmt.Errorf("%w (need %d, limit %d)", ErrTooManyStates, states, maxStates)
		}
	}
	// The witness DP keeps one int32 layer per machine; bound the whole
	// allocation, not just one layer.
	if total := states * int64(in.M+1); total > 1<<26 {
		return nil, pst, fmt.Errorf("%w (%d machines x %d states)", ErrTooManyStates, in.M+1, states)
	}
	pst.States = states

	cfgs, err := conf.Enumerate(sizes, counts, T, stride, opts.MaxConfigs)
	if err != nil {
		return nil, pst, err
	}
	pst.Configs = len(cfgs)

	// Filter the global configuration set per machine signature: a
	// configuration survives when its setup-inclusive durations pack into
	// the machine's windows clipped to [0, T].
	type sigCfgs struct {
		segs []pcmax.Time
		keep []int32
	}
	cache := map[string]*sigCfgs{}
	machineCfgs := make([][]int32, in.M)
	machineSegs := make([][]pcmax.Time, in.M)
	for mi := 0; mi < in.M; mi++ {
		segs := clipSegments(in, mi, T)
		key := sigKey(in.SetupTime(mi), segs)
		sc, ok := cache[key]
		if !ok {
			sc = &sigCfgs{segs: segs}
			setup := in.SetupTime(mi)
			for ci, cfg := range cfgs {
				if packs(cfg.Counts, sizes, setup, segs, nil) {
					sc.keep = append(sc.keep, int32(ci))
				}
			}
			cache[key] = sc
		}
		machineCfgs[mi] = sc.keep
		machineSegs[mi] = sc.segs
	}

	// DP over machines: state = remaining class-count vector (mixed-radix
	// index), layer k = after machines 0..k-1. choice[k+1][state] records
	// the configuration machine k used to reach state (idleChoice for an
	// idle machine, unreached otherwise).
	const (
		unreached  = int32(-1)
		idleChoice = int32(-2)
	)
	full := int64(0)
	digitsFull := make([]int32, d)
	for i, c := range counts {
		full += int64(c) * stride[i]
		digitsFull[i] = int32(c)
	}
	choice := make([][]int32, in.M+1)
	for k := range choice {
		choice[k] = make([]int32, states)
		for i := range choice[k] {
			choice[k][i] = unreached
		}
	}
	choice[0][full] = idleChoice
	frontier := []int64{full}
	digits := make([]int32, d)
	for k := 0; k < in.M && len(frontier) > 0; k++ {
		if err := cancel.Check(ctx); err != nil {
			return nil, pst, err
		}
		var next []int64
		for _, r := range frontier {
			decode(r, stride, digits)
			// Idle transition: the machine takes nothing.
			if choice[k+1][r] == unreached {
				choice[k+1][r] = idleChoice
				next = append(next, r)
			}
			for _, ci := range machineCfgs[k] {
				cfg := &cfgs[ci]
				if !fits(cfg.Counts, digits) {
					continue
				}
				nr := r - cfg.Offset
				if choice[k+1][nr] == unreached {
					choice[k+1][nr] = ci
					next = append(next, nr)
				}
			}
		}
		frontier = next
	}
	if choice[in.M][0] == unreached {
		return nil, pst, nil
	}

	return reconstruct(in, sizes, classOf, cfgs, choice, machineSegs), pst, nil
}

// decode expands a mixed-radix state index into per-class digits.
func decode(r int64, stride []int64, digits []int32) {
	for i, s := range stride {
		digits[i] = int32(r / s)
		r %= s
	}
}

// fits reports componentwise cfg <= digits.
func fits(cfg []int32, digits []int32) bool {
	for i, c := range cfg {
		if c > digits[i] {
			return false
		}
	}
	return true
}

// clipSegments returns machine mi's available capacity segments inside
// [0, T], in window order. An unrestricted machine is one segment of length
// T.
func clipSegments(in *pcmax.Instance, mi int, T pcmax.Time) []pcmax.Time {
	if !in.Restricted(mi) {
		return []pcmax.Time{T}
	}
	var segs []pcmax.Time
	for _, w := range in.Windows[mi] {
		if w.Start >= T {
			break
		}
		end := w.End
		if end > T {
			end = T
		}
		if end > w.Start {
			segs = append(segs, end-w.Start)
		}
	}
	return segs
}

// sigKey serializes a machine's (setup, segments) signature so identical
// machines share one configuration filtering pass.
func sigKey(setup pcmax.Time, segs []pcmax.Time) string {
	b := make([]byte, 0, 8*(len(segs)+1))
	app := func(v pcmax.Time) {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
	}
	app(setup)
	for _, s := range segs {
		app(s)
	}
	return string(b)
}

// packs decides whether a configuration's jobs — each occupying
// setup+size contiguously — fit into the machine's capacity segments, by
// depth-first search over the durations in non-increasing order with the
// classic identical-item and identical-bin prunings. When assign is non-nil
// it receives, per duration slot in that order, the segment index used by
// the first packing found.
func packs(cfg []int32, sizes []pcmax.Time, setup pcmax.Time, segs []pcmax.Time, assign []int) bool {
	var durs []pcmax.Time
	var total pcmax.Time
	for i, c := range cfg {
		for k := int32(0); k < c; k++ {
			durs = append(durs, setup+sizes[i])
			total += setup + sizes[i]
		}
	}
	if len(durs) == 0 {
		return true
	}
	remain := append([]pcmax.Time(nil), segs...)
	var capacity pcmax.Time
	for _, s := range remain {
		capacity += s
	}
	if total > capacity {
		return false
	}
	var rec func(k int, minSeg int) bool
	rec = func(k int, minSeg int) bool {
		if k == len(durs) {
			return true
		}
		start := 0
		if k > 0 && durs[k] == durs[k-1] {
			// Identical durations are interchangeable: never place a later
			// copy in an earlier segment than its predecessor.
			start = minSeg
		}
		var tried []pcmax.Time
		for si := start; si < len(remain); si++ {
			if remain[si] < durs[k] {
				continue
			}
			dup := false
			for _, r := range tried {
				if r == remain[si] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			tried = append(tried, remain[si])
			remain[si] -= durs[k]
			if rec(k+1, si) {
				remain[si] += durs[k]
				if assign != nil {
					assign[k] = si
				}
				return true
			}
			remain[si] += durs[k]
		}
		return false
	}
	return rec(0, 0)
}

// reconstruct walks the DP witness back into a schedule: every machine gets
// concrete jobs for its configuration's class counts, packs them into its
// segments, and the schedule's Order lists each machine's jobs in segment
// order so the earliest-fit replay of Completions finishes no later than
// the packing — hence within the certified target.
func reconstruct(in *pcmax.Instance, sizes []pcmax.Time, classOf map[pcmax.Time]int,
	cfgs []conf.Config, choice [][]int32, machineSegs [][]pcmax.Time) *pcmax.Schedule {
	const idleChoice = int32(-2)

	// Per-class queues of concrete job indices, ascending.
	queues := make([][]int, len(sizes))
	for j, t := range in.Times {
		ci := classOf[roundKey(t, sizes)]
		queues[ci] = append(queues[ci], j)
	}

	sched := pcmax.NewSchedule(in.M, in.N())
	sched.Order = make([]int, 0, in.N())

	// Walk the witness backwards to list each machine's configuration, then
	// realize machines in index order.
	machineCfg := make([]int32, in.M)
	state := int64(0)
	for k := in.M; k > 0; k-- {
		ci := choice[k][state]
		machineCfg[k-1] = ci
		if ci >= 0 {
			state += cfgs[ci].Offset
		}
	}
	for mi := 0; mi < in.M; mi++ {
		ci := machineCfg[mi]
		if ci == idleChoice {
			continue
		}
		cfg := cfgs[ci]
		// Concrete jobs for the class counts, in the duration-slot order
		// packs uses (classes are sorted largest first, so class order is
		// exactly it).
		var jobs []int
		for c, cnt := range cfg.Counts {
			q := queues[c]
			jobs = append(jobs, q[:cnt]...)
			queues[c] = q[cnt:]
		}
		assign := make([]int, len(jobs))
		packs(cfg.Counts, sizes, in.SetupTime(mi), machineSegs[mi], assign)
		// Emit the machine's jobs ordered by packed segment; within a
		// segment the durations sum identically, so any order replays
		// feasibly.
		slots := make([]int, len(jobs))
		for i := range slots {
			slots[i] = i
		}
		sort.SliceStable(slots, func(a, b int) bool { return assign[slots[a]] < assign[slots[b]] })
		for _, sl := range slots {
			j := jobs[sl]
			sched.Assignment[j] = mi
			sched.Order = append(sched.Order, j)
		}
	}
	return sched
}

// roundKey maps a true size to its (possibly rounded-up) class size: the
// smallest class size >= t. sizes is sorted descending.
func roundKey(t pcmax.Time, sizes []pcmax.Time) pcmax.Time {
	key := sizes[0]
	for _, s := range sizes {
		if s >= t {
			key = s
		} else {
			break
		}
	}
	return key
}
