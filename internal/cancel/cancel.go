// Package cancel is the shared cancellation vocabulary of the solve path.
// Every layer — the solver facade, the core PTAS driver, the DP fills, the
// parallel substrate and the auxiliary solvers — converts a dead
// context.Context into the same structured error through this package, so a
// caller can test errors.Is(err, cancel.ErrCanceled) (or ErrDeadline) no
// matter which layer noticed the cancellation first.
//
// The package distinguishes two ways a solve ends early:
//
//   - ErrDeadline: the context's deadline passed (context.DeadlineExceeded),
//     including deadlines installed by the legacy TimeLimit option shims.
//   - ErrCanceled: every other cancellation (an explicit CancelFunc, a parent
//     context dying, ...).
//
// ErrDeadline wraps ErrCanceled — a deadline is one kind of cancellation —
// so errors.Is(err, ErrCanceled) holds for both, while
// errors.Is(err, ErrDeadline) identifies the deadline case specifically.
package cancel

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCanceled reports that a solve was interrupted by its context.
var ErrCanceled = errors.New("solve canceled")

// ErrDeadline reports that a solve ran past its context deadline (or legacy
// TimeLimit). It wraps ErrCanceled.
var ErrDeadline = fmt.Errorf("%w: deadline exceeded", ErrCanceled)

// Error is the structured cancellation failure returned by the solve path.
// It wraps the matching sentinel (ErrCanceled or ErrDeadline) and the
// context's cause, and carries the partial progress the interrupted solve
// had made, so callers can log how far it got before degrading to a
// fallback schedule.
type Error struct {
	sentinel error // ErrCanceled or ErrDeadline
	cause    error // context.Cause at interruption time

	// Iterations counts bisection (or search) iterations completed before
	// the interruption. Layers that have no iteration notion leave it 0.
	Iterations int
	// EntriesFilled counts DP table entries completed before the
	// interruption, summed over finished fills.
	EntriesFilled int64
}

// Error formats the failure with its cause.
func (e *Error) Error() string {
	if e.cause != nil && !errors.Is(e.sentinel, e.cause) {
		return fmt.Sprintf("%v (%v)", e.sentinel, e.cause)
	}
	return e.sentinel.Error()
}

// Unwrap exposes both the sentinel chain (ErrDeadline -> ErrCanceled) and
// the context cause (context.Canceled / context.DeadlineExceeded / a custom
// cause) to errors.Is and errors.As.
func (e *Error) Unwrap() []error {
	if e.cause == nil {
		return []error{e.sentinel}
	}
	return []error{e.sentinel, e.cause}
}

// From builds the structured error for a context that is already done. The
// sentinel is chosen by the context's error: DeadlineExceeded maps to
// ErrDeadline, everything else to ErrCanceled.
func From(ctx context.Context) *Error {
	sentinel := ErrCanceled
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		sentinel = ErrDeadline
	}
	return &Error{sentinel: sentinel, cause: context.Cause(ctx)}
}

// Check polls the context and returns nil while it is live, or the
// structured *Error once it is done. A nil context never fails. The check
// is a non-blocking select on ctx.Done(), cheap enough for per-probe and
// per-level call sites; inner loops should amortize it over a counter (the
// fills check every few thousand entries).
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return From(ctx)
	default:
		return nil
	}
}

// WithTimeout installs d as a context deadline when d > 0 and returns the
// context unchanged (with a no-op CancelFunc) otherwise. It is the shim that
// converts the legacy TimeLimit option fields into context deadlines.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		//lint:ignore ctxfirst canonical nil-ctx normalization at the API boundary, not a minted root for new work
		ctx = context.Background()
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
