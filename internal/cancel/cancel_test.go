package cancel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCheckLiveContext(t *testing.T) {
	if err := Check(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := Check(nil); err != nil {
		t.Fatalf("nil context: %v", err)
	}
}

func TestFromCanceled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Check(ctx)
	if err == nil {
		t.Fatal("canceled context: want error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatalf("plain cancellation must not match ErrDeadline: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not exposed: %v", err)
	}
}

func TestFromDeadline(t *testing.T) {
	ctx, cancelFn := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancelFn()
	<-ctx.Done()
	err := Check(ctx)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	// A deadline is a kind of cancellation.
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("deadline must also match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause not exposed: %v", err)
	}
}

func TestFromCustomCause(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancelFn := context.WithCancelCause(context.Background())
	cancelFn(boom)
	err := Check(ctx)
	if !errors.Is(err, boom) {
		t.Fatalf("custom cause not exposed: %v", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestErrorCarriesPartialStats(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	e := From(ctx)
	e.Iterations = 3
	e.EntriesFilled = 4096
	var got *Error
	if !errors.As(error(e), &got) {
		t.Fatal("errors.As failed")
	}
	if got.Iterations != 3 || got.EntriesFilled != 4096 {
		t.Fatalf("partial stats lost: %+v", got)
	}
}

func TestWithTimeoutShim(t *testing.T) {
	ctx, done := WithTimeout(context.Background(), 0)
	done()
	if err := Check(ctx); err != nil {
		t.Fatalf("no-op shim must not cancel: %v", err)
	}
	ctx, done = WithTimeout(context.Background(), time.Nanosecond)
	defer done()
	<-ctx.Done()
	if err := Check(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}
