// Package par is the shared-memory parallel substrate used by the parallel
// PTAS. It provides a "parallel for" over an index range with the scheduling
// strategies of an OpenMP runtime:
//
//   - RoundRobin: iteration i goes to worker i mod P. This is the paper's
//     "each of the P processors will be assigned one iteration of the for
//     loop in a round-robin fashion" (OpenMP schedule(static,1)).
//   - Chunked: worker w takes the contiguous block [w*n/P, (w+1)*n/P)
//     (OpenMP schedule(static)).
//   - Dynamic: workers repeatedly claim fixed-size chunks from an atomic
//     counter (OpenMP schedule(dynamic,grain)).
//
// A Pool keeps P goroutines alive across many parallel-for rounds so that a
// level-synchronous computation (one round per DP anti-diagonal, thousands of
// rounds) does not pay goroutine start-up per round.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cancel"
)

// Strategy selects how iterations are divided among workers.
type Strategy int

// Available scheduling strategies.
const (
	RoundRobin Strategy = iota
	Chunked
	Dynamic
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case Chunked:
		return "chunked"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all scheduling strategies, for ablation sweeps.
var Strategies = []Strategy{RoundRobin, Chunked, Dynamic}

// Normalize clamps a requested worker count: values below 1 become
// GOMAXPROCS, everything else is returned unchanged. The paper's P is a free
// parameter, so worker counts above the hardware parallelism are allowed
// (they emulate oversubscription) but not chosen by default.
func Normalize(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// round describes one parallel-for executed by a Pool. parts is the number
// of workers the round was dispatched to — min(n, pool size), so a round
// with fewer iterations than workers never wakes the idle tail.
type round struct {
	n        int
	strategy Strategy
	grain    int
	parts    int
	body     func(worker, i int)
	next     *atomic.Int64 // shared cursor for Dynamic
	done     *sync.WaitGroup
}

// Pool is a set of persistent worker goroutines. The zero value is unusable;
// construct with NewPool and release with Close.
//
// Concurrency contract: at most one For/ForWorker call may be in flight at a
// time — rounds are strictly sequential (the PTAS driver's levels are
// barrier-separated). Close is safe to call concurrently with an in-flight
// round and with other Close calls: it is idempotent, and the mutex around
// round dispatch guarantees a round either fully dispatches before the feeds
// close or observes the closed pool and panics with a descriptive message —
// never a send on a closed channel.
type Pool struct {
	workers int
	feeds   []chan round

	// mu serializes round dispatch against Close (and Close against
	// itself); closed is only read/written under mu.
	mu     sync.Mutex
	closed bool

	panicMu  sync.Mutex
	panicked any
}

// NewPool starts workers goroutines (GOMAXPROCS if workers < 1).
func NewPool(workers int) *Pool {
	workers = Normalize(workers)
	p := &Pool{workers: workers, feeds: make([]chan round, workers)}
	for w := 0; w < workers; w++ {
		p.feeds[w] = make(chan round)
		go p.worker(w)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close terminates the worker goroutines. Close is idempotent and safe to
// call concurrently with itself and with an in-flight For/ForWorker round:
// a round that already dispatched drains normally (its workers exit after
// finishing), a round that has not yet dispatched panics with "For on
// closed Pool".
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.feeds {
		close(ch)
	}
}

func (p *Pool) worker(w int) {
	for r := range p.feeds[w] {
		p.run(w, r)
	}
}

// run executes worker w's share of round r, converting a body panic into a
// recorded failure so the barrier still completes.
func (p *Pool) run(w int, r round) {
	defer func() {
		if e := recover(); e != nil {
			p.panicMu.Lock()
			if p.panicked == nil {
				p.panicked = e
			}
			p.panicMu.Unlock()
		}
		r.done.Done()
	}()
	switch r.strategy {
	case RoundRobin:
		for i := w; i < r.n; i += r.parts {
			r.body(w, i)
		}
	case Chunked:
		lo := w * r.n / r.parts
		hi := (w + 1) * r.n / r.parts
		for i := lo; i < hi; i++ {
			r.body(w, i)
		}
	case Dynamic:
		for {
			start := int(r.next.Add(int64(r.grain))) - r.grain
			if start >= r.n {
				return
			}
			end := start + r.grain
			if end > r.n {
				end = r.n
			}
			for i := start; i < end; i++ {
				r.body(w, i)
			}
		}
	}
}

// For runs body(i) for every i in [0, n) across the pool's workers and waits
// for completion. If any body call panics, For re-panics in the caller after
// all workers finished, so the pool stays usable.
func (p *Pool) For(n int, strategy Strategy, body func(i int)) {
	p.ForWorker(n, strategy, 0, func(_, i int) { body(i) })
}

// ForWorker is For with the executing worker's id passed to the body (for
// per-worker scratch space) and an explicit Dynamic chunk size (grain <= 0
// selects max(1, n/(8*workers)); the static strategies ignore it). A round
// with n < workers dispatches to only the first n workers (the idle tail is
// never woken), and n == 1 runs inline on the caller. It panics when called
// on a closed Pool, and re-panics a body panic in the caller once the
// barrier completes.
func (p *Pool) ForWorker(n int, strategy Strategy, grain int, body func(worker, i int)) {
	if n <= 1 {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			panic("par: For on closed Pool")
		}
		if n == 1 {
			body(0, 0)
		}
		return
	}
	parts := p.workers
	if n < parts {
		parts = n
	}
	if grain <= 0 {
		grain = n / (8 * parts)
		if grain < 1 {
			grain = 1
		}
	}
	var wg sync.WaitGroup
	wg.Add(parts)
	r := round{n: n, strategy: strategy, grain: grain, parts: parts, body: body, next: new(atomic.Int64), done: &wg}
	// Dispatch under the mutex: a concurrent Close either waits for all
	// sends to land (workers already hold the round, so closing the feeds
	// afterwards cannot lose it) or wins the lock first, in which case the
	// closed check panics instead of sending on a closed channel.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("par: For on closed Pool")
	}
	for _, ch := range p.feeds[:parts] {
		ch <- r
	}
	p.mu.Unlock()
	wg.Wait()
	p.panicMu.Lock()
	e := p.panicked
	p.panicked = nil
	p.panicMu.Unlock()
	if e != nil {
		panic(e)
	}
}

// cancelCheckEvery is how many body iterations a worker runs between polls
// of the context's done channel in the Ctx variants. A shared stop flag
// makes one worker's observation stop every other worker on its next
// iteration, so the worst-case overrun after cancellation is one iteration
// per worker plus cancelCheckEvery iterations on the observing worker.
const cancelCheckEvery = 256

// pad keeps per-worker iteration counters on distinct cache lines.
type pad struct {
	n uint32
	_ [60]byte
}

// ForCtx is For with cooperative cancellation: when ctx is canceled, workers
// stop claiming iterations (remaining ones are skipped), the round's barrier
// still completes — no goroutine leaks, the pool stays usable — and the
// structured cancellation error is returned. A nil or never-canceled ctx
// behaves exactly like For and returns nil.
func (p *Pool) ForCtx(ctx context.Context, n int, strategy Strategy, body func(i int)) error {
	return p.ForWorkerCtx(ctx, n, strategy, 0, func(_, i int) { body(i) })
}

// ForWorkerCtx is ForWorker with cooperative cancellation (see ForCtx).
func (p *Pool) ForWorkerCtx(ctx context.Context, n int, strategy Strategy, grain int, body func(worker, i int)) error {
	if ctx == nil || ctx.Done() == nil {
		p.ForWorker(n, strategy, grain, body)
		return nil
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	done := ctx.Done()
	var stop atomic.Bool
	counters := make([]pad, p.workers)
	p.ForWorker(n, strategy, grain, func(w, i int) {
		if stop.Load() {
			return
		}
		if counters[w].n++; counters[w].n%cancelCheckEvery == 0 {
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
		}
		body(w, i)
	})
	if stop.Load() {
		return cancel.From(ctx)
	}
	return cancel.Check(ctx)
}

// For is the one-shot variant: it spawns workers goroutines, runs body(i)
// for i in [0, n) with the given strategy, and waits. Use a Pool when the
// same worker set runs many rounds.
func For(workers, n int, strategy Strategy, body func(i int)) {
	workers = Normalize(workers)
	if n <= 0 {
		return
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	p := NewPool(workers)
	defer p.Close()
	p.For(n, strategy, body)
}
