package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkPoolRound measures the cost of one empty parallel-for round (the
// per-level barrier the DP pays on every anti-diagonal).
func BenchmarkPoolRound(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(workers, RoundRobin, func(int) {})
			}
		})
	}
}

// BenchmarkForStrategies measures scheduling overhead per strategy over a
// level-sized iteration space with trivial bodies.
func BenchmarkForStrategies(b *testing.B) {
	const n = 4096
	var sink atomic.Int64
	for _, strategy := range Strategies {
		b.Run(strategy.String(), func(b *testing.B) {
			p := NewPool(4)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(n, strategy, func(j int) {
					if j == n-1 {
						sink.Add(1)
					}
				})
			}
		})
	}
}

// BenchmarkDispatchOverhead compares the per-round dispatch cost of the
// legacy Pool (WaitGroup + mutex + channel send per worker) against the
// BarrierPool (sense-reversing barrier, resident spinning workers) across the
// level widths the DP actually dispatches: tiny (8), the fusion threshold
// region (64), and a genuinely wide level (4096).
func BenchmarkDispatchOverhead(b *testing.B) {
	const workers = 4
	var sink atomic.Int64
	body := func(w, i int) {
		if i == 0 {
			sink.Add(1)
		}
	}
	for _, n := range []int{8, 64, 4096} {
		b.Run(fmt.Sprintf("pool/n=%d", n), func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForWorker(n, RoundRobin, 0, body)
			}
		})
		b.Run(fmt.Sprintf("barrier/n=%d", n), func(b *testing.B) {
			p := NewBarrierPool(workers)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForWorker(n, body)
			}
		})
		b.Run(fmt.Sprintf("barrier-batch8/n=%d", n), func(b *testing.B) {
			// Eight fused segments per dispatch, n iterations total, as the
			// adaptive fill issues for runs of small DP levels.
			p := NewBarrierPool(workers)
			defer p.Close()
			segs := make([]int, 8)
			for s := range segs {
				segs[s] = n / len(segs)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForBatch(segs, func(w, s, i int) { body(w, i) })
			}
		})
	}
}

// BenchmarkOneShotFor measures the convenience wrapper's pool start-up cost
// relative to a persistent pool.
func BenchmarkOneShotFor(b *testing.B) {
	const n = 1024
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			For(4, n, Chunked, func(int) {})
		}
	})
	b.Run("pooled", func(b *testing.B) {
		p := NewPool(4)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.For(n, Chunked, func(int) {})
		}
	})
}
