package par

// The barrier pool is the low-overhead dispatch substrate behind the DP's
// adaptive fill (dp.FillAuto): a level-synchronous computation runs thousands
// of tiny parallel-for rounds, and the per-round cost of Pool — a WaitGroup
// Add/Wait pair, a mutex-serialized channel send per worker and a scheduler
// wakeup per worker — dominates the actual work on paper-scale tables (see
// BenchmarkDispatchOverhead). BarrierPool removes that round-trip:
//
//   - Workers stay resident and synchronize on a sense-reversing barrier: the
//     round word (an atomic holding participant-count and sequence) is the
//     "sense"; publishing a new value releases the workers, and a single
//     cumulative arrival counter forms the join. No WaitGroup, no per-round
//     channel traffic on the fast path.
//   - The caller participates as worker 0, so a P-way round needs only P-1
//     resident goroutines and the caller never blocks while work remains.
//   - Iterations are pre-partitioned into static contiguous ranges; each
//     participant drains its own range in chunks claimed from a per-worker
//     cache-line-padded atomic cursor, then steals chunks from the other
//     cursors, so tail imbalance cannot serialize a round.
//   - ForBatch runs several segments (DP levels) in one dispatch, separated
//     by internal spin barriers — consecutive small levels fuse into a
//     single wakeup instead of paying one dispatch each.
//
// Workers spin briefly (yielding to the scheduler) before parking on a
// per-worker channel, so back-to-back rounds never sleep while sparse use
// does not burn CPU. The concurrency contract matches Pool: at most one
// round in flight at a time, Close idempotent and safe concurrently with an
// in-flight round (the round drains, a not-yet-dispatched round panics).

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cancel"
)

// barrierSpin is how many scheduler-yielding spin iterations a worker (or
// the completing caller) performs before parking on its wake channel. Small
// enough that a single-core host hands the CPU over almost immediately,
// large enough that back-to-back DP levels on a multicore host never park.
const barrierSpin = 192

// Round-word layout: the participant count lives in the top bits, the
// round sequence in the low barrierSeqBits. Any change of the word announces
// a new round; non-participants decide from the word alone, so they never
// touch the (unsynchronized for them) round state fields.
const (
	barrierSeqBits = 48
	barrierSeqMask = (uint64(1) << barrierSeqBits) - 1
	// maxBarrierWorkers keeps the participant count inside the round word.
	maxBarrierWorkers = 1 << 12
)

// cursorPad keeps each participant's chunk cursor on its own cache line:
// the cursors are the hottest contended words of a round, and false sharing
// between neighbouring workers would serialize the claims.
type cursorPad struct {
	v atomic.Int64
	_ [56]byte
}

// BarrierPool is a set of persistent workers synchronizing on a
// sense-reversing barrier, optimized for many small parallel-for rounds.
// The zero value is unusable; construct with NewBarrierPool and release
// with Close.
//
// Concurrency contract (same as Pool): at most one For/ForWorker/ForBatch
// call may be in flight at a time — rounds are strictly sequential. Close is
// idempotent and safe to call concurrently with an in-flight round: the
// round drains normally, and a round dispatched after Close panics with a
// descriptive message instead of hanging or sending on a closed channel.
type BarrierPool struct {
	workers int

	// Round state: written by the dispatcher before it advances the round
	// word, read by that round's participants after they observe the new
	// word (the atomic round word carries the happens-before edge).
	// Non-participants read only the round word itself.
	rsegs      []int
	rbody      func(worker, seg, i int)
	arriveBase int64
	seg1       [1]int // scratch so single-segment rounds do not allocate

	round    atomic.Uint64 // parts<<barrierSeqBits | seq
	arrive   atomic.Int64  // cumulative arrivals, never reset
	poisoned atomic.Bool   // a body panicked: participants skip remaining work
	cursors  [2][]cursorPad

	// Caller-completion handoff: when the caller exhausts its spin budget it
	// stores its round's sequence in callerWaiting and blocks on done; the
	// participant whose arrival completes a round claims the flag with
	// CompareAndSwap(itsRoundSeq, 0) and sends the single completion token
	// only on success. Tagging the flag with the sequence (0 = not waiting;
	// dispatch never issues seq 0) closes the cross-round race where a worker
	// that finished round N is preempted between its final arrive.Add and the
	// claim: by the time it runs again the caller may be parked on round N+1,
	// and an untagged swap would hand that caller a premature token while
	// round N+1 is still executing. With the tag, the stale claim fails and
	// only round N+1's own last arriver can release the caller.
	callerWaiting atomic.Uint64
	done          chan struct{}

	// Parking: a worker sets parked[w], re-checks the round word, then
	// blocks on wake[w]. A dispatcher (or Close) claims the flag with an
	// atomic swap before sending the wake token; the worker's own re-check
	// uses the same swap, so a token is sent iff exactly one side consumes
	// it — no missed wakeups, no stale tokens.
	parked []atomic.Bool
	wake   []chan struct{}

	// mu serializes round dispatch against Close (one lock acquisition per
	// round; the fast path inside a round is lock-free). closed is only
	// accessed under mu; closedA mirrors it for lock-free reads by workers.
	mu      sync.Mutex
	closed  bool
	closedA atomic.Bool

	panicMu  sync.Mutex
	panicked any

	// ctxPads are the per-worker cancellation countdowns of the Ctx
	// variants, allocated once (rounds are sequential, so reuse is safe).
	ctxPads []pad
}

// NewBarrierPool starts workers-1 resident goroutines (GOMAXPROCS if
// workers < 1); the caller of each round acts as worker 0. Worker counts
// above 4096 are clamped (the round-word encoding bounds them, and a
// barrier over more participants than that degrades anyway).
func NewBarrierPool(workers int) *BarrierPool {
	workers = Normalize(workers)
	if workers > maxBarrierWorkers {
		workers = maxBarrierWorkers
	}
	b := &BarrierPool{
		workers: workers,
		done:    make(chan struct{}, 1),
		parked:  make([]atomic.Bool, workers),
		wake:    make([]chan struct{}, workers),
		ctxPads: make([]pad, workers),
	}
	b.cursors[0] = make([]cursorPad, workers)
	b.cursors[1] = make([]cursorPad, workers)
	for w := 1; w < workers; w++ {
		b.wake[w] = make(chan struct{}, 1)
		go b.resident(w)
	}
	return b
}

// Workers reports the pool size (including the participating caller).
func (b *BarrierPool) Workers() int { return b.workers }

// Close releases the resident workers. It is idempotent and safe to call
// concurrently with itself and with an in-flight round: a dispatched round
// drains normally (workers check for new rounds before the closed flag), a
// round dispatched after Close panics with "For on closed BarrierPool".
func (b *BarrierPool) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.closedA.Store(true)
	for w := 1; w < b.workers; w++ {
		if b.parked[w].Swap(false) {
			b.wake[w] <- struct{}{}
		}
	}
}

// staticLo returns the start of participant w's static range over [0, n).
func staticLo(w, parts, n int) int64 {
	return int64(w) * int64(n) / int64(parts)
}

// resident is the main loop of a resident worker: wait for the round word
// to change, participate if inside the round's participant set, hand the
// caller its completion token when last to arrive, exit on Close.
func (b *BarrierPool) resident(w int) {
	var last uint64
	for {
		r := b.round.Load()
		if r == last {
			if b.closedA.Load() {
				return
			}
			b.waitForWork(w, last)
			continue
		}
		last = r
		if parts := int(r >> barrierSeqBits); w < parts {
			cur, final := b.participate(w, parts)
			// Last arriver of THIS round: release the caller only if it is
			// parked on this same round (seq-tagged CAS; see callerWaiting).
			if cur == final && b.callerWaiting.CompareAndSwap(r&barrierSeqMask, 0) {
				b.done <- struct{}{}
			}
		}
	}
}

// waitForWork spins briefly for a new round (or Close), then parks on the
// worker's wake channel. The parked-flag swap protocol guarantees that a
// wake token is sent iff this worker consumes it.
func (b *BarrierPool) waitForWork(w int, last uint64) {
	for i := 0; i < barrierSpin; i++ {
		if b.round.Load() != last || b.closedA.Load() {
			return
		}
		runtime.Gosched()
	}
	b.parked[w].Store(true)
	if b.round.Load() != last || b.closedA.Load() {
		// A dispatcher or Close may have claimed the flag between the store
		// and this re-check; consume its in-flight token if so.
		if !b.parked[w].Swap(false) {
			<-b.wake[w]
		}
		return
	}
	<-b.wake[w]
}

// participate runs worker w's share of every segment of the current round,
// crossing an internal spin barrier between consecutive segments. It
// returns this worker's last arrival-counter value and the round's final
// target so the caller-handoff can detect "I was last".
func (b *BarrierPool) participate(w, parts int) (cur, final int64) {
	segs, body, base := b.rsegs, b.rbody, b.arriveBase
	final = base + int64(parts)*int64(len(segs))
	for s, n := range segs {
		if s+1 < len(segs) {
			// Initialize the own cursor for the next segment before arriving
			// at this segment's barrier: cursors are double-buffered by
			// segment parity, so the slot is idle and the barrier publishes
			// the store to every thief.
			b.cursors[(s+1)&1][w].v.Store(staticLo(w, parts, segs[s+1]))
		}
		b.runShare(w, s, n, parts, body)
		cur = b.arrive.Add(1)
		if s+1 < len(segs) {
			target := base + int64(parts)*int64(s+1)
			for b.arrive.Load() < target {
				runtime.Gosched()
			}
		}
	}
	return cur, final
}

// runShare drains worker w's static range of segment seg in chunks, then
// steals chunks from the other participants' ranges. A body panic is
// recorded (first wins), poisons the round so other participants stop
// claiming work, and re-panics in the dispatching caller.
func (b *BarrierPool) runShare(w, seg, n, parts int, body func(worker, seg, i int)) {
	defer func() {
		if e := recover(); e != nil {
			b.panicMu.Lock()
			if b.panicked == nil {
				b.panicked = e
			}
			b.panicMu.Unlock()
			b.poisoned.Store(true)
		}
	}()
	if b.poisoned.Load() {
		return
	}
	g := int64(n / (8 * parts))
	if g < 1 {
		g = 1
	}
	slot := b.cursors[seg&1]
	hi := staticLo(w+1, parts, n)
	c := &slot[w].v
	for {
		start := c.Add(g) - g
		if start >= hi {
			break
		}
		end := start + g
		if end > hi {
			end = hi
		}
		for i := start; i < end; i++ {
			body(w, seg, int(i))
		}
		if b.poisoned.Load() {
			return
		}
	}
	for off := 1; off < parts; off++ {
		v := w + off
		if v >= parts {
			v -= parts
		}
		vhi := staticLo(v+1, parts, n)
		vc := &slot[v].v
		for vc.Load() < vhi {
			start := vc.Add(g) - g
			if start >= vhi {
				break
			}
			end := start + g
			if end > vhi {
				end = vhi
			}
			for i := start; i < end; i++ {
				body(w, seg, int(i))
			}
			if b.poisoned.Load() {
				return
			}
		}
	}
}

// dispatch runs one round over segs. Rounds with at most one useful
// participant (every segment shorter than 2, or a 1-worker pool) run inline
// on the caller. It panics on a closed pool and re-panics the first body
// panic once the round completes.
func (b *BarrierPool) dispatch(segs []int, body func(worker, seg, i int)) {
	parts := b.workers
	maxSeg := 0
	for _, n := range segs {
		if n > maxSeg {
			maxSeg = n
		}
	}
	if parts > maxSeg {
		parts = maxSeg
	}
	if parts <= 1 {
		if b.closedA.Load() {
			panic("par: For on closed BarrierPool")
		}
		for s, n := range segs {
			for i := 0; i < n; i++ {
				body(0, s, i)
			}
		}
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		panic("par: For on closed BarrierPool")
	}
	b.rsegs, b.rbody = segs, body
	b.arriveBase = b.arrive.Load()
	b.poisoned.Store(false)
	for w := 0; w < parts; w++ {
		b.cursors[0][w].v.Store(staticLo(w, parts, segs[0]))
	}
	seq := (b.round.Load() + 1) & barrierSeqMask
	if seq == 0 {
		// Seq 0 is the callerWaiting "not waiting" sentinel; skip it on wrap.
		seq = 1
	}
	b.round.Store(uint64(parts)<<barrierSeqBits | seq)
	for w := 1; w < parts; w++ {
		if b.parked[w].Swap(false) {
			b.wake[w] <- struct{}{}
		}
	}
	b.mu.Unlock()
	cur, final := b.participate(0, parts)
	if cur != final {
		b.awaitFinal(final, seq)
	}
	b.panicMu.Lock()
	e := b.panicked
	b.panicked = nil
	b.panicMu.Unlock()
	if e != nil {
		panic(e)
	}
}

// awaitFinal blocks the caller until every participant arrived at the
// round's final barrier: a short yielding spin, then the seq-tagged handoff
// with the round's last arriver (see callerWaiting). seq is this round's
// sequence, never 0.
func (b *BarrierPool) awaitFinal(final int64, seq uint64) {
	for i := 0; i < barrierSpin; i++ {
		if b.arrive.Load() >= final {
			return
		}
		runtime.Gosched()
	}
	for {
		b.callerWaiting.Store(seq)
		if b.arrive.Load() >= final {
			// Completed between the spin and the flag store. If the last
			// arriver already claimed the flag, its token is in flight and
			// must be drained so the next round starts clean.
			if !b.callerWaiting.CompareAndSwap(seq, 0) {
				<-b.done
			}
			return
		}
		<-b.done
		// A token implies its sender claimed this round's seq after arriving
		// last, so the round is complete; re-validate anyway so a handoff bug
		// can never return the caller into a still-running round.
		if b.arrive.Load() >= final {
			return
		}
	}
}

// For runs body(i) for every i in [0, n) across the pool and waits.
// It panics when called on a closed BarrierPool, and re-panics a body panic
// in the caller once the round completes.
func (b *BarrierPool) For(n int, body func(i int)) {
	b.ForWorker(n, func(_, i int) { body(i) })
}

// ForWorker is For with the executing worker's id passed to the body (for
// per-worker scratch space). Rounds with n == 1 run inline on the caller and
// rounds with n < workers wake only the workers that have work. It panics
// when called on a closed BarrierPool, and re-panics a body panic in the
// caller once the round completes.
func (b *BarrierPool) ForWorker(n int, body func(worker, i int)) {
	if n <= 0 {
		if b.closedA.Load() {
			panic("par: For on closed BarrierPool")
		}
		return
	}
	b.seg1[0] = n
	b.dispatch(b.seg1[:], func(w, _, i int) { body(w, i) })
}

// ForBatch runs several segments in one dispatch round: every i in
// [0, segs[s]) of every segment s, in strict segment order — segment s+1
// starts only after every body call of segment s returned (an internal
// barrier separates them), which is what makes fusing dependent DP levels
// into one round correct. Worker assignment within a segment matches
// ForWorker. It panics when called on a closed BarrierPool, on a negative
// segment length, and re-panics a body panic once the round completes (the
// remaining iterations of a panicked round may be skipped).
func (b *BarrierPool) ForBatch(segs []int, body func(worker, seg, i int)) {
	for _, n := range segs {
		if n < 0 {
			panic("par: ForBatch with negative segment length")
		}
	}
	if len(segs) == 0 {
		if b.closedA.Load() {
			panic("par: For on closed BarrierPool")
		}
		return
	}
	b.dispatch(segs, body)
}

// ForCtx is For with cooperative cancellation: when ctx is canceled, the
// participants stop claiming iterations, the barrier still completes (no
// leaked goroutines, the pool stays usable) and the structured cancel error
// is returned. A nil or never-cancelable ctx behaves exactly like For.
func (b *BarrierPool) ForCtx(ctx context.Context, n int, body func(i int)) error {
	return b.ForWorkerCtx(ctx, n, func(_, i int) { body(i) })
}

// ForWorkerCtx is ForWorker with cooperative cancellation (see ForCtx): the
// context is polled every cancelCheckEvery iterations per worker through a
// shared stop flag, exactly like Pool.ForWorkerCtx.
func (b *BarrierPool) ForWorkerCtx(ctx context.Context, n int, body func(worker, i int)) error {
	if ctx == nil || ctx.Done() == nil {
		b.ForWorker(n, body)
		return nil
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	var stop atomic.Bool
	b.ForWorker(n, b.wrapCtx(ctx, &stop, body))
	if stop.Load() {
		return cancel.From(ctx)
	}
	return cancel.Check(ctx)
}

// ForBatchCtx is ForBatch with cooperative cancellation: a cancellation
// observed in any segment stops the remaining work of the whole batch (the
// internal barriers still complete) and returns the structured cancel error.
func (b *BarrierPool) ForBatchCtx(ctx context.Context, segs []int, body func(worker, seg, i int)) error {
	if ctx == nil || ctx.Done() == nil {
		b.ForBatch(segs, body)
		return nil
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	var stop atomic.Bool
	done := ctx.Done()
	counters := b.ctxPads
	b.ForBatch(segs, func(w, s, i int) {
		if stop.Load() {
			return
		}
		if counters[w].n++; counters[w].n%cancelCheckEvery == 0 {
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
		}
		body(w, s, i)
	})
	if stop.Load() {
		return cancel.From(ctx)
	}
	return cancel.Check(ctx)
}

// wrapCtx decorates a worker body with the pool's amortized cancellation
// check: per-worker padded countdowns, a shared stop flag so one worker's
// observation stops all of them within one iteration each.
func (b *BarrierPool) wrapCtx(ctx context.Context, stop *atomic.Bool, body func(worker, i int)) func(worker, i int) {
	done := ctx.Done()
	counters := b.ctxPads
	return func(w, i int) {
		if stop.Load() {
			return
		}
		if counters[w].n++; counters[w].n%cancelCheckEvery == 0 {
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
		}
		body(w, i)
	}
}
