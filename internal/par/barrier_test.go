package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cancel"
)

func TestBarrierForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 8} {
		b := NewBarrierPool(workers)
		for _, n := range []int{0, 1, 2, 5, 100, 1023, 4096} {
			coverageCheck(t, n, func(mark func(int)) {
				b.For(n, mark)
			})
		}
		b.Close()
	}
}

func TestBarrierForWorkerIDsInRange(t *testing.T) {
	b := NewBarrierPool(5)
	defer b.Close()
	var bad atomic.Int64
	b.ForWorker(1000, func(w, i int) {
		if w < 0 || w >= 5 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("out-of-range worker ids")
	}
}

func TestBarrierSmallRoundUsesOnlyNeededWorkers(t *testing.T) {
	// A round with n < workers clamps the participant set to n, so worker
	// ids stay below n (the idle tail is never woken).
	b := NewBarrierPool(8)
	defer b.Close()
	for _, n := range []int{2, 3, 7} {
		var bad atomic.Int64
		coverageCheck(t, n, func(mark func(int)) {
			b.ForWorker(n, func(w, i int) {
				if w >= n {
					bad.Add(1)
				}
				mark(i)
			})
		})
		if bad.Load() != 0 {
			t.Fatalf("n=%d: worker id >= n", n)
		}
	}
}

func TestBarrierSingleIterationRunsInlineOnCaller(t *testing.T) {
	// n == 1 must run on the calling goroutine: an unsynchronized local
	// write would be a reported race otherwise (run with -race).
	b := NewBarrierPool(4)
	defer b.Close()
	ran := 0
	b.For(1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestBarrierPoolReusedAcrossManyRounds(t *testing.T) {
	b := NewBarrierPool(4)
	defer b.Close()
	var total atomic.Int64
	const rounds, n = 2000, 37
	for r := 0; r < rounds; r++ {
		b.For(n, func(i int) { total.Add(1) })
	}
	if got := total.Load(); got != rounds*n {
		t.Fatalf("executed %d bodies, want %d", got, rounds*n)
	}
}

func TestBarrierCallerParkHandoffAcrossRounds(t *testing.T) {
	// Regression for the cross-round completion handoff: a worker that ends
	// round N may be preempted between its final arrival and its claim of the
	// caller's waiting flag, by which time the caller can already be parked
	// on round N+1 — a stale (untagged) claim would release the caller while
	// round N+1 is still running. Force the caller to park every round (the
	// non-caller shares outlast its spin budget) and check each dispatch
	// returns only after all its bodies ran.
	b := NewBarrierPool(4)
	defer b.Close()
	const rounds, n = 300, 8
	var ran atomic.Int64
	for r := 0; r < rounds; r++ {
		ran.Store(0)
		b.ForWorker(n, func(w, i int) {
			if w != 0 {
				time.Sleep(100 * time.Microsecond)
			}
			ran.Add(1)
		})
		if got := ran.Load(); got != n {
			t.Fatalf("round %d: dispatch returned after %d of %d bodies", r, got, n)
		}
	}
}

func TestBarrierSharedWritesPublishedByBarrier(t *testing.T) {
	// Run with -race: each index writes its own slot; the final barrier must
	// publish every participant's writes to the caller.
	b := NewBarrierPool(8)
	defer b.Close()
	out := make([]int, 4096)
	b.For(len(out), func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d after barrier", i, v)
		}
	}
}

func TestBarrierForBatchCoversAllSegments(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		b := NewBarrierPool(workers)
		segs := []int{5, 100, 1, 0, 63, 1024}
		counts := make([][]int64, len(segs))
		for s, n := range segs {
			counts[s] = make([]int64, n)
		}
		b.ForBatch(segs, func(w, s, i int) {
			atomic.AddInt64(&counts[s][i], 1)
		})
		for s := range counts {
			for i, c := range counts[s] {
				if c != 1 {
					t.Fatalf("workers=%d seg %d index %d executed %d times", workers, s, i, c)
				}
			}
		}
		b.Close()
	}
}

func TestBarrierForBatchRunsSegmentsInOrder(t *testing.T) {
	// The fused-level correctness contract: no body call of segment s may
	// start before every body call of segment s-1 returned.
	b := NewBarrierPool(4)
	defer b.Close()
	segs := []int{300, 17, 1000, 64, 2, 500}
	finished := make([]atomic.Int64, len(segs))
	var violations atomic.Int64
	for rep := 0; rep < 20; rep++ {
		for s := range finished {
			finished[s].Store(0)
		}
		b.ForBatch(segs, func(w, s, i int) {
			if s > 0 && finished[s-1].Load() != int64(segs[s-1]) {
				violations.Add(1)
			}
			finished[s].Add(1)
		})
	}
	if violations.Load() != 0 {
		t.Fatalf("%d body calls started before the previous segment finished", violations.Load())
	}
}

func TestBarrierForBatchNegativeSegmentPanics(t *testing.T) {
	b := NewBarrierPool(2)
	defer b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("negative segment length did not panic")
		}
	}()
	b.ForBatch([]int{3, -1}, func(w, s, i int) {})
}

func TestBarrierBodyPanicPropagatesAndPoolSurvives(t *testing.T) {
	b := NewBarrierPool(3)
	defer b.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in body did not propagate")
			}
		}()
		b.For(1000, func(i int) {
			if i == 707 {
				panic("boom")
			}
		})
	}()
	// The pool must still work, including batches.
	coverageCheck(t, 200, func(mark func(int)) {
		b.For(200, mark)
	})
	var total atomic.Int64
	b.ForBatch([]int{80, 80}, func(w, s, i int) { total.Add(1) })
	if total.Load() != 160 {
		t.Fatalf("batch after panic ran %d bodies", total.Load())
	}
}

func TestBarrierBatchPanicPropagates(t *testing.T) {
	b := NewBarrierPool(4)
	defer b.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in batch body did not propagate")
			}
		}()
		b.ForBatch([]int{100, 100, 100}, func(w, s, i int) {
			if s == 1 && i == 50 {
				panic("mid-batch")
			}
		})
	}()
	coverageCheck(t, 128, func(mark func(int)) { b.For(128, mark) })
}

func TestBarrierForOnClosedPanics(t *testing.T) {
	b := NewBarrierPool(2)
	b.Close()
	for name, call := range map[string]func(){
		"For":      func() { b.For(10, func(int) {}) },
		"For1":     func() { b.For(1, func(int) {}) },
		"For0":     func() { b.For(0, func(int) {}) },
		"ForBatch": func() { b.ForBatch([]int{4, 4}, func(int, int, int) {}) },
		"Batch0":   func() { b.ForBatch(nil, func(int, int, int) {}) },
	} {
		func() {
			defer func() {
				if r := recover(); r != "par: For on closed BarrierPool" {
					t.Fatalf("%s on closed pool: recover = %v", name, r)
				}
			}()
			call()
		}()
	}
}

func TestBarrierCloseIdempotentAndConcurrent(t *testing.T) {
	b := NewBarrierPool(2)
	b.Close()
	b.Close() // must not panic
	for rep := 0; rep < 50; rep++ {
		p := NewBarrierPool(3)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Close()
			}()
		}
		wg.Wait()
	}
}

// TestBarrierCloseDuringRoundsDrains mirrors the Pool contract test: Close
// racing a stream of rounds either lets a dispatched round drain or makes a
// not-yet-dispatched round panic with the documented message — never a hang
// or a runtime fault.
func TestBarrierCloseDuringRoundsDrains(t *testing.T) {
	for rep := 0; rep < 100; rep++ {
		b := NewBarrierPool(3)
		roundsDone := make(chan any, 1)
		go func() {
			var recovered any
			func() {
				defer func() { recovered = recover() }()
				for i := 0; i < 1000; i++ {
					b.For(64, func(int) {})
				}
			}()
			roundsDone <- recovered
		}()
		b.Close()
		if r := <-roundsDone; r != nil {
			msg, ok := r.(string)
			if !ok || msg != "par: For on closed BarrierPool" {
				t.Fatalf("rep %d: round panicked with %v, want the documented closed-pool panic", rep, r)
			}
		}
	}
}

func TestBarrierCloseStopsResidentGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	pools := make([]*BarrierPool, 8)
	for i := range pools {
		pools[i] = NewBarrierPool(8)
	}
	during := runtime.NumGoroutine()
	if during < before+8*7 {
		t.Fatalf("expected resident goroutines to start: before=%d during=%d", before, during)
	}
	for _, b := range pools {
		b.For(1024, func(int) {}) // park/unpark cycle before Close
		b.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
}

func TestBarrierForCtxCoversEveryIndexWhenNotCanceled(t *testing.T) {
	b := NewBarrierPool(4)
	defer b.Close()
	for _, n := range []int{0, 1, 7, 1024} {
		coverageCheck(t, n, func(mark func(int)) {
			if err := b.ForCtx(context.Background(), n, mark); err != nil {
				t.Fatalf("uncanceled ForCtx: %v", err)
			}
		})
	}
}

func TestBarrierForCtxNilContextBehavesLikeFor(t *testing.T) {
	b := NewBarrierPool(3)
	defer b.Close()
	coverageCheck(t, 100, func(mark func(int)) {
		if err := b.ForCtx(nil, 100, mark); err != nil {
			t.Fatalf("nil-ctx ForCtx: %v", err)
		}
	})
}

func TestBarrierForCtxStopsOnCancelMidRound(t *testing.T) {
	b := NewBarrierPool(4)
	defer b.Close()
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	var ran atomic.Int64
	const n = 1 << 20
	err := b.ForCtx(ctx, n, func(i int) {
		if ran.Add(1) == 64 {
			cancelFn()
		}
	})
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("cancellation ignored, all %d iterations ran", got)
	}
	// The pool must remain usable after a canceled round.
	coverageCheck(t, 128, func(mark func(int)) {
		b.For(128, mark)
	})
}

func TestBarrierForCtxAlreadyCanceledRunsNothing(t *testing.T) {
	b := NewBarrierPool(4)
	defer b.Close()
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	var ran atomic.Int64
	err := b.ForCtx(ctx, 1000, func(i int) { ran.Add(1) })
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d iterations ran on a dead context", ran.Load())
	}
}

func TestBarrierForBatchCtxStopsOnCancel(t *testing.T) {
	b := NewBarrierPool(4)
	defer b.Close()
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	segs := []int{1 << 18, 1 << 18, 1 << 18}
	var ran atomic.Int64
	err := b.ForBatchCtx(ctx, segs, func(w, s, i int) {
		if ran.Add(1) == 64 {
			cancelFn()
		}
	})
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	total := int64(0)
	for _, n := range segs {
		total += int64(n)
	}
	if got := ran.Load(); got >= total {
		t.Fatalf("cancellation ignored, all %d iterations ran", got)
	}
	// Batches and plain rounds both work afterwards.
	var again atomic.Int64
	if err := b.ForBatchCtx(context.Background(), []int{100, 100}, func(w, s, i int) { again.Add(1) }); err != nil {
		t.Fatalf("batch after cancel: %v", err)
	}
	if again.Load() != 200 {
		t.Fatalf("recovery batch ran %d bodies", again.Load())
	}
}

func TestBarrierCanceledRoundsLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		b := NewBarrierPool(8)
		ctx, cancelFn := context.WithCancel(context.Background())
		var ran atomic.Int64
		_ = b.ForCtx(ctx, 1<<18, func(i int) {
			if ran.Add(1) == 100 {
				cancelFn()
			}
		})
		b.Close()
		cancelFn()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after canceled rounds: before=%d now=%d", before, runtime.NumGoroutine())
}

func TestBarrierWorkersAccessorAndClamp(t *testing.T) {
	b := NewBarrierPool(6)
	if b.Workers() != 6 {
		t.Fatalf("Workers = %d", b.Workers())
	}
	b.Close()
	big := NewBarrierPool(maxBarrierWorkers + 5)
	if big.Workers() != maxBarrierWorkers {
		t.Fatalf("Workers = %d, want clamp to %d", big.Workers(), maxBarrierWorkers)
	}
	big.Close()
}
