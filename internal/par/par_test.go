package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cancel"
)

func coverageCheck(t *testing.T, n int, run func(mark func(i int))) {
	t.Helper()
	counts := make([]int64, n)
	run(func(i int) { atomic.AddInt64(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, strategy := range Strategies {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			for _, n := range []int{0, 1, 2, 5, 100, 1023} {
				coverageCheck(t, n, func(mark func(int)) {
					For(workers, n, strategy, mark)
				})
			}
		}
	}
}

func TestPoolForCoversEveryIndexOnce(t *testing.T) {
	for _, strategy := range Strategies {
		for _, workers := range []int{1, 2, 5, 16} {
			p := NewPool(workers)
			for _, n := range []int{0, 1, 7, 256} {
				coverageCheck(t, n, func(mark func(int)) {
					p.For(n, strategy, mark)
				})
			}
			p.Close()
		}
	}
}

func TestPoolReusedAcrossManyRounds(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	const rounds, n = 500, 37
	for r := 0; r < rounds; r++ {
		p.For(n, RoundRobin, func(i int) { total.Add(1) })
	}
	if got := total.Load(); got != rounds*n {
		t.Fatalf("executed %d bodies, want %d", got, rounds*n)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	for _, strategy := range Strategies {
		p := NewPool(5)
		var bad atomic.Int64
		p.ForWorker(1000, strategy, 0, func(w, i int) {
			if w < 0 || w >= 5 {
				bad.Add(1)
			}
		})
		p.Close()
		if bad.Load() != 0 {
			t.Fatalf("strategy %v produced out-of-range worker ids", strategy)
		}
	}
}

func TestPoolSmallRoundUsesOnlyNeededWorkers(t *testing.T) {
	// n < workers dispatches to just the first n workers: ids stay below n
	// and coverage is exact (the idle tail never wakes).
	for _, strategy := range Strategies {
		p := NewPool(8)
		for _, n := range []int{2, 3, 7} {
			var bad atomic.Int64
			coverageCheck(t, n, func(mark func(int)) {
				p.ForWorker(n, strategy, 0, func(w, i int) {
					if w >= n {
						bad.Add(1)
					}
					mark(i)
				})
			})
			if bad.Load() != 0 {
				t.Fatalf("%v n=%d: worker id >= n", strategy, n)
			}
		}
		p.Close()
	}
}

func TestPoolSingleIterationRunsInlineOnCaller(t *testing.T) {
	// n == 1 must run on the calling goroutine: an unsynchronized local
	// write would be a reported race otherwise (run with -race).
	p := NewPool(4)
	defer p.Close()
	ran := 0
	p.ForWorker(1, Dynamic, 0, func(w, i int) {
		if w != 0 || i != 0 {
			t.Errorf("inline call got (w=%d, i=%d)", w, i)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestRoundRobinAssignsByModulo(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	workerOf := make([]int32, 64)
	p.ForWorker(64, RoundRobin, 0, func(w, i int) {
		atomic.StoreInt32(&workerOf[i], int32(w))
	})
	for i, w := range workerOf {
		if int(w) != i%4 {
			t.Fatalf("index %d ran on worker %d, want %d (paper's round-robin)", i, w, i%4)
		}
	}
}

func TestChunkedAssignsContiguousBlocks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	workerOf := make([]int32, 100)
	p.ForWorker(100, Chunked, 0, func(w, i int) {
		atomic.StoreInt32(&workerOf[i], int32(w))
	})
	for i := range workerOf {
		want := -1
		for w := 0; w < 4; w++ {
			if i >= w*100/4 && i < (w+1)*100/4 {
				want = w
			}
		}
		if int(workerOf[i]) != want {
			t.Fatalf("index %d on worker %d, want %d", i, workerOf[i], want)
		}
	}
}

func TestDynamicGrainRespected(t *testing.T) {
	// With grain 10 over 100 indices, every run of 10 consecutive indices
	// must execute on a single worker.
	p := NewPool(3)
	defer p.Close()
	workerOf := make([]int32, 100)
	p.ForWorker(100, Dynamic, 10, func(w, i int) {
		atomic.StoreInt32(&workerOf[i], int32(w))
	})
	for chunk := 0; chunk < 10; chunk++ {
		w := workerOf[chunk*10]
		for i := chunk*10 + 1; i < (chunk+1)*10; i++ {
			if workerOf[i] != w {
				t.Fatalf("chunk %d split across workers %d and %d", chunk, w, workerOf[i])
			}
		}
	}
}

func TestBodyPanicPropagatesAndPoolSurvives(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in body did not propagate")
			}
		}()
		p.For(10, RoundRobin, func(i int) {
			if i == 7 {
				panic("boom")
			}
		})
	}()
	// The pool must still work.
	coverageCheck(t, 20, func(mark func(int)) {
		p.For(20, Dynamic, mark)
	})
}

func TestForOnClosedPoolPanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("For on closed pool did not panic")
		}
	}()
	p.For(1, RoundRobin, func(int) {})
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestCloseConcurrentlyIdempotent(t *testing.T) {
	// Many goroutines racing Close must close the feeds exactly once.
	for rep := 0; rep < 50; rep++ {
		p := NewPool(3)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Close()
			}()
		}
		wg.Wait()
	}
}

// TestCloseDuringRoundsNeverSendsOnClosedChannel documents the Pool's
// concurrency contract: rounds come from a single caller at a time, but
// Close may race an in-flight round. The round either completes (it
// dispatched before Close won the mutex) or panics with the descriptive
// "For on closed Pool" — never the runtime's "send on closed channel".
func TestCloseDuringRoundsNeverSendsOnClosedChannel(t *testing.T) {
	for rep := 0; rep < 100; rep++ {
		p := NewPool(2)
		roundsDone := make(chan any, 1)
		go func() {
			var recovered any
			func() {
				defer func() { recovered = recover() }()
				for i := 0; i < 1000; i++ {
					p.For(8, RoundRobin, func(int) {})
				}
			}()
			roundsDone <- recovered
		}()
		p.Close()
		if r := <-roundsDone; r != nil {
			msg, ok := r.(string)
			if !ok || msg != "par: For on closed Pool" {
				t.Fatalf("rep %d: round panicked with %v, want the documented closed-pool panic", rep, r)
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(3); got != 3 {
		t.Fatalf("Normalize(3) = %d", got)
	}
	if got := Normalize(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(0) = %d, want GOMAXPROCS", got)
	}
	if got := Normalize(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestWorkersAccessor(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	if p.Workers() != 6 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		RoundRobin: "round-robin", Chunked: "chunked", Dynamic: "dynamic",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy should still render")
	}
}

func TestNoDataRacesUnderSharedWrites(t *testing.T) {
	// Run with -race: each index writes its own slot; the WaitGroup barrier
	// must publish all writes to the caller.
	p := NewPool(8)
	defer p.Close()
	out := make([]int, 4096)
	p.For(len(out), Dynamic, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d after barrier", i, v)
		}
	}
}

func TestSequentialOneWorkerOrder(t *testing.T) {
	// A single worker with RoundRobin must preserve index order.
	var mu sync.Mutex
	var order []int
	For(1, 10, RoundRobin, func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCloseStopsWorkerGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	pools := make([]*Pool, 8)
	for i := range pools {
		pools[i] = NewPool(8)
	}
	during := runtime.NumGoroutine()
	if during < before+32 {
		t.Fatalf("expected worker goroutines to start: before=%d during=%d", before, during)
	}
	for _, p := range pools {
		p.Close()
	}
	// Workers exit asynchronously after Close; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
}

func TestForCtxCoversEveryIndexWhenNotCanceled(t *testing.T) {
	for _, strategy := range Strategies {
		p := NewPool(4)
		for _, n := range []int{0, 1, 7, 1024} {
			coverageCheck(t, n, func(mark func(int)) {
				if err := p.ForCtx(context.Background(), n, strategy, mark); err != nil {
					t.Fatalf("uncanceled ForCtx: %v", err)
				}
			})
		}
		p.Close()
	}
}

func TestForCtxNilContextBehavesLikeFor(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	coverageCheck(t, 100, func(mark func(int)) {
		if err := p.ForCtx(nil, 100, Chunked, mark); err != nil {
			t.Fatalf("nil-ctx ForCtx: %v", err)
		}
	})
}

func TestForCtxStopsOnCancel(t *testing.T) {
	for _, strategy := range Strategies {
		p := NewPool(4)
		ctx, cancelFn := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 1 << 20
		err := p.ForCtx(ctx, n, strategy, func(i int) {
			if ran.Add(1) == 64 {
				cancelFn()
			}
		})
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Fatalf("%v: want ErrCanceled, got %v", strategy, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("%v: cancellation ignored, all %d iterations ran", strategy, got)
		}
		// The pool must remain usable after a canceled round.
		coverageCheck(t, 128, func(mark func(int)) {
			p.For(128, strategy, mark)
		})
		p.Close()
		cancelFn()
	}
}

func TestForCtxAlreadyCanceledRunsNothing(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	var ran atomic.Int64
	err := p.ForCtx(ctx, 1000, RoundRobin, func(i int) { ran.Add(1) })
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d iterations ran on a dead context", ran.Load())
	}
}

// TestCanceledForCtxLeaksNoGoroutines is the abort-leak regression guard: a
// round canceled mid-flight must still complete its barrier, and closing the
// pool afterwards must return the goroutine count to its baseline.
func TestCanceledForCtxLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		p := NewPool(8)
		ctx, cancelFn := context.WithCancel(context.Background())
		var ran atomic.Int64
		_ = p.ForCtx(ctx, 1<<18, Dynamic, func(i int) {
			if ran.Add(1) == 100 {
				cancelFn()
			}
		})
		p.Close()
		cancelFn()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after canceled rounds: before=%d now=%d", before, runtime.NumGoroutine())
}
