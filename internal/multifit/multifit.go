// Package multifit implements the MultiFit (MF) algorithm of Coffman, Garey
// and Johnson, referenced in the paper's related work: P||Cmax is viewed as
// bin packing with the makespan as the bin capacity, and the smallest
// capacity for which first-fit-decreasing needs at most m bins is found by
// binary search.
//
// The classical formulation runs k bisection iterations over real-valued
// capacities, giving a makespan of at most (1.22 + 2^-k) OPT. Processing
// times here are integers, so the capacity search runs to full convergence
// by default, which dominates any fixed k; SolveIterations provides the
// classical truncated variant for comparison benchmarks.
package multifit

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/binpack"
	"repro/internal/cancel"
	"repro/pcmax"
)

// Heuristic selects the inner packing rule the capacity search drives.
type Heuristic int

const (
	// FFD is first-fit decreasing, the classical MultiFit inner heuristic
	// with the proven (1.22 + 2^-k) bound.
	FFD Heuristic = iota
	// BFD is best-fit decreasing; it never uses more bins than FFD on the
	// same capacity in practice and serves as an ablation of the inner
	// heuristic choice.
	BFD
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case FFD:
		return "FFD"
	case BFD:
		return "BFD"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Solve runs MultiFit to convergence and returns the schedule built by FFD
// at the smallest capacity it found feasible. ctx is checked between
// capacity probes (one probe is a single O(n log n) packing, so the abort
// latency is one packing pass); a cancellation surfaces as the structured
// cancel error with no schedule.
func Solve(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, error) {
	return solve(ctx, in, -1, FFD)
}

// SolveHeuristic is Solve with an explicit inner packing heuristic.
func SolveHeuristic(ctx context.Context, in *pcmax.Instance, h Heuristic) (*pcmax.Schedule, error) {
	if h != FFD && h != BFD {
		return nil, fmt.Errorf("multifit: unknown heuristic %v", h)
	}
	return solve(ctx, in, -1, h)
}

// SolveIterations runs the classical k-iteration MultiFit. k must be >= 1.
func SolveIterations(ctx context.Context, in *pcmax.Instance, k int) (*pcmax.Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("multifit: iteration count %d < 1", k)
	}
	return solve(ctx, in, k, FFD)
}

func solve(ctx context.Context, in *pcmax.Instance, maxIter int, h Heuristic) (*pcmax.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sum := in.TotalTime()
	m64 := pcmax.Time(in.M)
	// Classical MultiFit bounds: CL = max(sum/m, max t) is an optimal
	// makespan lower bound; CU = max(2*sum/m, max t) is always FFD-feasible.
	lo := (sum + m64 - 1) / m64
	if mx := in.MaxTime(); mx > lo {
		lo = mx
	}
	hi := 2 * ((sum + m64 - 1) / m64)
	if mx := in.MaxTime(); mx > hi {
		hi = mx
	}
	if hi < lo {
		hi = lo
	}
	pack := binpack.FirstFitDecreasing
	if h == BFD {
		pack = binpack.BestFitDecreasing
	}
	fits := func(c pcmax.Time) (bool, error) {
		res, err := pack(in.Times, c)
		if err != nil {
			if errors.Is(err, binpack.ErrItemTooLarge) {
				return false, nil
			}
			return false, err
		}
		return res.Bins <= in.M, nil
	}
	iter := 0
	for lo < hi {
		if err := cancel.Check(ctx); err != nil {
			return nil, err
		}
		if maxIter > 0 && iter >= maxIter {
			break
		}
		iter++
		c := lo + (hi-lo)/2
		ok, err := fits(c)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = c
		} else {
			lo = c + 1
		}
	}
	res, err := pack(in.Times, hi)
	if err != nil {
		return nil, err
	}
	if res.Bins > in.M {
		// Cannot happen: hi is maintained FFD-feasible. Guard anyway so a
		// future regression surfaces as an error, not a corrupt schedule.
		return nil, fmt.Errorf("multifit: internal error, %d bins at capacity %d exceed m=%d", res.Bins, hi, in.M)
	}
	sched := pcmax.NewSchedule(in.M, in.N())
	copy(sched.Assignment, res.Assign)
	return sched, nil
}
