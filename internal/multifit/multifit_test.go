package multifit_test

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/listsched"
	"repro/internal/multifit"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestSolveSimpleOptimal(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 4, 3, 2}}
	s, err := multifit.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(in); got != 7 {
		t.Fatalf("MultiFit makespan = %d, want 7 (optimal)", got)
	}
}

func TestSolveEqualJobs(t *testing.T) {
	in := &pcmax.Instance{M: 3, Times: []pcmax.Time{4, 4, 4, 4, 4, 4}}
	s, err := multifit.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(in); got != 8 {
		t.Fatalf("makespan = %d, want 8", got)
	}
}

func TestSolveSingleMachine(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{3, 9, 2}}
	s, err := multifit.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(in); got != 14 {
		t.Fatalf("makespan = %d, want 14", got)
	}
}

func TestSolveMoreMachinesThanJobs(t *testing.T) {
	in := &pcmax.Instance{M: 5, Times: []pcmax.Time{8, 2}}
	s, err := multifit.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(in); got != 8 {
		t.Fatalf("makespan = %d, want 8", got)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	if _, err := multifit.Solve(context.Background(), &pcmax.Instance{M: 0, Times: []pcmax.Time{1}}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestSolveIterationsRejectsBadK(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{1, 2}}
	if _, err := multifit.SolveIterations(context.Background(), in, 0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestIterationsConvergeToFullSolve(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 5, N: 40, Seed: 3})
	full, err := multifit.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Enough iterations must match the converged search exactly.
	k40, err := multifit.SolveIterations(context.Background(), in, 40)
	if err != nil {
		t.Fatal(err)
	}
	if full.Makespan(in) != k40.Makespan(in) {
		t.Fatalf("40 iterations %d != converged %d", k40.Makespan(in), full.Makespan(in))
	}
	// Few iterations are valid schedules too, possibly worse.
	k1, err := multifit.SolveIterations(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.Validate(in); err != nil {
		t.Fatal(err)
	}
	if k1.Makespan(in) < full.Makespan(in) {
		t.Fatalf("truncated search beat the converged one: %d < %d", k1.Makespan(in), full.Makespan(in))
	}
}

func TestKnownBoundAgainstOptimumProperty(t *testing.T) {
	// MultiFit run to convergence is within 13/11 of optimal (Yue's bound);
	// assert the looser classical 1.22 against brute force.
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: m, Times: times}
		s, err := multifit.Solve(context.Background(), in)
		if err != nil || s.Validate(in) != nil {
			return false
		}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		return float64(s.Makespan(in)) <= 1.22*float64(opt.Makespan(in))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBeatsLPTOnAdversarialFamily(t *testing.T) {

	// LPT-adversarial family: FFD at capacity 3m pairs 2m-j with m+j and
	// fills one bin with the three size-m jobs, so converged MultiFit finds
	// the optimum 3m while LPT is stuck at 4m-1.
	for _, m := range []int{2, 3, 5, 8, 10} {
		in, err := workload.AdversarialLPT(m)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := multifit.Solve(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mf.Makespan(in), pcmax.Time(3*m); got != want {
			t.Fatalf("m=%d: MultiFit makespan %d, want %d", m, got, want)
		}
		if lpt := listsched.LPT(in).Makespan(in); mf.Makespan(in) >= lpt {
			t.Fatalf("m=%d: MultiFit %d did not beat LPT %d", m, mf.Makespan(in), lpt)
		}
	}
}

func TestHeuristicVariantsBothValid(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 6, N: 50, Seed: 4})
	ffd, err := multifit.SolveHeuristic(context.Background(), in, multifit.FFD)
	if err != nil {
		t.Fatal(err)
	}
	bfd, err := multifit.SolveHeuristic(context.Background(), in, multifit.BFD)
	if err != nil {
		t.Fatal(err)
	}
	if err := ffd.Validate(in); err != nil {
		t.Fatal(err)
	}
	if err := bfd.Validate(in); err != nil {
		t.Fatal(err)
	}
	if ffd.Makespan(in) < in.LowerBound() || bfd.Makespan(in) < in.LowerBound() {
		t.Fatal("makespan below lower bound")
	}
}

func TestHeuristicUnknownRejected(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{1, 2}}
	if _, err := multifit.SolveHeuristic(context.Background(), in, multifit.Heuristic(9)); err == nil {
		t.Fatal("want unknown-heuristic error")
	}
}

func TestHeuristicStrings(t *testing.T) {
	if multifit.FFD.String() != "FFD" || multifit.BFD.String() != "BFD" {
		t.Fatal("heuristic names changed")
	}
	if multifit.Heuristic(9).String() == "" {
		t.Fatal("unknown heuristic should render")
	}
}

func TestBFDWithinBoundProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: m, Times: times}
		s, err := multifit.SolveHeuristic(context.Background(), in, multifit.BFD)
		if err != nil || s.Validate(in) != nil {
			return false
		}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		return float64(s.Makespan(in)) <= 1.25*float64(opt.Makespan(in))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
