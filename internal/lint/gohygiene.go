package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoHygiene guards against leaked goroutines, the failure mode behind the
// PR-1 par.Pool Close/For race: outside internal/par (the one package whose
// job is goroutine lifecycle management), every `go` statement must be
// lexically paired with a join — a sync.WaitGroup.Wait, a channel receive,
// or a range over a channel — in the same enclosing function, so no solver
// entry point can return while its workers are still running.
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc:  "every go statement outside internal/par joins (WaitGroup.Wait or channel receive) in the same function",
	Run:  runGoHygiene,
}

func runGoHygiene(p *Pass) {
	if p.Pkg.RelPath == "internal/par" || strings.HasSuffix(p.Pkg.Path, "/internal/par") {
		return
	}
	for _, f := range p.Files() {
		var goStmts []*ast.GoStmt
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, g)
			}
			return true
		})
		for _, g := range goStmts {
			body := enclosingFuncBody(f, g.Pos())
			if body == nil || !hasJoin(p, body) {
				p.Reportf(g.Pos(),
					"go statement without a join (WaitGroup.Wait, channel receive or range) in the same function; spawn through internal/par or add an explicit barrier")
			}
		}
	}
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal whose span contains pos.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			// Inspect visits outer functions before inner ones, so the last
			// containing body seen is the innermost.
			best = body
		}
		return true
	})
	return best
}

// hasJoin reports whether the function body contains a joining construct:
// a sync.WaitGroup Wait call, a channel receive, or a range over a channel.
func hasJoin(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupWait(p.Pkg, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
