package lint

// A small forward dataflow framework over the CFGs of cfg.go: analyses
// supply a join (merge at control-flow confluences) and a transfer function
// (effect of one basic block) and get the fixpoint facts at every block
// boundary. Both concurrency analyzers sit on it — lockorder runs a
// may-analysis (union join) over held-mutex sets, waitbalance a
// must-analysis (intersection join) over surely-called-Done sets — and the
// engine is deliberately generic so the next invariant check does not start
// from scratch.

// Fact is one dataflow fact. Implementations must be immutable once handed
// to the engine (Join and Transfer return fresh values) and EqualFact must
// be an equivalence so the fixpoint iteration can detect convergence.
type Fact interface {
	EqualFact(Fact) bool
}

// FlowProblem describes one forward dataflow analysis.
type FlowProblem struct {
	// Entry is the fact at function entry.
	Entry Fact
	// Join merges the facts of two predecessors at a control-flow join. It
	// must be commutative, associative and monotone for the iteration to
	// converge.
	Join func(a, b Fact) Fact
	// Transfer applies one basic block's effect to its incoming fact.
	Transfer func(b *Block, in Fact) Fact
}

// FlowResult holds the fixpoint facts. Blocks unreachable from the entry
// have no entry in either map (their facts are bottom).
type FlowResult struct {
	// In is the fact at each block's entry, Out at its exit.
	In, Out map[*Block]Fact
}

// Forward computes the forward fixpoint of the problem over the CFG with a
// worklist iteration. Termination requires the usual lattice conditions:
// finitely many facts reachable from Entry under Join/Transfer (every
// analyzer here works on finite sets drawn from the function's own
// identifiers, so height is bounded by construction).
func (c *CFG) Forward(p FlowProblem) *FlowResult {
	res := &FlowResult{In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	res.In[c.Entry] = p.Entry
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := p.Transfer(b, res.In[b])
		if prev, ok := res.Out[b]; ok && prev.EqualFact(out) {
			continue
		}
		res.Out[b] = out
		for _, s := range b.Succs {
			in, ok := res.In[s]
			var merged Fact
			if !ok {
				merged = out
			} else {
				merged = p.Join(in, out)
			}
			if ok && merged.EqualFact(in) {
				continue
			}
			res.In[s] = merged
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}
