package lint

// A small forward dataflow framework over the CFGs of cfg.go: analyses
// supply a join (merge at control-flow confluences) and a transfer function
// (effect of one basic block) and get the fixpoint facts at every block
// boundary. Both concurrency analyzers sit on it — lockorder runs a
// may-analysis (union join) over held-mutex sets, waitbalance a
// must-analysis (intersection join) over surely-called-Done sets — and the
// engine is deliberately generic so the next invariant check does not start
// from scratch.

// Fact is one dataflow fact. Implementations must be immutable once handed
// to the engine (Join and Transfer return fresh values) and EqualFact must
// be an equivalence so the fixpoint iteration can detect convergence.
type Fact interface {
	EqualFact(Fact) bool
}

// FlowProblem describes one forward dataflow analysis.
type FlowProblem struct {
	// Entry is the fact at function entry.
	Entry Fact
	// Join merges the facts of two predecessors at a control-flow join. It
	// must be commutative, associative and monotone for the iteration to
	// converge.
	Join func(a, b Fact) Fact
	// Transfer applies one basic block's effect to its incoming fact.
	Transfer func(b *Block, in Fact) Fact
	// EdgeTransfer, when set, refines a block's outgoing fact per edge
	// before it merges into the successor. The interval analysis uses it for
	// branch-condition refinement (the true and false edges of a guard carry
	// different range facts) and for resolving phi arguments per predecessor.
	EdgeTransfer func(from, to *Block, out Fact) Fact
	// Widen, when set, accelerates convergence on lattices of unbounded
	// height: once a block's incoming fact has been re-merged more than
	// WidenAfter times, the merge result is widened against the previous
	// fact instead of joined exactly. Widen must return a fact at least as
	// large as both arguments and must reach a fixed bound in finitely many
	// applications (the interval lattice widens to guard thresholds, then to
	// infinity).
	Widen func(b *Block, old, merged Fact) Fact
	// WidenAfter is the per-block merge count that triggers Widen;
	// 0 selects a small default.
	WidenAfter int
}

// FlowResult holds the fixpoint facts. Blocks unreachable from the entry
// have no entry in either map (their facts are bottom).
type FlowResult struct {
	// In is the fact at each block's entry, Out at its exit.
	In, Out map[*Block]Fact
}

// Forward computes the forward fixpoint of the problem over the CFG with a
// worklist iteration. Termination requires the usual lattice conditions:
// finitely many facts reachable from Entry under Join/Transfer (every
// analyzer here works on finite sets drawn from the function's own
// identifiers, so height is bounded by construction).
func (c *CFG) Forward(p FlowProblem) *FlowResult {
	res := &FlowResult{In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	res.In[c.Entry] = p.Entry
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	widenAfter := p.WidenAfter
	if widenAfter <= 0 {
		widenAfter = 4
	}
	merges := map[*Block]int{}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := p.Transfer(b, res.In[b])
		if prev, ok := res.Out[b]; ok && prev.EqualFact(out) {
			continue
		}
		res.Out[b] = out
		for _, s := range b.Succs {
			edge := out
			if p.EdgeTransfer != nil {
				edge = p.EdgeTransfer(b, s, out)
			}
			in, ok := res.In[s]
			var merged Fact
			if !ok {
				merged = edge
			} else {
				merged = p.Join(in, edge)
			}
			if ok && merged.EqualFact(in) {
				continue
			}
			if ok && p.Widen != nil {
				if merges[s]++; merges[s] > widenAfter {
					merged = p.Widen(s, in, merged)
					if merged.EqualFact(in) {
						continue
					}
				}
			}
			res.In[s] = merged
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}
