package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseBody parses a function body from a snippet of statements.
func parseBody(t *testing.T, stmts string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + stmts + "\n}"
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGStraightLine(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "x := 1\ny := x\n_ = y"))
	if !cfg.Reachable()[cfg.Exit] {
		t.Fatalf("exit unreachable in straight-line code")
	}
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
}

func TestCFGExitReachability(t *testing.T) {
	cases := []struct {
		name      string
		stmts     string
		reachable bool
	}{
		{"plain return", "return", true},
		{"infinite loop", "for {\n}", false},
		{"loop with break", "for {\nbreak\n}", true},
		{"loop with cond", "for i := 0; i < 3; i++ {\n}", true},
		{"infinite loop with continue", "for {\ncontinue\n}", false},
		{"labeled break from nested", "outer:\nfor {\nfor {\nbreak outer\n}\n}", true},
		{"labeled continue stays inside", "outer:\nfor {\nfor {\ncontinue outer\n}\n}", false},
		{"empty select", "select {\n}", false},
		{"select with case", "var ch chan int\nselect {\ncase <-ch:\n}", true},
		// Panic routes to Exit: the function terminates (by crashing), and
		// waitbalance depends on the edge to keep panic paths out of the
		// Done intersection.
		{"panic", "panic(\"x\")", true},
		{"conditional panic", "var b bool\nif b {\npanic(\"x\")\n}", true},
		{"goto forward", "goto done\ndone:\nreturn", true},
		{"goto self loop", "again:\ngoto again", false},
		{"switch all terminate", "var x int\nswitch x {\ncase 1:\npanic(\"a\")\ndefault:\npanic(\"b\")\n}", true},
		{"switch no default", "var x int\nswitch x {\ncase 1:\npanic(\"a\")\n}", true},
		{"range can finish", "var xs []int\nfor range xs {\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, tc.stmts))
			if got := cfg.Reachable()[cfg.Exit]; got != tc.reachable {
				t.Errorf("exit reachable = %v, want %v", got, tc.reachable)
			}
		})
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg := BuildCFG(parseBody(t, "defer a()\nif true {\ndefer b()\n}"))
	if len(cfg.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(cfg.Defers))
	}
}

func TestCFGFallthrough(t *testing.T) {
	// Fallthrough links case 1 to case 2; a panic in case 2 then makes the
	// fallthrough path terminal, but case 2 is still reachable from the head
	// as well, so exit stays reachable only through case 3/no-match.
	cfg := BuildCFG(parseBody(t, "var x int\nswitch x {\ncase 1:\nfallthrough\ncase 2:\npanic(\"a\")\n}"))
	if !cfg.Reachable()[cfg.Exit] {
		t.Errorf("exit should stay reachable through the no-match path")
	}
}

// countFact counts statements for the dataflow engine test: join takes the
// max, so the fixpoint at exit is the longest path length in nodes.
type countFact int

func (c countFact) EqualFact(o Fact) bool { return c == o.(countFact) }

func TestForwardDataflow(t *testing.T) {
	// Two branches of different lengths; max-join at the merge sees the
	// longer one. The loop is bounded by the facts' finite range because
	// transfer only counts each block once per in-fact.
	body := parseBody(t, "var b bool\nif b {\na()\nb2()\n} else {\nc()\n}\nd()")
	cfg := BuildCFG(body)
	res := cfg.Forward(FlowProblem{
		Entry: countFact(0),
		Join: func(a, b Fact) Fact {
			if a.(countFact) > b.(countFact) {
				return a
			}
			return b
		},
		Transfer: func(blk *Block, in Fact) Fact {
			return in.(countFact) + countFact(len(blk.Nodes))
		},
	})
	out, ok := res.In[cfg.Exit]
	if !ok {
		t.Fatalf("no fact at exit")
	}
	// Entry block: var decl + cond (2 nodes). Then branch (2) vs else (1),
	// join block d() (1). Longest chain: 2+2+1 = 5.
	if out.(countFact) != 5 {
		t.Errorf("fact at exit = %d, want 5", out)
	}
}

func TestForwardDataflowUnreachable(t *testing.T) {
	body := parseBody(t, "return\na()")
	cfg := BuildCFG(body)
	res := cfg.Forward(FlowProblem{
		Entry:    countFact(0),
		Join:     func(a, b Fact) Fact { return a },
		Transfer: func(blk *Block, in Fact) Fact { return in },
	})
	for blk, in := range res.In {
		_ = in
		if !cfg.Reachable()[blk] {
			t.Errorf("unreachable block %d has a fact", blk.Index)
		}
	}
}

func TestCallGraph(t *testing.T) {
	mod, err := LoadModule("testdata/src/leakygo")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildCallGraph(mod)
	byName := map[string]*CallNode{}
	for _, n := range g.SortedNodes() {
		byName[n.Fn.Name()] = n
	}
	run, ok := byName["Run"]
	if !ok {
		t.Fatalf("Run not in call graph")
	}
	foundSpin := false
	for _, c := range run.Callees {
		if c.Name() == "spin" {
			foundSpin = true
		}
	}
	if !foundSpin {
		t.Errorf("Run should reference spin (go statement target): %v", run.Callees)
	}

	// Reachability from Start: helper (static call) and step (transitively)
	// are reached with Start as witness; Run's spin is not.
	witness := g.Reachable([]*types.Func{byName["Start"].Fn})
	if witness[byName["helper"].Fn] != byName["Start"].Fn {
		t.Errorf("helper should be reachable from Start")
	}
	if witness[byName["step"].Fn] != byName["Start"].Fn {
		t.Errorf("step should be reachable from Start (through helper's goroutine literal)")
	}
	if _, ok := witness[byName["spin"].Fn]; ok {
		t.Errorf("spin should not be reachable from Start alone")
	}

	// FuncDecl resolves graph nodes back to their syntax.
	pkg, decl := mod.FuncDecl(byName["spin"].Fn)
	if pkg == nil || decl == nil || decl.Name.Name != "spin" {
		t.Errorf("FuncDecl(spin) = %v, %v", pkg, decl)
	}
}
