package lint

// Shared helpers for the hot-path analyzers: directive collection for
// //lint:hotpath and //lint:parseroot, and the cold-branch classification
// that scopes allocation checks to the code that actually runs on the hot
// path.

import (
	"go/ast"
	"go/types"
	"strings"
)

const parserootPrefix = "//lint:parseroot"

// isParserootDirective matches //lint:parseroot comments (with or without a
// trailing reason).
func isParserootDirective(text string) bool {
	if !strings.HasPrefix(text, parserootPrefix) {
		return false
	}
	rest := text[len(parserootPrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// directiveFuncs returns the file's function declarations whose doc comment
// carries a directive matched by match, plus the set of comments that were
// attached to a declaration (for stray-directive checks).
func directiveFuncs(f *ast.File, match func(string) bool) ([]*ast.FuncDecl, map[*ast.Comment]bool) {
	var fns []*ast.FuncDecl
	attached := map[*ast.Comment]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		marked := false
		for _, c := range fd.Doc.List {
			if match(c.Text) {
				attached[c] = true
				marked = true
			}
		}
		if marked {
			fns = append(fns, fd)
		}
	}
	return fns, attached
}

// reportStray flags directive comments that are not part of any function
// declaration's doc comment.
func reportStray(pass *Pass, f *ast.File, match func(string) bool, attached map[*ast.Comment]bool, what string) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if match(c.Text) && !attached[c] {
				pass.Reportf(c.Pos(), "stray %s: the directive must be part of a function declaration's doc comment", what)
			}
		}
	}
}

// coldBlocks classifies the blocks of a hot function that only execute on
// error bail-outs: a block is cold when no "good" block is reachable from
// it. Good blocks keep the function on its productive path — a normal
// (non-error) return, falling off the end, or taking a loop back edge.
// Allocation checks skip cold blocks: a composite literal on the
// `return fmt.Errorf(...)` path costs nothing per hot iteration.
func coldBlocks(info *types.Info, fd *ast.FuncDecl, cfg *CFG, dom *DomInfo) map[*Block]bool {
	good := map[*Block]bool{}
	for _, b := range dom.rpo {
		if b == cfg.Exit {
			continue
		}
		for _, s := range b.Succs {
			if s == cfg.Exit {
				if exitIsGood(info, fd, b) {
					good[b] = true
				}
				continue
			}
			// A back edge: the successor dominates the block, so the block
			// is part of a loop body — hot by definition.
			if dom.Dominates(s, b) {
				good[b] = true
			}
		}
	}
	// Backward reachability: every block that can reach a good block is
	// warm; the rest (reachable but err-return-only) is cold.
	warm := map[*Block]bool{}
	var queue []*Block
	for _, b := range dom.rpo {
		if good[b] {
			warm[b] = true
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, p := range dom.preds[b] {
			if !warm[p] {
				warm[p] = true
				queue = append(queue, p)
			}
		}
	}
	cold := map[*Block]bool{}
	for _, b := range dom.rpo {
		if b != cfg.Exit && !warm[b] {
			cold[b] = true
		}
	}
	return cold
}

// exitIsGood classifies how a block reaches the exit: a panic call or a
// return whose trailing error result is non-nil marks an error bail-out;
// anything else (normal return, fall-off) is the productive path.
func exitIsGood(info *types.Info, fd *ast.FuncDecl, b *Block) bool {
	if len(b.Nodes) == 0 {
		return true // empty fall-off block
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return returnIsNormal(info, fd, last)
	case *ast.ExprStmt:
		if isPanicCall(last.X) {
			return false
		}
	}
	return true
}

// returnIsNormal reports whether the return is a success-path return: the
// function has no trailing error result, or the trailing result expression
// is a nil literal. Naked returns count as normal (the conservative choice:
// fewer blocks classified cold means more allocation findings, never
// fewer).
func returnIsNormal(info *types.Info, fd *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	results := fd.Type.Results
	if results == nil || results.NumFields() == 0 {
		return true
	}
	var lastType ast.Expr
	for _, f := range results.List {
		lastType = f.Type
	}
	id, ok := lastType.(*ast.Ident)
	if !ok || id.Name != "error" {
		return true
	}
	if len(ret.Results) == 0 {
		return true // naked return: assume success path
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	if lit, ok := last.(*ast.Ident); ok && lit.Name == "nil" {
		return true
	}
	if tv, ok := info.Types[last]; ok && tv.IsNil() {
		return true
	}
	return false
}
