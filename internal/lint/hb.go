package lint

// Parallel-region discovery and happens-before edges for the MHP engine
// (ALGORITHM.md §16). A parallel region is code that may execute on a
// goroutine other than its spawner: the body of a `go` statement (a function
// literal or a statically resolved callee) or a closure dispatched onto one
// of the repo's worker pools (`par.Pool`/`par.BarrierPool` For/ForWorker/
// ForBatch and their Ctx variants — recognized structurally as methods of a
// type declared in a package named "par", so the testdata fixtures can model
// them without importing the real substrate).
//
// The happens-before edges modeled here are the ones the repo's concurrency
// idioms actually use:
//
//   - Pool dispatch is synchronous: For/ForWorker/ForBatch return only after
//     the internal barrier, so the spawner never runs concurrently with the
//     dispatched closure. The only hazard is the closure racing with its own
//     sibling instances (SelfParallel).
//   - A `go` statement orders everything before it in the spawner ahead of
//     the region body (spawn edge).
//   - wg.Done inside the region paired with wg.Wait in the spawner, and a
//     channel send/close inside the region paired with a receive in the
//     spawner, order the region ahead of the spawner's continuation (join
//     edge, JoinEnd).
//
// Everything below the model — sense-reversing barrier words, seq-tagged CAS
// handoffs — must be marked //lint:hbimpl <reason> on the implementing
// function; sharedwrite skips those bodies and the reason documents why the
// ordering holds anyway.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RegionKind distinguishes how a parallel region is spawned.
type RegionKind uint8

const (
	// RegionGo is the body of a go statement.
	RegionGo RegionKind = iota
	// RegionDispatch is a closure handed to a worker-pool For* method.
	RegionDispatch
)

func (k RegionKind) String() string {
	if k == RegionDispatch {
		return "dispatch"
	}
	return "go"
}

// ParRegion is one parallel region discovered in a function declaration.
type ParRegion struct {
	Pkg      *Package
	EnclFn   *types.Func
	EnclDecl *ast.FuncDecl
	// Site is the spawn site: the *ast.GoStmt or the dispatch *ast.CallExpr.
	Site ast.Node
	Kind RegionKind
	// Lit is the region's function literal; nil when the go statement calls
	// a declared function instead (then CalleeFn/CalleeDecl are set).
	Lit        *ast.FuncLit
	CalleeFn   *types.Func
	CalleePkg  *Package
	CalleeDecl *ast.FuncDecl
	// Worker is the worker-id parameter of a ForWorker/ForBatch closure: the
	// index the interval engine must prove per-worker writes use.
	Worker *types.Var
	// Dist are the instance-distinguishing parameters: values that differ
	// between any two concurrently running instances of the region (worker
	// id, dispatch item index, and go-call arguments that vary per spawn
	// iteration). Indexing a shared container by a value derived from these
	// partitions the writes.
	Dist map[*types.Var]bool
	// SelfParallel reports that two instances of this region may run
	// concurrently (every dispatch; a go statement inside a loop that is not
	// joined within that loop).
	SelfParallel bool
	// JoinEnd is the position of the spawner-side join (wg.Wait or channel
	// receive matching the region); token.NoPos when the region is never
	// joined, in which case the region races with the whole rest of the
	// spawner.
	JoinEnd token.Pos
	// loopEnd is the End of the innermost enclosing loop statement when the
	// spawn site sits inside one (used to decide SelfParallel after joins).
	loopEnd token.Pos
}

// Body returns the region's executable body: the literal's or the resolved
// callee's. Nil when the go statement's callee cannot be resolved.
func (r *ParRegion) Body() *ast.BlockStmt {
	if r.Lit != nil {
		return r.Lit.Body
	}
	if r.CalleeDecl != nil {
		return r.CalleeDecl.Body
	}
	return nil
}

// BodyPkg returns the package whose type info covers Body().
func (r *ParRegion) BodyPkg() *Package {
	if r.Lit != nil || r.CalleeDecl == nil {
		return r.Pkg
	}
	return r.CalleePkg
}

// dispatchArity maps the recognized pool-dispatch method names to the index
// of the worker-id parameter of their closure (-1: none).
var dispatchArity = map[string]int{
	"For": -1, "ForCtx": -1,
	"ForWorker": 0, "ForWorkerCtx": 0,
	"ForBatch": 0, "ForBatchCtx": 0,
}

// isPoolDispatch reports whether the call is a worker-pool dispatch: a
// method named in dispatchArity whose receiver type is declared in a package
// named "par", or the package function par.For.
func isPoolDispatch(pkg *Package, call *ast.CallExpr) (workerParam int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	w, named := dispatchArity[sel.Sel.Name]
	if !named {
		return 0, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Name() != "par" {
		return 0, false
	}
	return w, true
}

// regionsOf discovers the parallel regions spawned in one declaration. Loop
// context is tracked so go-call arguments that vary per spawn iteration can
// be marked instance-distinguishing.
func regionsOf(mod *Module, pkg *Package, fn *types.Func, fd *ast.FuncDecl) []*ParRegion {
	if fd.Body == nil {
		return nil
	}
	var regions []*ParRegion
	var loops []ast.Stmt // enclosing for/range statements, innermost last
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			for _, child := range loopChildren(n) {
				ast.Inspect(child, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			if r := goRegion(mod, pkg, fn, fd, n, loops); r != nil {
				regions = append(regions, r)
			}
			// Descend: the spawn arguments and the body may contain nested
			// spawns (attributed to the same declaration, like the call
			// graph does).
			return true
		case *ast.CallExpr:
			if r := dispatchRegion(pkg, fn, fd, n, loops); r != nil {
				regions = append(regions, r)
			}
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	for _, r := range regions {
		findJoin(pkg, fd, r)
		if r.Kind == RegionGo {
			r.SelfParallel = r.loopEnd.IsValid() &&
				!(r.JoinEnd.IsValid() && r.JoinEnd < r.loopEnd)
		}
	}
	return regions
}

// loopChildren returns the sub-nodes of a loop statement in evaluation
// order, so the walker can re-enter them with the loop on the stack.
func loopChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		out = append(out, n.Body)
	case *ast.RangeStmt:
		out = append(out, n.X, n.Body)
	}
	return out
}

// goRegion builds the region for one go statement.
func goRegion(mod *Module, pkg *Package, fn *types.Func, fd *ast.FuncDecl, g *ast.GoStmt, loops []ast.Stmt) *ParRegion {
	r := &ParRegion{
		Pkg: pkg, EnclFn: fn, EnclDecl: fd,
		Site: g, Kind: RegionGo, Dist: map[*types.Var]bool{},
	}
	if len(loops) > 0 {
		r.loopEnd = loops[len(loops)-1].End()
	}
	varying := loopVaryingVars(pkg, loops)
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		r.Lit = fun
		markDistinguishing(pkg, paramVars(pkg, fun.Type), g.Call.Args, varying, r.Dist)
	default:
		callee := staticCallee(pkg, g.Call)
		if callee == nil || !moduleLocal(mod, callee) {
			return r // opaque body; still a region (windows see its spawn args)
		}
		cpkg, cdecl := mod.FuncDecl(callee)
		if cdecl == nil {
			return r
		}
		r.CalleeFn, r.CalleePkg, r.CalleeDecl = callee, cpkg, cdecl
		markDistinguishing(cpkg, paramVars(cpkg, cdecl.Type), g.Call.Args, varying, r.Dist)
	}
	return r
}

// dispatchRegion builds the region for one pool-dispatch call carrying a
// function-literal body.
func dispatchRegion(pkg *Package, fn *types.Func, fd *ast.FuncDecl, call *ast.CallExpr, loops []ast.Stmt) *ParRegion {
	wIdx, ok := isPoolDispatch(pkg, call)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return nil // body passed as a value; opaque to the model
	}
	r := &ParRegion{
		Pkg: pkg, EnclFn: fn, EnclDecl: fd,
		Site: call, Kind: RegionDispatch, Lit: lit,
		SelfParallel: true,
		// Dispatch is synchronous: the call returns after the pool barrier,
		// so the spawner continuation is ordered after the whole round.
		JoinEnd: call.Pos(),
		Dist:    map[*types.Var]bool{},
	}
	if len(loops) > 0 {
		r.loopEnd = loops[len(loops)-1].End()
	}
	// Every closure parameter is instance-distinguishing: the pool delivers
	// each (worker, item) pair to exactly one concurrently running instance.
	params := paramVars(pkg, lit.Type)
	for _, p := range params {
		if p != nil {
			r.Dist[p] = true
		}
	}
	if wIdx >= 0 && wIdx < len(params) {
		r.Worker = params[wIdx]
	}
	return r
}

// paramVars resolves a function type's parameter objects in order (nil for
// blank identifiers).
func paramVars(pkg *Package, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			v, _ := pkg.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
		if len(f.Names) == 0 {
			out = append(out, nil)
		}
	}
	return out
}

// loopVaryingVars collects the variables that change between iterations of
// the enclosing loops: for-clause init/post targets, range key/value
// variables, and anything assigned inside a loop body. A go-call argument
// mentioning one of these differs from spawn to spawn.
func loopVaryingVars(pkg *Package, loops []ast.Stmt) map[*types.Var]bool {
	varying := map[*types.Var]bool{}
	record := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			varying[v] = true
		} else if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			varying[v] = true
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.ForStmt:
			for _, s := range []ast.Stmt{l.Init, l.Post} {
				if s == nil {
					continue
				}
				recordAssigned(pkg, s, record)
			}
			ast.Inspect(l.Body, func(n ast.Node) bool {
				if s, ok := n.(ast.Stmt); ok {
					recordAssigned(pkg, s, record)
				}
				return true
			})
		case *ast.RangeStmt:
			if l.Key != nil {
				record(l.Key)
			}
			if l.Value != nil {
				record(l.Value)
			}
			ast.Inspect(l.Body, func(n ast.Node) bool {
				if s, ok := n.(ast.Stmt); ok {
					recordAssigned(pkg, s, record)
				}
				return true
			})
		}
	}
	return varying
}

// recordAssigned feeds every variable the statement assigns to record.
func recordAssigned(pkg *Package, s ast.Stmt, record func(ast.Expr)) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			record(lhs)
		}
	case *ast.IncDecStmt:
		record(s.X)
	}
}

// markDistinguishing marks the region parameters whose corresponding spawn
// arguments vary per iteration of an enclosing loop. With no enclosing loop
// there is only one instance, so nothing distinguishes (SelfParallel will be
// false and Dist is irrelevant).
func markDistinguishing(pkg *Package, params []*types.Var, args []ast.Expr, varying map[*types.Var]bool, dist map[*types.Var]bool) {
	for i, p := range params {
		if p == nil || i >= len(args) {
			continue
		}
		mentions := false
		ast.Inspect(args[i], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := pkg.Info.Uses[id].(*types.Var); ok && varying[v] {
					mentions = true
				}
			}
			return true
		})
		if mentions {
			dist[p] = true
		}
	}
}

// findJoin locates the spawner-side join for a go region: the first wg.Wait
// after the spawn whose WaitGroup the region Dones, or the first receive
// from a channel the region sends on or closes.
func findJoin(pkg *Package, fd *ast.FuncDecl, r *ParRegion) {
	if r.Kind != RegionGo {
		return
	}
	body := r.Body()
	if body == nil {
		return
	}
	bpkg := r.BodyPkg()
	// The WaitGroups the region completes and the channels it signals.
	dones := map[*types.Var]bool{}
	signals := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if v, _ := addressedVar(bpkg, sel.X); v != nil && isWaitGroupType(v.Type()) {
					dones[v] = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if v, _ := addressedVar(bpkg, n.Args[0]); v != nil {
					signals[v] = true
				}
			}
		case *ast.SendStmt:
			if v, _ := addressedVar(bpkg, n.Chan); v != nil {
				signals[v] = true
			}
		}
		return true
	})
	if len(dones) == 0 && len(signals) == 0 {
		return
	}
	spawn := r.Site.Pos()
	best := token.NoPos
	consider := func(pos token.Pos) {
		if pos > spawn && (!best.IsValid() || pos < best) {
			best = pos
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // joins must run on the spawner's goroutine
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if v, _ := addressedVar(pkg, sel.X); v != nil && dones[v] {
					consider(n.Pos())
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if v, _ := addressedVar(pkg, n.X); v != nil && signals[v] {
					consider(n.Pos())
				}
			}
		case *ast.RangeStmt:
			if v, _ := addressedVar(pkg, n.X); v != nil && signals[v] {
				consider(n.Pos())
			}
		}
		return true
	})
	r.JoinEnd = best
}

// hbimplPrefix marks a function as implementing a synchronization primitive
// below the happens-before model (barrier words, CAS handoffs): sharedwrite
// trusts the documented reasoning instead of the model there.
const hbimplPrefix = "//lint:hbimpl"

// isHbimplDirective matches //lint:hbimpl comments.
func isHbimplDirective(text string) bool {
	if !strings.HasPrefix(text, hbimplPrefix) {
		return false
	}
	rest := text[len(hbimplPrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// hbimplReason extracts the directive's reason text ("" when missing).
func hbimplReason(text string) string {
	return strings.TrimSpace(strings.TrimPrefix(text, hbimplPrefix))
}

// hbimplFuncs collects every declared function in the module whose doc
// comment carries //lint:hbimpl, reporting directives with no reason (the
// reason is the proof sketch; a bare marker is an unchecked assumption).
func hbimplFuncs(pass *ModulePass) map[*types.Func]bool {
	marked := map[*types.Func]bool{}
	for _, pkg := range pass.Mod.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			fns, attached := directiveFuncs(f, isHbimplDirective)
			for _, fd := range fns {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					marked[fn] = true
				}
				for _, c := range fd.Doc.List {
					if isHbimplDirective(c.Text) && hbimplReason(c.Text) == "" {
						pass.Reportf(c.Pos(), "//lint:hbimpl needs a reason: say why the ordering holds below the happens-before model")
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if isHbimplDirective(c.Text) && !attached[c] {
						pass.Reportf(c.Pos(), "stray //lint:hbimpl: the directive must be part of a function declaration's doc comment")
					}
				}
			}
		}
	}
	return marked
}
