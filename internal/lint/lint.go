package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. Positions are relative to the module root so
// output is stable regardless of where schedlint runs.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check identifier used in output and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// IncludeTests makes Files() also yield the package's _test.go files.
	// Those are parsed but not type-checked, so only purely syntactic
	// analyzers may set this.
	IncludeTests bool
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package
	diags    *[]Diagnostic
}

// Files yields the files the analyzer should inspect: the type-checked
// non-test files, plus the parsed test files when IncludeTests is set.
func (p *Pass) Files() []*ast.File {
	if !p.Analyzer.IncludeTests {
		return p.Pkg.Files
	}
	out := make([]*ast.File, 0, len(p.Pkg.Files)+len(p.Pkg.TestFiles))
	out = append(out, p.Pkg.Files...)
	out = append(out, p.Pkg.TestFiles...)
	return out
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file  string // module-relative path
	line  int
	check string
}

// DirectiveCheck is the pseudo-check name under which malformed or unknown
// //lint:ignore directives are reported; it cannot itself be suppressed.
const DirectiveCheck = "lintdirective"

const ignorePrefix = "//lint:ignore"

// collectDirectives scans every comment of every parsed file (tests
// included: syntactic checks fire there too) for //lint:ignore directives.
// A well-formed directive is "//lint:ignore <check> <reason>" where <check>
// names a known analyzer and <reason> is non-empty; anything else is itself
// a diagnostic, so silent no-op suppressions cannot rot in the tree.
func collectDirectives(mod *Module, known map[string]bool, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, pkg := range mod.Packages {
		files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
		files = append(files, pkg.Files...)
		files = append(files, pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // some other //lint:ignoreXxx token, not ours
					}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						*diags = append(*diags, Diagnostic{
							File: file, Line: pos.Line, Col: pos.Column, Check: DirectiveCheck,
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
					case len(fields) == 1:
						*diags = append(*diags, Diagnostic{
							File: file, Line: pos.Line, Col: pos.Column, Check: DirectiveCheck,
							Message: fmt.Sprintf("directive for %q is missing a reason: every suppression must say why", fields[0]),
						})
					case !known[fields[0]]:
						*diags = append(*diags, Diagnostic{
							File: file, Line: pos.Line, Col: pos.Column, Check: DirectiveCheck,
							Message: fmt.Sprintf("directive names unknown check %q", fields[0]),
						})
					default:
						out = append(out, ignoreDirective{file: file, line: pos.Line, check: fields[0]})
					}
				}
			}
		}
	}
	return out
}

// suppress filters diagnostics covered by a directive on the same line or
// the line directly above (the "trailing comment" and "comment above"
// placements). The lintdirective pseudo-check is never suppressible.
func suppress(diags []Diagnostic, directives []ignoreDirective) []Diagnostic {
	type key struct {
		file  string
		line  int
		check string
	}
	idx := make(map[key]bool, 2*len(directives))
	for _, d := range directives {
		idx[key{d.file, d.line, d.check}] = true
		idx[key{d.file, d.line + 1, d.check}] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Check != DirectiveCheck && idx[key{d.File, d.Line, d.Check}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// RunAnalyzers loads the module at root and runs the given analyzers over
// every package, returning the surviving (non-suppressed) diagnostics
// sorted by position.
func RunAnalyzers(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunOnModule(mod, analyzers), nil
}

// RunOnModule runs the analyzers over an already-loaded module.
func RunOnModule(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			continue // empty directory package
		}
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Mod: mod, Pkg: pkg, diags: &diags})
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives := collectDirectives(mod, known, &diags)
	diags = suppress(diags, directives)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoRandGlobal,
		CtxFirst,
		GoHygiene,
		MapOrder,
		NakedPanic,
		MutexByValue,
	}
}
