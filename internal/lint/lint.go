package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/par"
)

// Diagnostic is one finding. Positions are relative to the module root so
// output is stable regardless of where schedlint runs.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named invariant check. Exactly one of Run and RunModule
// is set: Run analyzers see one package at a time, RunModule analyzers see
// the whole module at once (for interprocedural checks that chase calls
// across package boundaries, like atomicmix, lockorder and leakygo).
type Analyzer struct {
	// Name is the check identifier used in output and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunModule inspects the whole module in one pass.
	RunModule func(*ModulePass)
	// IncludeTests makes Files() also yield the package's _test.go files.
	// Those are parsed but not type-checked, so only purely syntactic
	// analyzers may set this.
	IncludeTests bool
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package
	diags    *[]Diagnostic
}

// Files yields the files the analyzer should inspect: the type-checked
// non-test files, plus the parsed test files when IncludeTests is set.
func (p *Pass) Files() []*ast.File {
	if !p.Analyzer.IncludeTests {
		return p.Pkg.Files
	}
	out := make([]*ast.File, 0, len(p.Pkg.Files)+len(p.Pkg.TestFiles))
	out = append(out, p.Pkg.Files...)
	out = append(out, p.Pkg.TestFiles...)
	return out
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	reportAt(p.Mod, p.Analyzer.Name, pos, p.diags, format, args...)
}

// ModulePass carries one module-level analyzer's run over a whole module.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	reportAt(p.Mod, p.Analyzer.Name, pos, p.diags, format, args...)
}

func reportAt(mod *Module, check string, pos token.Pos, diags *[]Diagnostic, format string, args ...any) {
	position := mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*diags = append(*diags, Diagnostic{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string // module-relative path
	line   int
	col    int
	check  string
	reason string
}

// Suppression is one well-formed //lint:ignore directive together with
// whether it actually suppressed a diagnostic in this run. A directive with
// Used == false is stale: the finding it once excused is gone, and keeping
// the comment would teach readers to ignore directives.
type Suppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

// DirectiveCheck is the pseudo-check name under which malformed or unknown
// //lint:ignore directives are reported; it cannot itself be suppressed.
const DirectiveCheck = "lintdirective"

const ignorePrefix = "//lint:ignore"

// collectDirectives scans every comment of every parsed file (tests
// included: syntactic checks fire there too) for //lint:ignore directives.
// A well-formed directive is "//lint:ignore <check> <reason>" where <check>
// names a known analyzer and <reason> is non-empty; anything else is itself
// a diagnostic, so silent no-op suppressions cannot rot in the tree.
func collectDirectives(mod *Module, known map[string]bool, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, pkg := range mod.Packages {
		files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
		files = append(files, pkg.Files...)
		files = append(files, pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // some other //lint:ignoreXxx token, not ours
					}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						*diags = append(*diags, Diagnostic{
							File: file, Line: pos.Line, Col: pos.Column, Check: DirectiveCheck,
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
					case len(fields) == 1:
						*diags = append(*diags, Diagnostic{
							File: file, Line: pos.Line, Col: pos.Column, Check: DirectiveCheck,
							Message: fmt.Sprintf("directive for %q is missing a reason: every suppression must say why", fields[0]),
						})
					case !known[fields[0]]:
						*diags = append(*diags, Diagnostic{
							File: file, Line: pos.Line, Col: pos.Column, Check: DirectiveCheck,
							Message: fmt.Sprintf("directive names unknown check %q", fields[0]),
						})
					default:
						out = append(out, ignoreDirective{
							file: file, line: pos.Line, col: pos.Column,
							check: fields[0], reason: strings.Join(fields[1:], " "),
						})
					}
				}
			}
		}
	}
	return out
}

// suppress filters diagnostics covered by a directive on the same line or
// the line directly above (the "trailing comment" and "comment above"
// placements). The lintdirective pseudo-check is never suppressible. The
// returned bitmap records, per directive, whether it suppressed anything —
// the raw material of the stale-suppression audit.
func suppress(diags []Diagnostic, directives []ignoreDirective) ([]Diagnostic, []bool) {
	type key struct {
		file  string
		line  int
		check string
	}
	idx := make(map[key][]int, 2*len(directives))
	for i, d := range directives {
		idx[key{d.file, d.line, d.check}] = append(idx[key{d.file, d.line, d.check}], i)
		idx[key{d.file, d.line + 1, d.check}] = append(idx[key{d.file, d.line + 1, d.check}], i)
	}
	used := make([]bool, len(directives))
	out := diags[:0]
	for _, d := range diags {
		if hits := idx[key{d.File, d.Line, d.Check}]; d.Check != DirectiveCheck && len(hits) > 0 {
			for _, i := range hits {
				used[i] = true
			}
			continue
		}
		out = append(out, d)
	}
	return out, used
}

// RunAnalyzers loads the module at root and runs the given analyzers over
// every package, returning the surviving (non-suppressed) diagnostics
// sorted by position.
func RunAnalyzers(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunOnModule(mod, analyzers), nil
}

// RunOnModule runs the analyzers over an already-loaded module on the
// calling goroutine.
func RunOnModule(mod *Module, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunOnModuleOpts(mod, analyzers, 1)
	return diags
}

// AnalyzerTiming is the cumulative wall time one analyzer spent across its
// work units (every package for Run analyzers, the whole module for
// RunModule analyzers), as reported by schedlint -v.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunOnModuleOpts runs the analyzers over an already-loaded module, fanning
// the (analyzer, package) work units out over workers goroutines of an
// internal/par.Pool (workers < 1 selects GOMAXPROCS). Every unit appends to
// its own pre-assigned slot and the slots are merged in a fixed order, so
// the returned diagnostics are bit-identical to a sequential run. Timings
// come back in analyzer order.
func RunOnModuleOpts(mod *Module, analyzers []*Analyzer, workers int) ([]Diagnostic, []AnalyzerTiming) {
	diags, timings, _ := RunOnModuleFull(mod, analyzers, workers)
	return diags, timings
}

// RunOnModuleFull is RunOnModuleOpts plus the suppression audit: every
// well-formed //lint:ignore directive in the tree, sorted by position, with
// Used reporting whether it suppressed a diagnostic in this run.
func RunOnModuleFull(mod *Module, analyzers []*Analyzer, workers int) ([]Diagnostic, []AnalyzerTiming, []Suppression) {
	type unit struct {
		a   *Analyzer
		ai  int
		pkg *Package // nil for a RunModule unit
	}
	var units []unit
	for ai, a := range analyzers {
		if a.RunModule != nil {
			units = append(units, unit{a: a, ai: ai})
			continue
		}
		for _, pkg := range mod.Packages {
			if pkg.Types == nil {
				continue // empty directory package
			}
			units = append(units, unit{a: a, ai: ai, pkg: pkg})
		}
	}
	workers = par.Normalize(workers)
	var pool *par.Pool
	if workers > 1 && len(units) > 1 {
		pool = par.NewPool(workers)
		defer pool.Close()
	}
	slots := make([][]Diagnostic, len(units))
	nanos := make([]atomicInt64, len(analyzers))
	forEachIdx(pool, len(units), func(i int) {
		u := units[i]
		start := time.Now()
		if u.pkg == nil {
			u.a.RunModule(&ModulePass{Analyzer: u.a, Mod: mod, diags: &slots[i]})
		} else {
			u.a.Run(&Pass{Analyzer: u.a, Mod: mod, Pkg: u.pkg, diags: &slots[i]})
		}
		nanos[u.ai].add(int64(time.Since(start)))
	})
	var diags []Diagnostic
	for _, s := range slots {
		diags = append(diags, s...)
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives := collectDirectives(mod, known, &diags)
	diags, used := suppress(diags, directives)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	sups := make([]Suppression, len(directives))
	for i, d := range directives {
		sups[i] = Suppression{File: d.file, Line: d.line, Col: d.col, Check: d.check, Reason: d.reason, Used: used[i]}
	}
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Check < b.Check
	})
	timings := make([]AnalyzerTiming, len(analyzers))
	for ai, a := range analyzers {
		timings[ai] = AnalyzerTiming{Name: a.Name, Elapsed: time.Duration(nanos[ai].load())}
	}
	return diags, timings, sups
}

// atomicInt64 is a tiny wrapper so the timing accumulation stays readable.
type atomicInt64 struct{ v atomic.Int64 }

func (a *atomicInt64) add(d int64) { a.v.Add(d) }
func (a *atomicInt64) load() int64 { return a.v.Load() }

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoRandGlobal,
		CtxFirst,
		GoHygiene,
		MapOrder,
		NakedPanic,
		MutexByValue,
		AtomicMix,
		LockOrder,
		LeakyGo,
		WaitBalance,
		HotAlloc,
		IntOverflow,
		BoundsProof,
		Escape,
		SharedWrite,
		CancelPoll,
	}
}
