package lint

// The may-happen-in-parallel access model behind sharedwrite (ALGORITHM.md
// §16). For every parallel region found by regionsOf, the engine collects
// the shared-memory accesses the region can perform — directly in its body
// and transitively through module-local calls — and classifies each one into
// an ordering tier:
//
//	tierAtomic    performed through sync/atomic (function or typed form)
//	tierWorker    element write whose index the interval engine proves equal
//	              to the closure's worker-id parameter (the padded-slot idiom)
//	tierInstance  element access indexed by a value derived from an
//	              instance-distinguishing parameter (dispatch item index,
//	              per-spawn go arguments); instances touch disjoint elements
//	              by the dispatch contract
//	tierAssumed   element access two or more calls below the region whose
//	              index is data passed down the call chain; the partition
//	              obligation was checked at the region boundary
//	tierPlain     everything else — a conflict candidate
//
// Each access also carries the may-held mutex set at its site (the lockorder
// dataflow re-run locally), so mutex-guarded accesses on both sides of a
// pair are recognized as ordered.
//
// The model is deliberately an under-approximating linter, not a verifier,
// in the same spirit as the call graph: writes through interface methods and
// function-typed parameters are invisible, tierInstance/tierAssumed encode
// documented injectivity assumptions (each (worker, item) pair is delivered
// to exactly one instance), and locals assigned from call results are
// treated as fresh. What it proves precisely — the worker-slot index
// equality — it proves with the SSA interval lattice; what it assumes, the
// diagnostics and ALGORITHM.md spell out.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// accTier classifies how an access is ordered against concurrent instances.
type accTier uint8

const (
	tierPlain accTier = iota
	tierAtomic
	tierWorker
	tierInstance
	tierAssumed
)

func (t accTier) String() string {
	switch t {
	case tierAtomic:
		return "atomic"
	case tierWorker:
		return "worker-slot"
	case tierInstance:
		return "instance-indexed"
	case tierAssumed:
		return "chain-indexed"
	}
	return "plain"
}

// partitionedTier reports whether the tier means "distinct instances touch
// distinct elements".
func partitionedTier(t accTier) bool {
	return t == tierWorker || t == tierInstance || t == tierAssumed
}

// access is one shared-memory access attributed to a region or a spawner
// window.
type access struct {
	// id is the conflict identity: the leaf struct field, the package-level
	// variable, or the closure-captured local being touched. Distinct
	// instances of one struct type merge (same conservative choice as
	// lockorder and atomicmix).
	id    *types.Var
	write bool
	tier  accTier
	// held is the may-held mutex set at the access site.
	held map[*types.Var]bool
	// pos is the actual access site; rep is where a diagnostic anchors
	// (the region-side call site when the access happens in a callee).
	pos token.Pos
	rep token.Pos
	// in names the function containing the actual access, for messages.
	in string
}

// commonHeld reports whether both accesses hold a common mutex.
func commonHeld(a, b *access) bool {
	for v := range a.held {
		if b.held[v] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Function summaries

// sumIdxKind classifies the element index of a summarized access.
type sumIdxKind uint8

const (
	sumWhole   sumIdxKind = iota // no element index: the whole variable
	sumParams                    // index mentions the function's parameters
	sumAssumed                   // index is call-chain data below the boundary
	sumShared                    // index is shared state (globals, constants)
)

// sumAccess is one access in a function's interprocedural summary, rooted
// either at a parameter (rootParam >= 0, receiver first) or at package-level
// state (rootParam < 0).
type sumAccess struct {
	rootParam int
	id        *types.Var // leaf field, or nil when the whole root is touched
	write     bool
	atomic    bool
	idx       sumIdxKind
	mentions  []int // for sumParams: which parameters the index mentions
	held      map[*types.Var]bool
	pos       token.Pos
	in        string
}

// sumKey dedups summary entries so the fixpoint terminates.
type sumKey struct {
	rootParam int
	id        *types.Var
	write     bool
	atomic    bool
	idx       sumIdxKind
	heldSig   string
}

func heldSig(held map[*types.Var]bool) string {
	if len(held) == 0 {
		return ""
	}
	names := make([]string, 0, len(held))
	for v := range held {
		names = append(names, v.Name())
	}
	sort.Strings(names)
	sig := names[0]
	for _, n := range names[1:] {
		sig += "," + n
	}
	return sig
}

// sumCall is one statically resolved module-local call inside a function,
// kept so the fixpoint can substitute callee summaries into the caller.
type sumCall struct {
	callee *types.Func
	// args are the effective arguments with the method receiver prepended
	// when the callee is a method.
	args []ast.Expr
	held map[*types.Var]bool
	pos  token.Pos
}

// funcSummary is the transitive shared-access summary of one declaration.
type funcSummary struct {
	params []*types.Var
	accs   []sumAccess
	keys   map[sumKey]bool
	calls  []sumCall
}

// mhpModel carries the per-run state of the MHP engine.
type mhpModel struct {
	mod       *Module
	graph     *CallGraph
	summaries map[*types.Func]*funcSummary
	hbimpl    map[*types.Func]bool
	// vf memoizes per-region value-flow engines for the worker-slot proof.
	vf map[*ParRegion]*valueFlow
}

func newMHPModel(mod *Module, hbimpl map[*types.Func]bool) *mhpModel {
	m := &mhpModel{
		mod:       mod,
		graph:     BuildCallGraph(mod),
		summaries: map[*types.Func]*funcSummary{},
		hbimpl:    hbimpl,
		vf:        map[*ParRegion]*valueFlow{},
	}
	m.buildSummaries()
	return m
}

// funcParams returns a declaration's receiver-then-parameters objects.
func funcParams(pkg *Package, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				v, _ := pkg.Info.Defs[name].(*types.Var)
				out = append(out, v)
			}
			if len(f.Names) == 0 {
				out = append(out, nil)
			}
		}
	}
	return append(out, paramVars(pkg, fd.Type)...)
}

// buildSummaries computes every declaration's direct accesses and then runs
// the substitution fixpoint over the call graph.
func (m *mhpModel) buildSummaries() {
	nodes := m.graph.SortedNodes()
	for _, n := range nodes {
		if n.Decl.Body == nil {
			continue
		}
		s := &funcSummary{params: funcParams(n.Pkg, n.Decl), keys: map[sumKey]bool{}}
		m.summaries[n.Fn] = s
		ctx := &accCtx{
			model: m, pkg: n.Pkg,
			bodyStart: n.Decl.Body.Pos(), bodyEnd: n.Decl.Body.End(),
			params: s.params, summaryMode: true,
			fnName: n.Fn.Name(),
		}
		accs, calls := collectAccesses(n.Pkg, n.Decl.Body, ctx, nil)
		_ = accs // summary mode records into ctx.sum directly
		for _, a := range ctx.sum {
			s.add(a)
		}
		s.calls = calls
	}
	// Fixpoint: substitute callee summaries into callers until stable.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := m.summaries[n.Fn]
			if s == nil {
				continue
			}
			for _, c := range s.calls {
				if m.hbimpl[c.callee] {
					continue
				}
				cs := m.summaries[c.callee]
				if cs == nil {
					continue
				}
				for _, a := range cs.accs {
					if mapped, ok := m.substitute(n, s, c, cs, a); ok && s.add(mapped) {
						changed = true
					}
				}
			}
		}
	}
}

// add inserts a summary access if its dedup key is new.
func (s *funcSummary) add(a sumAccess) bool {
	k := sumKey{a.rootParam, a.id, a.write, a.atomic, a.idx, heldSig(a.held)}
	if s.keys[k] {
		return false
	}
	s.keys[k] = true
	s.accs = append(s.accs, a)
	return true
}

// substitute maps one callee summary access into the caller across call c.
// Returns ok=false when the access is invisible to the caller (rooted at an
// argument the caller allocated freshly).
func (m *mhpModel) substitute(n *CallNode, s *funcSummary, c sumCall, cs *funcSummary, a sumAccess) (sumAccess, bool) {
	out := a
	out.pos = a.pos
	out.held = unionHeld(a.held, c.held)
	if a.rootParam >= 0 {
		if a.rootParam >= len(c.args) || c.args[a.rootParam] == nil {
			return out, false
		}
		rootParam, absVar, leaf, fresh := m.resolveSummaryRoot(n.Pkg, s.params, c.args[a.rootParam])
		switch {
		case fresh:
			return out, false
		case rootParam >= 0:
			out.rootParam = rootParam
		default:
			out.rootParam = -1
			if out.id == nil {
				out.id = absVar
			}
		}
		// Keep the most precise identity: an argument chain like opts.Cache
		// names the referent the callee actually touches.
		if out.id == nil && leaf != nil {
			out.id = leaf
		}
	}
	if a.idx == sumParams {
		out.mentions = nil
		assumed := false
		for _, p := range a.mentions {
			if p >= len(c.args) || c.args[p] == nil {
				assumed = true
				continue
			}
			ms := paramMentions(n.Pkg, s.params, c.args[p])
			if len(ms) == 0 {
				assumed = true
			}
			out.mentions = append(out.mentions, ms...)
		}
		if len(out.mentions) == 0 || assumed {
			out.idx = sumAssumed
			out.mentions = nil
		}
	}
	return out, true
}

// resolveSummaryRoot classifies an argument expression in a summary context:
// a caller parameter (rootParam), an absolute variable (package-level or a
// field chain off one), or a freshly allocated local. leaf is the chain's
// leaf-most field, when any.
func (m *mhpModel) resolveSummaryRoot(pkg *Package, params []*types.Var, arg ast.Expr) (rootParam int, abs *types.Var, leaf *types.Var, fresh bool) {
	root, leaf, _ := peelChain(pkg, arg)
	if root == nil {
		return -1, nil, nil, true // literals, calls: fresh or value-only
	}
	for i, p := range params {
		if p != nil && p == root {
			return i, nil, leaf, false
		}
	}
	if root.Pkg() != nil && root.Parent() == root.Pkg().Scope() {
		return -1, root, leaf, false
	}
	// A local: fresh by the allocation assumption (locals aliasing shared
	// state are resolved by the alias map during the direct pass; by the
	// time an argument reaches here unresolved, it is call- or
	// literal-allocated).
	return -1, nil, nil, true
}

// paramMentions lists the parameter indices an expression mentions.
func paramMentions(pkg *Package, params []*types.Var, e ast.Expr) []int {
	var out []int
	seen := map[int]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := pkg.Info.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		for i, p := range params {
			if p == v && !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
		return true
	})
	return out
}

func unionHeld(a, b map[*types.Var]bool) map[*types.Var]bool {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	u := make(map[*types.Var]bool, len(a)+len(b))
	for v := range a {
		u[v] = true
	}
	for v := range b {
		u[v] = true
	}
	return u
}

// ---------------------------------------------------------------------------
// Access collection

// accCtx parameterizes collectAccesses for its three callers: function
// summaries (summaryMode), region bodies (region set), and spawner windows
// (neither; every local is addressable shared state for matching against
// captures).
type accCtx struct {
	model *mhpModel
	pkg   *Package
	// bodyStart/bodyEnd bound the walked body: locals declared inside are
	// instance-private storage.
	bodyStart, bodyEnd token.Pos
	// params are receiver+params (summary mode) or the closure parameters
	// (region mode).
	params []*types.Var
	// summaryMode records into sum instead of producing region accesses.
	summaryMode bool
	sum         []sumAccess
	// region is the region being collected (nil in summary/window mode).
	region *ParRegion
	// window marks spawner-window collection: locals are shared identities.
	window bool
	// alias maps locals bound to shared storage (by address or by reference
	// copy) onto the chain they alias (flow-insensitive).
	alias map[*types.Var]*aliasTarget
	// privacy memoizes in-body locals' instance-privacy.
	privacy map[*types.Var]int8 // 0 unknown/in-progress, 1 private, -1 shared
	// scanRoot is the walked body, for local-definition scans.
	scanRoot ast.Node
	fnName   string
}

// collectAccesses walks one body under the lock-held dataflow and returns
// the extracted accesses plus the statically resolved module-local calls.
// filter, when non-nil, selects which top-level CFG nodes to visit (the
// window position filter).
func collectAccesses(pkg *Package, body *ast.BlockStmt, ctx *accCtx, filter func(ast.Node) bool) ([]access, []sumCall) {
	w := &accWalker{pkg: pkg, ctx: ctx}
	ctx.alias = map[*types.Var]*aliasTarget{}
	ctx.privacy = map[*types.Var]int8{}
	ctx.scanRoot = body
	// Pre-pass: record aliases flow-insensitively so use-before-walk order
	// does not matter.
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			w.recordAliases(as)
		}
		return true
	})
	w.walkLocked(body, filter)
	return w.accs, w.calls
}

// walkLocked visits a body's CFG nodes under the lock-held dataflow, so each
// access sees the may-held mutex set at its own site.
func (w *accWalker) walkLocked(body *ast.BlockStmt, filter func(ast.Node) bool) {
	cfg := BuildCFG(body)
	transfer := func(b *Block, in Fact) Fact {
		cur := in.(lockFact)
		for _, n := range b.Nodes {
			if filter == nil || filter(n) {
				w.held = cur.held
				w.node(n)
			}
			cur = advanceLocks(w.pkg, n, cur)
		}
		return cur
	}
	cfg.Forward(FlowProblem{Entry: lockFact{}, Join: joinLockFacts, Transfer: transfer})
}

// advanceLocks updates the held set across one CFG node (the lockorder
// transfer, minus the edge recording).
func advanceLocks(pkg *Package, n ast.Node, cur lockFact) lockFact {
	inspectShallow(n, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.GoStmt); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, locks := mutexOp(pkg, call); v != nil {
			if locks {
				cur = applyAcquire(new([]lockEdge), nil, call, cur, []*types.Var{v}, nil)
			} else {
				cur = release(cur, v)
			}
		}
		return true
	})
	return cur
}

type accWalker struct {
	pkg   *Package
	ctx   *accCtx
	held  map[*types.Var]bool
	accs  []access
	calls []sumCall
}

// aliasTarget is the chain a reference-holding local points into: writes
// through the local are writes to leaf (or root) at the recorded element.
type aliasTarget struct {
	root    *types.Var
	leaf    *types.Var // leaf-most field; nil for whole-var aliases
	indexes []ast.Expr // element selection at the binding site, e.g. &decs[w]
}

// recordAliases binds `p := &shared.chain`, `p := sharedPtr` and
// `s := t.Slice` style locals to the storage they alias, so later accesses
// through p resolve correctly (also the fix behind the atomicmix
// through-local false negative).
func (w *accWalker) recordAliases(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		p, _ := w.pkg.Info.Defs[id].(*types.Var)
		if p == nil {
			if p, _ = w.pkg.Info.Uses[id].(*types.Var); p == nil {
				continue
			}
		}
		rhs := ast.Unparen(as.Rhs[i])
		if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
			rhs = un.X
		} else {
			// Without an explicit &, only copying a reference (pointer,
			// slice, map) aliases the referent; copying a value does not.
			switch rhs.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			default:
				continue
			}
			tv, ok := w.pkg.Info.Types[rhs]
			if !ok || tv.Type == nil || !refLikeType(tv.Type) {
				continue
			}
		}
		root, leaf, indexes := peelChain(w.pkg, rhs)
		if root == nil {
			continue
		}
		if a := w.ctx.alias[root]; a != nil {
			if leaf == nil {
				leaf = a.leaf
			}
			indexes = append(append([]ast.Expr{}, a.indexes...), indexes...)
			root = a.root
		}
		word := leaf
		if word == nil {
			word = root
		}
		if sharedWord(word) || w.isEnclosingLocal(word) {
			w.ctx.alias[p] = &aliasTarget{root: root, leaf: leaf, indexes: indexes}
		}
	}
}

// refLikeType reports whether values of t share storage with their source
// when copied: pointers, slices and maps. Everything else (basics, structs,
// arrays, funcs, channels-as-sync) copies by value for the access model.
func refLikeType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// node extracts accesses from one CFG node (a statement or control
// expression).
func (w *accWalker) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			w.expr(rhs)
		}
		for _, lhs := range n.Lhs {
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				w.expr(lhs) // compound assign reads the old value
			}
			w.target(lhs)
		}
	case *ast.IncDecStmt:
		w.expr(n.X)
		w.target(n.X)
	case *ast.SendStmt:
		w.expr(n.Value) // the channel itself is a synchronization op
	case *ast.ExprStmt:
		w.expr(n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.expr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		// The spawn arguments are evaluated on this goroutine; the literal
		// body is its own region.
		for _, a := range n.Call.Args {
			w.expr(a)
		}
	case *ast.DeferStmt:
		for _, a := range n.Call.Args {
			w.expr(a)
		}
		w.expr(n.Call.Fun)
	case ast.Expr:
		w.expr(n)
	}
}

// expr walks an expression in read position.
func (w *accWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		w.record(e, false, false)
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		// Inline literal executing on this goroutine: walk its body in the
		// same context (position-based privacy still holds: the literal sits
		// inside the walked body's range) under its own lock dataflow — a
		// deferred recover closure acquires mutexes a flat walk would miss.
		// The entry fact is empty: a deferred literal may run after the
		// defer-site locks are released, so inheriting them would be unsound.
		saved := w.held
		w.walkLocked(e.Body, nil)
		w.held = saved
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Address escaping outside a recognized atomic/call context:
			// record a read; writes through unknown escapes are below the
			// model (the alias map catches the direct-local case).
			w.record(e.X, false, false)
			return
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value)
				continue
			}
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	}
}

// target records a write to an assignment target.
func (w *accWalker) target(e ast.Expr) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	w.record(e, true, false)
}

// call handles one call expression: atomics, mutexes, sync types, pool
// dispatch, module-local substitution, builtins, everything else.
func (w *accWalker) call(call *ast.CallExpr) {
	pkg := w.pkg
	if isAtomicCall(pkg, call, nil) || w.isAtomicFnValue(call) {
		name := atomicCallName(pkg, call)
		write := len(name) < 4 || name[:4] != "Load"
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if ok && un.Op == token.AND {
				w.record(un.X, write, true)
				continue
			}
			// A pointer local aliasing a shared word.
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, _ := pkg.Info.Uses[id].(*types.Var); v != nil && w.ctx.alias[v] != nil {
					w.record(id, write, true)
					continue
				}
			}
			w.expr(arg)
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sync/atomic":
				// Typed atomics: x.Load()/x.Store(v)/x.Add(d)/x.CompareAndSwap.
				write := sel.Sel.Name != "Load"
				w.record(sel.X, write, true)
				for _, a := range call.Args {
					w.expr(a)
				}
				return
			case "sync":
				// Mutex/WaitGroup/Once operations are the synchronization
				// edges themselves, not shared-data accesses.
				for _, a := range call.Args {
					w.expr(a)
				}
				return
			}
		}
	}
	if _, ok := isPoolDispatch(pkg, call); ok {
		for i, a := range call.Args {
			if i == len(call.Args)-1 {
				if _, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
					continue // the dispatched closure is its own region
				}
			}
			w.expr(a)
		}
		return
	}
	if callee := staticCallee(pkg, call); callee != nil && moduleLocal(w.ctx.model.mod, callee) {
		if w.ctx.model.hbimpl[callee] {
			// Calls into a //lint:hbimpl function contribute no modeled
			// accesses: the directive's reason certifies the callee's
			// ordering below the happens-before model.
			for _, a := range call.Args {
				w.expr(a)
			}
			return
		}
		args := make([]ast.Expr, 0, len(call.Args)+1)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := pkg.Info.Selections[sel]; isMethod {
				args = append(args, sel.X)
			}
		}
		args = append(args, call.Args...)
		w.calls = append(w.calls, sumCall{callee: callee, args: args, held: cloneHeld(w.held), pos: call.Pos()})
		if !w.ctx.summaryMode {
			w.substituteAtBoundary(callee, args, call.Pos())
		}
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}
	// Builtins: copy and delete write their first argument; the rest are
	// reads (an append result only lands via the enclosing assignment).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 2 &&
		(id.Name == "copy" || id.Name == "delete") && pkg.Info.Uses[id] == nil {
		w.record(call.Args[0], true, false)
		w.expr(call.Args[1])
		return
	}
	w.expr(call.Fun)
	for _, a := range call.Args {
		w.expr(a)
	}
}

// isAtomicFnValue reports a call through a local bound to a sync/atomic
// function value (the atomicmix method-value false negative, shared here).
func (w *accWalker) isAtomicFnValue(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	v, _ := w.pkg.Info.Uses[id].(*types.Var)
	return v != nil && atomicFnLocals(w.pkg)[v]
}

// atomicCallName names the atomic operation for load/store classification.
func atomicCallName(pkg *Package, call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// record classifies and stores one access to the chain expression e.
func (w *accWalker) record(e ast.Expr, write, atomic bool) {
	pkg := w.pkg
	root, leaf, indexes := peelChain(pkg, e)
	if root == nil {
		// Unresolvable chain (call results, literals): walk inner index
		// expressions for reads and give up on the chain itself.
		for _, idx := range indexes {
			w.expr(idx)
		}
		return
	}
	for _, idx := range indexes {
		w.expr(idx)
	}
	bare := false
	if _, ok := ast.Unparen(e).(*ast.Ident); ok && leaf == nil && len(indexes) == 0 {
		bare = true
	}
	if a := w.ctx.alias[root]; a != nil {
		if bare && write {
			// Rebinding the local alias variable overwrites only this
			// function's pointer/header copy, never the referent: element
			// and field writes reach here with an index, selector, or
			// deref in the chain instead.
			return
		}
		root = a.root
		if leaf == nil {
			leaf = a.leaf
		}
		indexes = append(append([]ast.Expr{}, a.indexes...), indexes...)
		bare = false
	}
	if !atomic && w.bareRefParamAccess(root, bare, write) {
		return
	}
	ctx := w.ctx
	if ctx.summaryMode {
		w.recordSummary(root, leaf, write, atomic, indexes, e.Pos())
		return
	}
	// Region/window mode.
	if ctx.region != nil && w.isRegionPrivateRoot(root) {
		return
	}
	if !ctx.window && ctx.region == nil {
		return
	}
	id := leaf
	if id == nil {
		id = root
	}
	if !sharedWord(id) && !w.isEnclosingLocal(id) {
		return
	}
	w.recordVar(id, write, atomic, indexes, e.Pos())
}

// isEnclosingLocal reports whether v is function-local storage that can be
// captured (anything that is not a field or package-level var but outlives
// an instant: locals and parameters of the enclosing function).
func (w *accWalker) isEnclosingLocal(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
}

// isRegionPrivateRoot reports whether the chain root is storage private to
// one region instance: a value-typed region parameter (a copy) or a local
// declared inside the region body that does not alias shared state.
// Pointer-, slice- and map-typed parameters are shared — the copy is of the
// reference, not the referent (the receiver of a dispatched worker method
// points at the one pool every instance shares).
func (w *accWalker) isRegionPrivateRoot(root *types.Var) bool {
	ctx := w.ctx
	if ctx.alias[root] != nil {
		return false
	}
	for _, p := range ctx.params {
		if p == root {
			return !refLikeType(root.Type())
		}
	}
	return root.Pos() >= ctx.bodyStart && root.Pos() < ctx.bodyEnd
}

// bareRefParamAccess reports whether an access is a bare mention of a
// reference-typed parameter of the walked function: reading (or rebinding)
// the pointer/map variable itself touches only the callee's private copy,
// not the referent — accesses to the referent always carry a deref,
// selector or index. The one exception kept is a bare write to a slice
// parameter (`b = append(b, ...)`), which can grow into the caller's
// backing array.
func (w *accWalker) bareRefParamAccess(root *types.Var, bare, write bool) bool {
	if !bare {
		return false
	}
	for _, p := range w.ctx.params {
		if p != root {
			continue
		}
		t := root.Type().Underlying()
		if _, slice := t.(*types.Slice); slice {
			return !write
		}
		return refLikeType(root.Type())
	}
	return false
}

// recordVar stores one access with its tier classified from the index
// expressions.
func (w *accWalker) recordVar(id *types.Var, write, atomic bool, indexes []ast.Expr, pos token.Pos) {
	tier := tierPlain
	if atomic {
		tier = tierAtomic
	} else if w.ctx.region != nil && len(indexes) > 0 {
		tier = w.classifyIndexes(indexes)
	}
	w.accs = append(w.accs, access{
		id: id, write: write, tier: tier,
		held: cloneHeld(w.held), pos: pos, rep: pos,
		in: w.ctx.fnName,
	})
}

// recordSummary stores one access in summary mode.
func (w *accWalker) recordSummary(root, leaf *types.Var, write, atomic bool, indexes []ast.Expr, pos token.Pos) {
	ctx := w.ctx
	a := sumAccess{rootParam: -1, id: leaf, write: write, atomic: atomic, held: cloneHeld(w.held), pos: pos, in: ctx.fnName}
	isParam := false
	for i, p := range ctx.params {
		if p != nil && p == root {
			if !refLikeType(p.Type()) {
				// A value-typed parameter is the callee's own copy: its
				// accesses never touch caller storage. (A struct copy whose
				// fields hold references is below the model.)
				return
			}
			a.rootParam = i
			isParam = true
			break
		}
	}
	if !isParam {
		if root.Pkg() != nil && root.Parent() == root.Pkg().Scope() {
			if a.id == nil {
				a.id = root
			}
		} else {
			return // fresh local storage: invisible to callers
		}
	}
	switch {
	case len(indexes) == 0:
		a.idx = sumWhole
	default:
		for _, idx := range indexes {
			a.mentions = append(a.mentions, paramMentions(ctx.pkg, ctx.params, idx)...)
		}
		if len(a.mentions) > 0 {
			a.idx = sumParams
		} else {
			a.idx = sumShared
		}
	}
	ctx.sum = append(ctx.sum, a)
}

// substituteAtBoundary expands a callee's summary into region/window
// accesses at a direct call — the boundary where index arguments are
// actually checked against the region's distinguishing parameters.
func (w *accWalker) substituteAtBoundary(callee *types.Func, args []ast.Expr, callPos token.Pos) {
	s := w.ctx.model.summaries[callee]
	if s == nil {
		return
	}
	for _, a := range s.accs {
		id := a.id
		var chainIndexes []ast.Expr
		if a.rootParam >= 0 {
			if a.rootParam >= len(args) || args[a.rootParam] == nil {
				continue
			}
			root, leaf, indexes := peelChain(w.pkg, args[a.rootParam])
			if root == nil {
				continue // fresh value
			}
			if al := w.ctx.alias[root]; al != nil {
				root = al.root
				if leaf == nil {
					leaf = al.leaf
				}
				indexes = append(append([]ast.Expr{}, al.indexes...), indexes...)
			}
			if w.ctx.region != nil && w.isRegionPrivateRoot(root) {
				continue
			}
			chainIndexes = indexes
			if id == nil {
				if leaf != nil {
					id = leaf
				} else {
					id = root
				}
			}
			if !sharedWord(id) && !w.isEnclosingLocal(id) {
				continue
			}
		}
		if id == nil {
			continue
		}
		tier := tierPlain
		switch {
		case a.atomic:
			tier = tierAtomic
		case a.idx == sumParams:
			// The boundary check: every argument the index derives from
			// must be instance-private in the region.
			tier = tierInstance
			for _, p := range a.mentions {
				if w.ctx.region == nil || p >= len(args) || args[p] == nil ||
					len(w.distMentions(args[p])) == 0 || !w.privateExpr(args[p]) {
					tier = tierPlain
					break
				}
			}
		case a.idx == sumAssumed:
			tier = tierAssumed
		case a.idx == sumShared:
			tier = tierPlain
		}
		// A partitioned receiver/argument chain (decs[w].step()) makes every
		// access inside the selected element disjoint across instances,
		// whatever the callee does within it.
		if w.ctx.region != nil && !partitionedTier(tier) && tier != tierAtomic && len(chainIndexes) > 0 {
			if ct := w.classifyIndexes(chainIndexes); partitionedTier(ct) {
				tier = ct
			}
		}
		if w.ctx.window && partitionedTier(tier) {
			tier = tierPlain // windows have no distinguishing instance
		}
		w.accs = append(w.accs, access{
			id: id, write: a.write, tier: tier,
			held: unionHeld(a.held, cloneHeld(w.held)),
			pos:  a.pos, rep: callPos, in: a.in,
		})
	}
}

// ---------------------------------------------------------------------------
// Index privacy

// classifyIndexes classifies an element access's indexes in region context.
func (w *accWalker) classifyIndexes(indexes []ast.Expr) accTier {
	best := tierPlain
	for _, idx := range indexes {
		switch t := w.classifyIndex(idx); t {
		case tierWorker:
			return tierWorker
		case tierInstance:
			best = tierInstance
		}
	}
	return best
}

// classifyIndex classifies one index expression: tierWorker when the
// interval engine proves it equal to the worker-id parameter, tierInstance
// when it is derived from instance-distinguishing values, tierPlain
// otherwise.
func (w *accWalker) classifyIndex(idx ast.Expr) accTier {
	r := w.ctx.region
	if r == nil {
		return tierPlain
	}
	dist := w.distMentions(idx)
	if len(dist) == 0 {
		return tierPlain
	}
	onlyWorker := r.Worker != nil && len(dist) == 1 && dist[r.Worker]
	if onlyWorker {
		// The certified tier: the index interval must be degenerate at the
		// worker parameter's entry value. slots[w] passes; slots[w%2] does
		// not.
		if w.workerSlotProven(idx) {
			return tierWorker
		}
		return tierPlain
	}
	if w.privateExpr(idx) {
		return tierInstance
	}
	return tierPlain
}

// distMentions returns the distinguishing parameters an expression mentions,
// looking through in-body locals' definitions.
func (w *accWalker) distMentions(e ast.Expr) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	seen := map[*types.Var]bool{}
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := w.pkg.Info.Uses[id].(*types.Var)
			if v == nil {
				v, _ = w.pkg.Info.Defs[id].(*types.Var)
			}
			if v == nil || seen[v] {
				return true
			}
			seen[v] = true
			if w.ctx.region.Dist[v] {
				out[v] = true
				return true
			}
			if v.Pos() >= w.ctx.bodyStart && v.Pos() < w.ctx.bodyEnd {
				for _, rhs := range w.assignmentsTo(v) {
					visit(rhs)
				}
			}
			return true
		})
	}
	visit(e)
	return out
}

// assignmentsTo collects the RHS expressions assigned to an in-body local.
func (w *accWalker) assignmentsTo(v *types.Var) []ast.Expr {
	var out []ast.Expr
	// The region body is bounded by ctx positions; scan the declaration it
	// belongs to. We scan the region body itself via the walker's root.
	body := w.ctx.scanRoot
	if body == nil {
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lv, _ := w.pkg.Info.Defs[id].(*types.Var)
			if lv == nil {
				lv, _ = w.pkg.Info.Uses[id].(*types.Var)
			}
			if lv == v {
				out = append(out, as.Rhs[i])
			}
		}
		return true
	})
	return out
}

// privateExpr reports whether every variable the expression depends on is
// instance-private: a distinguishing parameter, an in-body local whose every
// assignment is itself private, or shared state used only as an indexed
// container (the relay assumption: reading a partition table at a private
// index yields a private value).
func (w *accWalker) privateExpr(e ast.Expr) bool {
	return w.privateExprDepth(e, 0)
}

func (w *accWalker) privateExprDepth(e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		v, _ := w.pkg.Info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = w.pkg.Info.Defs[e].(*types.Var)
		}
		if v == nil {
			return true // constants, types
		}
		return w.privateVar(v, depth)
	case *ast.BinaryExpr:
		return w.privateExprDepth(e.X, depth+1) && w.privateExprDepth(e.Y, depth+1)
	case *ast.UnaryExpr:
		return w.privateExprDepth(e.X, depth+1)
	case *ast.IndexExpr:
		// Relay: container contents at a private index are private-by-
		// assumption (level buckets, chunk tables are injective).
		return w.privateExprDepth(e.Index, depth+1)
	case *ast.SelectorExpr:
		// Field reads as offsets: uniform across instances (read-only
		// during a round by the dispatch contract).
		return true
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() {
				return w.privateExprDepth(e.Args[0], depth+1)
			}
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return true
			}
		}
		return false
	}
	return false
}

// privateVar decides a variable's instance privacy with a memoized
// optimistic fixpoint (self-referential updates like idx++ stay private).
func (w *accWalker) privateVar(v *types.Var, depth int) bool {
	ctx := w.ctx
	if ctx.region != nil && ctx.region.Dist[v] {
		return true
	}
	for _, p := range ctx.params {
		if p == v {
			return true // non-distinguishing closure params are still copies
		}
	}
	if v.Pos() < ctx.bodyStart || v.Pos() >= ctx.bodyEnd {
		return false // captured or global
	}
	if ctx.alias[v] != nil {
		return false
	}
	switch ctx.privacy[v] {
	case 1:
		return true
	case -1:
		return false
	}
	ctx.privacy[v] = 1 // optimistic for cycles
	private := true
	rhss := w.assignmentsTo(v)
	for _, rhs := range rhss {
		if !w.privateExprDepth(rhs, depth+1) {
			private = false
			break
		}
	}
	if private {
		ctx.privacy[v] = 1
		return true
	}
	ctx.privacy[v] = -1
	return false
}

// workerSlotProven runs the interval engine over the region closure and
// checks that the index evaluates to an interval degenerate at the worker
// parameter's entry value.
func (w *accWalker) workerSlotProven(idx ast.Expr) bool {
	r := w.ctx.region
	vf := w.ctx.model.regionValueFlow(w.pkg, r)
	if vf == nil {
		return false
	}
	want, ok := vf.ssa.EntryVals[r.Worker]
	if !ok {
		return false
	}
	// Find the tightest environment that covers the index node.
	var env intervalFact
	vf.walk(func(_ *Block, n ast.Node, e intervalFact) {
		if env == nil && containsPos(n, idx.Pos()) {
			env = e.clone()
		}
	})
	if env == nil {
		env = vf.entryFact().(intervalFact)
	}
	iv := vf.evalExpr(env, idx)
	lo, hi := iv.Lo, iv.Hi
	return lo.eq(hi) && lo.Inf == 0 && VID(lo.Base) == want && lo.Off == 0
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos <= n.End()
}

// regionValueFlow lazily builds the interval engine for a region's body by
// synthesizing a declaration around the closure (BuildSSA only needs Body,
// Recv and Type).
func (m *mhpModel) regionValueFlow(pkg *Package, r *ParRegion) *valueFlow {
	if vf, ok := m.vf[r]; ok {
		return vf
	}
	var fd *ast.FuncDecl
	switch {
	case r.Lit != nil:
		fd = &ast.FuncDecl{
			Name: ast.NewIdent("closure"),
			Type: r.Lit.Type,
			Body: r.Lit.Body,
		}
	case r.CalleeDecl != nil:
		fd = r.CalleeDecl
		pkg = r.CalleePkg
	default:
		m.vf[r] = nil
		return nil
	}
	vf := buildValueFlow(pkg, fd)
	m.vf[r] = vf
	return vf
}

func cloneHeld(h map[*types.Var]bool) map[*types.Var]bool {
	if len(h) == 0 {
		return nil
	}
	c := make(map[*types.Var]bool, len(h))
	for v := range h {
		c[v] = true
	}
	return c
}

// peelChain resolves an access expression to its root variable, the leaf
// field it touches (nil when the root itself is the storage), and the index
// expressions applied along the chain. A nil root means the chain starts at
// something unresolvable (a call result, a literal).
func peelChain(pkg *Package, e ast.Expr) (root *types.Var, leaf *types.Var, indexes []ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := pkg.Info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = pkg.Info.Defs[x].(*types.Var)
			}
			if v != nil && v.IsField() && leaf == nil {
				leaf = v
			}
			return v, leaf, indexes
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && leaf == nil {
					leaf = v
				}
				e = x.X
				continue
			}
			// Qualified package var: pkg.V.
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
				return v, leaf, indexes
			}
			return nil, leaf, indexes
		case *ast.IndexExpr:
			indexes = append(indexes, x.Index)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, leaf, indexes
		}
	}
}

// atomicFnLocalsCache memoizes per-package locals bound to sync/atomic
// function values (`f := atomic.AddInt64`).
var atomicFnLocalsCache = map[*Package]map[*types.Var]bool{}

func atomicFnLocals(pkg *Package) map[*types.Var]bool {
	if m, ok := atomicFnLocalsCache[pkg]; ok {
		return m
	}
	m := map[*types.Var]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(as.Rhs[i]).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
					continue
				}
				v, _ := pkg.Info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = pkg.Info.Uses[id].(*types.Var)
				}
				if v != nil {
					m[v] = true
				}
			}
			return true
		})
	}
	atomicFnLocalsCache[pkg] = m
	return m
}
