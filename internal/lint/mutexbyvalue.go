package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MutexByValue is the copylocks check specialized to the parallel substrate:
// internal/par's Pool (which owns a mutex and the worker feed channels), the
// BarrierPool (whose sense-reversing round word, arrival counter and parked
// flags are atomics a copy would fork) and the cache-line-padded counter and
// cursor types must never be copied or embedded by value. Copying a Pool
// forks its closed/mutex state — exactly the class of bug behind the PR-1
// Close/For race — copying a BarrierPool detaches it from its resident
// workers, and copying a padded counter silently destroys the false-sharing
// layout the type exists for. The guarded set is derived from types, not
// names: any struct declared in internal/par that holds a sync/sync-atomic
// value or a blank padding array, which covers the barrier-pool types
// automatically.
var MutexByValue = &Analyzer{
	Name: "mutexbyvalue",
	Doc:  "internal/par's pool, barrier-pool and padded counter types must be handled by pointer, never copied or embedded by value",
	Run:  runMutexByValue,
}

func runMutexByValue(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkStructFields(p, n)
			case *ast.FuncDecl:
				checkFuncSig(p, n.Type)
			case *ast.FuncLit:
				checkFuncSig(p, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkValueCopy(p, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkValueCopy(p, v)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if name, ok := guardedExprType(p, n.Value); ok {
						p.Reportf(n.Value.Pos(), "range copies par.%s by value; iterate by index and take a pointer", name)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkValueCopy(p, arg)
				}
			}
			return true
		})
	}
}

// checkStructFields flags struct fields (including embedded ones) of a
// guarded type held by value. Fixed-size arrays copy their elements with the
// struct and are peeled; slices only copy their header, so a []pad or
// []cursorPad field (the barrier pool's per-worker state) is fine.
func checkStructFields(p *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := field.Type
		if arr, ok := t.(*ast.ArrayType); ok {
			if arr.Len == nil {
				continue // slice header: elements are not copied
			}
			t = arr.Elt
		}
		if name, ok := guardedExprType(p, t); ok {
			p.Reportf(field.Pos(), "struct field holds par.%s by value; store *par.%s instead", name, name)
		}
	}
}

// checkFuncSig flags parameters and results of a guarded type passed by
// value.
func checkFuncSig(p *Pass, ft *ast.FuncType) {
	lists := []*ast.FieldList{ft.Params, ft.Results}
	for _, list := range lists {
		if list == nil {
			continue
		}
		for _, field := range list.List {
			if name, ok := guardedExprType(p, field.Type); ok {
				p.Reportf(field.Pos(), "par.%s passed by value; pass *par.%s instead", name, name)
			}
		}
	}
}

// checkValueCopy flags expressions that copy a guarded value: variable
// reads, field/element selections and pointer dereferences. Composite
// literals and calls construct fresh values and are allowed.
func checkValueCopy(p *Pass, e ast.Expr) {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if name, ok := guardedExprType(p, e); ok {
		p.Reportf(e.Pos(), "expression copies par.%s by value; use a pointer", name)
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// guardedExprType reports whether the expression's type is a guarded
// internal/par value type, returning the type name.
func guardedExprType(p *Pass, e ast.Expr) (string, bool) {
	// TypeOf consults Types, Defs and Uses, so range-clause definitions
	// (recorded only in Defs) resolve too.
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return "", false
	}
	return guardedType(t)
}

// guardedType reports whether t is (a value of) a named struct type declared
// in internal/par that must not be copied: it transitively holds a sync or
// sync/atomic value, or a blank cache-line padding array.
func guardedType(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/par") {
		return "", false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	if structNeedsNoCopy(st, 0) {
		return obj.Name(), true
	}
	return "", false
}

// structNeedsNoCopy reports whether the struct holds, by value, a lock-ish
// field (anything from sync or sync/atomic) or a blank padding array, up to
// a small nesting depth.
func structNeedsNoCopy(st *types.Struct, depth int) bool {
	if depth > 3 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ft := f.Type()
		if f.Name() == "_" {
			if _, isArr := ft.Underlying().(*types.Array); isArr {
				return true
			}
		}
		if named, ok := ft.(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil {
				if path := pkg.Path(); path == "sync" || path == "sync/atomic" {
					return true
				}
			}
			if inner, ok := named.Underlying().(*types.Struct); ok && structNeedsNoCopy(inner, depth+1) {
				return true
			}
		}
		if inner, ok := ft.(*types.Struct); ok && structNeedsNoCopy(inner, depth+1) {
			return true
		}
	}
	return false
}
