package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder guards the bit-identical determinism contract (the differential
// harness diffs whole DP tables; psched -workers 1 and -workers 4 must print
// the same makespan): Go's map iteration order is randomized, so a `range`
// over a map that accumulates into a slice must sort the result before it
// can influence output, and a `range` over a map that prints directly is
// flagged unconditionally.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map feeding a slice or output must sort before the order can be observed",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd.Body)
		}
	}
}

// checkMapRanges walks body looking for range-over-map statements.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkOneMapRange(p, body, rng)
		return true
	})
}

// checkOneMapRange inspects one range-over-map: direct output inside the
// body is always nondeterministic; appends to a slice are fine only when
// the slice is sorted later in the same enclosing scope.
func checkOneMapRange(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	var appendTargets []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOutputCall(p, n) {
				p.Reportf(n.Pos(), "output inside range over map: iteration order is randomized; collect and sort first")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) && i < len(n.Lhs) {
					if ident, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := identObj(p, ident); obj != nil {
							appendTargets = append(appendTargets, obj)
						}
					}
				}
			}
		}
		return true
	})
	for _, obj := range appendTargets {
		if !sortedAfter(p, enclosing, rng, obj) {
			p.Reportf(rng.Pos(),
				"range over map appends to %s without a later sort: iteration order is randomized and would leak into results", obj.Name())
		}
	}
}

// identObj resolves an identifier to its object (definition or use).
func identObj(p *Pass, ident *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[ident]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[ident]
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	_, isBuiltin := p.Pkg.Info.Uses[ident].(*types.Builtin)
	return isBuiltin
}

// isOutputCall reports whether the call writes output directly: any fmt
// Print/Fprint variant (Sprint is pure and allowed).
func isOutputCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
	default:
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "fmt"
}

// sortedAfter reports whether obj is passed to a sort/slices call somewhere
// after the range statement in the function containing it — directly, or
// through one level of assignment (`tmp := keys; sort.Strings(tmp)` sorts
// the same backing array, since slice assignment aliases).
func sortedAfter(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	targets := map[types.Object]bool{obj: true}
	ast.Inspect(enclosing, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() < rng.End() {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !exprMentions(p, rhs, obj) {
				continue
			}
			if ident, ok := as.Lhs[i].(*ast.Ident); ok {
				if alias := identObj(p, ident); alias != nil {
					targets[alias] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			for target := range targets {
				if exprMentions(p, arg, target) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether the call is into package sort or slices.
func isSortCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return false
	}
	path := pkgName.Imported().Path()
	return path == "sort" || path == "slices"
}

// exprMentions reports whether the expression references obj.
func exprMentions(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && identObj(p, ident) == obj {
			found = true
		}
		return !found
	})
	return found
}
