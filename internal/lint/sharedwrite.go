package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SharedWrite proves every write reachable from a parallel region race-free
// under the MHP model (hb.go, mhp.go): ordered by an atomic operation, a
// common mutex, a partitioned index (worker slot certified by the interval
// engine, or instance-derived under the dispatch contract), or a join edge
// separating the region from the conflicting access. Everything else is the
// PR-4 class of bug — a write two goroutines can reach with no
// happens-before edge between them — and is reported with both access sites
// and the edge that is missing.
var SharedWrite = &Analyzer{
	Name:      "sharedwrite",
	Doc:       "writes reachable from parallel closures must be provably race-free (worker-indexed, atomic, mutex-guarded, or join-separated)",
	RunModule: runSharedWrite,
}

func runSharedWrite(pass *ModulePass) {
	mod := pass.Mod
	hbimpl := hbimplFuncs(pass)
	m := newMHPModel(mod, hbimpl)
	for _, n := range m.graph.SortedNodes() {
		if hbimpl[n.Fn] || n.Decl.Body == nil {
			continue
		}
		var live []*ParRegion
		var accs [][]access
		for _, r := range regionsOf(mod, n.Pkg, n.Fn, n.Decl) {
			if r.CalleeFn != nil && hbimpl[r.CalleeFn] {
				continue
			}
			live = append(live, r)
			accs = append(accs, m.regionAccesses(r))
		}
		if len(live) == 0 {
			continue
		}
		seen := map[[2]token.Pos]bool{}
		report := func(at token.Pos, other token.Pos, format string, args ...any) {
			key := [2]token.Pos{at, other}
			if seen[key] {
				return
			}
			seen[key] = true
			pass.Reportf(at, format, args...)
		}
		pos := func(p token.Pos) token.Position { return mod.Fset.Position(p) }

		// Instances of one region racing with each other.
		for i, r := range live {
			if !r.SelfParallel {
				continue
			}
			for ai := range accs[i] {
				a := &accs[i][ai]
				if !a.write {
					continue
				}
				for bi := range accs[i] {
					b := &accs[i][bi]
					if !conflictingPair(a, b) {
						continue
					}
					report(a.rep, b.pos,
						"write to %s races with a parallel instance of the %s region spawned at %v (conflicting access at %v): no happens-before edge orders two instances; index by the worker id, use sync/atomic, or guard both sides with one mutex",
						a.id.Name(), r.Kind, pos(r.Site.Pos()), pos(b.pos))
					break
				}
			}
		}

		// Sibling regions of the same spawner that are never ordered by a
		// join.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				if !regionsMHP(live[i], live[j]) {
					continue
				}
				crossReport(report, pos, accs[i], accs[j],
					"write to %s may happen in parallel with the access at %v: the regions spawned at %v and %v are never ordered by a join (wg.Wait or channel receive)",
					live[i].Site.Pos(), live[j].Site.Pos())
			}
		}

		// The spawner window: code after a go statement and before its join
		// runs concurrently with the region.
		for i, r := range live {
			if r.Kind != RegionGo {
				continue
			}
			wacc := m.windowAccesses(n.Pkg, n.Decl, r)
			if len(wacc) == 0 {
				continue
			}
			edge := "no join (wg.Wait or channel receive) separates them"
			if r.JoinEnd.IsValid() {
				edge = "the spawner reaches this before the join at " + pos(r.JoinEnd).String()
			}
			crossReport(report, pos, accs[i], wacc,
				"write to %s may happen in parallel with the access at %v: the goroutine spawned at %v is unordered with its spawner here — "+edge,
				r.Site.Pos(), token.NoPos)
		}
	}
}

// conflictingPair reports whether two accesses from unordered instances can
// race: same identity, at least one write, neither atomic, not both
// partitioned onto disjoint elements, no common mutex.
func conflictingPair(a, b *access) bool {
	if a.id == nil || a.id != b.id {
		return false
	}
	if !a.write && !b.write {
		return false
	}
	if a.tier == tierAtomic || b.tier == tierAtomic {
		return false
	}
	if partitionedTier(a.tier) && partitionedTier(b.tier) {
		return false
	}
	return !commonHeld(a, b)
}

// crossReport reports every conflicting pair between two unordered access
// sets, anchored at the write side (preferring the first set's writes).
func crossReport(report func(at, other token.Pos, format string, args ...any),
	pos func(token.Pos) token.Position, as, bs []access, format string,
	siteA, siteB token.Pos) {
	for ai := range as {
		a := &as[ai]
		for bi := range bs {
			b := &bs[bi]
			if !conflictingPair(a, b) {
				continue
			}
			w, o := a, b
			if !a.write {
				w, o = b, a
			}
			if siteB.IsValid() {
				report(w.rep, o.pos, format, w.id.Name(), pos(o.pos), pos(siteA), pos(siteB))
			} else {
				report(w.rep, o.pos, format, w.id.Name(), pos(o.pos), pos(siteA))
			}
		}
	}
}

// regionsMHP reports whether two regions of one spawner may overlap: neither
// is joined before the other is spawned.
func regionsMHP(a, b *ParRegion) bool {
	joinedBefore := func(x, y *ParRegion) bool {
		return x.JoinEnd.IsValid() && x.JoinEnd <= y.Site.Pos()
	}
	return !joinedBefore(a, b) && !joinedBefore(b, a)
}

// regionAccesses collects and classifies the shared accesses one region can
// perform.
func (m *mhpModel) regionAccesses(r *ParRegion) []access {
	body := r.Body()
	if body == nil {
		return nil
	}
	pkg := r.BodyPkg()
	var params []*types.Var
	name := r.EnclFn.Name()
	if r.Lit != nil {
		params = paramVars(pkg, r.Lit.Type)
	} else {
		params = funcParams(pkg, r.CalleeDecl)
		name = r.CalleeFn.Name()
	}
	ctx := &accCtx{
		model: m, pkg: pkg,
		bodyStart: body.Pos(), bodyEnd: body.End(),
		params: params, region: r, fnName: name,
	}
	accs, _ := collectAccesses(pkg, body, ctx, nil)
	return accs
}

// windowAccesses collects the spawner's accesses between a go region's spawn
// site and its join (or the end of the declaration when never joined).
func (m *mhpModel) windowAccesses(pkg *Package, fd *ast.FuncDecl, r *ParRegion) []access {
	from := r.Site.End()
	to := r.JoinEnd
	filter := func(n ast.Node) bool {
		if n.Pos() < from {
			return false
		}
		return !to.IsValid() || n.Pos() < to
	}
	ctx := &accCtx{
		model: m, pkg: pkg,
		bodyStart: fd.Body.Pos(), bodyEnd: fd.Body.End(),
		window: true, fnName: fd.Name.Name,
	}
	accs, _ := collectAccesses(pkg, fd.Body, ctx, filter)
	return accs
}

// ---------------------------------------------------------------------------
// MHP graph dump (schedlint -mhp-dump)

// MHPRegionDump is one parallel region in the JSON graph dump.
type MHPRegionDump struct {
	Package      string          `json:"package"`
	Func         string          `json:"func"`
	Kind         string          `json:"kind"`
	Site         string          `json:"site"`
	Worker       string          `json:"worker,omitempty"`
	Dist         []string        `json:"dist,omitempty"`
	SelfParallel bool            `json:"selfParallel"`
	Join         string          `json:"join,omitempty"`
	Hbimpl       bool            `json:"hbimpl,omitempty"`
	Accesses     []MHPAccessDump `json:"accesses,omitempty"`
}

// MHPAccessDump is one classified access in the dump.
type MHPAccessDump struct {
	Var   string `json:"var"`
	Write bool   `json:"write"`
	Tier  string `json:"tier"`
	Pos   string `json:"pos"`
	In    string `json:"in,omitempty"`
}

// MHPDumpModule runs the MHP engine over a module and returns every
// discovered parallel region with its classified accesses — the auditable
// artifact behind sharedwrite's verdicts.
func MHPDumpModule(mod *Module) []MHPRegionDump {
	var scratch []Diagnostic
	pass := &ModulePass{Analyzer: SharedWrite, Mod: mod, diags: &scratch}
	hbimpl := hbimplFuncs(pass)
	m := newMHPModel(mod, hbimpl)
	var out []MHPRegionDump
	for _, n := range m.graph.SortedNodes() {
		if n.Decl.Body == nil {
			continue
		}
		for _, r := range regionsOf(mod, n.Pkg, n.Fn, n.Decl) {
			d := MHPRegionDump{
				Package:      n.Pkg.RelPath,
				Func:         n.Fn.Name(),
				Kind:         r.Kind.String(),
				Site:         mod.Fset.Position(r.Site.Pos()).String(),
				SelfParallel: r.SelfParallel,
				Hbimpl:       hbimpl[n.Fn] || (r.CalleeFn != nil && hbimpl[r.CalleeFn]),
			}
			if r.Worker != nil {
				d.Worker = r.Worker.Name()
			}
			for v := range r.Dist {
				d.Dist = append(d.Dist, v.Name())
			}
			sort.Strings(d.Dist)
			if r.JoinEnd.IsValid() {
				d.Join = mod.Fset.Position(r.JoinEnd).String()
			}
			if !d.Hbimpl {
				for _, a := range m.regionAccesses(r) {
					d.Accesses = append(d.Accesses, MHPAccessDump{
						Var: a.id.Name(), Write: a.write,
						Tier: a.tier.String(),
						Pos:  mod.Fset.Position(a.pos).String(),
						In:   a.in,
					})
				}
			}
			out = append(out, d)
		}
	}
	return out
}
