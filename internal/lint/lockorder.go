package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces a consistent mutex acquisition order across the
// concurrency-heavy packages (internal/par and internal/dp, where the pool
// machinery and the DP caches live). It runs the forward dataflow engine
// over every function's CFG to compute the may-held set of mutexes at each
// acquisition site, propagates acquisition summaries over the module call
// graph, and then demands that the "acquired while holding" relation be
// acyclic: a cycle A→B→A means two code paths take the same pair of locks
// in opposite orders, which is a deadlock waiting for the right
// interleaving. Mutex identity is the declared variable or field, so
// distinct instances of one type are conservatively merged.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition order must be consistent (the acquires-while-holding relation must be acyclic)",
	RunModule: runLockOrder,
}

// lockOrderScoped limits the analysis to the packages whose locking
// discipline the scheduler's liveness depends on. Fixture modules (path
// example.com/...) are analyzed in full so the testdata harness can
// exercise the check without replicating the repo layout.
func lockOrderScoped(mod *Module, pkg *Package) bool {
	if strings.HasPrefix(mod.Path, "example.com/") {
		return true
	}
	return pkg.RelPath == "internal/par" || pkg.RelPath == "internal/dp"
}

// lockFact is the may-held set of mutexes at a program point. The zero
// value (nil map) is the empty set; facts are immutable once published.
type lockFact struct {
	held map[*types.Var]bool
}

func (f lockFact) EqualFact(other Fact) bool {
	o := other.(lockFact)
	if len(f.held) != len(o.held) {
		return false
	}
	for v := range f.held {
		if !o.held[v] {
			return false
		}
	}
	return true
}

func joinLockFacts(a, b Fact) Fact {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fb.held) == 0 {
		return fa
	}
	if len(fa.held) == 0 {
		return fb
	}
	merged := make(map[*types.Var]bool, len(fa.held)+len(fb.held))
	for v := range fa.held {
		merged[v] = true
	}
	for v := range fb.held {
		merged[v] = true
	}
	return lockFact{held: merged}
}

// lockEdge is one observed "acquired b while holding a" event with the
// site that witnessed it.
type lockEdge struct {
	from, to *types.Var
	site     ast.Node
	fn       *types.Func
}

func runLockOrder(pass *ModulePass) {
	mod := pass.Mod
	graph := BuildCallGraph(mod)
	nodes := graph.SortedNodes()

	// summaries[fn] is the set of mutexes fn may acquire, directly or
	// through module-local callees. Computed as a fixpoint over the call
	// graph: iterate until no summary grows (the lattice is finite — sets
	// of declared mutex variables).
	direct := map[*types.Func]map[*types.Var]bool{}
	for _, n := range nodes {
		if !lockOrderScoped(mod, n.Pkg) || n.Decl.Body == nil {
			continue
		}
		acq := map[*types.Var]bool{}
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			if call, ok := nd.(*ast.CallExpr); ok {
				if v, locks := mutexOp(n.Pkg, call); locks {
					acq[v] = true
				}
			}
			return true
		})
		if len(acq) > 0 {
			direct[n.Fn] = acq
		}
	}
	summaries := map[*types.Func]map[*types.Var]bool{}
	for fn, acq := range direct {
		s := make(map[*types.Var]bool, len(acq))
		for v := range acq {
			s[v] = true
		}
		summaries[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, callee := range n.Callees {
				cs := summaries[callee]
				if len(cs) == 0 {
					continue
				}
				s := summaries[n.Fn]
				if s == nil {
					s = map[*types.Var]bool{}
					summaries[n.Fn] = s
				}
				for v := range cs {
					if !s[v] {
						s[v] = true
						changed = true
					}
				}
			}
		}
	}

	// Per-function dataflow: at every acquisition site (a direct Lock or a
	// call whose summary acquires), record edges held → acquired.
	var edges []lockEdge
	for _, n := range nodes {
		if !lockOrderScoped(mod, n.Pkg) || n.Decl.Body == nil {
			continue
		}
		pkg := n.Pkg
		cfg := BuildCFG(n.Decl.Body)
		transfer := func(b *Block, in Fact) Fact {
			cur := in.(lockFact)
			for _, stmt := range b.Nodes {
				inspectShallow(stmt, func(nd ast.Node) bool {
					// Goroutine bodies start with an empty held-set of their
					// own; their acquisitions are analyzed via their own CFG
					// walk, not the spawner's.
					if _, ok := nd.(*ast.GoStmt); ok {
						return false
					}
					call, ok := nd.(*ast.CallExpr)
					if !ok {
						return true
					}
					if v, locks := mutexOp(pkg, call); v != nil {
						var acquired []*types.Var
						if locks {
							acquired = []*types.Var{v}
						}
						cur = applyAcquire(&edges, n.Fn, call, cur, acquired, nil)
						if !locks {
							cur = release(cur, v)
						}
						return true
					}
					if callee := staticCallee(pkg, call); callee != nil {
						if s := summaries[callee]; len(s) > 0 {
							cur = applyAcquire(&edges, n.Fn, call, cur, nil, s)
						}
					}
					return true
				})
			}
			return cur
		}
		cfg.Forward(FlowProblem{
			Entry:    lockFact{},
			Join:     joinLockFacts,
			Transfer: transfer,
		})
	}

	reportLockCycles(pass, mod, edges)
}

// applyAcquire records held→acquired edges for every mutex in the direct
// list and the summary set, and returns the fact with the direct
// acquisitions added. Summary acquisitions are not added to the held set:
// the callee releases what it takes (if it does not, its own body shows the
// leak) — only the ordering constraint escapes.
func applyAcquire(edges *[]lockEdge, fn *types.Func, site ast.Node, f lockFact, acquired []*types.Var, summary map[*types.Var]bool) lockFact {
	var targets []*types.Var
	targets = append(targets, acquired...)
	if len(summary) > 0 {
		keys := make([]*types.Var, 0, len(summary))
		for v := range summary {
			keys = append(keys, v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Pos() < keys[j].Pos() })
		targets = append(targets, keys...)
	}
	for _, to := range targets {
		for from := range f.held {
			if from != to {
				*edges = append(*edges, lockEdge{from: from, to: to, site: site, fn: fn})
			}
		}
	}
	if len(acquired) == 0 {
		return f
	}
	held := make(map[*types.Var]bool, len(f.held)+len(acquired))
	for v := range f.held {
		held[v] = true
	}
	for _, v := range acquired {
		held[v] = true
	}
	return lockFact{held: held}
}

func release(f lockFact, v *types.Var) lockFact {
	if !f.held[v] {
		return f
	}
	held := make(map[*types.Var]bool, len(f.held))
	for h := range f.held {
		if h != v {
			held[h] = true
		}
	}
	return lockFact{held: held}
}

// mutexOp recognizes m.Lock()/m.RLock() (locks=true) and
// m.Unlock()/m.RUnlock() (locks=false) where m resolves to a declared
// sync.Mutex or sync.RWMutex variable or field. Other calls return (nil,
// false).
func mutexOp(pkg *Package, call *ast.CallExpr) (*types.Var, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return nil, false
	}
	v, _ := addressedVar(pkg, sel.X)
	if v == nil || !isMutexType(v.Type()) {
		return nil, false
	}
	return v, locks
}

func isMutexType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// staticCallee resolves a call to a module-declared function, or nil.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// reportLockCycles builds the acquires-while-holding graph from the
// observed edges and reports one diagnostic per edge that participates in a
// cycle, citing the full cycle so the fix (pick one order) is evident.
func reportLockCycles(pass *ModulePass, mod *Module, edges []lockEdge) {
	succ := map[*types.Var]map[*types.Var]bool{}
	for _, e := range edges {
		m := succ[e.from]
		if m == nil {
			m = map[*types.Var]bool{}
			succ[e.from] = m
		}
		m[e.to] = true
	}
	// cyclic[v] for every vertex on some cycle: v reaches itself.
	cyclic := map[*types.Var]bool{}
	for _, e := range edges {
		if cyclic[e.from] {
			continue
		}
		if reachesLock(succ, e.to, e.from, map[*types.Var]bool{}) || succ[e.from][e.from] {
			cyclic[e.from] = true
		}
	}
	seen := map[string]bool{}
	for _, e := range edges {
		if !cyclic[e.from] || !cyclic[e.to] {
			continue
		}
		// Both endpoints on cycles is necessary but not sufficient; the
		// edge itself must be part of one (to reaches from).
		if !(e.to == e.from) && !reachesLock(succ, e.to, e.from, map[*types.Var]bool{}) {
			continue
		}
		key := fmt.Sprintf("%v|%s|%s", mod.Fset.Position(e.site.Pos()), lockName(e.from), lockName(e.to))
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.Reportf(e.site.Pos(), "%s acquires %s while holding %s, but another path acquires them in the opposite order (lock-order cycle)",
			e.fn.Name(), lockName(e.to), lockName(e.from))
	}
}

func reachesLock(succ map[*types.Var]map[*types.Var]bool, from, to *types.Var, visited map[*types.Var]bool) bool {
	if from == to {
		return true
	}
	if visited[from] {
		return false
	}
	visited[from] = true
	nexts := make([]*types.Var, 0, len(succ[from]))
	for v := range succ[from] {
		nexts = append(nexts, v)
	}
	sort.Slice(nexts, func(i, j int) bool { return nexts[i].Pos() < nexts[j].Pos() })
	for _, v := range nexts {
		if reachesLock(succ, v, to, visited) {
			return true
		}
	}
	return false
}

// lockName renders a mutex variable for diagnostics: Type.field for fields,
// the plain name otherwise.
func lockName(v *types.Var) string {
	if v.IsField() {
		return "field " + v.Name()
	}
	return v.Name()
}
