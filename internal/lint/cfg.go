package lint

// Control-flow graphs for the dataflow-based analyzers (ALGORITHM.md §11).
//
// BuildCFG lowers one function body into basic blocks connected by edges
// that follow Go's structured control flow: if/else, the three for-loop
// forms, range, (type) switch with fallthrough, select, labeled
// break/continue, goto, return and panic. The construction is purely
// syntactic — no type information — so it can run on any parsed body; the
// analyses layer type facts on top through their transfer functions.
//
// Two deliberate modeling choices keep the analyses honest:
//
//   - Deferred statements do not appear on the normal edges. They execute at
//     every function exit, so they are collected in CFG.Defers and analyses
//     account for them when interpreting the exit block (waitbalance treats
//     a deferred wg.Done as satisfying every path; lockorder does not drop a
//     lock at a `defer mu.Unlock()` because the mutex stays held until
//     return).
//   - Nested function literals are opaque: their bodies belong to a
//     different activation and get their own CFG when an analyzer cares
//     (waitbalance builds one per goroutine body). inspectShallow is the
//     shared walker that prunes them.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of statements
// (and the governing expressions of the control statements that end it) with
// the outgoing control-flow edges.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, creation order).
	Index int
	// Nodes holds the statements and control expressions executed when the
	// block runs, in execution order. Compound statements contribute only
	// their leaf parts (an IfStmt contributes its Init and Cond; the
	// branches are separate blocks), so walking every block's Nodes visits
	// each executable node exactly once.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry is the first
// block executed; Exit is a synthetic block reached by falling off the end,
// by every return statement and by calls to the panic builtin.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the body, in source order. The
	// deferred calls run at function exit (when their defer statement was
	// reached), so analyses consult this list when interpreting Exit.
	Defers []*ast.DeferStmt
}

// Reachable returns the set of blocks reachable from Entry along edges.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// cfgLoop is one entry of the builder's control stack: the jump targets a
// break or continue statement resolves to, plus the label (if any) binding
// them for labeled branches. Switch and select entries have a nil cont.
type cfgLoop struct {
	label string
	brk   *Block
	cont  *Block
}

type cfgBuilder struct {
	c   *CFG
	cur *Block // nil after a terminator (return/panic/branch)
	// loops is the stack of enclosing breakable/continuable statements.
	loops []cfgLoop
	// labels maps label names to their blocks (created on demand so forward
	// gotos resolve).
	labels map[string]*Block
	// pendingLabel is the label of the LabeledStmt currently being lowered,
	// consumed by the next loop/switch/select statement.
	pendingLabel string
	// nextCase is the following case clause's block while lowering a switch
	// body, the target of a fallthrough statement.
	nextCase *Block
}

// BuildCFG constructs the control-flow graph of a function body. A nil body
// (declaration without implementation) yields a two-block graph whose entry
// is also connected to exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{c: c, labels: map[string]*Block{}}
	c.Entry = b.newBlock()
	c.Exit = &Block{}
	b.cur = c.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(c.Exit)
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

// jump links the current block to target and is a no-op after a terminator.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
}

// startBlock makes target the current block (typically after jump(target)).
func (b *cfgBuilder) startBlock(target *Block) { b.cur = target }

// add appends an executed node to the current block; statements after a
// terminator are unreachable and land in a fresh predecessor-less block so
// analyses still see their nodes.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findLoop resolves a break (wantCont=false) or continue (wantCont=true)
// to its target block; label "" selects the innermost candidate.
func (b *cfgBuilder) findLoop(label string, wantCont bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := b.loops[i]
		if label != "" && l.label != label {
			continue
		}
		if wantCont {
			if l.cont != nil {
				return l.cont
			}
			if label != "" {
				return nil
			}
			continue // break-only entry (switch/select); keep looking
		}
		return l.brk
	}
	return nil
}

// takeLabel consumes the pending label for the loop/switch being lowered.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.startBlock(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.c.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.c.Defers = append(b.c.Defers, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.c.Exit)
			b.cur = nil
		}
	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	var target *Block
	switch s.Tok {
	case token.BREAK:
		target = b.findLoop(label, false)
	case token.CONTINUE:
		target = b.findLoop(label, true)
	case token.GOTO:
		if s.Label != nil {
			target = b.labelBlock(s.Label.Name)
		}
	case token.FALLTHROUGH:
		target = b.nextCase
	}
	if target != nil {
		b.jump(target)
	}
	// A branch with no resolvable target (malformed source) just terminates
	// the block; the tree would not compile anyway.
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	join := b.newBlock()
	then := b.newBlock()
	cond.Succs = append(cond.Succs, then)
	b.startBlock(then)
	b.stmtList(s.Body.List)
	b.jump(join)
	if s.Else != nil {
		els := b.newBlock()
		cond.Succs = append(cond.Succs, els)
		b.startBlock(els)
		b.stmt(s.Else)
		b.jump(join)
	} else {
		cond.Succs = append(cond.Succs, join)
	}
	b.startBlock(join)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	head = b.cur // add may have replaced an unreachable head
	exit := b.newBlock()
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	body := b.newBlock()
	head.Succs = append(head.Succs, body)
	if s.Cond != nil {
		head.Succs = append(head.Succs, exit)
	}
	b.loops = append(b.loops, cfgLoop{label: label, brk: exit, cont: cont})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	if post != nil {
		b.jump(post)
		b.startBlock(post)
		b.add(s.Post)
		b.jump(head)
	} else {
		b.jump(head)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(exit)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	// The head carries the ranged expression (analyses inspect its type to
	// recognize channel ranges) and the per-iteration key/value assignment.
	head := b.newBlock()
	b.jump(head)
	b.startBlock(head)
	b.add(s.X)
	exit := b.newBlock()
	body := b.newBlock()
	head.Succs = append(head.Succs, body, exit)
	b.loops = append(b.loops, cfgLoop{label: label, brk: exit, cont: head})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	b.jump(head)
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(exit)
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(label, s.Body, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
		return cc.List, cc.Body, cc.List == nil
	})
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(label, s.Body, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
		return cc.List, cc.Body, cc.List == nil
	})
}

// caseClauses lowers a switch body: one block per clause, all successors of
// the head, a shared join as the break target, fallthrough edges between
// consecutive clauses, and a head→join edge when there is no default.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt, parts func(*ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool)) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
	}
	hasDefault := false
	b.loops = append(b.loops, cfgLoop{label: label, brk: join})
	savedNext := b.nextCase
	for i, cc := range clauses {
		exprs, stmts, isDefault := parts(cc)
		if isDefault {
			hasDefault = true
		}
		b.startBlock(blocks[i])
		for _, e := range exprs {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.nextCase = blocks[i+1]
		} else {
			b.nextCase = nil
		}
		b.stmtList(stmts)
		b.jump(join)
	}
	b.nextCase = savedNext
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		head.Succs = append(head.Succs, join)
	}
	b.startBlock(join)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	b.loops = append(b.loops, cfgLoop{label: label, brk: join})
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.startBlock(blk)
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	// A select with no clauses blocks forever: join stays unreachable, which
	// is exactly what the leak analysis wants to see.
	b.startBlock(join)
}

// isPanicCall reports whether the expression is a call of the panic builtin
// (by name; shadowing panic with a function would defeat the heuristic, and
// nothing in a sane tree does).
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	return ok && ident.Name == "panic"
}

// inspectShallow walks the node like ast.Inspect but does not descend into
// nested function literals (their bodies execute on a different activation)
// or deferred statements (they execute at function exit; see CFG.Defers).
// The visit function's return value controls descent exactly as in
// ast.Inspect.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		return visit(n)
	})
}
