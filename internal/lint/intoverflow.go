package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"sort"
)

// IntOverflow guards the parse boundary: functions reachable from a
// //lint:parseroot declaration (the text and JSON readers) compute with
// attacker-controlled integers, so every `+`, `*` and `<<` on a signed
// 64-bit quantity must be provably within int64 range under the value-flow
// intervals. Parse results start unbounded; a dominating validation guard
// (`if t > MaxTimeValue { return err }`) is what narrows them — the
// analyzer is the mechanism that forces pcmax.Validate's caps to actually
// dominate the arithmetic instead of living in a comment.
var IntOverflow = &Analyzer{
	Name:      "intoverflow",
	Doc:       "arithmetic reachable from a //lint:parseroot function must be provably free of int64 overflow",
	RunModule: runIntOverflow,
}

func runIntOverflow(p *ModulePass) {
	g := BuildCallGraph(p.Mod)
	var roots []*types.Func
	for _, pkg := range p.Mod.Packages {
		for _, f := range pkg.Files {
			fns, attached := directiveFuncs(f, isParserootDirective)
			for _, fd := range fns {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, fn)
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if isParserootDirective(c.Text) && !attached[c] {
						p.Reportf(c.Pos(), "stray //lint:parseroot: the directive must be part of a function declaration's doc comment")
					}
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	reach := g.Reachable(roots)
	for _, node := range g.SortedNodes() {
		root, ok := reach[node.Fn]
		if !ok || node.Decl.Body == nil {
			continue
		}
		vf := buildValueFlow(node.Pkg, node.Decl)
		vf.checkOverflow(p, root)
	}
}

// checkOverflow walks one reachable function with its interval facts and
// reports every +, * or << (including the op-assign and ++ forms) on a
// signed 64-bit value that the engine cannot prove within range.
func (vf *valueFlow) checkOverflow(p *ModulePass, root *types.Func) {
	scan := func(n ast.Node, env intervalFact) {
		inspectShallow(n, func(m ast.Node) bool {
			if be, ok := m.(*ast.BinaryExpr); ok {
				vf.checkBinaryOverflow(p, root, env, be)
			}
			return true
		})
	}
	vf.walk(func(_ *Block, n ast.Node, env intervalFact) {
		scan(n, env)
		switch s := n.(type) {
		case *ast.AssignStmt:
			vf.checkOpAssign(p, root, env, s)
		case *ast.IncDecStmt:
			vf.checkIncDec(p, root, env, s)
		case *ast.DeferStmt:
			ast.Inspect(s.Call, func(m ast.Node) bool {
				if be, ok := m.(*ast.BinaryExpr); ok {
					vf.checkBinaryOverflow(p, root, env, be)
				}
				return true
			})
		}
	})
}

func (vf *valueFlow) checkBinaryOverflow(p *ModulePass, root *types.Func, env intervalFact, be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.MUL, token.SHL:
	default:
		return
	}
	tv, ok := vf.pkg.Info.Types[be]
	if !ok || tv.Value != nil || !isSigned64(tv.Type) {
		return
	}
	x := vf.evalExpr(env, be.X)
	y := vf.evalExpr(env, be.Y)
	if vf.binOpSafe(env, be.Op, x, y) {
		return
	}
	p.Reportf(be.Pos(), "%s in %s (reachable from parse root %s): operands in %s %s %s; guard the inputs against a documented cap first",
		overflowVerb(be.Op), vf.fd.Name.Name, root.Name(), vf.renderIval(x), be.Op, vf.renderIval(y))
}

func (vf *valueFlow) checkOpAssign(p *ModulePass, root *types.Func, env intervalFact, s *ast.AssignStmt) {
	var op token.Token
	switch s.Tok {
	case token.ADD_ASSIGN:
		op = token.ADD
	case token.MUL_ASSIGN:
		op = token.MUL
	case token.SHL_ASSIGN:
		op = token.SHL
	default:
		return
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	tv, ok := vf.pkg.Info.Types[s.Lhs[0]]
	if !ok || !isSigned64(tv.Type) {
		return
	}
	x := vf.evalExpr(env, s.Lhs[0])
	y := vf.evalExpr(env, s.Rhs[0])
	if vf.binOpSafe(env, op, x, y) {
		return
	}
	p.Reportf(s.Pos(), "%s in %s (reachable from parse root %s): operands in %s %s %s; guard the inputs against a documented cap first",
		overflowVerb(op), vf.fd.Name.Name, root.Name(), vf.renderIval(x), op, vf.renderIval(y))
}

func (vf *valueFlow) checkIncDec(p *ModulePass, root *types.Func, env intervalFact, s *ast.IncDecStmt) {
	if s.Tok != token.INC {
		return
	}
	tv, ok := vf.pkg.Info.Types[s.X]
	if !ok || !isSigned64(tv.Type) {
		return
	}
	x := vf.evalExpr(env, s.X)
	one := degenerate(constBound(1))
	if vf.binOpSafe(env, token.ADD, x, one) {
		return
	}
	p.Reportf(s.Pos(), "possible int64 overflow in %s (reachable from parse root %s): increment of value in %s; guard the counter against a documented cap first",
		vf.fd.Name.Name, root.Name(), vf.renderIval(x))
}

func overflowVerb(op token.Token) string {
	switch op {
	case token.MUL:
		return "possible int64 overflow in multiplication"
	case token.SHL:
		return "possible int64 overflow in left shift"
	}
	return "possible int64 overflow in addition"
}

// isSigned64 reports a signed integer type of at least 64 bits (int, int64
// and their named forms) — the only widths whose representable range the
// lattice cannot carry, so overflow must be proven, not assumed.
func isSigned64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	w, signed := intKindWidth(b.Kind())
	return signed && w >= 64
}

// binOpSafe proves that op applied to values in x and y stays within int64.
func (vf *valueFlow) binOpSafe(env intervalFact, op token.Token, x, y ival) bool {
	switch op {
	case token.ADD:
		return vf.addFitsHi(env, x.Hi, y.Hi) && vf.addFitsLo(env, x.Lo, y.Lo)
	case token.MUL:
		return vf.mulFits(env, x, y)
	case token.SHL:
		return vf.shlFits(env, x, y)
	}
	return false
}

// addFitsHi proves value(a)+value(b) ≤ MaxInt64 for two upper bounds. The
// symbolic-slack rule does the heavy lifting: when exactly one bound is a
// term (base+off) and the offsets sum to ≤ 0, the sum is bounded by the
// base value itself, which is at most MaxInt64 by representability — this
// is what certifies `i+1` under `i ≤ len(v)-1` without knowing len(v).
func (vf *valueFlow) addFitsHi(env intervalFact, a, b ibound) bool {
	a = vf.normalize(env, a, 0)
	b = vf.normalize(env, b, 0)
	if a.Inf > 0 || b.Inf > 0 {
		return false
	}
	if a.Inf < 0 || b.Inf < 0 {
		return true
	}
	if a.Base == 0 && b.Base == 0 {
		_, ok := addInt64(a.Off, b.Off)
		return ok
	}
	if (a.Base == 0) != (b.Base == 0) {
		if s, ok := addInt64(a.Off, b.Off); ok && s <= 0 {
			return true
		}
	}
	ca, aok := vf.resolveMax(env, a, 0)
	cb, bok := vf.resolveMax(env, b, 0)
	if !aok || !bok {
		return false
	}
	_, ok := addInt64(ca, cb)
	return ok
}

// addFitsLo mirrors addFitsHi against MinInt64 for the lower bounds.
func (vf *valueFlow) addFitsLo(env intervalFact, a, b ibound) bool {
	a = vf.normalize(env, a, 0)
	b = vf.normalize(env, b, 0)
	if a.Inf < 0 || b.Inf < 0 {
		return false
	}
	if a.Inf > 0 || b.Inf > 0 {
		return true
	}
	if a.Base == 0 && b.Base == 0 {
		_, ok := addInt64(a.Off, b.Off)
		return ok
	}
	if (a.Base == 0) != (b.Base == 0) {
		if s, ok := addInt64(a.Off, b.Off); ok && s >= 0 {
			return true
		}
	}
	ca, aok := vf.resolveMin(env, a, 0)
	cb, bok := vf.resolveMin(env, b, 0)
	if !aok || !bok {
		return false
	}
	_, ok := addInt64(ca, cb)
	return ok
}

// mulFits proves the product within int64 via the four concrete corner
// products; symbolic bounds must resolve to concrete extremes first.
func (vf *valueFlow) mulFits(env intervalFact, x, y ival) bool {
	xl, ok1 := vf.resolveMin(env, x.Lo, 0)
	xh, ok2 := vf.resolveMax(env, x.Hi, 0)
	yl, ok3 := vf.resolveMin(env, y.Lo, 0)
	yh, ok4 := vf.resolveMax(env, y.Hi, 0)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return false
	}
	for _, a := range [2]int64{xl, xh} {
		for _, b := range [2]int64{yl, yh} {
			if _, ok := mulInt64(a, b); !ok {
				return false
			}
		}
	}
	return true
}

// shlFits proves x << k within int64: the shift amount must be concretely
// in [0, 62] and both extremes of x must survive the shift.
func (vf *valueFlow) shlFits(env intervalFact, x, k ival) bool {
	kl, ok1 := vf.resolveMin(env, k.Lo, 0)
	kh, ok2 := vf.resolveMax(env, k.Hi, 0)
	if !ok1 || !ok2 || kl < 0 || kh > 62 {
		return false
	}
	xl, ok3 := vf.resolveMin(env, x.Lo, 0)
	xh, ok4 := vf.resolveMax(env, x.Hi, 0)
	if !ok3 || !ok4 {
		return false
	}
	return xh <= math.MaxInt64>>uint(kh) && xl >= math.MinInt64>>uint(kh)
}
