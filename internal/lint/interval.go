package lint

// The interval/constant lattice over SSA values and its fixpoint
// propagation — the "value" half of the value-flow engine (ALGORITHM.md
// §14). Facts are symbolic intervals: each bound is either a constant or
// "value of SSA value B, plus a constant offset". Because SSA values are
// immutable at runtime, a symbolic bound like i ≤ len(v)−1 keeps meaning
// the same thing everywhere it flows, which is exactly what the bounds
// prover needs to certify v[i] without knowing len(v).
//
// Propagation is sparse conditional range propagation on the existing
// dataflow worklist: the transfer function evaluates each block's
// definitions in order, the edge transfer refines ranges from branch
// conditions (<, <=, ==, and their negations, through &&/||/!), and phi
// values are resolved per incoming edge after refinement. A threshold
// widening (to the constants appearing in the function's comparisons, then
// to infinity) bounds the iteration on counting loops.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
)

// maxSliceLen is the a-priori bound on any slice length: 2^48 elements is
// beyond addressable memory on every supported platform, so using it as the
// default upper bound of a len() value is sound in practice and keeps
// len-derived arithmetic out of the overflow reports.
const maxSliceLen = int64(1) << 48

// ibound is one interval bound: the value of SSA value Base plus Off, or a
// plain constant when Base is 0, or an infinity when Inf is ±1.
type ibound struct {
	Base VID
	Off  int64
	Inf  int8 // -1: -inf, +1: +inf, 0: finite
}

var (
	negInf = ibound{Inf: -1}
	posInf = ibound{Inf: +1}
)

func constBound(c int64) ibound { return ibound{Off: c} }
func (b ibound) isConst() bool  { return b.Inf == 0 && b.Base == 0 }
func (b ibound) eq(o ibound) bool {
	return b.Base == o.Base && b.Off == o.Off && b.Inf == o.Inf
}

// add shifts a finite bound by a constant, saturating to infinity on
// overflow (the bound stays sound, just less precise).
func (b ibound) add(c int64) ibound {
	if b.Inf != 0 {
		return b
	}
	s, ok := addInt64(b.Off, c)
	if !ok {
		if c > 0 {
			return posInf
		}
		return negInf
	}
	b.Off = s
	return b
}

func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subInt64(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		return 0, false
	}
	return addInt64(a, -b)
}

// ival is one interval fact: lo ≤ value ≤ hi.
type ival struct{ Lo, Hi ibound }

var topIval = ival{Lo: negInf, Hi: posInf}

func (v ival) isTop() bool { return v.Lo.Inf < 0 && v.Hi.Inf > 0 }

// degenerate reports a bound-to-bound equality interval [b, b].
func degenerate(b ibound) ival { return ival{Lo: b, Hi: b} }

// intervalFact is the dataflow fact: known intervals per SSA value. Values
// absent from the map are at their type default (see typeDefault).
type intervalFact map[VID]ival

// EqualFact implements Fact by structural equality.
func (f intervalFact) EqualFact(o Fact) bool {
	g, ok := o.(intervalFact)
	if !ok || len(f) != len(g) {
		return false
	}
	for k, v := range f {
		w, ok := g[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

func (f intervalFact) clone() intervalFact {
	g := make(intervalFact, len(f)+4)
	for k, v := range f {
		g[k] = v
	}
	return g
}

// valueFlow is the per-function value-flow engine: SSA plus the interval
// fixpoint, ready for the analyzers to query.
type valueFlow struct {
	pkg *Package
	fd  *ast.FuncDecl
	ssa *SSAFunc
	res *FlowResult
	// thresholds are the widening targets: every integer constant compared
	// against in the body, plus {-1, 0, 1}, sorted.
	thresholds []int64
}

// intWidth returns the bit width of the platform's int type.
func intWidth() int64 {
	if s := checkerSizes(); s != nil {
		return 8 * s.Sizeof(types.Typ[types.Int])
	}
	return 64
}

// buildValueFlow runs the engine on one declared function; nil when the
// function has no body.
func buildValueFlow(pkg *Package, fd *ast.FuncDecl) *valueFlow {
	if fd.Body == nil {
		return nil
	}
	vf := &valueFlow{pkg: pkg, fd: fd, ssa: BuildSSA(pkg.Info, fd)}
	vf.collectThresholds()
	problem := FlowProblem{
		Entry:        vf.entryFact(),
		Join:         vf.join,
		Transfer:     vf.transfer,
		EdgeTransfer: vf.edgeTransfer,
		Widen:        vf.widen,
	}
	vf.res = vf.ssa.Cfg.Forward(problem)
	return vf
}

// collectThresholds gathers the widening targets from the body's comparison
// and shift constants. maxSliceLen is always a threshold: loop counters
// bounded by a slice length join to it, and widening them all the way to
// +inf would needlessly unprove their increment arithmetic.
func (vf *valueFlow) collectThresholds() {
	set := map[int64]bool{-1: true, 0: true, 1: true, maxSliceLen: true}
	addExpr := func(e ast.Expr) {
		if tv, ok := vf.pkg.Info.Types[e]; ok && tv.Value != nil {
			if c, ok := constInt64(tv.Value); ok {
				set[c] = true
			}
		}
	}
	ast.Inspect(vf.fd.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				addExpr(be.X)
				addExpr(be.Y)
			}
		}
		return true
	})
	for c := range set {
		vf.thresholds = append(vf.thresholds, c)
	}
	sort.Slice(vf.thresholds, func(i, j int) bool { return vf.thresholds[i] < vf.thresholds[j] })
}

func constInt64(v constant.Value) (int64, bool) {
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// entryFact seeds the parameters with their type defaults (so the map side
// of the lattice starts non-empty only where it says something).
func (vf *valueFlow) entryFact() Fact {
	f := intervalFact{}
	for _, vid := range vf.ssa.EntryVals {
		if iv, ok := vf.typeDefaultOf(vid); ok && !iv.isTop() {
			f[vid] = iv
		}
	}
	return f
}

// typeDefaultOf is the interval implied by an SSA value's static type.
func (vf *valueFlow) typeDefaultOf(vid VID) (ival, bool) {
	v := &vf.ssa.Vals[vid]
	if v.Kind == vLen {
		return ival{Lo: constBound(0), Hi: constBound(maxSliceLen)}, true
	}
	if v.Obj == nil {
		return topIval, false
	}
	return typeDefault(v.Obj.Type())
}

// typeDefault maps an integer type to the interval of its representable
// values; ok is false for non-integer types. 64-bit ranges come back as
// ±inf: representable-range endpoints are useless for overflow checking, so
// the lattice treats them as unknown.
func typeDefault(t types.Type) (ival, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return topIval, false
	}
	w, signed := intKindWidth(b.Kind())
	if w == 0 {
		return topIval, true
	}
	if signed {
		if w >= 64 {
			return topIval, true
		}
		m := int64(1) << (w - 1)
		return ival{Lo: constBound(-m), Hi: constBound(m - 1)}, true
	}
	if w >= 64 {
		return ival{Lo: constBound(0), Hi: posInf}, true
	}
	return ival{Lo: constBound(0), Hi: constBound(int64(1)<<w - 1)}, true
}

// intKindWidth returns an integer basic kind's bit width and signedness
// (0 width for non-integer kinds).
func intKindWidth(k types.BasicKind) (int64, bool) {
	switch k {
	case types.Int, types.UntypedInt:
		return intWidth(), true
	case types.Int8:
		return 8, true
	case types.Int16:
		return 16, true
	case types.Int32:
		return 32, true
	case types.Int64:
		return 64, true
	case types.Uint, types.Uintptr:
		return intWidth(), false
	case types.Uint8:
		return 8, false
	case types.Uint16:
		return 16, false
	case types.Uint32:
		return 32, false
	case types.Uint64:
		return 64, false
	}
	return 0, true
}

// lookup returns the interval of an SSA value under env, falling back to
// the type default.
func (vf *valueFlow) lookup(env intervalFact, vid VID) ival {
	if vid == 0 {
		return topIval
	}
	if iv, ok := env[vid]; ok {
		return iv
	}
	iv, _ := vf.typeDefaultOf(vid)
	return iv
}

// join is the lattice join: keep a key only when both sides constrain it.
// Per bound, structurally equal forms survive as-is; otherwise each side's
// bound chain (successive sound substitutions through env) is searched for
// a common base and the weaker offset wins — this is what keeps `i` bounded
// by len(v)−1 across a decrement loop's back edge, where the two incoming
// bounds are different SSA values of the same count-down. With no common
// base the bound falls to the concrete hull, then to infinity.
func (vf *valueFlow) join(a, b Fact) Fact {
	fa, fb := a.(intervalFact), b.(intervalFact)
	out := make(intervalFact, len(fa))
	for k, va := range fa {
		vb, ok := fb[k]
		if !ok {
			continue
		}
		iv := ival{
			Lo: vf.joinLo(fa, va.Lo, fb, vb.Lo),
			Hi: vf.joinHi(fa, va.Hi, fb, vb.Hi),
		}
		if !iv.isTop() {
			out[k] = iv
		}
	}
	return out
}

func (vf *valueFlow) joinLo(fa intervalFact, a ibound, fb intervalFact, b ibound) ibound {
	if a.eq(b) {
		return a
	}
	if a.Inf < 0 || b.Inf < 0 {
		return negInf
	}
	for _, x := range vf.chainMin(fa, a) {
		for _, y := range vf.chainMin(fb, b) {
			if x.Base == y.Base {
				if y.Off < x.Off {
					return y
				}
				return x
			}
		}
	}
	return negInf
}

func (vf *valueFlow) joinHi(fa intervalFact, a ibound, fb intervalFact, b ibound) ibound {
	if a.eq(b) {
		return a
	}
	if a.Inf > 0 || b.Inf > 0 {
		return posInf
	}
	for _, x := range vf.chainMax(fa, a) {
		for _, y := range vf.chainMax(fb, b) {
			if x.Base == y.Base {
				if y.Off > x.Off {
					return y
				}
				return x
			}
		}
	}
	return posInf
}

// chainMax lists successive sound upper bounds of a term: the term itself,
// then the result of substituting its base's stored upper bound, and so on
// until a constant, an infinity, or the depth cap. Constants end a chain
// (they have Base 0, so a const–const pair in the caller compares hulls).
func (vf *valueFlow) chainMax(env intervalFact, b ibound) []ibound {
	var out []ibound
	for depth := 0; depth < 8 && b.Inf == 0; depth++ {
		out = append(out, b)
		if b.Base == 0 {
			break
		}
		hi := vf.lookup(env, b.Base).Hi
		if hi.Inf != 0 {
			break
		}
		nb := hi.add(b.Off)
		if nb.Inf != 0 || nb.eq(b) {
			break
		}
		b = nb
	}
	return out
}

// chainMin mirrors chainMax through stored lower bounds.
func (vf *valueFlow) chainMin(env intervalFact, b ibound) []ibound {
	var out []ibound
	for depth := 0; depth < 8 && b.Inf == 0; depth++ {
		out = append(out, b)
		if b.Base == 0 {
			break
		}
		lo := vf.lookup(env, b.Base).Lo
		if lo.Inf != 0 {
			break
		}
		nb := lo.add(b.Off)
		if nb.Inf != 0 || nb.eq(b) {
			break
		}
		b = nb
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// widen accelerates convergence: any bound still moving after WidenAfter
// merges jumps to the nearest enclosing comparison threshold, then to
// infinity. Bounds that agree with the previous fact stay untouched, so
// stable symbolic facts survive loops unscathed.
func (vf *valueFlow) widen(_ *Block, old, merged Fact) Fact {
	fo, fm := old.(intervalFact), merged.(intervalFact)
	out := make(intervalFact, len(fm))
	for k, vm := range fm {
		vo, ok := fo[k]
		if ok && vo == vm {
			out[k] = vm
			continue
		}
		lo, hi := vm.Lo, vm.Hi
		if !ok || !vo.Lo.eq(vm.Lo) {
			lo = vf.widenLo(fm, vm.Lo)
		}
		if !ok || !vo.Hi.eq(vm.Hi) {
			hi = vf.widenHi(fm, vm.Hi)
		}
		iv := ival{Lo: lo, Hi: hi}
		if !iv.isTop() {
			out[k] = iv
		}
	}
	return out
}

func (vf *valueFlow) widenLo(env intervalFact, b ibound) ibound {
	c, ok := vf.resolveMin(env, b, 0)
	if !ok {
		return negInf
	}
	for i := len(vf.thresholds) - 1; i >= 0; i-- {
		if vf.thresholds[i] <= c {
			return constBound(vf.thresholds[i])
		}
	}
	return negInf
}

func (vf *valueFlow) widenHi(env intervalFact, b ibound) ibound {
	c, ok := vf.resolveMax(env, b, 0)
	if !ok {
		return posInf
	}
	for _, t := range vf.thresholds {
		if t >= c {
			return constBound(t)
		}
	}
	return posInf
}

// transfer applies one block's definitions in order.
func (vf *valueFlow) transfer(b *Block, in Fact) Fact {
	env := in.(intervalFact).clone()
	for _, n := range b.Nodes {
		vf.applyNode(n, env)
	}
	return env
}

// applyNode records the intervals of the SSA values a node defines. Phi and
// range values are handled on edges and loop heads respectively.
func (vf *valueFlow) applyNode(n ast.Node, env intervalFact) {
	for id, vid := range vf.defsOf(n) {
		_ = id
		v := &vf.ssa.Vals[vid]
		var iv ival
		switch v.Kind {
		case vZero:
			iv = degenerate(constBound(0))
		case vExpr:
			if v.Rhs != nil {
				iv = vf.evalExpr(env, v.Rhs)
			} else {
				iv, _ = vf.typeDefaultOf(vid)
			}
			vf.bindLen(env, vid, v.Rhs)
		case vCompound:
			prev := vf.lookup(env, v.Prev)
			var operand ival
			if v.Rhs != nil {
				operand = vf.evalExpr(env, v.Rhs)
			} else {
				operand = degenerate(constBound(1))
			}
			iv = vf.evalBinary(env, v.Op, prev, operand)
		case vRangeKey:
			iv = vf.rangeKeyIval(env, v.Range)
		case vRangeVal:
			iv, _ = vf.typeDefaultOf(vid)
		default:
			iv, _ = vf.typeDefaultOf(vid)
		}
		if def, ok := vf.typeDefaultOf(vid); ok {
			iv = vf.clip(env, iv, def)
		}
		if iv.isTop() {
			delete(env, vid)
		} else {
			env[vid] = iv
		}
	}
}

// defsOf maps each defining ident of the node to its SSA value. A range
// statement's key and value idents are defined at its X expression (the
// loop-head node) even though they are not syntactic children of it.
func (vf *valueFlow) defsOf(n ast.Node) map[*ast.Ident]VID {
	out := map[*ast.Ident]VID{}
	if rng, ok := vf.ssa.RangeOf(n); ok {
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, iok := identOrNil(e); iok {
				if vid, dok := vf.ssa.Def[id]; dok {
					out[id] = vid
				}
			}
		}
	}
	inspectShallow(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if vid, ok := vf.ssa.Def[id]; ok {
				out[id] = vid
			}
		}
		return true
	})
	return out
}

// clip intersects a computed interval with the value's type default so
// conversions and narrow types keep their representable range.
func (vf *valueFlow) clip(env intervalFact, iv, def ival) ival {
	if def.Lo.isConst() && !vf.cmpLE(env, def.Lo, iv.Lo) {
		iv.Lo = def.Lo
	}
	if def.Hi.isConst() && !vf.cmpLE(env, iv.Hi, def.Hi) {
		iv.Hi = def.Hi
	}
	if def.Lo.isConst() && iv.Lo.Inf < 0 {
		iv.Lo = def.Lo
	}
	if def.Hi.isConst() && iv.Hi.Inf > 0 {
		iv.Hi = def.Hi
	}
	return iv
}

// bindLen derives the length of a slice produced by a slice expression:
// s[lo:hi] has len hi−lo, representable when the difference reduces to a
// single term — hi = lo + e with both lo occurrences the same value (the
// kernels' sliding-cursor form), or lo a constant and hi a term.
func (vf *valueFlow) bindLen(env intervalFact, vid VID, rhs ast.Expr) {
	se, ok := ast.Unparen(rhs).(*ast.SliceExpr)
	if !ok || se.Slice3 || se.High == nil {
		return
	}
	lo, lok := vf.termOf(env, se.Low) // nil Low is the constant 0
	if !lok {
		return
	}
	var lenB ibound
	found := false
	if be, ok := ast.Unparen(se.High).(*ast.BinaryExpr); ok && be.Op == token.ADD {
		// s[x : x+e] (either operand order): the length is e.
		if hx, ok := vf.termOf(env, be.X); ok && hx.eq(lo) {
			if e, ok := vf.termOf(env, be.Y); ok {
				lenB, found = e, true
			}
		}
		if !found {
			if hy, ok := vf.termOf(env, be.Y); ok && hy.eq(lo) {
				if e, ok := vf.termOf(env, be.X); ok {
					lenB, found = e, true
				}
			}
		}
	}
	if !found && lo.isConst() {
		if h, ok := vf.termOf(env, se.High); ok {
			lenB, found = h.add(-lo.Off), true
		}
	}
	if !found {
		return
	}
	env[vf.ssa.LenVal(vid)] = degenerate(lenB)
}

// rangeKeyIval is the key interval of a range loop: [0, len(X)−1] for
// slices and arrays, [0, X−1] for go1.22 range-over-int.
func (vf *valueFlow) rangeKeyIval(env intervalFact, rng *ast.RangeStmt) ival {
	tv, ok := vf.pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return topIval
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		if lenT, ok := vf.lenTermOf(env, rng.X); ok {
			return ival{Lo: constBound(0), Hi: lenT.add(-1)}
		}
		return ival{Lo: constBound(0), Hi: constBound(maxSliceLen - 1)}
	case *types.Array:
		return ival{Lo: constBound(0), Hi: constBound(t.Len() - 1)}
	case *types.Basic:
		if t.Info()&types.IsInteger != 0 {
			if n, ok := vf.termOf(env, rng.X); ok {
				return ival{Lo: constBound(0), Hi: n.add(-1)}
			}
		}
	case *types.Map, *types.Chan:
		return topIval
	}
	return topIval
}

// lenTermOf returns the symbolic length of a slice-typed expression: the
// vLen pseudo-value for a tracked ident, or a constant for arrays.
func (vf *valueFlow) lenTermOf(env intervalFact, e ast.Expr) (ibound, bool) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if vid, ok := vf.ssa.Use[id]; ok && vid != 0 {
			lv := vf.ssa.LenVal(vid)
			// A degenerate length binding (from a guard or a slice expr)
			// normalizes further; otherwise the pseudo-value itself is the
			// term.
			return ibound{Base: lv}, true
		}
	}
	if tv, ok := vf.pkg.Info.Types[e]; ok && tv.Type != nil {
		if arr, ok := tv.Type.Underlying().(*types.Array); ok {
			return constBound(arr.Len()), true
		}
	}
	return ibound{}, false
}

// termOf reduces an expression to a single symbolic term (SSA value plus
// constant): constants, tracked ident uses, len(tracked slice), any of
// those ± a constant, and value-preserving integer conversions thereof.
func (vf *valueFlow) termOf(env intervalFact, e ast.Expr) (ibound, bool) {
	if e == nil {
		return constBound(0), true
	}
	e = ast.Unparen(e)
	if tv, ok := vf.pkg.Info.Types[e]; ok && tv.Value != nil {
		if c, ok := constInt64(tv.Value); ok {
			return constBound(c), true
		}
		return ibound{}, false
	}
	switch e := e.(type) {
	case *ast.Ident:
		if vid, ok := vf.ssa.Use[e]; ok && vid != 0 {
			return ibound{Base: vid}, true
		}
	case *ast.CallExpr:
		if vf.isLenCall(e) {
			return vf.lenTermOf(env, e.Args[0])
		}
		if conv, ok := vf.valuePreservingConv(e); ok {
			return vf.termOf(env, conv)
		}
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.SUB {
			break
		}
		x, xok := vf.termOf(env, e.X)
		y, yok := vf.termOf(env, e.Y)
		if !xok || !yok {
			break
		}
		switch {
		case y.isConst():
			c := y.Off
			if e.Op == token.SUB {
				c = -c
			}
			return x.add(c), true
		case x.isConst() && e.Op == token.ADD:
			return y.add(x.Off), true
		}
	case *ast.UnaryExpr:
		if e.Op == token.ADD {
			return vf.termOf(env, e.X)
		}
	}
	return ibound{}, false
}

// isLenCall reports a call of the len builtin.
func (vf *valueFlow) isLenCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" || len(call.Args) != 1 {
		return false
	}
	_, isBuiltin := vf.pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// valuePreservingConv unwraps T(x) when the conversion cannot change the
// value: integer-to-integer with the target able to represent every source
// value.
func (vf *valueFlow) valuePreservingConv(call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := vf.pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return nil, false
	}
	at, ok := vf.pkg.Info.Types[call.Args[0]]
	if !ok || at.Type == nil {
		return nil, false
	}
	src, ok := at.Type.Underlying().(*types.Basic)
	if !ok {
		return nil, false
	}
	dw, dsigned := intKindWidth(dst.Kind())
	sw, ssigned := intKindWidth(src.Kind())
	if dw == 0 || sw == 0 {
		return nil, false
	}
	switch {
	case dsigned == ssigned && dw >= sw:
		return call.Args[0], true
	case dsigned && !ssigned && dw > sw:
		return call.Args[0], true
	}
	return nil, false
}

// evalExpr computes the interval of an arbitrary expression under env.
func (vf *valueFlow) evalExpr(env intervalFact, e ast.Expr) ival {
	e = ast.Unparen(e)
	if t, ok := vf.termOf(env, e); ok {
		if t.isConst() {
			return degenerate(t)
		}
		// A term's value lies inside its base's interval shifted by the
		// offset — but the term itself is also an exact bound.
		return degenerate(t)
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		x := vf.evalExpr(env, e.X)
		y := vf.evalExpr(env, e.Y)
		return vf.evalBinary(env, e.Op, x, y)
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			x := vf.evalExpr(env, e.X)
			return ival{Lo: vf.negBound(env, x.Hi), Hi: vf.negBound(env, x.Lo)}
		}
	case *ast.CallExpr:
		if vf.isLenCall(e) {
			if t, ok := vf.lenTermOf(env, e.Args[0]); ok {
				return degenerate(t)
			}
			return ival{Lo: constBound(0), Hi: constBound(maxSliceLen)}
		}
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.Ident, *ast.StarExpr:
		// Untracked loads fall through to the type default below.
	}
	if tv, ok := vf.pkg.Info.Types[e]; ok && tv.Type != nil {
		iv, _ := typeDefault(tv.Type)
		return iv
	}
	return topIval
}

// negBound negates a bound: constants negate exactly, symbolic bounds
// resolve to their concrete extreme first.
func (vf *valueFlow) negBound(env intervalFact, b ibound) ibound {
	switch {
	case b.Inf > 0:
		return negInf
	case b.Inf < 0:
		return posInf
	case b.Base == 0:
		if b.Off == math.MinInt64 {
			return posInf
		}
		return constBound(-b.Off)
	}
	// Resolve: negating flips which extreme matters; the caller passes the
	// appropriate one.
	if c, ok := vf.resolveMax(env, b, 0); ok && c != math.MinInt64 {
		return constBound(-c)
	}
	if c, ok := vf.resolveMin(env, b, 0); ok && c != math.MinInt64 {
		return constBound(-c)
	}
	if b.Off > 0 {
		return negInf
	}
	return posInf
}

// evalBinary combines two intervals through an arithmetic operator,
// conservatively (symbolic bounds survive only through ± with a constant
// side).
func (vf *valueFlow) evalBinary(env intervalFact, op token.Token, x, y ival) ival {
	switch op {
	case token.ADD:
		return ival{Lo: vf.addBounds(env, x.Lo, y.Lo, false), Hi: vf.addBounds(env, x.Hi, y.Hi, true)}
	case token.SUB:
		nl := vf.negBound(env, y.Hi)
		nh := vf.negBound(env, y.Lo)
		return ival{Lo: vf.addBounds(env, x.Lo, nl, false), Hi: vf.addBounds(env, x.Hi, nh, true)}
	case token.MUL:
		return vf.mulIval(env, x, y)
	case token.QUO, token.REM, token.SHR, token.AND:
		// Division, remainder, right shift and masking shrink magnitude;
		// returning top keeps it simple and sound for the provers' needs.
		return topIval
	}
	return topIval
}

// addBounds adds two like-direction bounds (hi+hi or lo+lo). A symbolic
// bound tolerates a constant partner; two symbolic bounds collapse to the
// concrete sum or infinity.
func (vf *valueFlow) addBounds(env intervalFact, a, b ibound, upper bool) ibound {
	inf := negInf
	if upper {
		inf = posInf
	}
	if a.Inf != 0 {
		return a
	}
	if b.Inf != 0 {
		return b
	}
	switch {
	case a.Base == 0 && b.Base == 0:
		s, ok := addInt64(a.Off, b.Off)
		if !ok {
			return inf
		}
		return constBound(s)
	case b.Base == 0:
		return a.add(b.Off)
	case a.Base == 0:
		return b.add(a.Off)
	}
	// Both symbolic: resolve to concrete.
	resolve := vf.resolveMax
	if !upper {
		resolve = vf.resolveMin
	}
	ca, aok := resolve(env, a, 0)
	cb, bok := resolve(env, b, 0)
	if aok && bok {
		if s, ok := addInt64(ca, cb); ok {
			return constBound(s)
		}
	}
	return inf
}

// mulIval multiplies two intervals via their concrete corner products.
func (vf *valueFlow) mulIval(env intervalFact, x, y ival) ival {
	xl, xlok := vf.resolveMin(env, x.Lo, 0)
	xh, xhok := vf.resolveMax(env, x.Hi, 0)
	yl, ylok := vf.resolveMin(env, y.Lo, 0)
	yh, yhok := vf.resolveMax(env, y.Hi, 0)
	if !xlok || !xhok || !ylok || !yhok {
		return topIval
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	sat := false
	for _, a := range [2]int64{xl, xh} {
		for _, b := range [2]int64{yl, yh} {
			p, ok := mulInt64(a, b)
			if !ok {
				sat = true
				continue
			}
			lo, hi = min64(lo, p), max64(hi, p)
		}
	}
	if sat {
		return topIval
	}
	return ival{Lo: constBound(lo), Hi: constBound(hi)}
}

// mulInt64 multiplies with overflow detection.
func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	return p, true
}

// resolveMin resolves a lower bound to a concrete value: constants are
// themselves; a symbolic bound follows its base's lower bound through env
// (depth-capped against degenerate-chain cycles).
func (vf *valueFlow) resolveMin(env intervalFact, b ibound, depth int) (int64, bool) {
	if b.Inf != 0 {
		return 0, false
	}
	if b.Base == 0 {
		return b.Off, true
	}
	if depth > 8 {
		return 0, false
	}
	base := vf.lookup(env, b.Base)
	c, ok := vf.resolveMin(env, base.Lo, depth+1)
	if !ok {
		return 0, false
	}
	s, ok := addInt64(c, b.Off)
	return s, ok
}

// resolveMax is resolveMin for upper bounds.
func (vf *valueFlow) resolveMax(env intervalFact, b ibound, depth int) (int64, bool) {
	if b.Inf != 0 {
		return 0, false
	}
	if b.Base == 0 {
		return b.Off, true
	}
	if depth > 8 {
		return 0, false
	}
	base := vf.lookup(env, b.Base)
	c, ok := vf.resolveMax(env, base.Hi, depth+1)
	if !ok {
		return 0, false
	}
	s, ok := addInt64(c, b.Off)
	return s, ok
}

// normalize follows degenerate equality chains: while the bound's base has
// a structurally degenerate interval (lo == hi), substitute it. This is how
// "i := len(v)-1" makes i provably below len(v).
func (vf *valueFlow) normalize(env intervalFact, b ibound, depth int) ibound {
	for b.Inf == 0 && b.Base != 0 && depth < 8 {
		base, ok := env[b.Base]
		if !ok || !base.Lo.eq(base.Hi) || base.Lo.Inf != 0 {
			return b
		}
		nb := base.Lo.add(b.Off)
		if nb.eq(b) {
			return b
		}
		b = nb
		depth++
	}
	return b
}

// cmpLE proves a ≤ b from the environment: same-base offset comparison,
// normalization through degenerate chains, transitivity through the stored
// bound chains of both endpoints, inverse bounds stored on other values,
// and finally the concrete hull.
func (vf *valueFlow) cmpLE(env intervalFact, a, b ibound) bool {
	return vf.cmpLEDepth(env, a, b, 0)
}

func (vf *valueFlow) cmpLEDepth(env intervalFact, a, b ibound, depth int) bool {
	if a.Inf < 0 || b.Inf > 0 {
		return true
	}
	if a.Inf > 0 || b.Inf < 0 {
		return false
	}
	a = vf.normalize(env, a, 0)
	b = vf.normalize(env, b, 0)
	if a.Base == b.Base {
		return a.Off <= b.Off
	}
	// Transitivity through the bound chains: every x in chainMax is a sound
	// upper bound of a and every y in chainMin a sound lower bound of b, so
	// any same-base pair with x ≤ y proves a ≤ x ≤ y ≤ b. This is what lets
	// a clamped loop bound (n ≤ m ≤ len(s)) certify s[i] in two hops.
	ys := vf.chainMin(env, b)
	for _, x := range vf.chainMax(env, a) {
		for _, y := range ys {
			if x.Base == y.Base && x.Off <= y.Off {
				return true
			}
		}
	}
	ca, aok := vf.resolveMax(env, a, 0)
	cb, bok := vf.resolveMin(env, b, 0)
	if aok && bok && ca <= cb {
		return true
	}
	// Inverse bounds: a guard's refinement may live on the other operand.
	// Lo(w) = a.Base+c means w ≥ a.Base+c, so a ≤ w + (a.Off−c); Hi(w) =
	// b.Base+c means b ≥ w + (b.Off−c). One hop each side is enough for the
	// loop-head joins, which keep "n ≥ ci+1" but drop "ci ≤ n−1".
	if depth < 2 {
		for w, ivw := range env {
			if a.Base != 0 && ivw.Lo.Inf == 0 && ivw.Lo.Base == a.Base {
				if off, ok := subInt64(a.Off, ivw.Lo.Off); ok &&
					vf.cmpLEDepth(env, ibound{Base: w, Off: off}, b, depth+1) {
					return true
				}
			}
			if b.Base != 0 && ivw.Hi.Inf == 0 && ivw.Hi.Base == b.Base {
				if off, ok := subInt64(b.Off, ivw.Hi.Off); ok &&
					vf.cmpLEDepth(env, a, ibound{Base: w, Off: off}, depth+1) {
					return true
				}
			}
		}
	}
	return false
}

// edgeTransfer refines the outgoing fact along one CFG edge: apply the
// branch condition when the edge is one arm of a two-way conditional, then
// resolve the target block's phis for this predecessor.
func (vf *valueFlow) edgeTransfer(from, to *Block, out Fact) Fact {
	env := out.(intervalFact).clone()
	if cond, truth, ok := branchCond(from, to); ok {
		vf.refineCond(env, cond, truth)
	}
	for _, phiVID := range vf.ssa.Phis[to] {
		phi := &vf.ssa.Vals[phiVID]
		for _, arg := range phi.Args {
			if arg.Pred != from {
				continue
			}
			iv := vf.lookup(env, arg.Val)
			// Prefer the exact symbolic identity when the argument is a
			// real value: phi ≥ arg's interval, but phi == arg on this edge.
			if arg.Val != 0 {
				iv = vf.meetIval(env, iv, degenerate(ibound{Base: arg.Val}))
			}
			if iv.isTop() {
				delete(env, phiVID)
			} else {
				env[phiVID] = iv
			}
			break
		}
	}
	return env
}

// meetIval tightens a with the constraints of b under the replacement
// policy (see tightenLo/tightenHi).
func (vf *valueFlow) meetIval(env intervalFact, a, b ival) ival {
	a.Lo = vf.tightenLo(env, a.Lo, b.Lo)
	a.Hi = vf.tightenHi(env, a.Hi, b.Hi)
	return a
}

// branchCond recognizes a conditional edge: the from-block ends in a bare
// boolean expression and has exactly two distinct successors; the first is
// the true edge (cfg.go appends then/body first, else/exit second).
func branchCond(from, to *Block) (ast.Expr, bool, bool) {
	if len(from.Succs) != 2 || from.Succs[0] == from.Succs[1] {
		return nil, false, false
	}
	if len(from.Nodes) == 0 {
		return nil, false, false
	}
	cond, ok := from.Nodes[len(from.Nodes)-1].(ast.Expr)
	if !ok {
		return nil, false, false
	}
	switch from.Succs[0] {
	case to:
		return cond, true, true
	}
	if from.Succs[1] == to {
		return cond, false, true
	}
	return nil, false, false
}

// refineCond narrows env under "cond is truth": comparisons refine their
// operands' intervals; &&, || and ! distribute when the truth value forces
// both operands.
func (vf *valueFlow) refineCond(env intervalFact, cond ast.Expr, truth bool) {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			vf.refineCond(env, e.X, !truth)
		}
		return
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truth {
				vf.refineCond(env, e.X, true)
				vf.refineCond(env, e.Y, true)
			}
			return
		case token.LOR:
			if !truth {
				vf.refineCond(env, e.X, false)
				vf.refineCond(env, e.Y, false)
			}
			return
		}
		op := e.Op
		if !truth {
			op = negateCmp(op)
			if op == token.ILLEGAL {
				return
			}
		}
		tx, xok := vf.termOf(env, e.X)
		ty, yok := vf.termOf(env, e.Y)
		if !xok || !yok {
			return
		}
		switch op {
		case token.LSS: // x < y  ⇔  x+1 ≤ y
			vf.refineLE(env, tx.add(1), ty)
		case token.LEQ:
			vf.refineLE(env, tx, ty)
		case token.GTR: // x > y  ⇔  y+1 ≤ x
			vf.refineLE(env, ty.add(1), tx)
		case token.GEQ:
			vf.refineLE(env, ty, tx)
		case token.EQL:
			vf.refineEq(env, tx, ty)
		}
	}
}

// negateCmp returns the comparison that holds when op is false.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

// refineLE records tx ≤ ty into both operands' intervals.
func (vf *valueFlow) refineLE(env intervalFact, tx, ty ibound) {
	if tx.Inf != 0 || ty.Inf != 0 {
		return
	}
	if tx.Base != 0 && tx.Base != ty.Base {
		// value(tx.Base) ≤ value(ty.Base) + ty.Off − tx.Off
		nb := ibound{Base: ty.Base, Off: ty.Off}.add(-tx.Off)
		iv := vf.lookup(env, tx.Base)
		iv.Hi = vf.tightenHi(env, iv.Hi, nb)
		vf.store(env, tx.Base, iv)
	}
	if ty.Base != 0 && ty.Base != tx.Base {
		nb := ibound{Base: tx.Base, Off: tx.Off}.add(-ty.Off)
		iv := vf.lookup(env, ty.Base)
		iv.Lo = vf.tightenLo(env, iv.Lo, nb)
		vf.store(env, ty.Base, iv)
	}
}

// refineEq records tx == ty: the refinable side becomes degenerate in terms
// of the other (replacement is sound: on this edge the equality is exact).
func (vf *valueFlow) refineEq(env intervalFact, tx, ty ibound) {
	if tx.Inf != 0 || ty.Inf != 0 || tx.Base == ty.Base {
		return
	}
	switch {
	case tx.Base != 0:
		vf.store(env, tx.Base, degenerate(ibound{Base: ty.Base, Off: ty.Off}.add(-tx.Off)))
	case ty.Base != 0:
		vf.store(env, ty.Base, degenerate(ibound{Base: tx.Base, Off: tx.Off}.add(-ty.Off)))
	}
}

func (vf *valueFlow) store(env intervalFact, vid VID, iv ival) {
	if iv.isTop() {
		delete(env, vid)
	} else {
		env[vid] = iv
	}
}

// tightenHi picks the better of two valid upper bounds. The policy, in
// order: infinities lose; same base compares offsets; a constant and a
// symbolic bound prefer the incoming one (guards are written to be the
// operative constraint); two symbolic bounds with different bases keep the
// current one — the complementary refinement on the other operand retains
// the new relation.
func (vf *valueFlow) tightenHi(env intervalFact, cur, nb ibound) ibound {
	switch {
	case nb.Inf > 0:
		return cur
	case cur.Inf > 0:
		return nb
	case cur.Inf < 0:
		return cur
	case nb.Inf < 0:
		return nb
	case cur.Base == nb.Base:
		if nb.Off < cur.Off {
			return nb
		}
		return cur
	case nb.Base == 0 || cur.Base == 0:
		return nb
	}
	if vf.cmpLE(env, nb, cur) {
		return nb
	}
	return cur
}

// tightenLo mirrors tightenHi for lower bounds.
func (vf *valueFlow) tightenLo(env intervalFact, cur, nb ibound) ibound {
	switch {
	case nb.Inf < 0:
		return cur
	case cur.Inf < 0:
		return nb
	case cur.Inf > 0:
		return cur
	case nb.Inf > 0:
		return nb
	case cur.Base == nb.Base:
		if nb.Off > cur.Off {
			return nb
		}
		return cur
	case nb.Base == 0 || cur.Base == 0:
		return nb
	}
	if vf.cmpLE(env, cur, nb) {
		return nb
	}
	return cur
}

// walk replays the fixpoint facts: for every reachable block, the hook sees
// each node with the environment in force just before the node executes.
func (vf *valueFlow) walk(hook func(b *Block, n ast.Node, env intervalFact)) {
	for _, b := range vf.ssa.Dom.rpo {
		in, ok := vf.res.In[b]
		if !ok {
			continue
		}
		env := in.(intervalFact).clone()
		for _, n := range b.Nodes {
			hook(b, n, env)
			vf.applyNode(n, env)
		}
	}
}

// render formats a bound for a witness message.
func (vf *valueFlow) render(b ibound) string {
	switch {
	case b.Inf < 0:
		return "-inf"
	case b.Inf > 0:
		return "+inf"
	case b.Base == 0:
		return fmt.Sprintf("%d", b.Off)
	}
	v := &vf.ssa.Vals[b.Base]
	name := "?"
	if v.Obj != nil {
		name = v.Obj.Name()
	}
	if v.Kind == vLen {
		name = "len(" + name + ")"
	}
	switch {
	case b.Off > 0:
		return fmt.Sprintf("%s+%d", name, b.Off)
	case b.Off < 0:
		return fmt.Sprintf("%s-%d", name, -b.Off)
	}
	return name
}

// renderIval formats an interval witness like "[0, len(v)-1]".
func (vf *valueFlow) renderIval(iv ival) string {
	return "[" + vf.render(iv.Lo) + ", " + vf.render(iv.Hi) + "]"
}
