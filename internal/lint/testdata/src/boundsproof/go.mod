module example.com/boundsproof

go 1.22
