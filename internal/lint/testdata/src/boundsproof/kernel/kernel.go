// Package kernel exercises the bounds prover: every index and slice
// expression in a //lint:hotpath function must be provably in bounds from
// dominating guards, loop conditions or length bindings.
package kernel

type table struct{ vals []int64 }

// Unproven indexes with a raw parameter; nothing bounds it.
//
//lint:hotpath unguarded parameter index
func Unproven(xs []int64, i int) int64 {
	return xs[i] // want "cannot prove index in bounds"
}

// Guarded is the same access behind the canonical dominating guard.
//
//lint:hotpath guard dominates the index
func Guarded(xs []int64, i int) int64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

// Sum's loop condition is the proof.
//
//lint:hotpath loop bound proves the index
func Sum(xs []int64) int64 {
	var total int64
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// Field indexes through a field selector: the prover cannot name that
// length, guard or not.
//
//lint:hotpath field lengths cannot be tracked
func Field(t *table, i int) int64 {
	if i < 0 || i >= len(t.vals) {
		return 0
	}
	return t.vals[i] // want "length the prover cannot track"
}

// FieldBound binds the field to a local first; now the guard carries.
//
//lint:hotpath binding the field makes it provable
func FieldBound(t *table, i int) int64 {
	vals := t.vals
	if i < 0 || i >= len(vals) {
		return 0
	}
	return vals[i]
}

// Window slices with raw parameters.
//
//lint:hotpath unguarded slice bounds
func Window(xs []int64, lo, hi int) []int64 {
	return xs[lo:hi] // want "cannot prove slice"
}

// WindowGuarded establishes 0 <= lo <= hi <= len(xs) first.
//
//lint:hotpath guarded slice bounds
func WindowGuarded(xs []int64, lo, hi int) []int64 {
	if lo < 0 || hi < lo || hi > len(xs) {
		return nil
	}
	return xs[lo:hi]
}
