// Package par holds two module-visible mutexes and takes them in the order
// Sched then State. Package dp takes them in the opposite order through a
// helper call, closing the cycle the analyzer must report.
package par

import "sync"

// MuSched guards the dispatch queue; MuState the pool bookkeeping.
var (
	MuSched sync.Mutex
	MuState sync.Mutex
)

// Dispatch takes Sched → State.
func Dispatch() {
	MuSched.Lock()
	defer MuSched.Unlock()
	MuState.Lock() // want "Dispatch acquires MuState while holding MuSched"
	MuState.Unlock()
}

// TouchSched is the helper dp calls while holding MuState.
func TouchSched() {
	MuSched.Lock()
	MuSched.Unlock()
}
