// Package dp acquires par's mutexes in the order State then Sched — the
// reverse of par.Dispatch — through an interprocedural edge: the Sched
// acquisition is inside par.TouchSched, visible only via its summary.
package dp

import "example.com/lockorder/internal/par"

// Refill takes State, then (through TouchSched) Sched.
func Refill() {
	par.MuState.Lock()
	defer par.MuState.Unlock()
	par.TouchSched() // want "Refill acquires MuSched while holding MuState"
}
