// Package clean takes its two locks in one consistent order from every
// path, and hands off between locks without overlap elsewhere; neither
// pattern may be flagged.
package clean

import "sync"

type registry struct {
	mu     sync.Mutex
	freeMu sync.Mutex
	items  map[string]int
	free   []int
}

// put and drop both take mu → freeMu: one order, no cycle.
func (r *registry) put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = v
	r.freeMu.Lock()
	r.free = r.free[:0]
	r.freeMu.Unlock()
}

func (r *registry) drop(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.items, k)
	r.freeMu.Lock()
	r.free = append(r.free, len(r.items))
	r.freeMu.Unlock()
}

// handoff releases mu before taking freeMu; no overlap, no edge.
func (r *registry) handoff() int {
	r.mu.Lock()
	n := len(r.items)
	r.mu.Unlock()
	r.freeMu.Lock()
	defer r.freeMu.Unlock()
	return n + len(r.free)
}

var _ = (*registry).put
var _ = (*registry).drop
var _ = (*registry).handoff
