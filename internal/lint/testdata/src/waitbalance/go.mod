module example.com/waitbalance

go 1.22
