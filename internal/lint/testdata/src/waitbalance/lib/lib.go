// Package lib exercises WaitGroup accounting: Done on every goroutine path,
// Add before the go statement.
package lib

import "sync"

// EarlyReturn skips Done when an item is negative, hanging Wait forever.
func EarlyReturn(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, it := range items {
		it := it
		go func() { // want "Done is skipped on some path"
			if it < 0 {
				return
			}
			wg.Done()
		}()
	}
	wg.Wait()
}

// DeferDone is the sanctioned shape: one defer covers every path.
func DeferDone(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, it := range items {
		it := it
		go func() {
			defer wg.Done()
			if it < 0 {
				return
			}
			consume(it)
		}()
	}
	wg.Wait()
}

// AllPaths calls Done explicitly on both branches; balanced, not flagged.
func AllPaths(x int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if x < 0 {
			wg.Done()
			return
		}
		consume(x)
		wg.Done()
	}()
	wg.Wait()
}

// AddInside increments the counter from inside the goroutine: if Wait runs
// before the goroutine is scheduled, it sees a zero counter and returns
// (or panics on the late Add).
func AddInside(x int) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "Add inside the goroutine races with the spawner's Wait"
		defer wg.Done()
		consume(x)
	}()
	wg.Wait()
}

// PanicPath panics instead of Done on bad input; the process is crashing,
// so the balance check does not flag the panic path.
func PanicPath(x int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if x < 0 {
			panic("negative")
		}
		wg.Done()
	}()
	wg.Wait()
}

func consume(int) {}
