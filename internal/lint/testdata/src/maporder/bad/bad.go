// Package bad leaks map iteration order.
package bad

import "fmt"

// Keys returns map keys in randomized order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to out without a later sort"
		out = append(out, k)
	}
	return out
}

// Dump prints entries in randomized order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output inside range over map"
	}
}
