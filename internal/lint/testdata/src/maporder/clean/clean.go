// Package clean sorts before order can be observed.
package clean

import "sort"

// Keys returns map keys deterministically.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum folds over a slice; ranging a slice is ordered and fine.
func Sum(xs []int) int {
	var total int
	var seen []int
	for _, x := range xs {
		seen = append(seen, x)
		total += x
	}
	_ = seen
	return total
}

// KeysVia sorts through an intermediate variable: tmp aliases out's backing
// array, so sorting tmp sorts out. This was a false positive before the
// one-level alias tracking.
func KeysVia(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	tmp := out
	sort.Strings(tmp)
	return out
}
