module example.com/mutexbyvalue

go 1.22
