// Package clean handles the guarded types by pointer.
package clean

import "example.com/mutexbyvalue/internal/par"

// Holder keeps a pointer.
type Holder struct {
	P *par.Pool
}

// Use receives a pointer.
func Use(p *par.Pool) {
	p.Lock()
}

// Drain iterates by index without copying.
func Drain(cs []par.Counter) uint32 {
	var total uint32
	for i := range cs {
		total += cs[i].N
	}
	return total
}
