// Package clean handles the guarded types by pointer.
package clean

import "example.com/mutexbyvalue/internal/par"

// Holder keeps a pointer, and a slice of padded cursors: copying the struct
// copies only the slice header, never the cursors, so the field is legal.
type Holder struct {
	P  *par.Pool
	Cs []par.Cursor
}

// Use receives a pointer.
func Use(p *par.Pool) {
	p.Lock()
}

// Drain iterates by index without copying.
func Drain(cs []par.Counter) uint32 {
	var total uint32
	for i := range cs {
		total += cs[i].N
	}
	return total
}

// Observe reads the barrier through a pointer.
func Observe(b *par.Barrier) uint64 {
	return b.Seq()
}

// Steal iterates the padded cursors by index without copying.
func Steal(cs []par.Cursor) int64 {
	var total int64
	for i := range cs {
		total += cs[i].V.Load()
	}
	return total
}
