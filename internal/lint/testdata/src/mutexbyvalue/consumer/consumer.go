// Package consumer copies the guarded types every forbidden way.
package consumer

import "example.com/mutexbyvalue/internal/par"

// Holder embeds a Pool by value.
type Holder struct {
	P par.Pool // want "holds par.Pool by value"
}

// Use receives a Pool by value.
func Use(p par.Pool) { // want "par.Pool passed by value"
	p.Lock()
}

// Deref copies a Pool out of its pointer.
func Deref(pp *par.Pool) {
	q := *pp // want "copies par.Pool by value"
	q.Lock()
}

// Drain copies each padded counter while ranging.
func Drain(cs []par.Counter) uint32 {
	var total uint32
	for _, c := range cs { // want "range copies par.Counter by value"
		total += c.N
	}
	return total
}

// Sync embeds a Barrier by value: the atomic round word makes it guarded.
type Sync struct {
	B par.Barrier // want "holds par.Barrier by value"
	// A fixed-size array copies its elements with the struct.
	Cs [4]par.Cursor // want "holds par.Cursor by value"
}

// Observe receives a Barrier by value.
func Observe(b par.Barrier) uint64 { // want "par.Barrier passed by value"
	return b.Seq()
}

// Steal copies each padded cursor while ranging.
func Steal(cs []par.Cursor) int64 {
	var total int64
	for _, c := range cs { // want "range copies par.Cursor by value"
		total += c.V.Load()
	}
	return total
}
