// Package par mirrors the repo's parallel substrate types.
package par

import (
	"sync"
	"sync/atomic"
)

// Pool holds a mutex and must never be copied.
type Pool struct {
	mu sync.Mutex
	n  int
}

// Counter is cache-line padded and must never be copied.
type Counter struct {
	N uint32
	_ [60]byte
}

// Barrier mirrors the barrier pool: its guarded status comes from the
// sync/atomic round word, not from a mutex or padding.
type Barrier struct {
	Round atomic.Uint64
	n     int
}

// Cursor mirrors the barrier pool's padded chunk cursor.
type Cursor struct {
	V atomic.Int64
	_ [56]byte
}

// Lock locks the pool.
func (p *Pool) Lock() { p.mu.Lock() }

// Seq reads the barrier's round word.
func (b *Barrier) Seq() uint64 { return b.Round.Load() }
