// Package par mirrors the repo's parallel substrate types.
package par

import "sync"

// Pool holds a mutex and must never be copied.
type Pool struct {
	mu sync.Mutex
	n  int
}

// Counter is cache-line padded and must never be copied.
type Counter struct {
	N uint32
	_ [60]byte
}

// Lock locks the pool.
func (p *Pool) Lock() { p.mu.Lock() }
