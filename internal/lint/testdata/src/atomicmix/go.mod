module example.com/atomicmix

go 1.22
