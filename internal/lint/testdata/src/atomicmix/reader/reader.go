// Package reader mixes a plain cross-package read into state's atomic
// counter.
package reader

import "example.com/atomicmix/state"

// Snapshot reads the counter without the atomic load.
func Snapshot() uint64 {
	return state.Ticks // want "accessed with sync/atomic .* but read or written plainly"
}
