// Package state exports a counter bumped atomically; package reader reads
// it plainly, so the mix only becomes visible module-wide.
package state

import "sync/atomic"

// Ticks counts completed rounds.
var Ticks uint64

// Bump records one round.
func Bump() {
	atomic.AddUint64(&Ticks, 1)
}

// Load is the sanctioned read.
func Load() uint64 {
	return atomic.LoadUint64(&Ticks)
}
