// Package gate reproduces the barrier-pool handoff bug this check exists
// for: a seq-tagged word published with CompareAndSwap but read (and reset)
// with plain loads and stores. The plain read can be torn or hoisted; the
// fixed code uses a typed atomic for every access.
package gate

import "sync/atomic"

// Gate is the pre-fix handoff: callerWaiting holds the round sequence the
// caller parked on, or zero.
type Gate struct {
	callerWaiting uint64
}

// Park publishes the caller's round tag.
func (g *Gate) Park(seq uint64) bool {
	return atomic.CompareAndSwapUint64(&g.callerWaiting, 0, seq)
}

// Claimed is the racy half: a plain read of the CAS-published word.
func (g *Gate) Claimed(seq uint64) bool {
	return g.callerWaiting == seq // want "accessed with sync/atomic .* but read or written plainly"
}

// Reset plainly stores over the atomic word.
func (g *Gate) Reset() {
	g.callerWaiting = 0 // want "accessed with sync/atomic .* but read or written plainly"
}
