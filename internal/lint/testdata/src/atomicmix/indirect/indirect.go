// Package indirect holds the shapes that used to slip past the check: an
// atomic op reaching the word through a local pointer, through a func-value
// local bound to a sync/atomic function, a plain deref of the aliasing
// pointer, and a word promoted from an embedded struct.
package indirect

import "sync/atomic"

type inner struct {
	seq int64
}

type Outer struct {
	inner
	n int64
}

// BumpViaPointer feeds &g.n to the atomic through a local: the word is
// atomic-tracked even though no call argument spells &g.n.
func BumpViaPointer(g *Outer) {
	p := &g.n
	atomic.AddInt64(p, 1)
}

// ReadPlain is the false negative this fixture pins: without the alias
// pass, n never becomes tracked and this plain read goes unflagged.
func ReadPlain(g *Outer) int64 {
	return g.n // want "n is accessed with sync/atomic"
}

// BumpViaFuncValue reaches the atomic through a func-value local.
func BumpViaFuncValue(g *Outer) {
	f := atomic.AddInt64
	f(&g.seq, 1)
}

// ReadMissPlain reads the func-value-bumped word plainly.
func ReadMissPlain(g *Outer) int64 {
	return g.seq // want "seq is accessed with sync/atomic"
}

// DerefPlain reads the word plainly through the aliasing pointer itself.
func DerefPlain(g *Outer) int64 {
	p := &g.n
	return *p // want "n is accessed with sync/atomic"
}

// BumpEmbedded uses the promoted selector for the embedded word; the
// selection resolves to the same field object as the explicit g.inner.seq,
// so both spellings share one tracked identity.
func BumpEmbedded(g *Outer) {
	atomic.AddInt64(&g.seq, 1)
}

// ReadEmbeddedPlain reads the promoted word through the explicit path.
func ReadEmbeddedPlain(g *Outer) int64 {
	return g.inner.seq // want "seq is accessed with sync/atomic"
}
