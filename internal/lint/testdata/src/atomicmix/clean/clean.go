// Package clean shows the sanctioned patterns: every access of an
// atomically-used word goes through sync/atomic, keyed composite-literal
// initialization is allowed (the value is not shared yet), and atomic
// operations on slice elements are out of scope.
package clean

import "sync/atomic"

type counter struct {
	hits uint64
	name string
}

func newCounter(name string) *counter {
	return &counter{hits: 0, name: name}
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// drain uses atomics on slice elements; element identity is dynamic, so the
// check does not track them.
func drain(xs []int32) int32 {
	var total int32
	for i := range xs {
		total += atomic.SwapInt32(&xs[i], 0)
	}
	return total
}

var _ = newCounter
var _ = (*counter).bump
var _ = (*counter).read
var _ = drain
