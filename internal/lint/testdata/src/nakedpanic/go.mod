module example.com/nakedpanic

go 1.22
