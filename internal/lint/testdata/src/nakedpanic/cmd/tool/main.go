// Command tool may panic freely.
package main

func main() {
	panic("commands may crash")
}
