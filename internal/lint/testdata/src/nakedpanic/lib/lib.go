// Package lib is library code where panics must be documented.
package lib

// Halve divides by two.
func Halve(n int) int {
	if n%2 != 0 {
		panic("odd") // want "undocumented panic in library function Halve"
	}
	return n / 2
}

// MustHalve halves n; it panics if n is odd.
func MustHalve(n int) int {
	if n%2 != 0 {
		panic("odd")
	}
	return n / 2
}
