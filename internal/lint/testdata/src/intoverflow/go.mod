module example.com/intoverflow

go 1.22
