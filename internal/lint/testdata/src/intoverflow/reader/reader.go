// Package reader exercises the overflow prover on the parse boundary:
// arithmetic reachable from a //lint:parseroot function computes with
// attacker-controlled integers and must be guarded against documented caps.
package reader

import "errors"

var errRange = errors.New("value out of range")

const (
	maxVal   int64 = 1 << 50
	maxTotal int64 = 1 << 60
)

// ParseSum accumulates untrusted values with no cap in sight.
//
//lint:parseroot values arrive from an untrusted decoder
func ParseSum(vals []int64) int64 {
	var sum int64
	for _, v := range vals {
		sum += v // want "possible int64 overflow in addition"
	}
	return sum
}

// ParseSumGuarded is the same loop behind the documented caps: the
// per-value check bounds each operand and the post-add check bounds the
// running total, so the addition is provably within int64.
//
//lint:parseroot guarded twin of ParseSum
func ParseSumGuarded(vals []int64) (int64, error) {
	var sum int64
	for _, v := range vals {
		if v <= 0 {
			return 0, errRange
		}
		if v > maxVal {
			return 0, errRange
		}
		sum += v
		if sum > maxTotal {
			return 0, errRange
		}
	}
	return sum, nil
}

// ParseScaled pulls two helpers into the reachable set: one raw, one
// guarded.
//
//lint:parseroot scaled values arrive from an untrusted decoder
func ParseScaled(v int64) (int64, int64) {
	return scale(v), scaleGuarded(v)
}

// scale multiplies an unbounded parse result; reachable, so it is checked.
func scale(v int64) int64 {
	return v * 16 // want "possible int64 overflow in multiplication"
}

// scaleGuarded caps the value first; 2^50 << 3 is far inside int64.
func scaleGuarded(v int64) int64 {
	if v < 0 || v > maxVal {
		return 0
	}
	return v << 3
}

// Unreached never runs on parse input; its raw arithmetic is trusted and
// stays quiet.
func Unreached(a, b int64) int64 {
	return a + b
}

//lint:parseroot floating directive // want "stray //lint:parseroot"
var decoderName = "text"
