module example.com/leakygo

go 1.22
