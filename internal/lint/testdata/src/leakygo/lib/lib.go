// Package lib exercises the goroutine-termination contract: every go
// statement reachable from an exported function needs a path to return or a
// signal the outside world can fire.
package lib

import "context"

// Run starts a spinner with no way out: spin's loop has no exit path and no
// channel or context to unblock it.
func Run() {
	go spin() // want "goroutine can never terminate"
}

func spin() {
	for {
		step()
	}
}

func step() {}

// Start leaks one level down: the go statement sits in an unexported helper
// that only an exported function reaches.
func Start() {
	helper()
}

func helper() {
	go func() { // want "goroutine can never terminate"
		for {
			step()
		}
	}()
}

// Forever blocks on an empty select, which nothing can ever fire.
func Forever() {
	go func() { // want "goroutine can never terminate"
		select {}
	}()
}

// Serve is the sanctioned shape: the loop watches ctx.Done.
func Serve(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				step()
			}
		}
	}()
}

// Drain terminates when the caller closes ch.
func Drain(ch chan int) {
	go func() {
		for range ch {
			step()
		}
	}()
}

// Once runs to completion on its own; a reachable exit is a termination
// path even with no channels in sight.
func Once() {
	go func() {
		step()
	}()
}

// orphanage is dead code: its leak is not reachable from any exported
// function, so this analyzer (scoped to the exported surface) stays quiet.
func orphanage() {
	go func() {
		for {
		}
	}()
}
