// Package kernel exercises the value-flow escape analyzer: an allocation
// site in a //lint:hotpath function is only a finding when its value
// escapes (or can never be stack-allocated at all); the same site kept
// local is free and must stay quiet.
package kernel

import "errors"

var errEmpty = errors.New("empty input")

type point struct{ X, Y int64 }

var callbacks []func() int64

// Escaping returns its literal to the caller.
//
//lint:hotpath returned literal escapes
func Escaping(x, y int64) *point {
	return &point{X: x, Y: y} // want "composite literal escapes"
}

// Local keeps the literal on the stack.
//
//lint:hotpath stack-local literal is free
func Local(x, y int64) int64 {
	p := point{X: x, Y: y}
	return p.X + p.Y
}

// Dynamic sizes its scratch from a parameter; that alone defeats stack
// allocation, escaping or not.
//
//lint:hotpath non-constant make size
func Dynamic(n int) int64 {
	buf := make([]int64, n) // want "non-constant size defeats stack allocation"
	var s int64
	for i := range buf {
		s += int64(i)
	}
	return s
}

// Fixed uses a constant-size scratch that never leaves the function.
//
//lint:hotpath constant-size scratch stays on the stack
func Fixed(xs []int64) int64 {
	buf := make([]int64, 8)
	var s int64
	for i, x := range xs {
		buf[i&7] = x
		s += buf[i&7]
	}
	return s
}

// Register stores its closure into a package-level slice.
//
//lint:hotpath stored closure escapes
func Register(x int64) {
	fn := func() int64 { return x } // want "closure escapes"
	callbacks = append(callbacks, fn)
}

// Apply only calls its closure locally; the closure value never leaves.
//
//lint:hotpath locally-invoked closure stays put
func Apply(xs []int64) int64 {
	step := func(a int64) int64 { return a + 1 }
	var s int64
	for _, x := range xs {
		s += step(x)
	}
	return s
}

// Dedup needs a map, and a map always allocates.
//
//lint:hotpath a map always allocates
func Dedup(xs []int64) int {
	seen := make(map[int64]bool, len(xs)) // want "a map always allocates"
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

// Checked only allocates on the cold error bail-out; the cold-branch
// classifier keeps it quiet.
//
//lint:hotpath literal on the cold error path stays quiet
func Checked(xs []int64) (*point, error) {
	if len(xs) == 0 {
		return &point{}, errEmpty
	}
	return nil, nil
}
