// Package rng is the one place math/rand may appear.
package rng

import "math/rand"

// New returns a seeded source.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
