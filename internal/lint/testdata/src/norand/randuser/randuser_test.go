package randuser

import (
	"math/rand/v2" // want "import of math/rand/v2 outside internal/rng"
	"testing"
)

func TestRoll(t *testing.T) {
	if rand.IntN(2) > 1 {
		t.Fatal("impossible")
	}
}
