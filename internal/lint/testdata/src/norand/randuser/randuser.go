// Package randuser imports the forbidden global-state RNG.
package randuser

import "math/rand" // want "import of math/rand outside internal/rng"

// Roll is nondeterministic across runs.
func Roll() int { return rand.Int() }
