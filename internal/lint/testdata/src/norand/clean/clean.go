// Package clean has no randomness at all.
package clean

// Two is deterministic.
func Two() int { return 2 }
