module example.com/norand

go 1.22
