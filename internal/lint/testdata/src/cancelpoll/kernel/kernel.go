// Package kernel is the fixture's hot inner loop: the target every
// solver-to-hotpath path must reach with a bounded poll stride.
package kernel

//lint:hotpath fixture DP fill kernel; loops here are the amortized unit itself
func Entry(xs []int64, i int) int64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i] * 3
}
