// Package solver holds entry points on the cancellation path: exported
// functions taking a context that reach the //lint:hotpath kernel. Every
// loop on that path must poll cancellation with a provably bounded stride.
package solver

import (
	"context"

	"example.com/cancelpoll/kernel"
)

const checkEvery = 1 << 15

// SolveBad never polls: a canceled solve runs to completion.
func SolveBad(ctx context.Context, xs []int64) int64 {
	var total int64
	for i := range xs { // want "never polls for cancellation"
		total += kernel.Entry(xs, i)
	}
	return total
}

// SolveBudget polls through the repo's countdown idiom: the interval engine
// proves the reset constant, so the stride is checkEvery = 2^15.
func SolveBudget(ctx context.Context, xs []int64) (int64, error) {
	done := ctx.Done()
	budget := int64(checkEvery)
	var total int64
	for i := range xs {
		total += kernel.Entry(xs, i)
		budget--
		if budget <= 0 {
			select {
			case <-done:
				return total, ctx.Err()
			default:
			}
			budget = checkEvery
		}
	}
	return total, nil
}

// SolveModulo polls on an i%K == 0 stride guard.
func SolveModulo(ctx context.Context, xs []int64) int64 {
	var total int64
	for i := 0; i < len(xs); i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return total
			}
		}
		total += kernel.Entry(xs, i)
	}
	return total
}

// SolveMask polls on an i&(K-1) == 0 mask guard.
func SolveMask(ctx context.Context, xs []int64) int64 {
	var total int64
	for i := 0; i < len(xs); i++ {
		if i&1023 == 0 {
			if ctx.Err() != nil {
				return total
			}
		}
		total += kernel.Entry(xs, i)
	}
	return total
}

// SolveHuge polls, but 2^20 iterations apart: beyond the latency bound.
func SolveHuge(ctx context.Context, xs []int64) int64 {
	var total int64
	for i := 0; i < len(xs); i++ { // want "only every 1048576 iterations"
		if i%(1<<20) == 0 {
			if ctx.Err() != nil {
				return total
			}
		}
		total += kernel.Entry(xs, i)
	}
	return total
}

// SolveOpaque guards its poll with a condition the interval engine cannot
// bound.
func SolveOpaque(ctx context.Context, xs []int64, verbose bool) int64 {
	var total int64
	for i := range xs { // want "cannot bound the cancellation poll stride"
		if verbose {
			if ctx.Err() != nil {
				return total
			}
		}
		total += kernel.Entry(xs, i)
	}
	return total
}

// SolveDelegate delegates both the kernel call and the poll to a helper
// that polls on every invocation.
func SolveDelegate(ctx context.Context, xs []int64) int64 {
	var total int64
	for i := range xs {
		total += step(ctx, xs, i)
	}
	return total
}

// step polls unconditionally, so callers inherit a stride-1 poll.
func step(ctx context.Context, xs []int64, i int) int64 {
	if ctx.Err() != nil {
		return 0
	}
	return kernel.Entry(xs, i)
}
