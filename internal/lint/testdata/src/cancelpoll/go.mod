module example.com/cancelpoll

go 1.22
