// Package lib exercises the //lint:ignore directive forms. The expectations
// live in lint_test.go's TestSuppression rather than want comments, because
// the malformed-directive findings land on the directive lines themselves.
package lib

// Detach is a fire-and-forget helper whose leak is deliberate.
func Detach(f func()) {
	//lint:ignore gohygiene deliberate fire-and-forget; joined by process lifetime
	go f()
}

// DetachTrailing suppresses on the same line.
func DetachTrailing(f func()) {
	go f() //lint:ignore gohygiene deliberate fire-and-forget; joined by process lifetime
}

// NoReason shows a directive missing its reason: the directive is reported
// and the finding it meant to silence survives.
func NoReason(f func()) {
	//lint:ignore gohygiene
	go f()
}

// WrongCheck shows a directive naming an unknown check.
func WrongCheck(f func()) {
	//lint:ignore nosuchcheck because reasons
	go f()
}

// Stale carries a well-formed directive that suppresses nothing: the
// goroutine below it is joined, so gohygiene never fires and the directive
// is dead weight the -suppressions audit must report.
func Stale(f func()) {
	done := make(chan struct{})
	//lint:ignore gohygiene this excuse outlived the finding it excused
	go func() {
		defer close(done)
		f()
	}()
	<-done
}
