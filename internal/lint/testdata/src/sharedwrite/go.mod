module example.com/sharedwrite

go 1.22
