// Package par is a miniature worker pool mirroring the repo's parallel
// substrate. It is written to be statically race-free under the sharedwrite
// model — the only shared state the workers touch is handed to them through
// the distinguishing closure parameters — so the analyzer certifies it
// without any //lint:hbimpl escape hatch, and the -race stress harness can
// execute fixtures through it for real.
package par

import "sync"

// Pool fans work out over a fixed set of goroutines.
type Pool struct {
	n int
}

// NewPool returns a pool of n workers (at least one).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{n: n}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.n }

// ForWorker runs fn(w, i) for every i in [0, items), statically partitioned
// so worker w handles i = w, w+n, w+2n, ...
func (p *Pool) ForWorker(items int, fn func(w, i int)) {
	var wg sync.WaitGroup
	for w := 0; w < p.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < items; i += p.n {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, items) without exposing the worker id.
func (p *Pool) For(items int, fn func(i int)) {
	p.ForWorker(items, func(_, i int) { fn(i) })
}
