package racy

import (
	"testing"
	"time"

	"example.com/sharedwrite/par"
)

// TestRacyPatternsRace executes every pattern the sharedwrite prover
// rejects. Under `go test -race` (driven by internal/lint's
// TestRaceFixtures) at least one access pair trips the runtime detector,
// failing this package — the analyzer's verdict and the dynamic detector
// agree that these are real races, not model artifacts.
func TestRacyPatternsRace(t *testing.T) {
	p := par.NewPool(4)
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64(i)
	}
	for round := 0; round < 20; round++ {
		g := &Gate{}
		_ = Handoff(g, xs)
		SlotMix(p, make([]int64, 2), 256)
		_ = Counter(p, 4096)
		Sibling(&Gate{})
		HalfLocked(p, &Gate{}, 256)
	}
	// Let the unjoined Handoff goroutines finish inside the test body so
	// the detector observes their writes.
	time.Sleep(50 * time.Millisecond)
}
