// Package racy holds parallel regions the sharedwrite prover must reject.
// Every pattern here is cross-confirmed by the -race stress harness in
// racy_stress_test.go: the analyzer's verdict and the runtime detector agree.
package racy

import (
	"sync"

	"example.com/sharedwrite/par"
)

// Gate is the PR-4 shape: a result field handed from workers back to the
// spawner.
type Gate struct {
	Out int64
	mu  sync.Mutex
}

// Handoff distills the PR-4 barrier handoff bug: goroutines spawned in a
// loop write a shared field with no join, and the spawner reads it while
// they may still be running.
func Handoff(g *Gate, xs []int64) int64 {
	for _, x := range xs {
		go func(x int64) {
			g.Out += x // want "write to Out"
		}(x)
	}
	return g.Out
}

// SlotMix indexes by w%2: the interval engine cannot prove the slot equals
// the worker id, so two workers may collide on one element.
func SlotMix(p *par.Pool, slots []int64, items int) {
	p.ForWorker(items, func(w, i int) {
		slots[w%2]++ // want "write to slots"
	})
}

// Counter bumps a plain captured counter from every instance.
func Counter(p *par.Pool, items int) int {
	total := 0
	p.For(items, func(i int) {
		total++ // want "write to total"
	})
	return total
}

// Sibling spawns two goroutines that are only joined after both writes: the
// regions are unordered with each other.
func Sibling(g *Gate) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); g.Out = 1 }() // want "write to Out"
	go func() { defer wg.Done(); g.Out = 2 }()
	wg.Wait()
}

// HalfLocked takes the mutex on only one side of the conflict.
func HalfLocked(p *par.Pool, g *Gate, items int) {
	p.For(items, func(i int) {
		g.mu.Lock()
		g.Out++ // want "write to Out"
		g.mu.Unlock()
		_ = g.Out // the unguarded read defeats the lock
	})
}
