// Package hbimpl exercises the //lint:hbimpl escape hatch: functions that
// implement the happens-before edges themselves (barriers, pools) sit below
// the MHP model and are excused with a mandatory reason, while stray or
// unexcused directives are reported.
package hbimpl

// Flag is written by an intentionally unmodeled publisher.
type Flag struct {
	V int64
}

//lint:hbimpl fixture stand-in for a sense-reversing barrier whose ordering the MHP model cannot see
func Publish(f *Flag) {
	for i := 0; i < 2; i++ {
		go func() {
			f.V++
		}()
	}
}

//lint:hbimpl floating directive attached to no function // want "stray //lint:hbimpl"
var marker = 0

// Unexcused shows the same shape without the directive: still reported.
func Unexcused(f *Flag) {
	for i := 0; i < 2; i++ {
		go func() {
			f.V++ // want "write to V"
		}()
	}
}

func init() { _ = marker }
