package clean

import (
	"testing"

	"example.com/sharedwrite/par"
)

// TestCleanPatternsDoNotRace executes every pattern the sharedwrite prover
// certifies. Under `go test -race` (driven by internal/lint's
// TestRaceFixtures) the package must stay green: the certificates — worker
// indexing, instance indexing, atomics, both-sides locking, join edges —
// hold at runtime, not just in the model.
func TestCleanPatternsDoNotRace(t *testing.T) {
	p := par.NewPool(4)
	for round := 0; round < 20; round++ {
		Slots(p, make([]int64, p.Workers()), 4096)
		in := make([]int64, 1024)
		for i := range in {
			in[i] = int64(i)
		}
		out := make([]int64, len(in))
		Items(p, out, in)
		if got := Atomic(p, 4096); got != 4096 {
			t.Fatalf("Atomic: want 4096, got %d", got)
		}
		if got := Locked(p, &lockedBox{}, 4096); got != 4096 {
			t.Fatalf("Locked: want 4096, got %d", got)
		}
		if got := Joined(&Result{}); got != 42 {
			t.Fatalf("Joined: want 42, got %d", got)
		}
		if got := ChanJoined(&Result{}); got != 7 {
			t.Fatalf("ChanJoined: want 7, got %d", got)
		}
	}
}
