// Package clean holds parallel regions the sharedwrite prover must certify:
// every write is worker-indexed, instance-indexed, atomic, mutex-guarded on
// both sides, or separated from the spawner by a join edge. The -race stress
// harness executes each of them to confirm the certificates are real.
package clean

import (
	"sync"
	"sync/atomic"

	"example.com/sharedwrite/par"
)

// Result is a single value handed back over a proper join.
type Result struct {
	V int64
}

// Slots writes one padded slot per worker: the interval engine proves the
// index equals the worker id.
func Slots(p *par.Pool, slots []int64, items int) {
	p.ForWorker(items, func(w, i int) {
		slots[w]++
	})
}

// Items writes one output element per work item: the index is
// instance-distinguishing under the dispatch contract.
func Items(p *par.Pool, out, in []int64) {
	p.For(len(in), func(i int) {
		out[i] = in[i] * 2
	})
}

// Atomic funnels all instances through sync/atomic.
func Atomic(p *par.Pool, items int) int64 {
	var total int64
	p.For(items, func(i int) {
		atomic.AddInt64(&total, 1)
	})
	return total
}

// Locked guards both sides of the conflict with one mutex.
type lockedBox struct {
	mu sync.Mutex
	n  int
}

// Locked bumps the box under its mutex from every instance.
func Locked(p *par.Pool, b *lockedBox, items int) int {
	p.For(items, func(i int) {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	})
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}

// Joined reads the result only after wg.Wait orders the write before the
// read.
func Joined(g *Result) int64 {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		g.V = 42
		wg.Done()
	}()
	wg.Wait()
	return g.V
}

// ChanJoined uses a channel close as the join edge.
func ChanJoined(g *Result) int64 {
	done := make(chan struct{})
	go func() {
		g.V = 7
		close(done)
	}()
	<-done
	return g.V
}
