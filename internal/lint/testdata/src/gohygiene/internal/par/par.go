// Package par owns goroutine lifecycles and is exempt.
package par

// Start launches a worker whose lifetime the pool manages elsewhere.
func Start(f func()) {
	go f()
}
