// Package leaky spawns goroutines it never joins.
package leaky

// Spawn leaks a goroutine. Its doc mentions nothing.
func Spawn(f func()) {
	go f() // want "go statement without a join"
}
