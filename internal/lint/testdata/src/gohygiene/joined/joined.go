// Package joined pairs every spawn with a barrier.
package joined

import "sync"

// Fan joins through a WaitGroup.
func Fan(fs []func()) {
	var wg sync.WaitGroup
	for _, f := range fs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// Pipe joins by receiving the result.
func Pipe(f func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- f() }()
	return <-ch
}
