module example.com/gohygiene

go 1.22
