// Package solver mirrors the repo's solver package for the ctxfirst scope.
package solver

import (
	"context"
	"sync"
)

// Misordered takes ctx in the wrong position.
func Misordered(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	<-ctx.Done()
	return nil
}

// RunAll fans out work but cannot be cancelled.
func RunAll(n int) { // want "blocking constructs but takes no context.Context"
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// Mint creates a root context in library code.
func Mint() {
	ctx := context.Background() // want "propagate the caller's context"
	_ = ctx
}

// Good is the contract every blocking entry point follows.
func Good(ctx context.Context, n int) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
	return ctx.Err()
}

// Variadic smuggles ctx in as a variadic parameter, which callers can omit.
func Variadic(n int, ctxs ...context.Context) { // want "must not be variadic"
	_ = n
	_ = ctxs
}

// Pool mirrors internal/par.Pool: ForWorker blocks on the pool's channel.
type Pool struct {
	ch chan func(int)
}

// ForWorker is cancellable itself; the bug was that *references* to it
// escaped the blocking-construct detection.
func (p *Pool) ForWorker(ctx context.Context, body func(int)) {
	select {
	case p.ch <- body:
	case <-ctx.Done():
	}
}

var shared = &Pool{ch: make(chan func(int), 1)}

func submit(f func(context.Context, func(int))) { _ = f }

// Fan hands a blocking method value to a helper but cannot itself be
// cancelled: the method value blocks when the helper invokes it.
func Fan(n int) { // want "blocking constructs but takes no context.Context"
	_ = n
	submit(shared.ForWorker)
}
