// Package solver mirrors the repo's solver package for the ctxfirst scope.
package solver

import (
	"context"
	"sync"
)

// Misordered takes ctx in the wrong position.
func Misordered(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	<-ctx.Done()
	return nil
}

// RunAll fans out work but cannot be cancelled.
func RunAll(n int) { // want "blocking constructs but takes no context.Context"
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// Mint creates a root context in library code.
func Mint() {
	ctx := context.Background() // want "propagate the caller's context"
	_ = ctx
}

// Good is the contract every blocking entry point follows.
func Good(ctx context.Context, n int) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
	return ctx.Err()
}
