module example.com/ctxfirst

go 1.22
