// Package kernel exercises the hot-path allocation contract. Composite
// literals, make and closures are the escape analyzer's business now;
// hotalloc keeps the two checks value flow cannot improve on — append may
// grow its backing array regardless of escaping, and interface boxing
// allocates at the conversion itself.
package kernel

import "errors"

var errBad = errors.New("bad")

// Leaky is marked hot and allocates three ways hotalloc still owns.
//
//lint:hotpath exercised by the fixture
func Leaky(dst []int, n int) []int {
	dst = append(dst, n) // want "calls append"
	sink(n)              // want "boxes a concrete argument"
	_ = interface{}(n)   // want "converts a concrete value to an interface"
	return dst
}

func sink(v interface{}) { _ = v }

// Sum is hot and clean: index loops, no boxing. Passing one interface to
// another interface parameter does not box.
//
//lint:hotpath regression guard for the clean shape
func Sum(xs []int, sel interface{}) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	sink(sel)
	return total
}

// ColdBail is hot, but its only allocations sit on the error bail-out: the
// append and the boxing argument run at most once, right before the function
// gives up, so the cold-branch classifier must keep them quiet.
//
//lint:hotpath regression guard for cold error branches
func ColdBail(xs []int, n int) ([]int, error) {
	if n < 0 {
		xs = append(xs, n)
		sink(n)
		return nil, errBad
	}
	for i := 0; i < n && i < len(xs); i++ {
		xs[i] = n
	}
	return xs, nil
}

// Cold allocates freely without the directive; not the analyzer's business.
func Cold(n int) []int {
	return append(make([]int, 0, n), n)
}

//lint:hotpath floating directive // want "stray //lint:hotpath"
var coldVar = 3
