// Package kernel exercises the hot-path allocation contract.
package kernel

type pair struct{ a, b int }

// Leaky is marked hot but allocates five different ways.
//
//lint:hotpath exercised by the fixture
func Leaky(dst []int, n int) []int {
	p := pair{a: n, b: n}        // want "composite literal"
	buf := make([]int, n)        // want "calls make"
	dst = append(dst, n)         // want "calls append"
	f := func() int { return n } // want "builds a closure"
	sink(n)                      // want "boxes a concrete argument"
	_ = interface{}(n)           // want "converts a concrete value to an interface"
	_ = p
	_ = buf
	_ = f
	return dst
}

func sink(v interface{}) { _ = v }

// Sum is hot and clean: index loops, no literals, no boxing. Passing one
// interface to another interface parameter does not box.
//
//lint:hotpath regression guard for the clean shape
func Sum(xs []int, sel interface{}) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	sink(sel)
	return total
}

// Cold allocates freely without the directive; not the analyzer's business.
func Cold(n int) []int {
	return append(make([]int, 0, n), n)
}

//lint:hotpath floating directive // want "stray //lint:hotpath"
var coldVar = 3
