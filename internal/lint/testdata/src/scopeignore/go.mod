module example.com/scopeignore

go 1.22
