// Package lib pins down suppression scoping: one line triggers two
// analyzers, the directive names exactly one of them, and only that one
// goes quiet.
package lib

// Serve's go statement is both unjoined (gohygiene) and unterminatable
// (leakygo). The directive suppresses gohygiene alone; the leakygo finding
// on the same line must survive.
func Serve() {
	//lint:ignore gohygiene the fixture wants only the leak finding silenced-by-name
	go func() {
		for {
		}
	}()
}
