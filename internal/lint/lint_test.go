package lint

import (
	"go/ast"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// want is one expected diagnostic, parsed from a `// want "regex"` comment.
type want struct {
	file    string // module-relative
	line    int
	pattern *regexp.Regexp
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// runCase loads one testdata module, runs the named analyzers, and checks
// the diagnostics against the module's want annotations: every want must be
// matched by at least one diagnostic on its line, and every diagnostic must
// be covered by a want.
func runCase(t *testing.T, dir string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	diags := RunOnModule(mod, analyzers)

	var wants []want
	for _, pkg := range mod.Packages {
		files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
		files = append(files, pkg.Files...)
		files = append(files, pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[1], err)
					}
					pos := mod.Fset.Position(c.Pos())
					rel, _ := filepath.Rel(mod.Root, pos.Filename)
					wants = append(wants, want{file: filepath.ToSlash(rel), line: pos.Line, pattern: re})
				}
			}
		}
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		covered := false
		for i, w := range wants {
			if w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
				matched[i] = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
	return diags
}

func TestNoRandGlobal(t *testing.T) {
	diags := runCase(t, "norand", NoRandGlobal)
	// Two findings: the library import and the test-file import. The
	// internal/rng and clean packages stay quiet.
	if len(diags) != 2 {
		t.Errorf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestCtxFirst(t *testing.T) {
	diags := runCase(t, "ctxfirst", CtxFirst)
	// Misordered, RunAll, Mint, plus the PR 5 regressions: variadic ctx and
	// the blocking method value handed to a helper.
	if len(diags) != 5 {
		t.Errorf("want 5 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestAtomicMix(t *testing.T) {
	diags := runCase(t, "atomicmix", AtomicMix)
	// The two plain accesses in gate (the PR 4 barrier-handoff regression
	// shape), the cross-package plain read in reader, and the four
	// indirect shapes (through-local pointer, func-value local, plain
	// deref of the alias, promoted embedded word).
	if len(diags) != 7 {
		t.Errorf("want 7 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestSharedWrite(t *testing.T) {
	diags := runCase(t, "sharedwrite", SharedWrite)
	// Handoff (self-parallel + spawner window, both on the write line),
	// SlotMix, Counter, Sibling, HalfLocked, the unexcused hbimpl twin and
	// the stray directive. The mini pool and every clean package certify.
	if len(diags) != 8 {
		t.Errorf("want 8 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestCancelPoll(t *testing.T) {
	diags := runCase(t, "cancelpoll", CancelPoll)
	// SolveBad never polls, SolveHuge's stride overflows the bound, and
	// SolveOpaque's guard is unprovable; the budget, modulo, mask and
	// delegate idioms all certify.
	if len(diags) != 3 {
		t.Errorf("want 3 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestLockOrder(t *testing.T) {
	diags := runCase(t, "lockorder", LockOrder)
	// One edge per direction of the par/dp cycle; the second is visible only
	// through TouchSched's interprocedural acquisition summary.
	if len(diags) != 2 {
		t.Errorf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestLeakyGo(t *testing.T) {
	diags := runCase(t, "leakygo", LeakyGo)
	if len(diags) != 3 {
		t.Errorf("want 3 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestWaitBalance(t *testing.T) {
	diags := runCase(t, "waitbalance", WaitBalance)
	if len(diags) != 2 {
		t.Errorf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestHotAlloc(t *testing.T) {
	diags := runCase(t, "hotalloc", HotAlloc)
	// Three violations in Leaky plus the stray directive; composite literals,
	// make and closures are the escape analyzer's business now.
	if len(diags) != 4 {
		t.Errorf("want 4 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestBoundsProof(t *testing.T) {
	diags := runCase(t, "boundsproof", BoundsProof)
	// The raw index, the untracked field length, and the raw slice; every
	// guarded twin stays quiet.
	if len(diags) != 3 {
		t.Errorf("want 3 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestIntOverflow(t *testing.T) {
	diags := runCase(t, "intoverflow", IntOverflow)
	// The raw sum, the reachable helper's multiply, and the stray
	// directive; the guarded twins and the unreachable function stay quiet.
	if len(diags) != 3 {
		t.Errorf("want 3 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestEscape(t *testing.T) {
	diags := runCase(t, "escape", Escape)
	// Returned literal, non-constant make, stored closure, map make; the
	// stack-local twins and the cold-branch literal stay quiet.
	if len(diags) != 4 {
		t.Errorf("want 4 diagnostics, got %d: %v", len(diags), diags)
	}
}

// TestSuppressionScope pins down directive scoping across analyzers: a line
// whose go statement trips both gohygiene and leakygo, under a directive
// naming only gohygiene, must still produce the leakygo finding.
func TestSuppressionScope(t *testing.T) {
	root := filepath.Join("testdata", "src", "scopeignore")
	diags, err := RunAnalyzers(root, All())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the surviving leakygo finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Check != LeakyGo.Name {
		t.Errorf("surviving finding is %s, want %s: %s", diags[0].Check, LeakyGo.Name, diags[0])
	}
}

func TestGoHygiene(t *testing.T) {
	diags := runCase(t, "gohygiene", GoHygiene)
	if len(diags) != 1 {
		t.Errorf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
}

func TestMapOrder(t *testing.T) {
	diags := runCase(t, "maporder", MapOrder)
	if len(diags) != 2 {
		t.Errorf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestNakedPanic(t *testing.T) {
	diags := runCase(t, "nakedpanic", NakedPanic)
	if len(diags) != 1 {
		t.Errorf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
}

func TestMutexByValue(t *testing.T) {
	diags := runCase(t, "mutexbyvalue", MutexByValue)
	if len(diags) != 8 {
		t.Errorf("want 8 diagnostics, got %d: %v", len(diags), diags)
	}
}

// TestSuppression proves the directive contract: a well-formed
// //lint:ignore silences exactly its check on the same or next line, a
// directive without a reason or naming an unknown check is itself reported
// and silences nothing.
func TestSuppression(t *testing.T) {
	root := filepath.Join("testdata", "src", "suppress")
	diags, err := RunAnalyzers(root, All())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	var gohygiene, directive []Diagnostic
	for _, d := range diags {
		switch d.Check {
		case GoHygiene.Name:
			gohygiene = append(gohygiene, d)
		case DirectiveCheck:
			directive = append(directive, d)
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	// Detach and DetachTrailing are suppressed; NoReason and WrongCheck
	// carry invalid directives, so their findings survive.
	if len(gohygiene) != 2 {
		t.Errorf("want 2 surviving gohygiene diagnostics, got %d: %v", len(gohygiene), gohygiene)
	}
	if len(directive) != 2 {
		t.Fatalf("want 2 directive diagnostics, got %d: %v", len(directive), directive)
	}
	if !strings.Contains(directive[0].Message, "missing a reason") {
		t.Errorf("first directive diagnostic should flag the missing reason, got %q", directive[0].Message)
	}
	if !strings.Contains(directive[1].Message, `unknown check "nosuchcheck"`) {
		t.Errorf("second directive diagnostic should flag the unknown check, got %q", directive[1].Message)
	}
}

// TestStaleSuppressions proves the suppression audit: directives that
// suppressed a finding come back Used, the one whose finding is gone comes
// back stale, and malformed directives are not part of the audit at all
// (they are findings in their own right).
func TestStaleSuppressions(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	_, _, sups := RunOnModuleFull(mod, All(), 1)
	var used, stale int
	for _, s := range sups {
		if s.Used {
			used++
			continue
		}
		stale++
		if s.Check != "gohygiene" || !strings.Contains(s.Reason, "outlived") {
			t.Errorf("unexpected stale suppression: %+v", s)
		}
	}
	// Detach and DetachTrailing are used; Stale is not. NoReason and
	// WrongCheck are malformed and never become suppressions.
	if used != 2 || stale != 1 {
		t.Errorf("want 2 used / 1 stale suppressions, got %d used / %d stale: %v", used, stale, sups)
	}
}

// TestRepoIsClean is the merged-tree acceptance gate in test form: the
// repository itself must produce zero findings, so scripts/check.sh's
// schedlint step exits 0.
func TestRepoIsClean(t *testing.T) {
	diags, err := RunAnalyzers(filepath.Join("..", ".."), All())
	if err != nil {
		t.Fatalf("RunAnalyzers(repo): %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo tree finding: %s", d)
	}
}

// TestLoadModuleParallel pins down that the wave-parallel loader produces
// the same module as a sequential load: same packages, same files, type
// information everywhere.
func TestLoadModuleParallel(t *testing.T) {
	seq, err := LoadModuleParallel(filepath.Join("..", ".."), 1)
	if err != nil {
		t.Fatalf("sequential load: %v", err)
	}
	par, err := LoadModuleParallel(filepath.Join("..", ".."), 4)
	if err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	if len(seq.Packages) != len(par.Packages) {
		t.Fatalf("package count differs: %d sequential, %d parallel", len(seq.Packages), len(par.Packages))
	}
	for i := range seq.Packages {
		s, p := seq.Packages[i], par.Packages[i]
		if s.RelPath != p.RelPath {
			t.Fatalf("package %d: %q vs %q", i, s.RelPath, p.RelPath)
		}
		if len(s.Files) != len(p.Files) || len(s.TestFiles) != len(p.TestFiles) {
			t.Errorf("%s: file counts differ (%d/%d vs %d/%d)", s.RelPath, len(s.Files), len(s.TestFiles), len(p.Files), len(p.TestFiles))
		}
		if (s.Types == nil) != (p.Types == nil) {
			t.Errorf("%s: type info presence differs", s.RelPath)
		}
	}
}

// TestParallelRunMatchesSequential is the determinism gate for the fan-out
// runner: the same module analyzed with 1 and 4 workers must yield
// bit-identical diagnostics, including their order.
func TestParallelRunMatchesSequential(t *testing.T) {
	for _, dir := range []string{"hotalloc", "waitbalance", "lockorder"} {
		mod, err := LoadModule(filepath.Join("testdata", "src", dir))
		if err != nil {
			t.Fatalf("LoadModule(%s): %v", dir, err)
		}
		seq := RunOnModule(mod, All())
		par, timings := RunOnModuleOpts(mod, All(), 4)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel diagnostics differ\nseq: %v\npar: %v", dir, seq, par)
		}
		if len(timings) != len(All()) {
			t.Errorf("%s: %d timings, want one per analyzer", dir, len(timings))
		}
	}
}

// TestLoader sanity-checks the module loader on the repository itself:
// module path, package discovery, type information and test-file parsing.
func TestLoader(t *testing.T) {
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if mod.Path != "repro" {
		t.Errorf("module path = %q, want repro", mod.Path)
	}
	byRel := map[string]*Package{}
	for _, p := range mod.Packages {
		byRel[p.RelPath] = p
	}
	for _, rel := range []string{"solver", "internal/dp", "internal/par", "internal/lint", "cmd/schedlint"} {
		p, ok := byRel[rel]
		if !ok {
			t.Fatalf("package %s not loaded", rel)
		}
		if p.Types == nil || len(p.Files) == 0 {
			t.Errorf("package %s has no type info or files", rel)
		}
	}
	if p := byRel["internal/dp"]; len(p.TestFiles) == 0 {
		t.Errorf("internal/dp test files not parsed")
	}
	if !byRel["cmd/schedlint"].IsMain() {
		t.Errorf("cmd/schedlint should be package main")
	}
	if byRel["solver"].IsMain() {
		t.Errorf("solver should not be package main")
	}
}
