package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WaitBalance checks sync.WaitGroup accounting around go statements, the
// two mistakes that turn a clean barrier into a hang or a panic:
//
//  1. A goroutine that calls wg.Done on some paths must call it on every
//     path — an early return that skips Done leaves Wait blocked forever.
//     This is a must-analysis over the goroutine body's CFG (intersection
//     at joins); a deferred Done satisfies every path at once.
//  2. wg.Add must happen before the go statement, not inside the goroutine:
//     if the spawner reaches Wait before the goroutine is scheduled, the
//     Add races the Wait (and a Wait that returns early panics on the late
//     Add). Flagged whenever the enclosing function Waits on the same
//     WaitGroup.
var WaitBalance = &Analyzer{
	Name: "waitbalance",
	Doc:  "WaitGroup Done must be reached on every goroutine path, and Add must precede the go statement",
	Run:  runWaitBalance,
}

func runWaitBalance(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// WaitGroups the enclosing function waits on (for rule 2).
			waited := map[*types.Var]bool{}
			inspectShallow(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if v, op := wgOp(pkg, call); op == "Wait" {
						waited[v] = true
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				checkGoroutineBalance(pass, g, lit.Body, waited)
				return true
			})
		}
	}
}

// wgOp recognizes wg.Done()/wg.Add(..)/wg.Wait() on a declared
// sync.WaitGroup variable or field; op is "" for anything else.
func wgOp(pkg *Package, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Done", "Add", "Wait":
	default:
		return nil, ""
	}
	v, _ := addressedVar(pkg, sel.X)
	if v == nil || !isWaitGroupType(v.Type()) {
		return nil, ""
	}
	return v, sel.Sel.Name
}

func isWaitGroupType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// doneFact is the must-have-called-Done set; all=true is top (a path that
// panics crashes the program regardless, so it should not veto the
// intersection).
type doneFact struct {
	all  bool
	done map[*types.Var]bool
}

func (f doneFact) EqualFact(other Fact) bool {
	o := other.(doneFact)
	if f.all != o.all || len(f.done) != len(o.done) {
		return false
	}
	for v := range f.done {
		if !o.done[v] {
			return false
		}
	}
	return true
}

func joinDoneFacts(a, b Fact) Fact {
	fa, fb := a.(doneFact), b.(doneFact)
	if fa.all {
		return fb
	}
	if fb.all {
		return fa
	}
	inter := map[*types.Var]bool{}
	for v := range fa.done {
		if fb.done[v] {
			inter[v] = true
		}
	}
	return doneFact{done: inter}
}

func checkGoroutineBalance(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt, waited map[*types.Var]bool) {
	pkg := pass.Pkg
	cfg := BuildCFG(body)

	// Rule 2: Add inside the goroutine on a WaitGroup the spawner waits on.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, op := wgOp(pkg, call); op == "Add" && waited[v] {
			pass.Reportf(call.Pos(), "%s.Add inside the goroutine races with the spawner's Wait; call Add before the go statement", v.Name())
		}
		return true
	})

	// Classify where Done calls sit: on straight-line paths (subject to the
	// must-analysis), in defers (satisfy every path), or inside nested
	// non-deferred closures (out of scope — their execution is dynamic).
	shallowDone := map[*types.Var]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v, op := wgOp(pkg, call); op == "Done" {
				shallowDone[v] = true
			}
		}
		return true
	})
	deferDone := map[*types.Var]bool{}
	for _, d := range cfg.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v, op := wgOp(pkg, call); op == "Done" {
					deferDone[v] = true
				}
			}
			return true
		})
	}

	var need []*types.Var
	for v := range shallowDone {
		if !deferDone[v] {
			need = append(need, v)
		}
	}
	if len(need) == 0 {
		return
	}
	sort.Slice(need, func(i, j int) bool { return need[i].Pos() < need[j].Pos() })

	res := cfg.Forward(FlowProblem{
		Entry: doneFact{done: map[*types.Var]bool{}},
		Join:  joinDoneFacts,
		Transfer: func(b *Block, in Fact) Fact {
			cur := in.(doneFact)
			done := cur.done
			copied := false
			for _, stmt := range b.Nodes {
				inspectShallow(stmt, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if v, op := wgOp(pkg, call); op == "Done" {
						if !copied {
							nd := make(map[*types.Var]bool, len(done)+1)
							for k := range done {
								nd[k] = true
							}
							done = nd
							copied = true
						}
						done[v] = true
					}
					return true
				})
				if endsInPanic(stmt) {
					return doneFact{all: true}
				}
			}
			return doneFact{all: cur.all, done: done}
		},
	})
	exitIn, reached := res.In[cfg.Exit]
	if !reached {
		return // the goroutine never exits; leakygo's department
	}
	exit := exitIn.(doneFact)
	if exit.all {
		return
	}
	for _, v := range need {
		if !exit.done[v] {
			pass.Reportf(g.Pos(), "%s.Done is skipped on some path of this goroutine (early return or branch); a missed Done blocks Wait forever — prefer defer %s.Done()", v.Name(), v.Name())
		}
	}
}

// endsInPanic reports whether the statement is a call to panic (the CFG
// routes such blocks straight to exit; the process is crashing, so the
// must-analysis treats the path as satisfied).
func endsInPanic(stmt ast.Node) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isPanicCall(call)
}
