package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix guards the invariant that broke the barrier-pool handoff in the
// PR 4 bug: once a word is manipulated through sync/atomic anywhere in the
// module, every access must be atomic. A plain read of a CAS-published
// field can be torn, reordered, or hoisted out of a loop by the compiler —
// the exact race the seq-tagged callerWaiting handoff had before it moved
// to typed atomics. The analyzer is module-level because the atomic writes
// and the plain reads of an exported field can live in different packages.
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "words accessed through sync/atomic must never be read or written plainly",
	RunModule: runAtomicMix,
}

// atomicFuncs are the sync/atomic operations that take an address. Typed
// atomics (atomic.Uint64 and friends) are invisible to plain accesses by
// construction, so only the function forms need tracking.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
}

func runAtomicMix(pass *ModulePass) {
	mod := pass.Mod

	// Pass 0: resolve the two indirections that used to hide atomic use.
	// ptrAlias binds a local pointer to the shared word it addresses
	// (p := &g.n), so atomic calls through p still track n and plain derefs
	// of p still count as plain accesses of n. fnLocal marks locals bound
	// to a sync/atomic function value (f := atomic.AddInt64), so calls
	// through f count as atomic calls. aliasBind exempts the binding
	// statements themselves: taking an address or a func value reads
	// neither the word nor its value.
	ptrAlias := map[*types.Var]*types.Var{}
	fnLocal := map[*types.Var]bool{}
	aliasBind := map[*ast.Ident]bool{}
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
					return true
				}
				for i, lhs := range as.Lhs {
					lid, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					lv, _ := pkg.Info.Defs[lid].(*types.Var)
					if lv == nil {
						lv, _ = pkg.Info.Uses[lid].(*types.Var)
					}
					if lv == nil {
						continue
					}
					switch rhs := ast.Unparen(as.Rhs[i]).(type) {
					case *ast.UnaryExpr:
						if rhs.Op != token.AND {
							continue
						}
						if v, id := addressedVar(pkg, rhs.X); v != nil && sharedWord(v) {
							ptrAlias[lv] = v
							aliasBind[id] = true
						}
					case *ast.SelectorExpr:
						if fn, ok := pkg.Info.Uses[rhs.Sel].(*types.Func); ok &&
							fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && atomicFuncs[fn.Name()] {
							fnLocal[lv] = true
						}
					}
				}
				return true
			})
		}
	}

	// Pass 1: record every struct field and package-level variable whose
	// address reaches a sync/atomic function — directly or through a
	// tracked pointer alias — keeping the first such site as the witness
	// the diagnostics cite, and remembering the exact idents used inside
	// atomic arguments so pass 2 does not flag them.
	witness := map[*types.Var]token.Pos{}
	atomicUse := map[*ast.Ident]bool{}
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call, fnLocal) {
					return true
				}
				for _, arg := range call.Args {
					switch a := ast.Unparen(arg).(type) {
					case *ast.UnaryExpr:
						if a.Op != token.AND {
							continue
						}
						v, id := addressedVar(pkg, a.X)
						if v == nil || !sharedWord(v) {
							continue
						}
						atomicUse[id] = true
						if _, seen := witness[v]; !seen {
							witness[v] = a.Pos()
						}
					case *ast.Ident:
						pv, _ := pkg.Info.Uses[a].(*types.Var)
						v := ptrAlias[pv]
						if v == nil {
							continue
						}
						atomicUse[a] = true
						if _, seen := witness[v]; !seen {
							witness[v] = a.Pos()
						}
					}
				}
				return true
			})
		}
	}
	if len(witness) == 0 {
		return
	}

	// Pass 2: every other mention of a tracked word is a plain access.
	// Composite-literal keys are exempt — keyed initialization happens
	// before the value is shared, and is how zeroed atomics are reset.
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			litKey := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								litKey[id] = true
							}
						}
					}
				case *ast.StarExpr:
					// A plain deref of a pointer that aliases a tracked
					// word reads or writes the word without the atomic.
					id, ok := ast.Unparen(n.X).(*ast.Ident)
					if !ok {
						return true
					}
					pv, _ := pkg.Info.Uses[id].(*types.Var)
					v := ptrAlias[pv]
					if v == nil {
						return true
					}
					at, tracked := witness[v]
					if !tracked {
						return true
					}
					pass.Reportf(n.Pos(), "%s is accessed with sync/atomic (%s) but read or written plainly here through %s; mixing the two races",
						v.Name(), mod.Fset.Position(at), pv.Name())
					return false
				case *ast.Ident:
					if atomicUse[n] || litKey[n] || aliasBind[n] {
						return true
					}
					v, _ := pkg.Info.Uses[n].(*types.Var)
					if v == nil {
						return true
					}
					at, tracked := witness[v]
					if !tracked {
						return true
					}
					pass.Reportf(n.Pos(), "%s is accessed with sync/atomic (%s) but read or written plainly here; mixing the two races",
						v.Name(), mod.Fset.Position(at))
				}
				return true
			})
		}
	}
}

// isAtomicCall reports whether the call is one of sync/atomic's
// address-taking functions, called directly or through a local bound to the
// function value (f := atomic.AddInt64; f(&word, 1)).
func isAtomicCall(pkg *Package, call *ast.CallExpr, fnLocal map[*types.Var]bool) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return false
		}
		return atomicFuncs[fn.Name()]
	case *ast.Ident:
		v, _ := pkg.Info.Uses[fun].(*types.Var)
		return v != nil && fnLocal[v]
	}
	return false
}

// addressedVar resolves the operand of an address-of expression to the
// variable it names — a struct field (through any selector chain) or a
// plain identifier — together with the ident that names it. Index
// expressions (atomic ops on slice elements) and other shapes return nil.
func addressedVar(pkg *Package, e ast.Expr) (*types.Var, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pkg.Info.Uses[e].(*types.Var)
		return v, e
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v, e.Sel
			}
			return nil, nil
		}
		// Qualified reference to another package's variable (pkg.V).
		v, _ := pkg.Info.Uses[e.Sel].(*types.Var)
		return v, e.Sel
	}
	return nil, nil
}

// sharedWord reports whether the variable can outlive a single goroutine's
// stack frame in the obvious way: a struct field or a package-level
// variable. Locals are excluded — "atomic while workers run, plain after
// the join" is a legitimate idiom for a local counter, and flagging it
// would teach people to ignore the check.
func sharedWord(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
