package lint

import (
	"strconv"
	"strings"
)

// NoRandGlobal enforces the determinism contract of internal/rng: every
// source of randomness in the repository goes through the SplitMix64 seeding
// and xoshiro256++ stream wrappers, so a (seed, spec) pair reproduces the
// same workload on every machine and every run. Importing math/rand or
// math/rand/v2 anywhere else — tests included, since the differential
// harness and the figure pipeline both replay seeded instances — reopens
// the door to global, schedule-dependent state.
var NoRandGlobal = &Analyzer{
	Name:         "norandglobal",
	Doc:          "math/rand may only be imported by internal/rng; all randomness flows through the deterministic wrappers",
	IncludeTests: true,
	Run: func(p *Pass) {
		if p.Pkg.RelPath == "internal/rng" || strings.HasSuffix(p.Pkg.Path, "/internal/rng") {
			return
		}
		for _, f := range p.Files() {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s outside internal/rng: use the deterministic wrappers in internal/rng instead", path)
				}
			}
		}
	},
}
