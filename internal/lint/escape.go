package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Escape replaces the old syntactic allocation heuristics with value-flow
// escape analysis on the //lint:hotpath functions. An allocation site
// (composite literal, make, new, closure, address-of-local) is only a
// problem when its value escapes — returned, stored to the heap, captured
// by a closure, boxed into an interface — because a non-escaping value
// stays on the stack and costs nothing per iteration. The analyzer taints
// the SSA values that carry each site's result, follows them through
// copies, slices and phis, and reports the site with its first escape
// cause. Two site shapes are reported unconditionally: make of a map or
// channel (always heap) and make with a non-constant size (never
// stack-allocated). Sites in cold error-bail-out blocks are skipped.
var Escape = &Analyzer{
	Name: "escape",
	Doc:  "allocation sites in //lint:hotpath functions must not escape",
	Run:  runEscape,
}

func runEscape(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		fns, _ := directiveFuncs(f, isHotpathDirective)
		for _, fd := range fns {
			if fd.Body == nil {
				continue
			}
			checkEscapes(pass, fd)
		}
	}
}

// escSite is one allocation site in a hot (non-cold) block.
type escSite struct {
	expr   ast.Expr
	kind   string
	always string // non-empty: reported unconditionally, with this reason
}

type escapeState struct {
	pass  *Pass
	fd    *ast.FuncDecl
	ssa   *SSAFunc
	info  *types.Info
	cold  map[*Block]bool
	sites []escSite
	// siteOf maps a site's expression back to its index.
	siteOf map[ast.Expr]int
	// taint maps each SSA value to the site whose allocation it carries
	// (-1: none; ties resolve to the lowest site index).
	taint []int
	// cause records each site's first escape cause in source order.
	cause []string
}

func checkEscapes(pass *Pass, fd *ast.FuncDecl) {
	ssa := BuildSSA(pass.Pkg.Info, fd)
	es := &escapeState{
		pass:   pass,
		fd:     fd,
		ssa:    ssa,
		info:   pass.Pkg.Info,
		cold:   coldBlocks(pass.Pkg.Info, fd, ssa.Cfg, ssa.Dom),
		siteOf: map[ast.Expr]int{},
	}
	es.collectSites()
	if len(es.sites) == 0 {
		return
	}
	es.cause = make([]string, len(es.sites))
	es.propagate()
	es.scanSinks()
	es.report()
}

// collectSites gathers the allocation sites of the hot blocks, in block
// reverse-postorder (so site indices are deterministic).
func (es *escapeState) collectSites() {
	visit := func(n ast.Node) {
		// Like inspectShallow, but the FuncLit node itself is a site even
		// though its body belongs to the closure, not to this hot path.
		ast.Inspect(n, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.FuncLit:
				es.siteAt(m)
				return false
			case *ast.DeferStmt:
				return false
			}
			es.siteAt(m)
			return true
		})
		if ds, ok := n.(*ast.DeferStmt); ok {
			// Deferred argument expressions evaluate at the defer statement,
			// on the hot path.
			inspectShallow(ds.Call, func(m ast.Node) bool {
				es.siteAt(m)
				return true
			})
		}
	}
	for _, b := range es.ssa.Dom.rpo {
		if es.cold[b] {
			continue
		}
		for _, n := range b.Nodes {
			visit(n)
		}
	}
	// A composite literal nested inside another is part of the same
	// allocation; keep only the outermost sites.
	outer := es.sites[:0]
	siteOf := map[ast.Expr]int{}
	for _, s := range es.sites {
		if lit, ok := s.expr.(*ast.CompositeLit); ok && es.enclosedByComposite(lit) {
			continue
		}
		siteOf[s.expr] = len(outer)
		outer = append(outer, s)
	}
	es.sites, es.siteOf = outer, siteOf
}

func (es *escapeState) enclosedByComposite(lit *ast.CompositeLit) bool {
	for _, s := range es.sites {
		o, ok := s.expr.(*ast.CompositeLit)
		if ok && o != lit && o.Pos() <= lit.Pos() && lit.End() <= o.End() {
			return true
		}
	}
	return false
}

// siteAt records m when it is an allocation site.
func (es *escapeState) siteAt(m ast.Node) {
	switch m := m.(type) {
	case *ast.CompositeLit:
		es.addSite(m, "composite literal", "")
	case *ast.FuncLit:
		es.addSite(m, "closure", "")
	case *ast.UnaryExpr:
		if m.Op != token.AND {
			return
		}
		if id, ok := ast.Unparen(m.X).(*ast.Ident); ok && es.isLocalVar(id) {
			es.addSite(m, "address of "+id.Name, "")
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(m.Fun).(*ast.Ident)
		if !ok {
			return
		}
		if _, builtin := es.info.Uses[id].(*types.Builtin); !builtin {
			return
		}
		switch id.Name {
		case "new":
			es.addSite(m, "new", "")
		case "make":
			if len(m.Args) == 0 {
				return
			}
			tv, ok := es.info.Types[m.Args[0]]
			if !ok || tv.Type == nil {
				return
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				es.addSite(m, "make", "a map always allocates")
			case *types.Chan:
				es.addSite(m, "make", "a channel always allocates")
			default:
				if len(m.Args) >= 2 && !isConstExpr(es.info, m.Args[1]) {
					es.addSite(m, "make", "a non-constant size defeats stack allocation")
				} else {
					es.addSite(m, "make", "")
				}
			}
		}
	}
}

func (es *escapeState) addSite(e ast.Expr, kind, always string) {
	es.siteOf[e] = len(es.sites)
	es.sites = append(es.sites, escSite{expr: e, kind: kind, always: always})
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isLocalVar reports an ident bound to a variable declared inside the
// function (taking its address may force it onto the heap).
func (es *escapeState) isLocalVar(id *ast.Ident) bool {
	obj, ok := es.info.Uses[id].(*types.Var)
	if !ok {
		obj, ok = es.info.Defs[id].(*types.Var)
	}
	if !ok || obj.IsField() {
		return false
	}
	return obj.Pos() >= es.fd.Pos() && obj.Pos() <= es.fd.End()
}

// carrier resolves the site whose allocation the expression's value
// carries, through parens, address-of, slicing, conversions and tainted
// SSA values. Returns -1 for none.
func (es *escapeState) carrier(e ast.Expr) int {
	e = ast.Unparen(e)
	if i, ok := es.siteOf[e]; ok {
		return i
	}
	switch e := e.(type) {
	case *ast.Ident:
		if vid, ok := es.ssa.Use[e]; ok && vid != 0 && es.taint != nil && es.taint[vid] >= 0 {
			return es.taint[vid]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return es.carrier(e.X)
		}
	case *ast.SliceExpr:
		return es.carrier(e.X)
	case *ast.CallExpr:
		if tv, ok := es.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return es.carrier(e.Args[0])
		}
	}
	return -1
}

// propagate computes the taint fixpoint over the SSA values: a value
// carries a site when its defining expression does, or (for phis) when any
// incoming value does. Iteration is by value index, keeping the lowest
// carrying site, so the result is deterministic.
func (es *escapeState) propagate() {
	es.taint = make([]int, len(es.ssa.Vals))
	for i := range es.taint {
		es.taint[i] = -1
	}
	for changed := true; changed; {
		changed = false
		for vid := 1; vid < len(es.ssa.Vals); vid++ {
			v := &es.ssa.Vals[vid]
			s := -1
			switch v.Kind {
			case vExpr:
				if v.Rhs != nil {
					s = es.carrier(v.Rhs)
				}
			case vPhi:
				for _, a := range v.Args {
					if t := es.taint[a.Val]; t >= 0 && (s < 0 || t < s) {
						s = t
					}
				}
			}
			if s >= 0 && (es.taint[vid] < 0 || s < es.taint[vid]) {
				es.taint[vid] = s
				changed = true
			}
		}
	}
}

// scanSinks walks every reachable block (cold ones too: escaping through
// an error path still forces the allocation onto the heap) and records the
// first escape cause of each tainted site.
func (es *escapeState) scanSinks() {
	for _, b := range es.ssa.Dom.rpo {
		for _, n := range b.Nodes {
			es.sinkNode(n)
		}
	}
}

func (es *escapeState) sinkNode(n ast.Node) {
	switch s := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			es.mark(es.carrier(r), "returned to the caller")
		}
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if c := es.carrier(s.Rhs[i]); c >= 0 {
					es.mark(c, es.storeCause(lhs))
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					if c := es.carrier(vs.Values[i]); c >= 0 {
						es.mark(c, es.storeCause(name))
					}
				}
			}
		}
	case *ast.SendStmt:
		es.mark(es.carrier(s.Value), "sent on a channel")
	case *ast.DeferStmt:
		es.sinkCall(s.Call)
	}
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			es.sinkCall(call)
		}
		return true
	})
}

// storeCause classifies an assignment target: stores to SSA-tracked locals
// are copies, not sinks; everything else leaves the function's control.
func (es *escapeState) storeCause(lhs ast.Expr) string {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return ""
		}
		if _, tracked := es.ssa.Def[id]; tracked {
			return ""
		}
		return "stored to a variable the analysis cannot track (captured or address-taken)"
	}
	return "stored to the heap"
}

// sinkCall treats call arguments as escapes: the callee may retain the
// value, and an interface-typed parameter additionally boxes it.
func (es *escapeState) sinkCall(call *ast.CallExpr) {
	if tv, ok := es.info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion: interface targets box the operand; value-preserving
		// conversions are handled by carrier.
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			es.mark(es.carrier(call.Args[0]), "boxed into an interface")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := es.info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "append":
				for _, a := range call.Args[1:] {
					es.mark(es.carrier(a), "appended into a slice")
				}
			case "panic":
				for _, a := range call.Args {
					es.mark(es.carrier(a), "boxed into an interface by panic")
				}
			}
			return
		}
	}
	sig, _ := typeSig(es.info, call.Fun)
	for i, a := range call.Args {
		c := es.carrier(a)
		if c < 0 {
			continue
		}
		if sig != nil && types.IsInterface(paramType(sig, i)) {
			es.mark(c, "boxed into an interface argument")
		} else {
			es.mark(c, "passed to a call that may retain it")
		}
	}
}

func typeSig(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// paramType resolves the static type of argument i, unwrapping the
// variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i < params.Len()-1 || !sig.Variadic() {
		if i < params.Len() {
			return params.At(i).Type()
		}
		return nil
	}
	last := params.At(params.Len() - 1).Type()
	if sl, ok := last.Underlying().(*types.Slice); ok {
		return sl.Elem()
	}
	return last
}

func (es *escapeState) mark(site int, cause string) {
	if site >= 0 && cause != "" && es.cause[site] == "" {
		es.cause[site] = cause
	}
}

func (es *escapeState) report() {
	name := es.fd.Name.Name
	for i, s := range es.sites {
		switch {
		case s.always != "":
			es.pass.Reportf(s.expr.Pos(), "hot path %s allocates per iteration: %s — %s; hoist it to the caller or reuse a scratch value",
				name, s.kind, s.always)
		case es.cause[i] != "":
			es.pass.Reportf(s.expr.Pos(), "hot path %s: %s escapes (%s); hoist the allocation out of the hot path",
				name, s.kind, es.cause[i])
		}
	}
}
