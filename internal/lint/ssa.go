package lint

// Pruned SSA form on top of cfg.go's per-function CFGs (ALGORITHM.md §14).
//
// The value-flow analyzers (boundsproof, intoverflow, escape) need to know,
// at every use of a local variable, which definition produced the value —
// the classic use-def question SSA answers by construction. BuildSSA renames
// the function's trackable locals into static single assignment form:
//
//   - DomInfo computes the dominator tree with the Cooper–Harvey–Kennedy
//     iterative algorithm over a reverse postorder numbering (simple, and on
//     the small CFGs of hand-written functions effectively linear), plus
//     dominance frontiers for phi placement.
//   - Phi nodes are pruned: a phi for variable v lands in join block B only
//     if B is in the iterated dominance frontier of v's definition blocks
//     AND v is live-in at B (a backward liveness pass filters the rest), so
//     the interval propagation never carries facts for dead names.
//   - Renaming walks the dominator tree with the standard stack discipline
//     and records, for every identifier occurrence, the SSA value it reads
//     (Use) or writes (Def).
//
// Only unaliased locals are tracked: parameters, named results and
// block-scoped variables whose address is never taken and which no nested
// function literal touches. Everything else — package globals, struct
// fields, captured or address-taken locals — maps to value 0, the designated
// "unknown", and the analyses fall back to type-derived bounds for it. That
// keeps the construction sound without a points-to analysis.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DomInfo holds the dominator tree and dominance frontiers of one CFG,
// restricted to the blocks reachable from the entry.
type DomInfo struct {
	cfg *CFG
	// rpo lists the reachable blocks in reverse postorder (entry first).
	rpo []*Block
	// num is each reachable block's reverse-postorder number.
	num map[*Block]int
	// idom maps each reachable block to its immediate dominator
	// (nil for the entry).
	idom map[*Block]*Block
	// children is the dominator tree: idom[c] == b  ⇔  c ∈ children[b].
	children map[*Block][]*Block
	// depth is each block's depth in the dominator tree (entry 0).
	depth map[*Block]int
	// preds lists each reachable block's reachable predecessors.
	preds map[*Block][]*Block
	// frontier is the dominance frontier of each reachable block.
	frontier map[*Block][]*Block
}

// BuildDom computes dominators, the dominator tree and dominance frontiers
// for the CFG's reachable blocks.
func BuildDom(c *CFG) *DomInfo {
	d := &DomInfo{
		cfg:      c,
		num:      map[*Block]int{},
		idom:     map[*Block]*Block{},
		children: map[*Block][]*Block{},
		depth:    map[*Block]int{},
		preds:    map[*Block][]*Block{},
		frontier: map[*Block][]*Block{},
	}
	// Iterative postorder DFS from the entry, then reverse.
	type frame struct {
		b *Block
		i int
	}
	seen := map[*Block]bool{c.Entry: true}
	var post []*Block
	stack := []frame{{c.Entry, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			s := f.b.Succs[f.i]
			f.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	d.rpo = make([]*Block, len(post))
	for i, b := range post {
		d.rpo[len(post)-1-i] = b
	}
	for i, b := range d.rpo {
		d.num[b] = i
	}
	for _, b := range d.rpo {
		for _, s := range b.Succs {
			if seen[s] {
				d.preds[s] = append(d.preds[s], b)
			}
		}
	}

	// Cooper–Harvey–Kennedy: iterate idom to a fixed point in RPO, meeting
	// predecessors by walking up the current tree with RPO numbers.
	d.idom[c.Entry] = c.Entry // sentinel during iteration, cleared below
	intersect := func(a, b *Block) *Block {
		for a != b {
			for d.num[a] > d.num[b] {
				a = d.idom[a]
			}
			for d.num[b] > d.num[a] {
				b = d.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *Block
			for _, p := range d.preds[b] {
				if d.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	d.idom[c.Entry] = nil
	for _, b := range d.rpo[1:] {
		p := d.idom[b]
		d.children[p] = append(d.children[p], b)
		d.depth[b] = d.depth[p] + 1
	}

	// Dominance frontiers (Cooper–Harvey–Kennedy's "runner" formulation).
	infront := map[*Block]map[*Block]bool{}
	for _, b := range d.rpo {
		if len(d.preds[b]) < 2 {
			continue
		}
		for _, p := range d.preds[b] {
			for runner := p; runner != nil && runner != d.idom[b]; runner = d.idom[runner] {
				if infront[runner] == nil {
					infront[runner] = map[*Block]bool{}
				}
				if !infront[runner][b] {
					infront[runner][b] = true
					d.frontier[runner] = append(d.frontier[runner], b)
				}
			}
		}
	}
	return d
}

// Reachable reports whether b is reachable from the entry.
func (d *DomInfo) Reachable(b *Block) bool { _, ok := d.num[b]; return ok }

// Idom returns b's immediate dominator (nil for the entry and for
// unreachable blocks).
func (d *DomInfo) Idom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively). Unreachable blocks
// dominate nothing and are dominated by nothing.
func (d *DomInfo) Dominates(a, b *Block) bool {
	if !d.Reachable(a) || !d.Reachable(b) {
		return false
	}
	for d.depth[b] > d.depth[a] {
		b = d.idom[b]
	}
	return a == b
}

// VID names one SSA value of a function; index into SSAFunc.Vals. Value 0
// is the shared "unknown": everything the construction cannot track.
type VID int

// vkind classifies how an SSA value came to be.
type vkind uint8

const (
	vUnknown  vkind = iota // value 0: untracked, top
	vParam                 // parameter or receiver, defined at entry
	vZero                  // var declaration without initializer
	vExpr                  // x := e, x = e, or one position of a tuple assign
	vCompound              // x op= e or x++/x--
	vPhi                   // join of per-predecessor values
	vRangeKey              // key variable of a range statement
	vRangeVal              // value variable of a range statement
	vLen                   // pseudo-value: len of a slice-typed value
)

// ssaValue is one SSA value.
type ssaValue struct {
	Kind vkind
	// Obj is the source variable the value binds (nil for vUnknown; the
	// owning slice's variable for vLen).
	Obj *types.Var
	// Block is the defining block (nil for vUnknown, vParam, vLen).
	Block *Block
	// Rhs is the defining expression for vExpr (nil when the value comes
	// from a multi-result call or another untracked source) and the operand
	// for vCompound (nil for ++/--, meaning the constant 1).
	Rhs ast.Expr
	// Op is the arithmetic token for vCompound (ADD for both x += e and
	// x++).
	Op token.Token
	// Prev is the value the variable held before a vCompound def.
	Prev VID
	// Range is the enclosing range statement for vRangeKey/vRangeVal.
	Range *ast.RangeStmt
	// Args are a phi's incoming values, one per reachable predecessor.
	Args []PhiArg
	// Of is the slice value a vLen pseudo-value measures.
	Of VID
}

// PhiArg is one incoming edge of a phi.
type PhiArg struct {
	Pred *Block
	Val  VID
}

// SSAFunc is the SSA form of one function body.
type SSAFunc struct {
	Cfg *CFG
	Dom *DomInfo
	// Vals is the value table; Vals[0] is the unknown value.
	Vals []ssaValue
	// Use maps every read occurrence of a tracked variable to the value it
	// observes; Def maps every write occurrence to the value it creates.
	Use map[*ast.Ident]VID
	Def map[*ast.Ident]VID
	// Phis lists each block's phi values (entries in Vals of kind vPhi).
	Phis map[*Block][]VID
	// EntryVals maps each tracked parameter/receiver/result object to its
	// entry value.
	EntryVals map[*types.Var]VID
	// rangeX maps a range statement's X expression (a block head node) to
	// its statement, so analyses recognize the per-iteration defs.
	rangeX map[ast.Node]*ast.RangeStmt
	// lenOf lazily allocates vLen pseudo-values.
	lenOf map[VID]VID
	info  *types.Info
}

// Info exposes the type information of the package the function lives in.
func (s *SSAFunc) Info() *types.Info { return s.info }

// LenVal returns the pseudo-value measuring len(v), allocating on first use.
func (s *SSAFunc) LenVal(v VID) VID {
	if v == 0 {
		return 0
	}
	if l, ok := s.lenOf[v]; ok {
		return l
	}
	l := VID(len(s.Vals))
	s.Vals = append(s.Vals, ssaValue{Kind: vLen, Obj: s.Vals[v].Obj, Of: v})
	s.lenOf[v] = l
	return l
}

// RangeOf reports whether node n is the X expression of a range statement
// (the per-iteration head of the loop) and returns the statement.
func (s *SSAFunc) RangeOf(n ast.Node) (*ast.RangeStmt, bool) {
	r, ok := s.rangeX[n]
	return r, ok
}

// ssaBuilder carries the construction state.
type ssaBuilder struct {
	fn   *SSAFunc
	info *types.Info
	// tracked maps each SSA-renamed variable to its dense index.
	tracked map[*types.Var]int
	vars    []*types.Var
	// stacks is the renaming stack per tracked variable.
	stacks [][]VID
	// phiAt lists the phis placed in each block, by variable index.
	phiAt map[*Block][]phiRecord
}

// defSite is one write occurrence inside a node, in evaluation order.
type defSite struct {
	id   *ast.Ident // nil for an untracked or blank position
	obj  *types.Var
	kind vkind
	rhs  ast.Expr
	op   token.Token
	rng  *ast.RangeStmt
}

// BuildSSA constructs pruned SSA for one declared function. decl.Body must
// be non-nil. The CFG and dominator tree are built internally and exposed
// on the result.
func BuildSSA(info *types.Info, decl *ast.FuncDecl) *SSAFunc {
	cfg := BuildCFG(decl.Body)
	dom := BuildDom(cfg)
	fn := &SSAFunc{
		Cfg:       cfg,
		Dom:       dom,
		Vals:      make([]ssaValue, 1), // Vals[0] = unknown
		Use:       map[*ast.Ident]VID{},
		Def:       map[*ast.Ident]VID{},
		Phis:      map[*Block][]VID{},
		EntryVals: map[*types.Var]VID{},
		rangeX:    map[ast.Node]*ast.RangeStmt{},
		lenOf:     map[VID]VID{},
		info:      info,
	}
	b := &ssaBuilder{fn: fn, info: info, tracked: map[*types.Var]int{}}

	// Index the range statements' X expressions: cfg.go lowers a range loop
	// to a head block whose first node is X, and the key/value definitions
	// happen there on every iteration.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			fn.rangeX[r.X] = r
		}
		return true
	})

	b.collectTracked(decl)
	if len(b.vars) == 0 {
		return fn
	}
	defs := b.collectDefBlocks(decl)
	live := b.liveness(decl)
	b.placePhis(defs, live)
	b.rename(decl)
	return fn
}

// collectTracked gathers the variables the construction renames: parameters,
// receiver, named results and block-scoped locals, minus anything
// address-taken or referenced from a nested function literal.
func (b *ssaBuilder) collectTracked(decl *ast.FuncDecl) {
	banned := map[*types.Var]bool{}
	ban := func(id *ast.Ident) {
		if v, ok := b.info.Uses[id].(*types.Var); ok {
			banned[v] = true
		}
		if v, ok := b.info.Defs[id].(*types.Var); ok {
			banned[v] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					ban(id)
				}
			}
		case *ast.SelectorExpr:
			// A method call through a pointer receiver implicitly takes the
			// operand's address and may mutate it.
			if sel, ok := b.info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if f, ok := sel.Obj().(*types.Func); ok {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
							if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
								ban(id)
							}
						}
					}
				}
			}
		case *ast.FuncLit:
			// Every variable a nested literal touches lives on a different
			// activation path; ban all of them.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					ban(id)
				}
				return true
			})
			return false
		}
		return true
	})

	track := func(v *types.Var) {
		if v == nil || banned[v] || v.Name() == "_" {
			return
		}
		if _, ok := b.tracked[v]; ok {
			return
		}
		b.tracked[v] = len(b.vars)
		b.vars = append(b.vars, v)
	}
	sigVar := func(field *ast.Field) {
		for _, name := range field.Names {
			if v, ok := b.info.Defs[name].(*types.Var); ok {
				track(v)
			}
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			sigVar(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			sigVar(f)
		}
	}
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			sigVar(f)
		}
	}
	// Locals: every ident the body defines as a variable.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := b.info.Defs[id].(*types.Var); ok {
				track(v)
			}
		}
		return true
	})
}

// nodeDefs returns the write occurrences a node performs, in evaluation
// order (all after the node's reads: Go evaluates every right-hand side
// before assigning).
func (b *ssaBuilder) nodeDefs(n ast.Node) []defSite {
	var out []defSite
	add := func(id *ast.Ident, kind vkind, rhs ast.Expr, op token.Token, rng *ast.RangeStmt) {
		if id == nil || id.Name == "_" {
			out = append(out, defSite{})
			return
		}
		var obj *types.Var
		if v, ok := b.info.Defs[id].(*types.Var); ok {
			obj = v
		} else if v, ok := b.info.Uses[id].(*types.Var); ok {
			obj = v
		}
		if obj == nil {
			out = append(out, defSite{})
			return
		}
		if _, ok := b.tracked[obj]; !ok {
			out = append(out, defSite{})
			return
		}
		out = append(out, defSite{id: id, obj: obj, kind: kind, rhs: rhs, op: op, rng: rng})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		switch n.Tok {
		case token.ASSIGN, token.DEFINE:
			single := len(n.Lhs) == len(n.Rhs)
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue // store through a selector/index: not a rebind
				}
				var rhs ast.Expr
				if single {
					rhs = n.Rhs[i]
				}
				add(id, vExpr, rhs, token.ILLEGAL, nil)
			}
		default: // op-assign: x += e and friends
			if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
				op := n.Tok + (token.ADD - token.ADD_ASSIGN)
				add(id, vCompound, n.Rhs[0], op, nil)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			op := token.ADD
			if n.Tok == token.DEC {
				op = token.SUB
			}
			add(id, vCompound, nil, op, nil)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				switch {
				case len(vs.Values) == len(vs.Names):
					add(name, vExpr, vs.Values[i], token.ILLEGAL, nil)
				case len(vs.Values) == 0:
					add(name, vZero, nil, token.ILLEGAL, nil)
				default: // var a, b = f()
					add(name, vExpr, nil, token.ILLEGAL, nil)
				}
			}
		}
	case ast.Expr:
		if rng, ok := b.fn.rangeX[ast.Node(n)]; ok {
			if id, ok := identOrNil(rng.Key); ok {
				add(id, vRangeKey, nil, token.ILLEGAL, rng)
			}
			if id, ok := identOrNil(rng.Value); ok {
				add(id, vRangeVal, nil, token.ILLEGAL, rng)
			}
		}
	}
	return out
}

// identOrNil unwraps e to a bare identifier; ok is false for nil and
// non-ident expressions.
func identOrNil(e ast.Expr) (*ast.Ident, bool) {
	if e == nil {
		return nil, false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return id, ok
}

// nodeUses calls use(id, obj) for every read occurrence of a tracked
// variable inside the node, skipping the write positions nodeDefs covers
// and nested function literals.
func (b *ssaBuilder) nodeUses(n ast.Node, use func(*ast.Ident, *types.Var)) {
	isDef := map[*ast.Ident]bool{}
	for _, d := range b.nodeDefs(n) {
		if d.id != nil && d.kind != vCompound {
			// A compound assign reads the old value too; keep it a use.
			isDef[d.id] = true
		}
	}
	inspectShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if isDef[id] {
			return true
		}
		if v, ok := b.info.Uses[id].(*types.Var); ok {
			if _, tracked := b.tracked[v]; tracked {
				use(id, v)
			}
		}
		return true
	})
	// Deferred calls evaluate their function and arguments immediately even
	// though the call itself runs at exit; inspectShallow prunes them, so
	// walk the call expression explicitly.
	if ds, ok := n.(*ast.DeferStmt); ok {
		b.nodeUses(ds.Call, use)
	}
}

// collectDefBlocks returns, per tracked variable index, the set of blocks
// containing a definition (parameters count as defined in the entry).
func (b *ssaBuilder) collectDefBlocks(decl *ast.FuncDecl) []map[*Block]bool {
	defs := make([]map[*Block]bool, len(b.vars))
	for i := range defs {
		defs[i] = map[*Block]bool{}
	}
	for _, blk := range b.fn.Cfg.Blocks {
		if !b.fn.Dom.Reachable(blk) {
			continue
		}
		for _, n := range blk.Nodes {
			for _, d := range b.nodeDefs(n) {
				if d.obj != nil {
					defs[b.tracked[d.obj]][blk] = true
				}
			}
		}
	}
	entry := b.fn.Cfg.Entry
	for v, i := range b.tracked {
		if isSigVar(decl, b.info, v) {
			defs[i][entry] = true
		}
	}
	return defs
}

// isSigVar reports whether v is a parameter, receiver or named result of
// the declaration.
func isSigVar(decl *ast.FuncDecl, info *types.Info, v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(decl.Recv) || check(decl.Type.Params) || check(decl.Type.Results)
}

// liveness computes, per block, the set of tracked variables live at block
// entry (backward may-analysis; used to prune dead phis).
func (b *ssaBuilder) liveness(decl *ast.FuncDecl) []map[*Block]bool {
	n := len(b.vars)
	use := map[*Block][]bool{}  // used before any def in the block
	defd := map[*Block][]bool{} // defined in the block
	blocks := b.fn.Dom.rpo
	for _, blk := range blocks {
		u, d := make([]bool, n), make([]bool, n)
		for _, node := range blk.Nodes {
			b.nodeUses(node, func(_ *ast.Ident, v *types.Var) {
				i := b.tracked[v]
				if !d[i] {
					u[i] = true
				}
			})
			for _, ds := range b.nodeDefs(node) {
				if ds.obj != nil {
					d[b.tracked[ds.obj]] = true
				}
			}
		}
		use[blk], defd[blk] = u, d
	}
	// Named results are read by the implicit return at exit.
	if decl.Type.Results != nil {
		exitUse := make([]bool, n)
		for _, f := range decl.Type.Results.List {
			for _, name := range f.Names {
				if v, ok := b.info.Defs[name].(*types.Var); ok {
					if i, tracked := b.tracked[v]; tracked {
						exitUse[i] = true
					}
				}
			}
		}
		use[b.fn.Cfg.Exit] = orBits(use[b.fn.Cfg.Exit], exitUse, n)
	}
	liveIn := map[*Block][]bool{}
	for changed := true; changed; {
		changed = false
		for k := len(blocks) - 1; k >= 0; k-- {
			blk := blocks[k]
			out := make([]bool, n)
			for _, s := range blk.Succs {
				out = orBits(out, liveIn[s], n)
			}
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = use[blk][i] || (out[i] && !defd[blk][i])
			}
			if !eqBits(liveIn[blk], in, n) {
				liveIn[blk] = in
				changed = true
			}
		}
	}
	res := make([]map[*Block]bool, n)
	for i := range res {
		res[i] = map[*Block]bool{}
		for blk, in := range liveIn {
			if in[i] {
				res[i][blk] = true
			}
		}
	}
	return res
}

func orBits(a, b []bool, n int) []bool {
	if a == nil {
		a = make([]bool, n)
	}
	for i := range b {
		if b[i] {
			a[i] = true
		}
	}
	return a
}

func eqBits(a, b []bool, n int) bool {
	if a == nil {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// phiRecord is a placed phi before renaming fills its arguments.
type phiRecord struct {
	varIdx int
	vid    VID
}

// placePhis inserts pruned phis: iterated dominance frontier of each
// variable's def blocks, filtered by liveness.
func (b *ssaBuilder) placePhis(defs []map[*Block]bool, live []map[*Block]bool) {
	b.phiAt = map[*Block][]phiRecord{}
	for i, v := range b.vars {
		// Seed the worklist in reverse postorder so phi VID allocation is
		// deterministic across runs.
		work := make([]*Block, 0, len(defs[i]))
		for _, blk := range b.fn.Dom.rpo {
			if defs[i][blk] {
				work = append(work, blk)
			}
		}
		placed := map[*Block]bool{}
		inWork := map[*Block]bool{}
		for _, blk := range work {
			inWork[blk] = true
		}
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, f := range b.fn.Dom.frontier[blk] {
				if placed[f] || !live[i][f] {
					continue
				}
				placed[f] = true
				vid := VID(len(b.fn.Vals))
				b.fn.Vals = append(b.fn.Vals, ssaValue{Kind: vPhi, Obj: v, Block: f})
				b.fn.Phis[f] = append(b.fn.Phis[f], vid)
				b.phiAt[f] = append(b.phiAt[f], phiRecord{varIdx: i, vid: vid})
				if !inWork[f] {
					inWork[f] = true
					work = append(work, f)
				}
			}
		}
	}
}

// rename runs the classic stack-based renaming over the dominator tree.
func (b *ssaBuilder) rename(decl *ast.FuncDecl) {
	b.stacks = make([][]VID, len(b.vars))
	// Entry values for signature variables.
	for v, i := range b.tracked {
		if isSigVar(decl, b.info, v) {
			vid := VID(len(b.fn.Vals))
			b.fn.Vals = append(b.fn.Vals, ssaValue{Kind: vParam, Obj: v})
			b.fn.EntryVals[v] = vid
			b.stacks[i] = append(b.stacks[i], vid)
		}
	}
	b.renameBlock(b.fn.Cfg.Entry)
}

func (b *ssaBuilder) top(i int) VID {
	if s := b.stacks[i]; len(s) > 0 {
		return s[len(s)-1]
	}
	return 0
}

func (b *ssaBuilder) renameBlock(blk *Block) {
	pushed := make([]int, len(b.vars))
	push := func(i int, vid VID) {
		b.stacks[i] = append(b.stacks[i], vid)
		pushed[i]++
	}
	for _, pr := range b.phiAt[blk] {
		push(pr.varIdx, pr.vid)
	}
	for _, n := range blk.Nodes {
		b.nodeUses(n, func(id *ast.Ident, v *types.Var) {
			b.fn.Use[id] = b.top(b.tracked[v])
		})
		for _, d := range b.nodeDefs(n) {
			if d.obj == nil {
				continue
			}
			i := b.tracked[d.obj]
			vid := VID(len(b.fn.Vals))
			val := ssaValue{Kind: d.kind, Obj: d.obj, Block: blk, Rhs: d.rhs, Op: d.op, Range: d.rng}
			if d.kind == vCompound {
				val.Prev = b.top(i)
			}
			b.fn.Vals = append(b.fn.Vals, val)
			b.fn.Def[d.id] = vid
			push(i, vid)
		}
	}
	// Fill phi arguments of the CFG successors.
	for _, s := range blk.Succs {
		for _, pr := range b.phiAt[s] {
			v := &b.fn.Vals[pr.vid]
			v.Args = append(v.Args, PhiArg{Pred: blk, Val: b.top(pr.varIdx)})
		}
	}
	for _, c := range b.fn.Dom.children[blk] {
		b.renameBlock(c)
	}
	for i, k := range pushed {
		b.stacks[i] = b.stacks[i][:len(b.stacks[i])-k]
	}
}
