package lint

// CancelPoll proves bounded cancellation latency on the solve path (PR 2's
// amortized-cancellation design, ALGORITHM.md §16). The property: every loop
// in a function on a path from a `solver` entry point (an exported function
// with a context.Context parameter in a package named "solver") to a
// //lint:hotpath kernel must poll for cancellation — receive from a done
// channel, call ctx.Err(), dispatch through a *Ctx pool primitive, or call a
// module function that itself polls — at least once per maxPollStride
// iterations. Poll sites may sit behind stride guards (`i%K == 0`,
// `i&(K-1) == 0`, or a constant-reset budget countdown `if budget <= 0`);
// the stride K is proven with the interval lattice (constant folding plus
// the value-flow engine's upper bound), so "polls every fillCheckEvery
// entries" is a checked claim, not a comment.
//
// Loops inside the hotpath kernels themselves are exempt — the kernel is the
// amortized unit whose cost the enclosing sweep loop's poll covers — as are
// loops inside function literals (dispatched closures run under a *Ctx
// primitive that owns their polling).

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// maxPollStride is the largest provable poll stride accepted: 2^16
// iterations. The repo's strides (fillCheckEvery = 2^15, the pool's
// cancelCheckEvery = 256) sit below it with headroom for one doubling.
const maxPollStride = int64(1) << 16

var CancelPoll = &Analyzer{
	Name:      "cancelpoll",
	Doc:       "every loop on a solver-to-hotpath path must poll cancellation at least once per 2^16 iterations (stride proven via the interval lattice)",
	RunModule: runCancelPoll,
}

func runCancelPoll(pass *ModulePass) {
	mod := pass.Mod
	graph := BuildCallGraph(mod)

	targets := map[*types.Func]bool{}
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			fns, _ := directiveFuncs(f, isHotpathDirective)
			for _, fd := range fns {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					targets[fn] = true
				}
			}
		}
	}
	var roots []*types.Func
	for _, n := range graph.SortedNodes() {
		if n.Pkg.Types != nil && n.Pkg.Types.Name() == "solver" &&
			n.Fn.Exported() && ctxParamSig(n.Fn) {
			roots = append(roots, n.Fn)
		}
	}
	if len(roots) == 0 || len(targets) == 0 {
		return
	}
	fromRoot := graph.Reachable(roots)
	toTarget := reverseReachable(graph, targets)
	polls := pollingFuncs(graph)

	for _, n := range graph.SortedNodes() {
		root, onF := fromRoot[n.Fn]
		tgt, onB := toTarget[n.Fn]
		if !onF || !onB || targets[n.Fn] || n.Decl.Body == nil {
			continue
		}
		c := &pollChecker{
			pass: pass, pkg: n.Pkg, decl: n.Decl,
			targets: targets, toTarget: toTarget, polls: polls,
			root: root.Name(), target: tgt.Name(),
		}
		c.checkBody(n.Decl.Body)
	}
}

// ctxParamSig reports whether any parameter is a context.Context.
func ctxParamSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// reverseReachable maps every function from which some target is reachable
// to a witness target.
func reverseReachable(g *CallGraph, targets map[*types.Func]bool) map[*types.Func]*types.Func {
	rev := map[*types.Func][]*types.Func{}
	for _, n := range g.SortedNodes() {
		for _, c := range n.Callees {
			rev[c] = append(rev[c], n.Fn)
		}
	}
	witness := map[*types.Func]*types.Func{}
	var queue []*types.Func
	var tgts []*types.Func
	for t := range targets {
		tgts = append(tgts, t)
	}
	sort.Slice(tgts, func(i, j int) bool { return tgts[i].Pos() < tgts[j].Pos() })
	for _, t := range tgts {
		witness[t] = t
		queue = append(queue, t)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range rev[fn] {
			if _, ok := witness[caller]; ok {
				continue
			}
			witness[caller] = witness[fn]
			queue = append(queue, caller)
		}
	}
	return witness
}

// pollingFuncs computes, as a call-graph fixpoint, the module functions that
// poll cancellation somewhere in their body (directly or via a callee).
func pollingFuncs(g *CallGraph) map[*types.Func]bool {
	polls := map[*types.Func]bool{}
	nodes := g.SortedNodes()
	for _, n := range nodes {
		if n.Decl.Body == nil {
			continue
		}
		found := false
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			if found {
				return false
			}
			if isDirectPoll(n.Pkg, nd) {
				found = true
				return false
			}
			return true
		})
		if found {
			polls[n.Fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if polls[n.Fn] {
				continue
			}
			for _, c := range n.Callees {
				if polls[c] {
					polls[n.Fn] = true
					changed = true
					break
				}
			}
		}
	}
	return polls
}

// isDirectPoll recognizes a cancellation poll point: a receive from a done
// channel (struct{} element) or from ctx.Done(), a ctx.Err() call, or a
// *Ctx pool dispatch (which polls internally between chunks).
func isDirectPoll(pkg *Package, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op != token.ARROW {
			return false
		}
		return isDoneChannel(pkg, n.X)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Err" && isContextExpr(pkg, sel.X) {
				return true
			}
			name := sel.Sel.Name
			if len(name) > 3 && name[len(name)-3:] == "Ctx" {
				if _, ok := isPoolDispatch(pkg, n); ok {
					return true
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a done channel blocks on it each iteration.
		return isDoneChannel(pkg, n.X)
	}
	return false
}

// isDoneChannel reports whether the expression is a cancellation signal: a
// ctx.Done() call or any channel of empty structs.
func isDoneChannel(pkg *Package, e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Done" && isContextExpr(pkg, sel.X) {
				return true
			}
		}
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// pollChecker walks one on-path declaration and enforces the obligation on
// its loops.
type pollChecker struct {
	pass     *ModulePass
	pkg      *Package
	decl     *ast.FuncDecl
	targets  map[*types.Func]bool
	toTarget map[*types.Func]*types.Func
	polls    map[*types.Func]bool
	root     string
	target   string
	vf       *valueFlow // lazy, for stride proofs
}

// checkBody recurses over statements, skipping function literals, and
// checks every for/range loop it finds.
func (c *pollChecker) checkBody(n ast.Node) {
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			c.checkLoop(nd, nd.Body)
		case *ast.RangeStmt:
			c.checkLoop(nd, nd.Body)
		}
		return true
	})
}

// checkLoop enforces the poll obligation on one loop (nested loops are
// visited separately by checkBody's recursion).
func (c *pollChecker) checkLoop(loop ast.Node, body *ast.BlockStmt) {
	if !c.loopObligated(body) {
		return
	}
	stride, found, bounded := c.bestPoll(loop, body)
	switch {
	case !found:
		c.pass.Reportf(loop.Pos(),
			"loop on the cancellation path %s -> %s never polls for cancellation: a canceled solve runs to completion here; check ctx.Done()/ctx.Err() (directly or via a polling callee) at least once per %d iterations",
			c.root, c.target, maxPollStride)
	case !bounded:
		c.pass.Reportf(loop.Pos(),
			"cannot bound the cancellation poll stride in this loop on the path %s -> %s: guard the poll with i%%K == 0, i&(K-1) == 0, or a constant-reset budget so the interval engine can prove K <= %d",
			c.root, c.target, maxPollStride)
	case stride > maxPollStride:
		c.pass.Reportf(loop.Pos(),
			"loop on the cancellation path %s -> %s polls for cancellation only every %d iterations (limit %d): lower the stride",
			c.root, c.target, stride, maxPollStride)
	}
}

// loopObligated reports whether the loop body (function literals excluded)
// calls into the path toward a hotpath kernel.
func (c *pollChecker) loopObligated(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if found {
			return false
		}
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(c.pkg, call)
		if callee == nil {
			return true
		}
		if c.targets[callee] {
			found = true
		} else if _, on := c.toTarget[callee]; on {
			found = true
		}
		return !found
	})
	return found
}

// bestPoll finds the poll with the smallest proven stride in the loop body.
// Returns (stride, found-any-poll, found-bounded-poll).
func (c *pollChecker) bestPoll(loop ast.Node, body *ast.BlockStmt) (int64, bool, bool) {
	best := int64(-1)
	found := false
	var guards []ast.Expr
	var visitStmt func(ast.Stmt)
	notePoll := func(n ast.Node) {
		if !isDirectPoll(c.pkg, n) && !c.isPollingCall(n) {
			return
		}
		found = true
		if s, ok := c.guardStride(guards); ok && (best < 0 || s < best) {
			best = s
		}
	}
	scanExpr := func(e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(nd ast.Node) bool {
			if _, ok := nd.(*ast.FuncLit); ok {
				return false
			}
			notePoll(nd)
			return true
		})
	}
	visitStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.IfStmt:
			// Polls in the init/cond (`if err := ctx.Err(); err != nil`)
			// are guarded by the *enclosing* conditions only.
			visitStmt(s.Init)
			scanExpr(s.Cond)
			guards = append(guards, s.Cond)
			for _, st := range s.Body.List {
				visitStmt(st)
			}
			guards = guards[:len(guards)-1]
			visitStmt(s.Else)
		case *ast.BlockStmt:
			for _, st := range s.List {
				visitStmt(st)
			}
		case *ast.ForStmt:
			visitStmt(s.Init)
			scanExpr(s.Cond)
			visitStmt(s.Post)
			visitStmt(s.Body)
		case *ast.RangeStmt:
			notePoll(s)
			scanExpr(s.X)
			visitStmt(s.Body)
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok {
					if comm.Comm != nil {
						scanExpr(comm.Comm)
					}
					for _, st := range comm.Body {
						visitStmt(st)
					}
				}
			}
		case *ast.SwitchStmt:
			visitStmt(s.Init)
			scanExpr(s.Tag)
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						visitStmt(st)
					}
				}
			}
		case *ast.LabeledStmt:
			visitStmt(s.Stmt)
		default:
			scanExpr(s)
		}
	}
	visitStmt(body)
	return best, found, best >= 0
}

// isPollingCall reports a call to a module function that polls (fixpoint
// set).
func (c *pollChecker) isPollingCall(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := staticCallee(c.pkg, call)
	return callee != nil && c.polls[callee]
}

// guardStride multiplies the strides of the enclosing guards; ok=false when
// any guard is unclassifiable (the poll may never run).
func (c *pollChecker) guardStride(guards []ast.Expr) (int64, bool) {
	stride := int64(1)
	for _, g := range guards {
		k, ok := c.condStride(g)
		if !ok {
			return 0, false
		}
		if stride > maxPollStride/k+1 {
			return maxPollStride + 1, true // saturate: already over the limit
		}
		stride *= k
	}
	return stride, true
}

// condStride classifies one guard condition: nil comparisons pass (stride
// 1), `x % K == 0` and `x & M == 0` contribute K and M+1, a budget test
// (`x <= 0`, `x == 0`, `x < 1`) contributes the largest constant the budget
// is reset to. Anything else is unclassifiable.
func (c *pollChecker) condStride(cond ast.Expr) (int64, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	if isNilIdent(be.X) || isNilIdent(be.Y) {
		return 1, true
	}
	switch be.Op {
	case token.EQL:
		if !isConstZero(c.pkg, be.Y) {
			break
		}
		switch x := ast.Unparen(be.X).(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.REM: // i % K == 0
				if k, ok := c.strideBound(x.Y); ok && k > 0 {
					return k, true
				}
			case token.AND: // i & (K-1) == 0
				if m, ok := c.strideBound(x.Y); ok && m >= 0 && m < maxPollStride {
					return m + 1, true
				}
			}
		default:
			// x == 0: a budget hitting zero.
			if k, ok := c.budgetReset(be.X); ok {
				return k, true
			}
		}
	case token.LEQ, token.LSS:
		// budget <= 0 / budget < 1.
		lim, ok := constValue(c.pkg, be.Y)
		if !ok || (be.Op == token.LEQ && lim != 0) || (be.Op == token.LSS && lim != 1) {
			break
		}
		if k, ok := c.budgetReset(be.X); ok {
			return k, true
		}
	}
	return 0, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isConstZero(pkg *Package, e ast.Expr) bool {
	v, ok := constValue(pkg, e)
	return ok && v == 0
}

// constValue folds a constant expression to an int64.
func constValue(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// strideBound proves an upper bound for a stride expression: constant
// folding first, the value-flow engine's interval upper bound otherwise.
func (c *pollChecker) strideBound(e ast.Expr) (int64, bool) {
	if v, ok := constValue(c.pkg, e); ok {
		return v, true
	}
	if c.vf == nil {
		c.vf = buildValueFlow(c.pkg, c.decl)
	}
	if c.vf == nil {
		return 0, false
	}
	env := c.vf.entryFact().(intervalFact)
	iv := c.vf.evalExpr(env, e)
	if iv.Hi.isConst() {
		return iv.Hi.Off, true
	}
	return 0, false
}

// budgetReset resolves a budget countdown variable (local or field chain)
// and returns the largest constant it is ever reset to in this declaration.
func (c *pollChecker) budgetReset(e ast.Expr) (int64, bool) {
	leafOf := func(x ast.Expr) *types.Var {
		root, leaf, _ := peelChain(c.pkg, x)
		if leaf != nil {
			return leaf
		}
		return root
	}
	target := leafOf(e)
	if target == nil {
		return 0, false
	}
	best := int64(-1)
	consider := func(rhs ast.Expr) {
		if k, ok := c.strideBound(rhs); ok && k > best {
			best = k
		}
	}
	ast.Inspect(c.decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			if nd.Tok != token.ASSIGN && nd.Tok != token.DEFINE {
				return true // compound ops are the countdown itself
			}
			for i, lhs := range nd.Lhs {
				if i >= len(nd.Rhs) {
					break
				}
				if leafOf(lhs) == target {
					consider(nd.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range nd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) && leafOf(name) == target {
							consider(vs.Values[i])
						}
					}
				}
			}
		}
		return true
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}
