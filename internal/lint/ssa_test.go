package lint

import (
	"go/ast"
	"testing"
)

// ssaFor type-checks one source snippet and builds pruned SSA for the named
// function.
func ssaFor(t *testing.T, src, fname string) *SSAFunc {
	t.Helper()
	pkg := checkSource(t, src)
	fd := funcNamed(t, pkg, fname)
	if fd.Body == nil {
		t.Fatalf("%s has no body", fname)
	}
	return BuildSSA(pkg.Info, fd)
}

// valsOf returns the VIDs (in allocation order, which is deterministic) of
// the values bound to the variable with the given name, filtered by kind.
func valsOf(fn *SSAFunc, name string, kinds ...vkind) []VID {
	var out []VID
	for vid := 1; vid < len(fn.Vals); vid++ {
		v := &fn.Vals[vid]
		if v.Obj == nil || v.Obj.Name() != name {
			continue
		}
		if len(kinds) == 0 {
			out = append(out, VID(vid))
			continue
		}
		for _, k := range kinds {
			if v.Kind == k {
				out = append(out, VID(vid))
				break
			}
		}
	}
	return out
}

// onlyPhi returns the unique phi of the named variable, failing the test on
// any other count.
func onlyPhi(t *testing.T, fn *SSAFunc, name string) *ssaValue {
	t.Helper()
	phis := valsOf(fn, name, vPhi)
	if len(phis) != 1 {
		t.Fatalf("want exactly one phi for %s, got %d", name, len(phis))
	}
	return &fn.Vals[phis[0]]
}

func TestDomDiamond(t *testing.T) {
	fn := ssaFor(t, `package p
func diamond(a, b int) int {
	x := 0
	if a > b {
		x = a
	} else {
		x = b
	}
	return x
}
`, "diamond")

	defs := valsOf(fn, "x", vExpr)
	if len(defs) != 3 {
		t.Fatalf("want 3 straight-line defs of x, got %d", len(defs))
	}
	entryBlk := fn.Vals[defs[0]].Block
	thenBlk, elseBlk := fn.Vals[defs[1]].Block, fn.Vals[defs[2]].Block
	phi := onlyPhi(t, fn, "x")
	join := phi.Block
	d := fn.Dom

	// The join merges exactly the two branch definitions.
	if len(phi.Args) != 2 {
		t.Fatalf("want 2 phi args, got %d", len(phi.Args))
	}
	got := map[VID]bool{phi.Args[0].Val: true, phi.Args[1].Val: true}
	if !got[defs[1]] || !got[defs[2]] {
		t.Errorf("phi args %v do not merge the branch defs %v and %v", phi.Args, defs[1], defs[2])
	}

	// Dominance: the branch head dominates everything, the arms dominate
	// only themselves, and the join's idom skips back to the head.
	if d.Idom(join) != entryBlk {
		t.Errorf("idom(join) = %p, want the branch head %p", d.Idom(join), entryBlk)
	}
	for _, blk := range []*Block{thenBlk, elseBlk, join} {
		if !d.Dominates(entryBlk, blk) {
			t.Errorf("branch head must dominate %p", blk)
		}
	}
	if d.Dominates(thenBlk, join) || d.Dominates(elseBlk, join) {
		t.Error("neither arm may dominate the join")
	}
	if d.Dominates(thenBlk, elseBlk) || d.Dominates(elseBlk, thenBlk) {
		t.Error("the arms must not dominate each other")
	}
}

func TestDomLoop(t *testing.T) {
	fn := ssaFor(t, `package p
func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "loop")

	iPhi := onlyPhi(t, fn, "i")
	sPhi := onlyPhi(t, fn, "s")
	head := iPhi.Block
	if sPhi.Block != head {
		t.Fatalf("the phis of i and s must share the loop head")
	}
	inc := valsOf(fn, "i", vCompound)
	add := valsOf(fn, "s", vCompound)
	if len(inc) != 1 || len(add) != 1 {
		t.Fatalf("want one compound def each for i and s, got %d and %d", len(inc), len(add))
	}

	// Each head phi joins the init value with the back-edge compound def.
	wantArgs := func(name string, phi *ssaValue, init, loop VID) {
		if len(phi.Args) != 2 {
			t.Fatalf("%s phi: want 2 args, got %d", name, len(phi.Args))
		}
		got := map[VID]bool{phi.Args[0].Val: true, phi.Args[1].Val: true}
		if !got[init] || !got[loop] {
			t.Errorf("%s phi args %v, want init %v and back edge %v", name, phi.Args, init, loop)
		}
	}
	wantArgs("i", iPhi, valsOf(fn, "i", vExpr)[0], inc[0])
	wantArgs("s", sPhi, valsOf(fn, "s", vExpr)[0], add[0])

	// The compound def reads the phi (Prev links the cycle).
	if fn.Vals[add[0]].Prev != valsOf(fn, "s", vPhi)[0] {
		t.Errorf("s += i must read the head phi, reads %v", fn.Vals[add[0]].Prev)
	}

	d := fn.Dom
	body := fn.Vals[add[0]].Block
	if !d.Dominates(head, body) {
		t.Error("the loop head must dominate the body")
	}
	if d.Dominates(body, head) {
		t.Error("the body must not dominate the head")
	}
}

func TestDomNestedLoop(t *testing.T) {
	fn := ssaFor(t, `package p
func nested(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s++
		}
	}
	return s
}
`, "nested")

	outerHead := onlyPhi(t, fn, "i").Block
	innerHead := onlyPhi(t, fn, "j").Block
	// s is redefined in the innermost block, so it needs a phi at BOTH loop
	// heads — the pruned placement must keep both (s is live everywhere).
	sPhis := valsOf(fn, "s", vPhi)
	if len(sPhis) != 2 {
		t.Fatalf("want 2 phis for s (one per loop head), got %d", len(sPhis))
	}
	heads := map[*Block]bool{fn.Vals[sPhis[0]].Block: true, fn.Vals[sPhis[1]].Block: true}
	if !heads[outerHead] || !heads[innerHead] {
		t.Errorf("s phis must sit at the two loop heads")
	}

	d := fn.Dom
	body := fn.Vals[valsOf(fn, "s", vCompound)[0]].Block
	if !d.Dominates(outerHead, innerHead) || !d.Dominates(innerHead, body) {
		t.Error("dominance must nest: outer head over inner head over body")
	}
	if d.Dominates(innerHead, outerHead) || d.Dominates(body, innerHead) {
		t.Error("dominance must not run backwards through the nest")
	}
	if d.depth[innerHead] <= d.depth[outerHead] {
		t.Errorf("inner head depth %d must exceed outer head depth %d",
			d.depth[innerHead], d.depth[outerHead])
	}
}

// TestDomIrreducible drives the dominator fixpoint over a CFG no structured
// statement produces: two mutually-reachable labeled blocks, each also
// entered straight from the function head, form an irreducible loop with no
// single header. Neither block may dominate the other, both idoms must fall
// back to the branch head, and each needs a phi merging its two entries.
func TestDomIrreducible(t *testing.T) {
	fn := ssaFor(t, `package p
func irr(a, b int) int {
	x := 0
	if a > b {
		goto two
	}
one:
	x++
	if x < b {
		goto two
	}
	return x
two:
	x += 2
	if x < a {
		goto one
	}
	return x
}
`, "irr")

	phis := valsOf(fn, "x", vPhi)
	if len(phis) != 2 {
		t.Fatalf("want a phi in each irreducible-loop block, got %d", len(phis))
	}
	b1, b2 := fn.Vals[phis[0]].Block, fn.Vals[phis[1]].Block
	entryBlk := fn.Vals[valsOf(fn, "x", vExpr)[0]].Block

	d := fn.Dom
	if d.Dominates(b1, b2) || d.Dominates(b2, b1) {
		t.Error("neither block of an irreducible loop may dominate the other")
	}
	if d.Idom(b1) != entryBlk || d.Idom(b2) != entryBlk {
		t.Errorf("both idoms must fall back to the branch head: got %p and %p, want %p",
			d.Idom(b1), d.Idom(b2), entryBlk)
	}
	for _, vid := range phis {
		if n := len(fn.Vals[vid].Args); n != 2 {
			t.Errorf("phi %v: want 2 incoming values, got %d", vid, n)
		}
	}
}

// TestWideningTermination runs the interval fixpoint over a loop whose
// counter has no provable upper bound (the exit test is a disequality, which
// refines nothing upward). Without widening the counter's interval would
// climb forever; the test passes iff buildValueFlow converges and the
// converged fact is the widened [0, +inf].
func TestWideningTermination(t *testing.T) {
	pkg := checkSource(t, `package p
func count(n int) int {
	s := 0
	for i := 0; i != n; i++ {
		s += 2
	}
	return s
}
`)
	fd := funcNamed(t, pkg, "count")
	vf := buildValueFlow(pkg, fd)
	if vf == nil {
		t.Fatal("buildValueFlow returned nil")
	}
	var got *ival
	var gotEnv intervalFact
	vf.walk(func(_ *Block, n ast.Node, env intervalFact) {
		inc, ok := n.(*ast.IncDecStmt)
		if !ok {
			return
		}
		id, ok := inc.X.(*ast.Ident)
		if !ok {
			return
		}
		if vid, ok := vf.ssa.Use[id]; ok {
			if iv, ok := env[vid]; ok {
				got, gotEnv = &iv, env.clone()
			}
		}
	})
	if got == nil {
		t.Fatal("no interval fact for the loop counter at i++")
	}
	if lo, ok := vf.resolveMin(gotEnv, got.Lo, 0); !ok || lo != 0 {
		t.Errorf("counter lower bound: got %+v (resolves to %d, %v), want 0", got.Lo, lo, ok)
	}
	if got.Hi.Inf <= 0 {
		t.Errorf("counter upper bound: got %+v, want widened +inf", got.Hi)
	}
}

// BenchmarkSSABuild measures pruned-SSA construction on a kernel-shaped
// function (nested loops, guards, compound assignments) — the cost the
// value-flow analyzers pay per function before any interval propagation.
func BenchmarkSSABuild(b *testing.B) {
	src := `package p
func kernel(xs []int64, offsets []int64, bound int) int64 {
	best := int64(1 << 62)
	n := len(offsets)
	if bound < n {
		n = bound
	}
	for ci := 0; ci < n; ci++ {
		o := offsets[ci]
		if o < 0 {
			continue
		}
		var acc int64
		for j := 0; j < len(xs); j++ {
			if xs[j] > o {
				acc += xs[j]
			}
		}
		if acc < best {
			best = acc
		}
	}
	return best
}
`
	t := &testing.T{}
	pkg := checkSource(t, src)
	if t.Failed() {
		b.Fatal("checkSource failed")
	}
	fd := funcNamed(t, pkg, "kernel")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildSSA(pkg.Info, fd)
	}
}
