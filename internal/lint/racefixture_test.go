package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRaceFixtures cross-checks the sharedwrite prover against the runtime
// race detector: the fixture patterns the analyzer rejects must actually
// race when executed under `go test -race`, and the patterns it certifies
// must stay green. A static prover whose positive fixtures don't race, or
// whose clean fixtures do, is testing its own model instead of the world.
func TestRaceFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go test -race subprocesses in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	fixture, err := filepath.Abs(filepath.Join("testdata", "src", "sharedwrite"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(pkg string) (string, error) {
		cmd := exec.Command(goTool, "test", "-race", "-count=1", "./"+pkg)
		cmd.Dir = fixture
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := run("racy")
	if err == nil {
		t.Errorf("racy fixtures passed under -race; the rejected patterns should actually race:\n%s", out)
	} else if !strings.Contains(out, "DATA RACE") {
		// A build error or unrelated failure is not a confirmation.
		t.Errorf("racy fixtures failed without a detected race: %v\n%s", err, out)
	}

	out, err = run("clean")
	if err != nil {
		t.Errorf("clean fixtures failed under -race; a certified pattern raced or broke: %v\n%s", err, out)
	}
}
