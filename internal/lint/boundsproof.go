package lint

import (
	"go/ast"
	"go/types"
)

// BoundsProof certifies the DP kernels' indexing: inside every
// //lint:hotpath function, each slice, array or string index — and every
// slice expression — must be provably in bounds from the interval facts the
// value-flow engine derives (dominating guards, loop bounds, length
// equalities). Anything unprovable is reported with its witness interval,
// so the fix is always visible: either add the dominating guard the proof
// needs or bind the untracked length to a local. The hot kernels run
// without bounds-check elimination surprises once this passes — every index
// the analyzer accepts is one the compiler's BCE can in principle drop too.
var BoundsProof = &Analyzer{
	Name: "boundsproof",
	Doc:  "every index in a //lint:hotpath function must be provably in bounds from dominating guards",
	Run:  runBoundsProof,
}

func runBoundsProof(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		fns, _ := directiveFuncs(f, isHotpathDirective)
		for _, fd := range fns {
			if fd.Body == nil {
				continue
			}
			vf := buildValueFlow(pass.Pkg, fd)
			checkBounds(pass, vf)
		}
	}
}

func checkBounds(pass *Pass, vf *valueFlow) {
	vf.walk(func(_ *Block, n ast.Node, env intervalFact) {
		inspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.IndexExpr:
				vf.checkIndex(pass, m, env)
			case *ast.SliceExpr:
				vf.checkSlice(pass, m, env)
			}
			return true
		})
		if ds, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(ds.Call, func(m ast.Node) bool {
				if ie, ok := m.(*ast.IndexExpr); ok {
					vf.checkIndex(pass, ie, env)
				}
				return true
			})
		}
	})
}

// indexLimit returns the inclusive upper limit term for indexing the base
// expression (len−1 for slices and strings, N−1 for arrays), with ok=false
// when the base kind needs no check (maps) and trackable=false when the
// length cannot be named (untracked slice base).
func (vf *valueFlow) indexLimit(env intervalFact, base ast.Expr) (limit ibound, trackable, ok bool) {
	tv, found := vf.pkg.Info.Types[base]
	if !found || tv.Type == nil || tv.IsType() {
		return ibound{}, false, false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		if lt, tok := vf.lenTermOf(env, base); tok {
			return lt.add(-1), true, true
		}
		return ibound{}, false, true
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return ibound{}, false, false
		}
		if lt, tok := vf.lenTermOf(env, base); tok {
			return lt.add(-1), true, true
		}
		return ibound{}, false, true
	case *types.Array:
		return constBound(t.Len() - 1), true, true
	case *types.Pointer:
		if arr, aok := t.Elem().Underlying().(*types.Array); aok {
			return constBound(arr.Len() - 1), true, true
		}
	}
	return ibound{}, false, false
}

func (vf *valueFlow) checkIndex(pass *Pass, e *ast.IndexExpr, env intervalFact) {
	limit, trackable, ok := vf.indexLimit(env, e.X)
	if !ok {
		return
	}
	fname := vf.fd.Name.Name
	if !trackable {
		pass.Reportf(e.Pos(), "hot path %s indexes a value whose length the prover cannot track; bind the slice to a local first", fname)
		return
	}
	iv := vf.evalExpr(env, e.Index)
	loOK := vf.cmpLE(env, constBound(0), iv.Lo)
	hiOK := vf.cmpLE(env, iv.Hi, limit)
	if loOK && hiOK {
		return
	}
	pass.Reportf(e.Pos(), "hot path %s: cannot prove index in bounds: value in %s, need [0, %s]",
		fname, vf.renderIval(iv), vf.render(limit))
}

func (vf *valueFlow) checkSlice(pass *Pass, e *ast.SliceExpr, env intervalFact) {
	limit, trackable, ok := vf.indexLimit(env, e.X)
	if !ok {
		return
	}
	fname := vf.fd.Name.Name
	if !trackable {
		pass.Reportf(e.Pos(), "hot path %s slices a value whose length the prover cannot track; bind the slice to a local first", fname)
		return
	}
	// Slicing may go one past the last element.
	lenTerm := limit.add(1)
	lowIv := degenerate(constBound(0))
	if e.Low != nil {
		lowIv = vf.evalExpr(env, e.Low)
	}
	if !vf.cmpLE(env, constBound(0), lowIv.Lo) {
		pass.Reportf(e.Pos(), "hot path %s: cannot prove slice lower bound non-negative: value in %s",
			fname, vf.renderIval(lowIv))
		return
	}
	// Each upper expression must stay within len (≤ cap, so this is
	// conservative but sound); the lower bound must not pass the smallest
	// present upper expression.
	uppers := []ast.Expr{e.High, e.Max}
	lowChecked := false
	for _, u := range uppers {
		if u == nil {
			continue
		}
		uIv := vf.evalExpr(env, u)
		if !vf.cmpLE(env, uIv.Hi, lenTerm) {
			pass.Reportf(e.Pos(), "hot path %s: cannot prove slice bound within len: value in %s, need at most %s",
				fname, vf.renderIval(uIv), vf.render(lenTerm))
			return
		}
		if !lowChecked {
			lowChecked = true
			if !vf.cmpLE(env, lowIv.Hi, uIv.Lo) {
				pass.Reportf(e.Pos(), "hot path %s: cannot prove slice bounds ordered: low in %s, high in %s",
					fname, vf.renderIval(lowIv), vf.renderIval(uIv))
				return
			}
		}
	}
	if !lowChecked && !vf.cmpLE(env, lowIv.Hi, lenTerm) {
		pass.Reportf(e.Pos(), "hot path %s: cannot prove slice lower bound within len: value in %s, need at most %s",
			fname, vf.renderIval(lowIv), vf.render(lenTerm))
	}
}
