package lint

import (
	"go/ast"
	"go/types"
)

// LeakyGo hunts goroutine leaks interprocedurally: any go statement
// reachable from an exported function of a library package must have a way
// to terminate — either its body can run to completion (the CFG exit is
// reachable), or it blocks on something the outside world can fire: a
// ctx.Done, a channel receive or range (closing the channel unblocks it), a
// select with at least one case. A goroutine that spins forever with none
// of these outlives every solve call that spawned it, and under the
// paper's repeated-bisection driver that is an unbounded leak. The check
// follows static calls through the module call graph, so an exported
// entry point is accountable for goroutines its helpers start.
var LeakyGo = &Analyzer{
	Name:      "leakygo",
	Doc:       "goroutines reachable from exported functions must have a termination path (return, ctx.Done, channel close)",
	RunModule: runLeakyGo,
}

func runLeakyGo(pass *ModulePass) {
	mod := pass.Mod
	graph := BuildCallGraph(mod)

	var roots []*types.Func
	for _, n := range graph.SortedNodes() {
		if n.Pkg.IsMain() || !n.Decl.Name.IsExported() {
			continue
		}
		roots = append(roots, n.Fn)
	}
	witness := graph.Reachable(roots)

	for _, n := range graph.SortedNodes() {
		root := witness[n.Fn]
		if root == nil || n.Decl.Body == nil {
			continue
		}
		pkg := n.Pkg
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			g, ok := nd.(*ast.GoStmt)
			if !ok {
				return true
			}
			bodyPkg, body := goroutineBody(mod, pkg, g)
			if body == nil {
				return true // dynamic target: nothing to analyze
			}
			if terminates(mod, bodyPkg, body, 3) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine can never terminate: no path to return and no ctx.Done, channel receive, or select to unblock it (reachable from exported %s)",
				root.Name())
			return true
		})
	}
}

// goroutineBody resolves the body the go statement runs: a function
// literal's own body, or the declaration of a statically-resolved
// module function. Dynamic targets (interface methods, function-typed
// values) return nil.
func goroutineBody(mod *Module, pkg *Package, g *ast.GoStmt) (*Package, *ast.BlockStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return pkg, lit.Body
	}
	fn := staticCallee(pkg, g.Call)
	if fn == nil {
		return nil, nil
	}
	declPkg, decl := mod.FuncDecl(fn)
	if decl == nil || decl.Body == nil {
		return nil, nil
	}
	return declPkg, decl.Body
}

// terminates reports whether a goroutine body has a termination path:
// the CFG exit is reachable, or the body (or a module callee, up to the
// given call depth) blocks on something that can be fired from outside —
// a channel receive, a range over a channel, a select with at least one
// case, or ctx.Done. An empty select{} blocks forever and is NOT a
// termination path.
func terminates(mod *Module, pkg *Package, body *ast.BlockStmt, depth int) bool {
	cfg := BuildCFG(body)
	if cfg.Reachable()[cfg.Exit] {
		return true
	}
	return blocksOnSignal(mod, pkg, body, depth)
}

// blocksOnSignal is the signal half of terminates: does this body (or its
// module callees, depth-limited) contain a channel receive, channel range,
// non-empty select, or ctx.Done?
func blocksOnSignal(mod *Module, pkg *Package, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			if n.Body != nil && len(n.Body.List) > 0 {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Done" && isContextExpr(pkg, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if depth > 0 {
				if callee := staticCallee(pkg, n); callee != nil && moduleLocal(mod, callee) {
					if cpkg, cdecl := mod.FuncDecl(callee); cdecl != nil && cdecl.Body != nil {
						if blocksOnSignal(mod, cpkg, cdecl.Body, depth-1) {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// isContextExpr reports whether the expression has type context.Context.
func isContextExpr(pkg *Package, e ast.Expr) bool {
	t, ok := pkg.Info.Types[e]
	if !ok || t.Type == nil {
		return false
	}
	named, ok := t.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
