package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedPanic forbids undocumented panics in library packages: a panic that
// crosses an API boundary tears down every goroutine of a serving process,
// so it is reserved for validation/invariant helpers that document the
// contract. Concretely, a panic call is allowed only when the enclosing
// function's doc comment mentions it (e.g. "panics if n <= 0"); package
// main and the examples are exempt.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "library panics are allowed only in functions whose doc comment documents the panic contract",
	Run:  runNakedPanic,
}

func runNakedPanic(p *Pass) {
	if p.Pkg.IsMain() || strings.HasPrefix(p.Pkg.RelPath, "examples") {
		return
	}
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if docMentionsPanic(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				ident, ok := call.Fun.(*ast.Ident)
				if !ok || ident.Name != "panic" {
					return true
				}
				if _, isBuiltin := p.Pkg.Info.Uses[ident].(*types.Builtin); !isBuiltin {
					return true
				}
				p.Reportf(call.Pos(),
					"undocumented panic in library function %s: return an error, or document the panic contract in the doc comment", fd.Name.Name)
				return true
			})
		}
	}
}

// docMentionsPanic reports whether the function's doc comment documents a
// panic contract ("panics", "re-panics", "Panic" — any mention counts).
func docMentionsPanic(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}
