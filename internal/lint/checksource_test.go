package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/types"
	"testing"
)

// checkSource type-checks one file of source and returns a minimal Package
// for driving the per-function engines (CFG, SSA, value flow) in tests.
func checkSource(t *testing.T, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(sharedFset, t.Name()+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("probe", sharedFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: "probe", Files: []*ast.File{f}, Types: pkg, Info: info}
}

// funcNamed finds a function declaration by name in the package's sole file.
func funcNamed(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, decl := range pkg.Files[0].Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q in probe source", name)
	return nil
}
