package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc keeps the DP inner loops allocation-free. Functions whose doc
// comment carries a //lint:hotpath directive (the layer-fill entry
// computation, the SWAR kernel, the odometer decoders) run millions of
// times per bisection probe; a growing append or an interface boxing in
// one of them shows up directly in the benchmarks the CI gate watches.
// Allocation sites that only allocate when they escape — composite
// literals, make, new, closures — are the escape analyzer's job; hotalloc
// keeps the two checks value-flow cannot improve on: append may grow its
// backing array regardless of escaping, and interface boxing allocates at
// the conversion itself. Both checks skip cold error-bail-out blocks: an
// allocation on the `return fmt.Errorf(...)` path costs nothing per hot
// iteration.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//lint:hotpath functions must not call append or box into interfaces on the hot path",
	Run:  runHotAlloc,
}

const hotpathPrefix = "//lint:hotpath"

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		fns, attached := directiveFuncs(f, isHotpathDirective)
		for _, fd := range fns {
			if fd.Body != nil {
				checkHotBody(pass, fd)
			}
		}
		reportStray(pass, f, isHotpathDirective, attached, "//lint:hotpath")
	}
}

func isHotpathDirective(text string) bool {
	if !strings.HasPrefix(text, hotpathPrefix) {
		return false
	}
	rest := text[len(hotpathPrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// checkHotBody scans the function's warm blocks (everything except the
// cold error bail-outs) for allocating calls.
func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	cfg := BuildCFG(fd.Body)
	dom := BuildDom(cfg)
	cold := coldBlocks(pass.Pkg.Info, fd, cfg, dom)
	name := fd.Name.Name
	scan := func(n ast.Node) {
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				checkHotCall(pass, pass.Pkg, name, call)
			}
			return true
		})
	}
	for _, b := range dom.rpo {
		if cold[b] {
			continue
		}
		for _, n := range b.Nodes {
			scan(n)
			if ds, ok := n.(*ast.DeferStmt); ok {
				// Deferred arguments evaluate (and box) at the defer
				// statement, on the hot path.
				scan(ds.Call)
			}
		}
	}
}

func checkHotCall(pass *Pass, pkg *Package, name string, call *ast.CallExpr) {
	// Builtins: append may grow the backing array even when nothing
	// escapes.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				pass.Reportf(call.Pos(), "hot path %s calls append, which may grow the backing array; size the slice up front", name)
			}
			return
		}
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Conversion to an interface type boxes the operand.
	if tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := pkg.Info.Types[call.Args[0]]; ok && at.Type != nil && !types.IsInterface(at.Type) {
				pass.Reportf(call.Pos(), "hot path %s converts a concrete value to an interface, which boxes (allocates)", name)
			}
		}
		return
	}
	// Concrete argument passed to an interface parameter boxes too — this
	// is how fmt.Sprintf sneaks allocations into a kernel.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		if b, ok := at.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path %s boxes a concrete argument into an interface parameter (allocates)", name)
	}
}
