package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc keeps the DP inner loops allocation-free. Functions whose doc
// comment carries a //lint:hotpath directive (the layer-fill entry
// computation, the SWAR kernel, the odometer decoders) run millions of
// times per bisection probe; a single composite literal, growing append,
// closure, or interface boxing in one of them shows up directly in the
// benchmarks the CI gate watches. The directive makes the contract
// machine-checked instead of a comment nobody re-verifies.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//lint:hotpath functions must not allocate: no composite literals, make, append, closures, or interface boxing",
	Run:  runHotAlloc,
}

const hotpathPrefix = "//lint:hotpath"

func runHotAlloc(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		// Directives attached to function declarations mark hot paths;
		// any other placement is dead weight and flagged as such.
		attached := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			hot := false
			for _, c := range fd.Doc.List {
				if isHotpathDirective(c.Text) {
					attached[c] = true
					hot = true
				}
			}
			if hot && fd.Body != nil {
				checkHotBody(pass, fd)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isHotpathDirective(c.Text) && !attached[c] {
					pass.Reportf(c.Pos(), "stray //lint:hotpath: the directive must be part of a function declaration's doc comment")
				}
			}
		}
	}
}

func isHotpathDirective(text string) bool {
	if !strings.HasPrefix(text, hotpathPrefix) {
		return false
	}
	rest := text[len(hotpathPrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s builds a closure, which allocates; hoist it out of the hot function", name)
			return false // its body is not on the hot path contract
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "hot path %s builds a composite literal, which allocates; reuse a caller-provided buffer", name)
		case *ast.CallExpr:
			checkHotCall(pass, pkg, name, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, pkg *Package, name string, call *ast.CallExpr) {
	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				pass.Reportf(call.Pos(), "hot path %s calls append, which may grow the backing array; size the slice up front", name)
			case "make", "new":
				pass.Reportf(call.Pos(), "hot path %s calls %s, which allocates; hoist the allocation to the caller", name, id.Name)
			}
			return
		}
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Conversion to an interface type boxes the operand.
	if tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := pkg.Info.Types[call.Args[0]]; ok && at.Type != nil && !types.IsInterface(at.Type) {
				pass.Reportf(call.Pos(), "hot path %s converts a concrete value to an interface, which boxes (allocates)", name)
			}
		}
		return
	}
	// Concrete argument passed to an interface parameter boxes too — this
	// is how fmt.Sprintf sneaks allocations into a kernel.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		if b, ok := at.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path %s boxes a concrete argument into an interface parameter (allocates)", name)
	}
}
