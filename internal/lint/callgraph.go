package lint

// A module-local call graph over the loader's type-checked packages: one
// node per declared function or method, edges for every statically resolved
// reference to another module function — calls, method values and function
// values alike (a function whose value escapes may be called, so
// reachability must include it). Dynamic dispatch through interfaces and
// function-typed parameters is not resolved; the interprocedural analyzers
// built on top (leakygo's exported-reachability, lockorder's acquisition
// summaries, ctxfirst's blocking method values) are deliberately
// under-approximating linters, not verifiers.

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// CallNode is one declared function or method of the module.
type CallNode struct {
	// Fn is the function's type object (the graph key).
	Fn *types.Func
	// Pkg is the package declaring it and Decl its syntax. References
	// inside nested function literals are attributed to the enclosing
	// declaration (the literal runs with its closure, but it is reachable
	// exactly when the declaration is).
	Pkg  *Package
	Decl *ast.FuncDecl
	// Callees lists the module-local functions this one references,
	// deduplicated, in source order of first reference.
	Callees []*types.Func
}

// CallGraph is the module-local call graph; build with BuildCallGraph.
type CallGraph struct {
	// Nodes maps every declared module function to its node.
	Nodes map[*types.Func]*CallNode
}

// BuildCallGraph constructs the call graph of a loaded module.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{Fn: fn, Pkg: pkg, Decl: fd}
				if fd.Body != nil {
					seen := map[*types.Func]bool{}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						ident, ok := n.(*ast.Ident)
						if !ok {
							return true
						}
						callee, ok := pkg.Info.Uses[ident].(*types.Func)
						if !ok || !moduleLocal(mod, callee) || seen[callee] {
							return true
						}
						seen[callee] = true
						node.Callees = append(node.Callees, callee)
						return true
					})
				}
				g.Nodes[fn] = node
			}
		}
	}
	return g
}

// moduleLocal reports whether the function is declared in the module under
// analysis (as opposed to the standard library).
func moduleLocal(mod *Module, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == mod.Path || len(path) > len(mod.Path) && path[:len(mod.Path)+1] == mod.Path+"/"
}

// Reachable returns every function reachable from the roots along call/
// reference edges (roots included), mapped to a witness root that reaches
// it — the name the diagnostics cite.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]*types.Func {
	witness := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := witness[r]; ok {
			continue
		}
		witness[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, callee := range node.Callees {
			if _, ok := witness[callee]; ok {
				continue
			}
			witness[callee] = witness[fn]
			queue = append(queue, callee)
		}
	}
	return witness
}

// SortedNodes returns the graph's nodes ordered by source position, the
// stable iteration order every module analyzer reports in.
func (g *CallGraph) SortedNodes() []*CallNode {
	nodes := make([]*CallNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	return nodes
}

// funcIndex lazily maps every declared module function to its package and
// syntax, for analyzers that chase a types.Func across package boundaries
// (ctxfirst's blocking method values, leakygo's goroutine bodies) without
// paying for a full call graph.
type funcIndex struct {
	once sync.Once
	m    map[*types.Func]funcSite
}

type funcSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// FuncDecl resolves a function object to its declaring package and syntax,
// or (nil, nil) when fn is not a declared module function (stdlib, or a
// function literal).
func (m *Module) FuncDecl(fn *types.Func) (*Package, *ast.FuncDecl) {
	m.funcs.once.Do(func() {
		m.funcs.m = map[*types.Func]funcSite{}
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						m.funcs.m[obj] = funcSite{pkg: pkg, decl: fd}
					}
				}
			}
		}
	})
	site := m.funcs.m[fn]
	return site.pkg, site.decl
}
