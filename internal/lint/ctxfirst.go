package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxScopedPackages are the solver-entry packages where every blocking
// exported function must be cancellable: the facade, the bisection driver,
// the DP fills and the branch-and-bound solvers.
var ctxScopedPackages = map[string]bool{
	"solver":         true,
	"internal/core":  true,
	"internal/dp":    true,
	"internal/exact": true,
}

// CtxFirst enforces the cancellation contract established in PR 2: solver
// entry points thread context.Context from the facade down to the innermost
// fill loops. Three rules:
//
//  1. in the scoped packages, a context.Context parameter must be the
//     first parameter (the Go convention every caller site relies on);
//  2. in the scoped packages, an exported function whose body uses
//     blocking constructs (go statements, selects, channel operations,
//     sync.WaitGroup.Wait) must accept a context.Context;
//  3. context.Background() and context.TODO() are forbidden outside
//     package main, examples and tests — library code must propagate its
//     caller's context, never mint a root one.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "blocking solver entry points take ctx first; library code never mints root contexts",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	scoped := ctxScopedPackages[p.Pkg.RelPath]
	libCode := !p.Pkg.IsMain() && !strings.HasPrefix(p.Pkg.RelPath, "examples")
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			if scoped {
				checkCtxPosition(p, fd)
				if fd.Name.IsExported() && fd.Body != nil &&
					!hasContextParam(p, fd) && usesBlockingConstructs(p, fd.Body) {
					p.Reportf(fd.Name.Pos(),
						"exported %s uses blocking constructs but takes no context.Context; blocking entry points must be cancellable", fd.Name.Name)
				}
			}
		}
		if libCode {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := contextRootCall(p, call); name != "" {
					p.Reportf(call.Pos(),
						"context.%s() in library code: propagate the caller's context instead of minting a root one", name)
				}
				return true
			})
		}
	}
}

// checkCtxPosition flags context.Context parameters that are not first.
func checkCtxPosition(p *Pass, fd *ast.FuncDecl) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		isCtx := isContextType(p, field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos != 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
		}
		pos += n
	}
}

// hasContextParam reports whether fd takes a context.Context anywhere.
func hasContextParam(p *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(p, field.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesBlockingConstructs reports whether the body contains a go statement,
// a select, a channel send/receive, a range over a channel, or a
// sync.WaitGroup Wait call.
func usesBlockingConstructs(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupWait(p, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupWait reports whether the call is <sync.WaitGroup>.Wait().
func isWaitGroupWait(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	tv, ok := p.Pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// contextRootCall returns "Background" or "TODO" when the call mints a root
// context, "" otherwise.
func contextRootCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}
