package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxScopedPackages are the solver-entry packages where every blocking
// exported function must be cancellable: the facade, the bisection driver,
// the DP fills and the branch-and-bound solvers.
var ctxScopedPackages = map[string]bool{
	"solver":         true,
	"internal/core":  true,
	"internal/dp":    true,
	"internal/exact": true,
}

// CtxFirst enforces the cancellation contract established in PR 2: solver
// entry points thread context.Context from the facade down to the innermost
// fill loops. Three rules:
//
//  1. in the scoped packages, a context.Context parameter must be the
//     first parameter (the Go convention every caller site relies on);
//  2. in the scoped packages, an exported function whose body uses
//     blocking constructs (go statements, selects, channel operations,
//     sync.WaitGroup.Wait) must accept a context.Context;
//  3. context.Background() and context.TODO() are forbidden outside
//     package main, examples and tests — library code must propagate its
//     caller's context, never mint a root one.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "blocking solver entry points take ctx first; library code never mints root contexts",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	scoped := ctxScopedPackages[p.Pkg.RelPath]
	libCode := !p.Pkg.IsMain() && !strings.HasPrefix(p.Pkg.RelPath, "examples")
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			if scoped {
				checkCtxPosition(p, fd)
				if fd.Name.IsExported() && fd.Body != nil &&
					!hasContextParam(p, fd) && usesBlockingConstructs(p, fd.Body) {
					p.Reportf(fd.Name.Pos(),
						"exported %s uses blocking constructs but takes no context.Context; blocking entry points must be cancellable", fd.Name.Name)
				}
			}
		}
		if libCode {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := contextRootCall(p, call); name != "" {
					p.Reportf(call.Pos(),
						"context.%s() in library code: propagate the caller's context instead of minting a root one", name)
				}
				return true
			})
		}
	}
}

// checkCtxPosition flags context.Context parameters that are not first, and
// variadic context parameters (…context.Context), which break the one-ctx
// convention and do not satisfy the cancellability requirement.
func checkCtxPosition(p *Pass, fd *ast.FuncDecl) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if ell, ok := field.Type.(*ast.Ellipsis); ok {
			if isContextType(p, ell.Elt) {
				p.Reportf(field.Pos(), "context.Context must not be variadic in %s; take exactly one ctx as the first parameter", fd.Name.Name)
			}
			pos += n
			continue
		}
		if isContextType(p, field.Type) && pos != 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
		}
		pos += n
	}
}

// hasContextParam reports whether fd takes a context.Context anywhere. A
// variadic …context.Context does not count: callers can pass zero of them,
// so the function is not actually cancellable.
func hasContextParam(p *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if _, variadic := field.Type.(*ast.Ellipsis); variadic {
			continue
		}
		if isContextType(p, field.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesBlockingConstructs reports whether the body blocks: directly, or by
// taking a method value of a module function that blocks (handing
// pool.ForWorker to a helper blocks when the helper invokes it, so the
// exported wrapper must still be cancellable).
func usesBlockingConstructs(p *Pass, body *ast.BlockStmt) bool {
	return blockingBody(p.Mod, p.Pkg, body, true)
}

// blockingBody reports whether the body contains a go statement, a select,
// a channel send/receive, a range over a channel, or a sync.WaitGroup Wait
// call. When followRefs is set, an uncalled reference to a module function
// or method (a method value or function value) whose own body blocks
// directly also counts — one level deep, not transitively, so the check
// stays a linter and not a whole-program escape analysis.
func blockingBody(mod *Module, pkg *Package, body *ast.BlockStmt, followRefs bool) bool {
	// called holds every expression in call position, so references can be
	// told apart from invocations; selSels marks selector Sel idents, which
	// are handled at the enclosing SelectorExpr.
	called := map[ast.Expr]bool{}
	selSels := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			called[ast.Unparen(n.Fun)] = true
		case *ast.SelectorExpr:
			selSels[n.Sel] = true
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupWait(pkg, n) {
				found = true
			}
		case *ast.SelectorExpr:
			if !followRefs || called[n] {
				break
			}
			if n.Sel.Name == "Wait" && isWaitGroupExpr(pkg, n.X) {
				found = true // wg.Wait as a method value
				break
			}
			if fn, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok && blockingFuncRef(mod, fn) {
				found = true
			}
		case *ast.Ident:
			if !followRefs || called[n] || selSels[n] {
				break
			}
			if fn, ok := pkg.Info.Uses[n].(*types.Func); ok && blockingFuncRef(mod, fn) {
				found = true
			}
		}
		return !found
	})
	return found
}

// blockingFuncRef reports whether fn is a module function whose own body
// blocks directly.
func blockingFuncRef(mod *Module, fn *types.Func) bool {
	if !moduleLocal(mod, fn) {
		return false
	}
	declPkg, decl := mod.FuncDecl(fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	return blockingBody(mod, declPkg, decl.Body, false)
}

// isWaitGroupWait reports whether the call is <sync.WaitGroup>.Wait().
func isWaitGroupWait(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	return isWaitGroupExpr(pkg, sel.X)
}

// isWaitGroupExpr reports whether the expression is a sync.WaitGroup (or
// pointer to one).
func isWaitGroupExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// contextRootCall returns "Background" or "TODO" when the call mints a root
// context, "" otherwise.
func contextRootCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}
