// Package lint is the repository's static-analysis framework: a module
// loader, per-function control-flow graphs with a generic dataflow engine,
// a module-local call graph, and a set of analyzers that machine-check the
// concurrency and determinism invariants the scheduler's correctness
// depends on (see ALGORITHM.md §9/§11 and cmd/schedlint).
//
// The framework is built on the standard library only — go/ast, go/build,
// go/parser and go/types — honoring the repository's no-external-deps rule.
// Stdlib imports are type-checked from GOROOT source and cached process-wide,
// so repeated runs (and the testdata-driven tests) pay the cost once.
// Loading fans out on internal/par.Pool: directory scanning and parsing are
// embarrassingly parallel, and type-checking proceeds in topological waves
// of the module-local import graph, every package of a wave checked
// concurrently against the completed results of earlier waves.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/par"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the full import path ("repro/internal/dp").
	Path string
	// RelPath is the path relative to the module root ("internal/dp";
	// "" for the module's root package).
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Files are the non-test files, parsed with comments and type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files (in-package and external),
	// parsed with comments but not type-checked. Only analyzers that are
	// purely syntactic (IncludeTests) see them.
	TestFiles []*ast.File
	// Types and Info hold the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// IsMain reports whether the package is a command (package main).
func (p *Package) IsMain() bool { return p.Types != nil && p.Types.Name() == "main" }

// Module is a loaded, fully type-checked module.
type Module struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset maps positions for every parsed file.
	Fset *token.FileSet
	// Packages lists the module's packages sorted by RelPath.
	Packages []*Package

	// funcs is the lazy function-declaration index behind FuncDecl.
	funcs funcIndex
}

// sharedFset is the process-wide file set: module files and stdlib sources
// live in one set so types.Object positions stay meaningful regardless of
// which load produced them. token.FileSet is safe for concurrent use.
var sharedFset = token.NewFileSet()

// stdlib package cache, shared across LoadModule calls (the testdata tests
// load many small modules that all import sync/context/fmt).
var (
	stdMu   sync.Mutex
	stdPkgs = map[string]*types.Package{}
)

// LoadModule loads, parses and type-checks every package under root
// (skipping testdata, vendor, hidden and underscore directories) on a
// single goroutine. The module path is read from root's go.mod. Type errors
// are hard errors: the analyzers assume a compiling tree.
func LoadModule(root string) (*Module, error) {
	return LoadModuleParallel(root, 1)
}

// rawPkg is one package directory after the scan/parse phase, before
// type-checking.
type rawPkg struct {
	path, rel, dir string
	files          []*ast.File
	testFiles      []*ast.File
	imports        []string // module-local import paths of the non-test files
	empty          bool     // directory with only ignored files
	err            error
}

// LoadModuleParallel is LoadModule with the scan/parse and type-check
// phases fanned out over workers goroutines of an internal/par.Pool
// (workers < 1 selects GOMAXPROCS, 1 keeps everything on the caller).
// Parsing is per-directory independent; type-checking runs in topological
// waves of the module-local import graph, so every import a checker
// resolves is already complete. The resulting Module is identical to a
// sequential load.
func LoadModuleParallel(root string, workers int) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	workers = par.Normalize(workers)
	var pool *par.Pool
	if workers > 1 && len(dirs) > 1 {
		pool = par.NewPool(workers)
		defer pool.Close()
	}

	// Phase 1: scan and parse every package directory independently.
	ctxt := build.Default
	raws := make([]rawPkg, len(dirs))
	forEachIdx(pool, len(dirs), func(i int) {
		raws[i] = scanAndParse(&ctxt, root, modPath, dirs[i])
	})
	for i := range raws {
		if raws[i].err != nil {
			return nil, fmt.Errorf("%s: %w", raws[i].path, raws[i].err)
		}
	}

	// Phase 2: type-check in topological waves of the module-local import
	// graph. Kahn's algorithm over the package set; a wave's packages only
	// import completed ones, so they can check concurrently.
	byPath := make(map[string]int, len(raws))
	for i := range raws {
		byPath[raws[i].path] = i
	}
	indeg := make([]int, len(raws))
	dependents := make([][]int, len(raws))
	for i := range raws {
		for _, imp := range raws[i].imports {
			if j, ok := byPath[imp]; ok {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}
	mod := &Module{Root: root, Path: modPath, Fset: sharedFset}
	imp := &waveImporter{modPath: modPath, pkgs: make(map[string]*Package, len(raws))}
	var wave []int
	for i := range raws {
		if indeg[i] == 0 {
			wave = append(wave, i)
		}
	}
	checked := 0
	sizes := checkerSizes()
	for len(wave) > 0 {
		errs := make([]error, len(wave))
		pkgs := make([]*Package, len(wave))
		cur := wave
		forEachIdx(pool, len(cur), func(k int) {
			pkgs[k], errs[k] = typeCheck(&raws[cur[k]], imp, sizes)
		})
		for k := range cur {
			if errs[k] != nil {
				return nil, fmt.Errorf("%s: %w", raws[cur[k]].path, errs[k])
			}
		}
		imp.mu.Lock()
		for k, p := range pkgs {
			imp.pkgs[raws[cur[k]].path] = p
		}
		imp.mu.Unlock()
		checked += len(cur)
		wave = wave[:0]
		for _, i := range cur {
			for _, dep := range dependents[i] {
				if indeg[dep]--; indeg[dep] == 0 {
					wave = append(wave, dep)
				}
			}
		}
		sort.Ints(wave)
	}
	if checked != len(raws) {
		return nil, fmt.Errorf("import cycle among the module's packages")
	}
	for _, p := range imp.pkgs {
		mod.Packages = append(mod.Packages, p)
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].RelPath < mod.Packages[j].RelPath })
	return mod, nil
}

// forEachIdx runs body(i) for every i in [0, n), fanning out on the pool
// when one is available. Bodies communicate results through index-addressed
// slots, so the parallel and inline paths are indistinguishable.
func forEachIdx(pool *par.Pool, n int, body func(i int)) {
	if pool == nil || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	pool.For(n, par.Dynamic, body)
}

// scanAndParse resolves one package directory and parses its files (tests
// included, with comments). Build-constraint-empty directories come back
// with empty set; all other failures land in err.
func scanAndParse(ctxt *build.Context, root, modPath, dir string) rawPkg {
	rel, _ := filepath.Rel(root, dir)
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := modPath
	if rel != "" {
		path = modPath + "/" + rel
	}
	r := rawPkg{path: path, rel: rel, dir: dir}
	bp, err := ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			r.empty = true
			return r
		}
		r.err = err
		return r
	}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			r.err = err
			return r
		}
		r.files = append(r.files, f)
	}
	for _, name := range append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...) {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			r.err = err
			return r
		}
		r.testFiles = append(r.testFiles, f)
	}
	for _, dep := range bp.Imports {
		if dep == modPath || strings.HasPrefix(dep, modPath+"/") {
			r.imports = append(r.imports, dep)
		}
	}
	return r
}

// typeCheck checks one parsed package against the completed packages of
// earlier waves.
func typeCheck(r *rawPkg, imp *waveImporter, sizes types.Sizes) (*Package, error) {
	p := &Package{Path: r.path, RelPath: r.rel, Dir: r.dir, Files: r.files, TestFiles: r.testFiles}
	if r.empty {
		return p, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp, Sizes: sizes, FakeImportC: true}
	tpkg, err := conf.Check(r.path, sharedFset, r.files, info)
	if err != nil {
		return nil, err
	}
	p.Types = tpkg
	p.Info = info
	return p, nil
}

// checkerSizes returns the type sizes for the build platform.
func checkerSizes() types.Sizes {
	sizes := types.SizesFor(build.Default.Compiler, build.Default.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	return sizes
}

// waveImporter implements types.Importer during wave checking: module-local
// paths resolve against the completed packages of earlier waves (guarded by
// mu, since a wave's checkers run concurrently), everything else is a
// standard-library package from GOROOT source.
type waveImporter struct {
	modPath string
	mu      sync.Mutex
	pkgs    map[string]*Package
}

func (w *waveImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == w.modPath || strings.HasPrefix(path, w.modPath+"/") {
		w.mu.Lock()
		p := w.pkgs[path]
		w.mu.Unlock()
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("module package %q not available (missing directory or import cycle)", path)
		}
		return p.Types, nil
	}
	return stdImport(path)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// packageDirs returns every directory under root that contains .go files,
// skipping testdata, vendor, hidden and underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// stdImporter adapts stdImport to types.Importer for checking stdlib
// packages (which only ever import other stdlib packages).
type stdImporter struct{}

func (stdImporter) Import(path string) (*types.Package, error) { return stdImport(path) }

// stdImport type-checks a standard-library package from GOROOT source,
// with a process-wide cache. Comments are not kept and no Info is built:
// only the type objects are needed for cross-package resolution.
func stdImport(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImportLocked(path, map[string]bool{})
}

func stdImportLocked(path string, loading map[string]bool) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := stdPkgs[path]; ok {
		return p, nil
	}
	if loading[path] {
		return nil, fmt.Errorf("std import cycle through %s", path)
	}
	loading[path] = true
	defer delete(loading, path)

	goroot := build.Default.GOROOT
	dir := filepath.Join(goroot, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
		if _, verr := os.Stat(vdir); verr != nil {
			return nil, fmt.Errorf("cannot find stdlib package %q", path)
		}
		dir = vdir
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return stdImportLocked(p, loading) }),
		Sizes:       checkerSizes(),
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, sharedFset, files, nil)
	if err != nil {
		return nil, err
	}
	stdPkgs[path] = tpkg
	return tpkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
