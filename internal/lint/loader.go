// Package lint is the repository's static-analysis framework: a module
// loader and a set of analyzers that machine-check the concurrency and
// determinism invariants the scheduler's correctness depends on (see
// ALGORITHM.md §9 and cmd/schedlint).
//
// The framework is built on the standard library only — go/ast, go/build,
// go/parser and go/types — honoring the repository's no-external-deps rule.
// Stdlib imports are type-checked from GOROOT source and cached process-wide,
// so repeated runs (and the testdata-driven tests) pay the cost once.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the full import path ("repro/internal/dp").
	Path string
	// RelPath is the path relative to the module root ("internal/dp";
	// "" for the module's root package).
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Files are the non-test files, parsed with comments and type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files (in-package and external),
	// parsed with comments but not type-checked. Only analyzers that are
	// purely syntactic (IncludeTests) see them.
	TestFiles []*ast.File
	// Types and Info hold the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// IsMain reports whether the package is a command (package main).
func (p *Package) IsMain() bool { return p.Types != nil && p.Types.Name() == "main" }

// Module is a loaded, fully type-checked module.
type Module struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset maps positions for every parsed file.
	Fset *token.FileSet
	// Packages lists the module's packages sorted by RelPath.
	Packages []*Package
}

// sharedFset is the process-wide file set: module files and stdlib sources
// live in one set so types.Object positions stay meaningful regardless of
// which load produced them. token.FileSet is safe for concurrent use.
var sharedFset = token.NewFileSet()

// stdlib package cache, shared across LoadModule calls (the testdata tests
// load many small modules that all import sync/context/fmt).
var (
	stdMu   sync.Mutex
	stdPkgs = map[string]*types.Package{}
)

// loader resolves and type-checks one module.
type loader struct {
	root    string
	modPath string
	ctxt    *build.Context
	sizes   types.Sizes
	pkgs    map[string]*Package // by import path, fully loaded
	loading map[string]bool     // cycle guard
}

// LoadModule loads, parses and type-checks every package under root
// (skipping testdata, vendor, hidden and underscore directories). The
// module path is read from root's go.mod. Type errors are hard errors:
// the analyzers assume a compiling tree.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	l := &loader{
		root:    root,
		modPath: modPath,
		ctxt:    &ctxt,
		sizes:   types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	if l.sizes == nil {
		l.sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: sharedFset}
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.load(imp); err != nil {
			return nil, fmt.Errorf("%s: %w", imp, err)
		}
	}
	for _, p := range l.pkgs {
		mod.Packages = append(mod.Packages, p)
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].RelPath < mod.Packages[j].RelPath })
	return mod, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// packageDirs returns every directory under root that contains .go files,
// skipping testdata, vendor, hidden and underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Import implements types.Importer: module-local paths load (and cache)
// module packages, "unsafe" maps to types.Unsafe, everything else resolves
// as a standard-library package from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return stdImport(path)
}

// load parses and type-checks one module-local package.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			// Directory with only ignored files; synthesize an empty package.
			p := &Package{Path: path, RelPath: rel, Dir: dir}
			l.pkgs[path] = p
			return p, nil
		}
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var testFiles []*ast.File
	for _, name := range append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...) {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		testFiles = append(testFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l, Sizes: l.sizes, FakeImportC: true}
	tpkg, err := conf.Check(path, sharedFset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{
		Path:      path,
		RelPath:   rel,
		Dir:       dir,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}
	l.pkgs[path] = p
	return p, nil
}

// stdImporter adapts stdImport to types.Importer for checking stdlib
// packages (which only ever import other stdlib packages).
type stdImporter struct{}

func (stdImporter) Import(path string) (*types.Package, error) { return stdImport(path) }

// stdImport type-checks a standard-library package from GOROOT source,
// with a process-wide cache. Comments are not kept and no Info is built:
// only the type objects are needed for cross-package resolution.
func stdImport(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImportLocked(path, map[string]bool{})
}

func stdImportLocked(path string, loading map[string]bool) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := stdPkgs[path]; ok {
		return p, nil
	}
	if loading[path] {
		return nil, fmt.Errorf("std import cycle through %s", path)
	}
	loading[path] = true
	defer delete(loading, path)

	goroot := build.Default.GOROOT
	dir := filepath.Join(goroot, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
		if _, verr := os.Stat(vdir); verr != nil {
			return nil, fmt.Errorf("cannot find stdlib package %q", path)
		}
		dir = vdir
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	sizes := types.SizesFor(build.Default.Compiler, build.Default.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return stdImportLocked(p, loading) }),
		Sizes:       sizes,
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, sharedFset, files, nil)
	if err != nil {
		return nil, err
	}
	stdPkgs[path] = tpkg
	return tpkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
