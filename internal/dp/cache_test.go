package dp

import (
	"sync"
	"testing"

	"repro/internal/conf"
	"repro/internal/par"
	"repro/pcmax"
)

func TestCacheReusesConfigSets(t *testing.T) {
	cache := NewCache()
	sizes := []pcmax.Time{6, 11}
	counts := []int{2, 3}
	a, err := NewCached(sizes, counts, 30, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCached(sizes, counts, 30, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Configs[0] != &b.Configs[0] {
		t.Fatal("second build with the same key should share the cached config slice")
	}
	st := cache.Stats()
	if st.ConfigHits != 1 || st.ConfigMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// A different T is a different key.
	if _, err := NewCached(sizes, counts, 29, 0, 0, cache); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigMisses != 2 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
}

func TestCachedTablesFillIdentically(t *testing.T) {
	cache := NewCache()
	sizes := []pcmax.Time{5, 7, 9}
	counts := []int{3, 2, 4}
	ref, err := New(sizes, counts, 25, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.FillSequential()

	pool := par.NewPool(3)
	defer pool.Close()
	// Fill twice through the cache so the second parallel fill takes the
	// level-index hit path.
	for round := 0; round < 2; round++ {
		tbl, err := NewCached(sizes, counts, 25, 0, 0, cache)
		if err != nil {
			t.Fatal(err)
		}
		tbl.FillParallel(pool, LevelBuckets, par.Dynamic)
		for i := range tbl.Opt {
			if tbl.Opt[i] != ref.Opt[i] {
				t.Fatalf("round %d entry %d = %d, want %d", round, i, tbl.Opt[i], ref.Opt[i])
			}
		}
	}
	st := cache.Stats()
	if st.LevelHits != 1 || st.LevelMisses != 1 {
		t.Fatalf("level stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	// Speculative bisection hits one cache from many goroutines; run with
	// -race to verify the locking.
	cache := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				T := pcmax.Time(20 + (g+rep)%5)
				tbl, err := NewCached([]pcmax.Time{4, 7}, []int{3, 3}, T, 0, 0, cache)
				if err != nil {
					panic(err)
				}
				tbl.FillSequential()
				if _, err := tbl.OptValue(); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	st := cache.Stats()
	if st.ConfigHits+st.ConfigMisses != 8*20 {
		t.Fatalf("lookups = %d, want %d", st.ConfigHits+st.ConfigMisses, 8*20)
	}
}

func TestCacheEvictionKeepsWorking(t *testing.T) {
	cache := NewCache()
	// Overflow the config map; builds must stay correct through the reset.
	for i := 0; i < maxCachedConfigSets+10; i++ {
		T := pcmax.Time(30 + i)
		tbl, err := NewCached([]pcmax.Time{6, 11}, []int{2, 3}, T, 0, 0, cache)
		if err != nil {
			t.Fatal(err)
		}
		tbl.FillSequential()
		if opt, err := tbl.OptValue(); err != nil || opt < 1 {
			t.Fatalf("T=%d: opt=%d err=%v", T, opt, err)
		}
	}
	if n := len(cache.configs); n > maxCachedConfigSets {
		t.Fatalf("config cache holds %d entries, budget %d", n, maxCachedConfigSets)
	}
}

func TestNilCacheStats(t *testing.T) {
	var c *Cache
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestCacheProfileCanonicalization(t *testing.T) {
	// (sizes, T) pairs that reduce to the same canonical profile must share
	// one cached configuration set: {6,12}@30, {3,6}@15 and {1,2}@5 all
	// reduce to sizes {1,2} with capacity 5.
	cache := NewCache()
	counts := []int{2, 3}
	a, err := NewCached([]pcmax.Time{6, 12}, counts, 30, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCached([]pcmax.Time{3, 6}, counts, 15, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCached([]pcmax.Time{1, 2}, counts, 5, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Configs[0] != &b.Configs[0] || &a.Configs[0] != &c.Configs[0] {
		t.Fatal("canonically equal profiles should share one cached config set")
	}
	st := cache.Stats()
	if st.ConfigHits != 2 || st.ConfigMisses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}

	// floor(T/g) is what matters: T=34 with g=6 still reduces to capacity 5.
	if _, err := NewCached([]pcmax.Time{6, 12}, counts, 34, 0, 0, cache); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigHits != 3 {
		t.Fatalf("stats = %+v, want 3 hits", st)
	}

	// A capacity crossing a multiple of g is a genuinely different profile.
	if _, err := NewCached([]pcmax.Time{6, 12}, counts, 36, 0, 0, cache); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigMisses != 2 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
}

func TestCacheCanonicalTablesFillIdentically(t *testing.T) {
	// A table built through a canonical cache hit (scaled profile) must fill
	// and reconstruct exactly like a cold table at the original scale.
	cache := NewCache()
	sizes := []pcmax.Time{6, 12, 18}
	counts := []int{3, 2, 2}
	// Prime the cache with the reduced-scale twin.
	if _, err := NewCached([]pcmax.Time{1, 2, 3}, counts, 9, 0, 0, cache); err != nil {
		t.Fatal(err)
	}
	tbl, err := NewCached(sizes, counts, 54, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigHits != 1 {
		t.Fatalf("stats = %+v, want the scaled build to hit", st)
	}
	ref, err := New(sizes, counts, 54, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl.FillSequential()
	ref.FillSequential()
	for i := range tbl.Opt {
		if tbl.Opt[i] != ref.Opt[i] {
			t.Fatalf("entry %d = %d, want %d", i, tbl.Opt[i], ref.Opt[i])
		}
	}
}

func TestCacheStatsSub(t *testing.T) {
	cache := NewCache()
	sizes := []pcmax.Time{6, 11}
	counts := []int{2, 3}
	if _, err := NewCached(sizes, counts, 30, 0, 0, cache); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, err := NewCached(sizes, counts, 30, 0, 0, cache); err != nil {
		t.Fatal(err)
	}
	delta := cache.Stats().Sub(before)
	want := CacheStats{ConfigHits: 1}
	if delta != want {
		t.Fatalf("delta = %+v, want %+v", delta, want)
	}
}

func TestCacheHitPathDoesNotAllocate(t *testing.T) {
	cache := NewCache()
	sizes := []pcmax.Time{6, 11}
	counts := []int{2, 3}
	stride := []int64{1, 3}
	if _, _, _, err := cache.configSet(sizes, counts, 30, stride, 0, EnumFaithful, conf.SparseOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := cache.configSet(sizes, counts, 30, stride, 0, EnumFaithful, conf.SparseOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %.1f objects per lookup, want 0", allocs)
	}
}

func BenchmarkCacheLookup(b *testing.B) {
	// Steady-state cost of one configuration-set lookup on the hit path —
	// the per-probe cache overhead of a warm bisection.
	cache := NewCache()
	sizes := []pcmax.Time{13, 17, 19, 23, 29, 31}
	counts := []int{4, 4, 3, 3, 2, 2}
	stride := []int64{1, 5, 25, 100, 400, 1200}
	if _, _, _, err := cache.configSet(sizes, counts, 120, stride, 0, EnumFaithful, conf.SparseOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := cache.configSet(sizes, counts, 120, stride, 0, EnumFaithful, conf.SparseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
