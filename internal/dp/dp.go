// Package dp implements the dynamic-programming table at the heart of the
// Hochbaum–Shmoys PTAS and its parallel variant from the paper.
//
// The table entry OPT(v), for a vector v = (v_1, ..., v_d) with
// 0 <= v_i <= n_i over the d distinct rounded long-job sizes, is the minimum
// number of machines that schedule v_i jobs of each rounded size i within the
// target makespan T. It satisfies the paper's recurrence (equation 4):
//
//	OPT(v) = 1 + min over machine configurations s <= v, weight(s) <= T
//	             of OPT(v - s),      with OPT(0) = 0.
//
// Entries are stored in row-major mixed-radix order (the paper's
// one-dimensional array V), so idx(v) = sum_i v_i * stride_i and, for a
// configuration s <= v, idx(v-s) = idx(v) - offset(s) with no borrows.
//
// Three fill strategies are provided:
//
//   - FillSequential: bottom-up in index order (every dependency of entry i
//     has a smaller index, so a single left-to-right sweep is valid).
//   - FillRecursive: top-down memoized recursion starting from the last
//     entry, faithful to the paper's Algorithm 2 description ("starts from
//     the last entry of the DP-table and recursively computes the other
//     entries until it ends up at the first element").
//   - FillParallel: the paper's Algorithm 3. Entries on the same
//     anti-diagonal (equal digit sum, the paper's d_i values) are mutually
//     independent; levels l = 0..n' run sequentially with a barrier, entries
//     within a level run on P workers.
package dp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/conf"
	"repro/internal/par"
	"repro/pcmax"
)

// LevelMode selects how FillParallel locates the entries of a level.
type LevelMode int

const (
	// LevelBuckets groups entry indices by level once (counting sort) so
	// each level touches only its own entries. This is the optimized mode.
	LevelBuckets LevelMode = iota
	// LevelScan is faithful to the paper's Algorithm 3 Lines 11-12: at
	// every level all sigma entries are scanned in parallel and entries
	// whose d_i differs from the level are skipped.
	LevelScan
)

// String names the level mode.
func (m LevelMode) String() string {
	switch m {
	case LevelBuckets:
		return "buckets"
	case LevelScan:
		return "scan"
	default:
		return fmt.Sprintf("LevelMode(%d)", int(m))
	}
}

// DefaultMaxEntries caps the table size (number of entries). 1<<25 entries
// occupy 128 MiB of OPT values plus 256 MiB of level-bucket index in the
// parallel fill.
const DefaultMaxEntries = 1 << 25

// Typed failures.
var (
	// ErrTableTooLarge reports that prod(n_i+1) exceeds the entry budget.
	ErrTableTooLarge = errors.New("dp: DP table exceeds the entry budget")
	// ErrNotFilled reports use of results before any Fill method ran.
	ErrNotFilled = errors.New("dp: table not filled")
	// ErrInconsistent reports a corrupted table during reconstruction.
	ErrInconsistent = errors.New("dp: inconsistent table")
)

// unset marks entries not yet computed by FillRecursive.
const unset = int32(-1)

// Table is the DP table for one (sizes, counts, T) triple.
type Table struct {
	// Sizes holds the distinct rounded long-job sizes, strictly ascending.
	Sizes []pcmax.Time
	// Counts holds n_i, the number of long jobs of each rounded size.
	Counts []int
	// T is the target makespan (machine capacity).
	T pcmax.Time

	// Stride holds row-major mixed-radix strides; Stride[d-1] == 1.
	Stride []int64
	// Sigma is the number of entries, prod(n_i + 1).
	Sigma int64
	// NPrime is the number of long jobs, sum(n_i); the table has NPrime+1
	// anti-diagonal levels.
	NPrime int
	// Configs are all feasible non-zero machine configurations.
	Configs []conf.Config
	// Opt holds OPT(v) per entry after a Fill method ran.
	Opt []int32

	// PerEntryEnum switches every fill method to re-enumerating the
	// configuration set C_v of each entry by depth-first search, bounded by
	// the entry's own vector, instead of filtering the shared Configs list.
	// This is faithful to the paper's Algorithm 3 Line 17 ("C_{v^i} <- all
	// machine configurations of vector v^i") and considerably slower; it
	// exists for fidelity runs and ablation benchmarks.
	PerEntryEnum bool

	filled bool
}

// New builds an empty table. Sizes must be strictly ascending, positive and
// at most T; counts must be non-negative and parallel to sizes. maxEntries
// <= 0 selects DefaultMaxEntries, maxConfigs <= 0 selects
// conf.DefaultMaxConfigs.
func New(sizes []pcmax.Time, counts []int, T pcmax.Time, maxEntries int64, maxConfigs int) (*Table, error) {
	if len(sizes) != len(counts) {
		return nil, fmt.Errorf("dp: %d sizes but %d counts", len(sizes), len(counts))
	}
	if T < 1 {
		return nil, fmt.Errorf("dp: target makespan T=%d < 1", T)
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("dp: size class %d has non-positive size %d", i, s)
		}
		if s > T {
			return nil, fmt.Errorf("dp: size class %d (%d) exceeds T=%d; no configuration can hold it", i, s, T)
		}
		if i > 0 && sizes[i-1] >= s {
			return nil, fmt.Errorf("dp: sizes not strictly ascending at class %d (%d >= %d)", i, sizes[i-1], s)
		}
		if counts[i] < 0 {
			return nil, fmt.Errorf("dp: size class %d has negative count %d", i, counts[i])
		}
	}
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	d := len(sizes)
	t := &Table{
		Sizes:  append([]pcmax.Time(nil), sizes...),
		Counts: append([]int(nil), counts...),
		T:      T,
		Stride: make([]int64, d),
	}
	sigma := int64(1)
	for i := d - 1; i >= 0; i-- {
		t.Stride[i] = sigma
		radix := int64(counts[i]) + 1
		if radix > maxEntries || sigma > maxEntries/radix {
			return nil, fmt.Errorf("%w (needs more than the %d-entry budget)", ErrTableTooLarge, maxEntries)
		}
		sigma *= radix
		t.NPrime += counts[i]
	}
	t.Sigma = sigma
	configs, err := conf.Enumerate(t.Sizes, t.Counts, T, t.Stride, maxConfigs)
	if err != nil {
		return nil, err
	}
	t.Configs = configs
	t.Opt = make([]int32, sigma)
	return t, nil
}

// digits decodes the entry index into the vector v, writing into dst
// (len(dst) == d) and returning it.
func (t *Table) digits(idx int64, dst []int32) []int32 {
	rem := idx
	for i := range t.Stride {
		dst[i] = int32(rem / t.Stride[i])
		rem %= t.Stride[i]
	}
	return dst
}

// levelOf returns the digit sum (anti-diagonal index) of an entry.
func (t *Table) levelOf(idx int64) int32 {
	var s int32
	rem := idx
	for i := range t.Stride {
		s += int32(rem / t.Stride[i])
		rem %= t.Stride[i]
	}
	return s
}

// computeEntry evaluates the recurrence for one non-zero entry whose decoded
// digits are v. All dependencies (smaller digit sums) must be final.
func (t *Table) computeEntry(idx int64, v []int32) {
	if t.PerEntryEnum {
		t.computeEntryPerEnum(idx, v)
		return
	}
	best := int32(math.MaxInt32)
	for ci := range t.Configs {
		c := &t.Configs[ci]
		if conf.Fits(c.Counts, v) {
			if o := t.Opt[idx-c.Offset]; o < best {
				best = o
			}
		}
	}
	// A non-zero entry always admits at least one singleton configuration
	// (every size is <= T), so best is a real value here.
	t.Opt[idx] = best + 1
}

// computeEntryPerEnum evaluates the recurrence by regenerating the entry's
// own configuration set C_v (paper Algorithm 3, Lines 16-24): every s with
// 0 < s <= v and weight(s) <= T is visited by depth-first search and the
// minimum OPT(v-s) is collected.
func (t *Table) computeEntryPerEnum(idx int64, v []int32) {
	best := int32(math.MaxInt32)
	d := len(t.Sizes)
	var rec func(dim int, weight pcmax.Time, off int64, jobs int32)
	rec = func(dim int, weight pcmax.Time, off int64, jobs int32) {
		if dim == d {
			if jobs > 0 {
				if o := t.Opt[idx-off]; o < best {
					best = o
				}
			}
			return
		}
		for s := int32(0); s <= v[dim]; s++ {
			w := weight + pcmax.Time(s)*t.Sizes[dim]
			if w > t.T {
				break
			}
			rec(dim+1, w, off+int64(s)*t.Stride[dim], jobs+s)
		}
	}
	rec(0, 0, 0, 0)
	t.Opt[idx] = best + 1
}

// FillSequential computes every entry bottom-up in index order.
func (t *Table) FillSequential() {
	t.Opt[0] = 0
	d := len(t.Stride)
	v := make([]int32, d)
	for idx := int64(1); idx < t.Sigma; idx++ {
		// Odometer increment with the last dimension fastest, mirroring the
		// row-major index order.
		for i := d - 1; i >= 0; i-- {
			v[i]++
			if int64(v[i]) <= int64(t.Counts[i]) {
				break
			}
			v[i] = 0
		}
		t.computeEntry(idx, v)
	}
	t.filled = true
}

// FillRecursive computes the table top-down with memoization, starting from
// the last entry, exactly as the paper describes the sequential Algorithm 2.
// Only entries reachable from N by configuration subtractions are computed;
// unreachable entries keep an internal "unset" marker that OptValue and
// Reconstruct never observe.
func (t *Table) FillRecursive() {
	for i := range t.Opt {
		t.Opt[i] = unset
	}
	t.Opt[0] = 0
	t.solveRec(t.Sigma - 1)
	t.filled = true
}

func (t *Table) solveRec(idx int64) int32 {
	if t.Opt[idx] != unset {
		return t.Opt[idx]
	}
	v := t.digits(idx, make([]int32, len(t.Stride)))
	best := int32(math.MaxInt32)
	if t.PerEntryEnum {
		d := len(t.Sizes)
		var rec func(dim int, weight pcmax.Time, off int64, jobs int32)
		rec = func(dim int, weight pcmax.Time, off int64, jobs int32) {
			if dim == d {
				if jobs > 0 {
					if o := t.solveRec(idx - off); o < best {
						best = o
					}
				}
				return
			}
			for s := int32(0); s <= v[dim]; s++ {
				w := weight + pcmax.Time(s)*t.Sizes[dim]
				if w > t.T {
					break
				}
				rec(dim+1, w, off+int64(s)*t.Stride[dim], jobs+s)
			}
		}
		rec(0, 0, 0, 0)
	} else {
		for ci := range t.Configs {
			c := &t.Configs[ci]
			if conf.Fits(c.Counts, v) {
				if o := t.solveRec(idx - c.Offset); o < best {
					best = o
				}
			}
		}
	}
	t.Opt[idx] = best + 1
	return t.Opt[idx]
}

// FillParallel computes the table with the paper's Parallel DP (Algorithm 3)
// on the given worker pool: level d_i = l entries in parallel, levels in
// sequence. The pool may be reused across calls and bisection iterations.
func (t *Table) FillParallel(pool *par.Pool, mode LevelMode, strategy par.Strategy) {
	if t.Sigma == 1 {
		t.Opt[0] = 0
		t.filled = true
		return
	}
	d := len(t.Stride)
	workers := pool.Workers()
	scratch := make([][]int32, workers)
	for w := range scratch {
		scratch[w] = make([]int32, d)
	}

	// Lines 4-8: compute the digit sums d_i of every entry in parallel.
	levels := make([]int32, t.Sigma)
	pool.For(int(t.Sigma), strategy, func(i int) {
		levels[i] = t.levelOf(int64(i))
	})

	t.Opt[0] = 0
	switch mode {
	case LevelScan:
		// Lines 10-25, faithful: every level scans all sigma entries.
		for l := int32(1); l <= int32(t.NPrime); l++ {
			pool.ForWorker(int(t.Sigma), strategy, 0, func(w, i int) {
				if levels[i] != l {
					return
				}
				idx := int64(i)
				t.computeEntry(idx, t.digits(idx, scratch[w]))
			})
		}
	case LevelBuckets:
		// Counting sort of entries by level, then each level processes only
		// its own entries.
		count := make([]int64, t.NPrime+2)
		for _, l := range levels {
			count[l+1]++
		}
		for l := 1; l < len(count); l++ {
			count[l] += count[l-1]
		}
		start := count // start[l] is the first slot of level l
		order := make([]int64, t.Sigma)
		cursor := make([]int64, t.NPrime+1)
		copy(cursor, start[:t.NPrime+1])
		for i := int64(0); i < t.Sigma; i++ {
			l := levels[i]
			order[cursor[l]] = i
			cursor[l]++
		}
		for l := 1; l <= t.NPrime; l++ {
			bucket := order[start[l]:start[l+1]]
			pool.ForWorker(len(bucket), strategy, 0, func(w, j int) {
				idx := bucket[j]
				t.computeEntry(idx, t.digits(idx, scratch[w]))
			})
		}
	default:
		panic(fmt.Sprintf("dp: unknown level mode %d", int(mode)))
	}
	t.filled = true
}

// LevelSizes returns q_l for l = 0..sum(counts): the number of table entries
// on each anti-diagonal of a table with the given per-class counts. It is
// computed by convolution, without enumerating entries, and is the input to
// the simulated-multicore model of package simsched (and to the paper's
// Section IV cost analysis).
func LevelSizes(counts []int) []int64 {
	q := []int64{1}
	for _, n := range counts {
		if n < 0 {
			n = 0
		}
		nq := make([]int64, len(q)+n)
		var window int64
		for l := range nq {
			if l < len(q) {
				window += q[l]
			}
			if prev := l - n - 1; prev >= 0 && prev < len(q) {
				window -= q[prev]
			}
			nq[l] = window
		}
		q = nq
	}
	return q
}

// OptValue returns OPT(N), the minimum machine count for the full job vector
// within T.
func (t *Table) OptValue() (int, error) {
	if !t.filled {
		return 0, ErrNotFilled
	}
	return int(t.Opt[t.Sigma-1]), nil
}

// Reconstruct walks the filled table back from the full vector N and returns
// one machine configuration (a per-size-class job count vector) per machine,
// OPT(N) machines in total.
func (t *Table) Reconstruct() ([][]int32, error) {
	if !t.filled {
		return nil, ErrNotFilled
	}
	d := len(t.Stride)
	v := make([]int32, d)
	t.digits(t.Sigma-1, v)
	idx := t.Sigma - 1
	var machines [][]int32
	for idx != 0 {
		target := t.Opt[idx]
		if target <= 0 {
			return nil, fmt.Errorf("%w: entry %d has OPT=%d on the walk", ErrInconsistent, idx, target)
		}
		found := -1
		for ci := range t.Configs {
			c := &t.Configs[ci]
			if conf.Fits(c.Counts, v) && t.Opt[idx-c.Offset] == target-1 {
				found = ci
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("%w: no configuration explains OPT=%d at entry %d", ErrInconsistent, target, idx)
		}
		c := &t.Configs[found]
		machines = append(machines, append([]int32(nil), c.Counts...))
		idx -= c.Offset
		for i := range v {
			v[i] -= c.Counts[i]
		}
	}
	return machines, nil
}
