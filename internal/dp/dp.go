// Package dp implements the dynamic-programming table at the heart of the
// Hochbaum–Shmoys PTAS and its parallel variant from the paper.
//
// The table entry OPT(v), for a vector v = (v_1, ..., v_d) with
// 0 <= v_i <= n_i over the d distinct rounded long-job sizes, is the minimum
// number of machines that schedule v_i jobs of each rounded size i within the
// target makespan T. It satisfies the paper's recurrence (equation 4):
//
//	OPT(v) = 1 + min over machine configurations s <= v, weight(s) <= T
//	             of OPT(v - s),      with OPT(0) = 0.
//
// Entries are stored in row-major mixed-radix order (the paper's
// one-dimensional array V), so idx(v) = sum_i v_i * stride_i and, for a
// configuration s <= v, idx(v-s) = idx(v) - offset(s) with no borrows.
//
// Three fill strategies are provided:
//
//   - FillSequential: bottom-up in index order (every dependency of entry i
//     has a smaller index, so a single left-to-right sweep is valid).
//   - FillRecursive: top-down memoized recursion starting from the last
//     entry, faithful to the paper's Algorithm 2 description ("starts from
//     the last entry of the DP-table and recursively computes the other
//     entries until it ends up at the first element").
//   - FillParallel: the paper's Algorithm 3. Entries on the same
//     anti-diagonal (equal digit sum, the paper's d_i values) are mutually
//     independent; levels l = 0..n' run sequentially with a barrier, entries
//     within a level run on P workers.
//
// The fill pipeline applies three compounding optimizations over a naive
// translation of the recurrence (all preserving bit-identical Opt tables;
// see ALGORITHM.md "Fill-path optimizations"):
//
//  1. Level-aware configuration pruning: Configs is kept stably sorted by
//     ascending Jobs, so an entry on anti-diagonal level l scans only the
//     prefix of configurations with Jobs <= l — a configuration placing more
//     jobs than the entry has available can never fit. The prefix bounds are
//     precomputed once per table (conf.JobsBounds).
//  2. Flat scan layout: the hot loop walks a structure-of-arrays view of the
//     configuration set (conf.Set) instead of chasing one heap-allocated
//     Counts slice per configuration.
//  3. Odometer decoding: per-entry division loops are replaced by incremental
//     mixed-radix counters — the sequential sweep and the level/bucket index
//     construction advance digit vectors in amortized O(1), and the parallel
//     fill decodes once per worker chunk and advances from there.
//
// The LegacyFill switch restores the unpruned, division-decoded fill for
// ablation benchmarks (the "seed path" in BENCH_dp.json).
package dp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/conf"
	"repro/internal/par"
	"repro/pcmax"
)

// LevelMode selects how FillParallel locates the entries of a level.
type LevelMode int

const (
	// LevelBuckets groups entry indices by level once (counting sort) so
	// each level touches only its own entries. This is the optimized mode.
	LevelBuckets LevelMode = iota
	// LevelScan is faithful to the paper's Algorithm 3 Lines 11-12: at
	// every level all sigma entries are scanned in parallel and entries
	// whose d_i differs from the level are skipped.
	LevelScan
)

// String names the level mode.
func (m LevelMode) String() string {
	switch m {
	case LevelBuckets:
		return "buckets"
	case LevelScan:
		return "scan"
	default:
		return fmt.Sprintf("LevelMode(%d)", int(m))
	}
}

// DefaultMaxEntries caps the table size (number of entries). 1<<25 entries
// occupy 128 MiB of OPT values plus 256 MiB of level-bucket index in the
// parallel fill.
const DefaultMaxEntries = 1 << 25

// Typed failures.
var (
	// ErrTableTooLarge reports that prod(n_i+1) exceeds the entry budget.
	ErrTableTooLarge = errors.New("dp: DP table exceeds the entry budget")
	// ErrNotFilled reports use of results before any Fill method ran.
	ErrNotFilled = errors.New("dp: table not filled")
	// ErrInconsistent reports a corrupted table during reconstruction.
	ErrInconsistent = errors.New("dp: inconsistent table")
)

// unset marks entries not yet computed by FillRecursive.
const unset = int32(-1)

// EnumMode selects which configuration enumerator a table is built with.
type EnumMode int

const (
	// EnumFaithful lists every feasible non-zero configuration
	// (conf.Enumerate), the paper's semantics.
	EnumFaithful EnumMode = iota
	// EnumSparse applies the Jansen–Klein–Verschae-style prunes
	// (conf.EnumerateSparse): support cap plus dominance, with the
	// singleton-and-pair pool always retained.
	EnumSparse
)

func (m EnumMode) String() string {
	if m == EnumSparse {
		return "sparse"
	}
	return "faithful"
}

// Table is the DP table for one (sizes, counts, T) triple.
type Table struct {
	// Sizes holds the distinct rounded long-job sizes, strictly ascending.
	Sizes []pcmax.Time
	// Counts holds n_i, the number of long jobs of each rounded size.
	Counts []int
	// T is the target makespan (machine capacity).
	T pcmax.Time

	// Stride holds row-major mixed-radix strides; Stride[d-1] == 1.
	Stride []int64
	// Sigma is the number of entries, prod(n_i + 1).
	Sigma int64
	// NPrime is the number of long jobs, sum(n_i); the table has NPrime+1
	// anti-diagonal levels.
	NPrime int
	// Configs are all feasible non-zero machine configurations, stably
	// sorted by ascending Jobs (level-aware pruning relies on this order).
	Configs []conf.Config
	// Opt holds OPT(v) per entry after a Fill method ran.
	Opt []int32

	// PerEntryEnum switches every fill method to re-enumerating the
	// configuration set C_v of each entry by depth-first search, bounded by
	// the entry's own vector, instead of filtering the shared Configs list.
	// This is faithful to the paper's Algorithm 3 Line 17 ("C_{v^i} <- all
	// machine configurations of vector v^i") and considerably slower; it
	// exists for fidelity runs and ablation benchmarks.
	PerEntryEnum bool

	// LegacyFill restores the pre-optimization fill path — full
	// configuration scans (no level pruning, per-Config heap slices) and
	// division-based digit decoding — for ablation benchmarks against the
	// seed implementation. Opt tables and reconstructions are identical
	// either way.
	LegacyFill bool

	// AutoStats reports how FillAuto routed the anti-diagonal levels; it is
	// meaningful only after a FillAuto/FillAutoCtx call (other fill variants
	// leave it untouched).
	AutoStats AutoStats

	// Mode records which enumerator built Configs.
	Mode EnumMode
	// SparseStats reports the sparsification outcome (enumerated vs
	// retained vs pruned counts); zero for EnumFaithful tables.
	SparseStats conf.SparseStats

	// set is the flat Jobs-sorted scan view of Configs (shared, read-only).
	set *conf.Set
	// packed holds each configuration's count vector packed one byte per
	// size class (packW words per configuration), enabling the branch-free
	// SWAR fits check of computeEntryPacked. nil when the table does not
	// qualify (more than 16 classes or a class count >= 128).
	packed []uint64
	packW  int
	// cache, when non-nil, memoizes configuration sets and level-bucket
	// indexes across tables (bisection probes repeat both).
	cache *Cache

	// Cooperative-cancellation state of an in-flight FillRecursiveCtx:
	// solveRec polls recDone every fillCheckEvery visits (recBudget is the
	// countdown) and records the abort in fillErr so the recursion unwinds
	// without touching every frame; recEntries counts memoized entries for
	// the partial-progress stats. All four are scoped to one fill call.
	recDone    <-chan struct{}
	recBudget  int64
	recEntries int64
	fillErr    error

	filled bool
}

// New builds an empty table. Sizes must be strictly ascending, positive and
// at most T; counts must be non-negative and parallel to sizes. maxEntries
// <= 0 selects DefaultMaxEntries, maxConfigs <= 0 selects
// conf.DefaultMaxConfigs.
func New(sizes []pcmax.Time, counts []int, T pcmax.Time, maxEntries int64, maxConfigs int) (*Table, error) {
	return NewCached(sizes, counts, T, maxEntries, maxConfigs, nil)
}

// NewCached is New with a shared Cache: configuration enumeration and (in
// FillParallel) the level-bucket index are reused when another table with
// the same rounded classes was built against the same cache — which is
// exactly what a bisection search produces. A nil cache disables reuse.
func NewCached(sizes []pcmax.Time, counts []int, T pcmax.Time, maxEntries int64, maxConfigs int, cache *Cache) (*Table, error) {
	return build(sizes, counts, T, maxEntries, maxConfigs, cache, EnumFaithful, conf.SparseOptions{})
}

// NewSparse is NewCached with the sparse enumerator: Configs holds only the
// configurations conf.EnumerateSparse retains under sopts, and
// Table.SparseStats reports the reduction. Index space, strides, fill paths
// and reconstruction are identical to a faithful table over the same
// classes; only the candidate-move set shrinks, so OPT values can only grow
// and a feasible sparse table always reconstructs a valid packing. Sparse
// and faithful tables never share cached configuration sets, even for
// identical (sizes, counts, T).
func NewSparse(sizes []pcmax.Time, counts []int, T pcmax.Time, maxEntries int64, maxConfigs int, cache *Cache, sopts conf.SparseOptions) (*Table, error) {
	return build(sizes, counts, T, maxEntries, maxConfigs, cache, EnumSparse, sopts)
}

func build(sizes []pcmax.Time, counts []int, T pcmax.Time, maxEntries int64, maxConfigs int, cache *Cache, mode EnumMode, sopts conf.SparseOptions) (*Table, error) {
	if len(sizes) != len(counts) {
		return nil, fmt.Errorf("dp: %d sizes but %d counts", len(sizes), len(counts))
	}
	if T < 1 {
		return nil, fmt.Errorf("dp: target makespan T=%d < 1", T)
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("dp: size class %d has non-positive size %d", i, s)
		}
		if s > T {
			return nil, fmt.Errorf("dp: size class %d (%d) exceeds T=%d; no configuration can hold it", i, s, T)
		}
		if i > 0 && sizes[i-1] >= s {
			return nil, fmt.Errorf("dp: sizes not strictly ascending at class %d (%d >= %d)", i, sizes[i-1], s)
		}
		if counts[i] < 0 {
			return nil, fmt.Errorf("dp: size class %d has negative count %d", i, counts[i])
		}
	}
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	d := len(sizes)
	t := &Table{
		Sizes:  append([]pcmax.Time(nil), sizes...),
		Counts: append([]int(nil), counts...),
		T:      T,
		Stride: make([]int64, d),
		Mode:   mode,
		cache:  cache,
	}
	sigma := int64(1)
	for i := d - 1; i >= 0; i-- {
		t.Stride[i] = sigma
		radix := int64(counts[i]) + 1
		if radix > maxEntries || sigma > maxEntries/radix {
			return nil, fmt.Errorf("%w (needs more than the %d-entry budget)", ErrTableTooLarge, maxEntries)
		}
		sigma *= radix
		t.NPrime += counts[i]
	}
	t.Sigma = sigma
	configs, set, sstats, err := cache.configSet(t.Sizes, t.Counts, T, t.Stride, maxConfigs, mode, sopts)
	if err != nil {
		return nil, err
	}
	t.Configs = configs
	t.set = set
	t.SparseStats = sstats
	t.buildPacked()
	t.Opt = make([]int32, sigma)
	return t, nil
}

// buildPacked precomputes the byte-packed configuration rows for the SWAR
// fits check: one byte per size class, low class in the low byte, padded
// with zeros. Applicable whenever every digit fits in 7 bits (class counts
// < 128, which bounds configuration counts too) and d <= 16 (one or two
// 64-bit words per row). The paper-scale tables (d = k^2 classes with
// k <= 4) always qualify.
func (t *Table) buildPacked() {
	d := len(t.Counts)
	if d > 16 {
		return
	}
	for _, n := range t.Counts {
		if n >= 128 {
			return
		}
	}
	words := 1
	if d > 8 {
		words = 2
	}
	s := t.set
	t.packW = words
	t.packed = make([]uint64, s.N*words)
	for ci := 0; ci < s.N; ci++ {
		row := s.Counts[ci*d : ci*d+d]
		var w0, w1 uint64
		for j, c := range row {
			if j < 8 {
				w0 |= uint64(uint8(c)) << (8 * j)
			} else {
				w1 |= uint64(uint8(c)) << (8 * (j - 8))
			}
		}
		t.packed[ci*words] = w0
		if words == 2 {
			t.packed[ci*words+1] = w1
		}
	}
}

// digits decodes the entry index into the vector v, writing into dst
// (len(dst) == d) and returning it.
func (t *Table) digits(idx int64, dst []int32) []int32 {
	rem := idx
	for i := range t.Stride {
		dst[i] = int32(rem / t.Stride[i])
		rem %= t.Stride[i]
	}
	return dst
}

// levelOf returns the digit sum (anti-diagonal index) of an entry by
// division; the optimized paths use odometer advancement instead.
func (t *Table) levelOf(idx int64) int32 {
	var s int32
	rem := idx
	for i := range t.Stride {
		s += int32(rem / t.Stride[i])
		rem %= t.Stride[i]
	}
	return s
}

// sumDigits returns the digit sum (anti-diagonal level) of a decoded vector.
func sumDigits(v []int32) int32 {
	var s int32
	for _, x := range v {
		s += x
	}
	return s
}

// advance adds delta >= 0 to the mixed-radix digit vector v, with carries,
// and returns the resulting change of the digit sum. The result index must
// stay inside the table. Cost is O(d) worst case but the loop exits as soon
// as the remaining delta is zero, so advancing between nearby entries only
// touches the fastest digits.
//
//lint:hotpath odometer advancement runs once per table entry
func (t *Table) advance(v []int32, delta int64) int32 {
	counts := t.Counts
	if len(counts) < len(v) {
		return 0 // never taken: Counts and every digit vector share length d
	}
	var dl int32
	for i := len(v) - 1; i >= 0 && delta > 0; i-- {
		radix := int64(counts[i]) + 1
		digit := delta % radix
		delta /= radix
		nv := int64(v[i]) + digit
		if nv >= radix {
			nv -= radix
			delta++
		}
		dl += int32(nv) - v[i]
		v[i] = int32(nv)
	}
	return dl
}

// advanceOne is the odometer increment (advance by exactly 1), returning the
// digit-sum change. Incrementing the last entry wraps to the zero vector;
// callers never advance past the end.
//
//lint:hotpath odometer increment runs once per table entry
func (t *Table) advanceOne(v []int32) int32 {
	counts := t.Counts
	if len(counts) < len(v) {
		return 0 // never taken: Counts and every digit vector share length d
	}
	var dl int32
	for i := len(v) - 1; i >= 0; i-- {
		if int(v[i]) < counts[i] {
			v[i]++
			return dl + 1
		}
		dl -= v[i]
		v[i] = 0
	}
	return dl
}

// decoder incrementally decodes ascending entry indices for one worker: the
// first index (and any backward jump) pays a full division decode, every
// later index is reached by mixed-radix advancement. With LegacyFill it
// degrades to a division decode per entry, reproducing the seed path.
type decoder struct {
	t    *Table
	v    []int32
	last int64
}

func newDecoders(t *Table, workers int) []decoder {
	decs := make([]decoder, workers)
	for w := range decs {
		decs[w] = decoder{t: t, v: make([]int32, len(t.Stride)), last: -1}
	}
	return decs
}

func (dc *decoder) reset() { dc.last = -1 }

// at returns the digit vector of idx. Successive calls on one decoder must
// use non-decreasing indices for the incremental path to engage; a backward
// jump falls back to a full decode.
//
//lint:hotpath per-entry index decode on the fill loop
func (dc *decoder) at(idx int64) []int32 {
	t := dc.t
	switch {
	case t.LegacyFill || dc.last < 0 || idx < dc.last:
		t.digits(idx, dc.v)
	case idx > dc.last:
		t.advance(dc.v, idx-dc.last)
	}
	dc.last = idx
	return dc.v
}

// computeEntry evaluates the recurrence for one non-zero entry whose decoded
// digits are v with digit sum level. All dependencies (smaller digit sums)
// must be final.
//
//lint:hotpath the DP recurrence kernel, millions of calls per probe
//lint:hbimpl wavefront ordering: every dependency read Opt[idx-Offset] targets a strictly smaller digit sum, and the fill loops separate levels with a full dispatch (or in-degree) barrier, so each read is ordered after its write by the level boundary
func (t *Table) computeEntry(idx int64, v []int32, level int32) {
	if t.PerEntryEnum {
		t.computeEntryPerEnum(idx, v)
		return
	}
	best := int32(math.MaxInt32)
	opt := t.Opt
	if idx < 0 || idx >= int64(len(opt)) {
		return // never taken: the fill loops keep idx inside [0, Sigma)
	}
	if t.LegacyFill {
		cfgs := t.Configs
		for ci := range cfgs {
			c := &cfgs[ci]
			if conf.Fits(c.Counts, v) {
				if o := idx - c.Offset; o >= 0 && o < int64(len(opt)) {
					if e := opt[o]; e < best {
						best = e
					}
				}
			}
		}
		opt[idx] = best + 1
		return
	}
	if t.packed != nil {
		t.computeEntryPacked(idx, v, level)
		return
	}
	s := t.set
	d := s.D
	if d < 0 || d > len(v) {
		return // never taken: rows and digit vectors share the class dimension
	}
	// Level-aware pruning: a configuration with Jobs > level cannot satisfy
	// s <= v because its digit sum exceeds v's. The prefix holds exactly the
	// candidates.
	bound := int(s.Bounds.Upto(level))
	offsets := s.Offsets
	n := len(offsets)
	if bound < n {
		n = bound
	}
	// The flat row matrix is walked with a moving-cursor reslice instead of a
	// base index: the length guard both proves the next row exists and lets
	// the compiler elide the bounds checks on it.
	rest := s.Counts
scan:
	for ci := 0; ci < n; ci++ {
		if len(rest) < d {
			break // never taken: Counts holds one d-row per configuration
		}
		row := rest[:d]
		rest = rest[d:]
		for j, sv := range row {
			if sv > v[j] {
				continue scan
			}
		}
		if o := idx - offsets[ci]; o >= 0 && o < int64(len(opt)) {
			if e := opt[o]; e < best {
				best = e
			}
		}
	}
	// A non-zero entry always admits at least one singleton configuration
	// (every size is <= T), so best is a real value here.
	opt[idx] = best + 1
}

// swarHigh masks the sign bit of every byte lane.
const swarHigh = uint64(0x8080808080808080)

// computeEntryPacked is computeEntry's scan with the per-class comparison
// loop replaced by a packed SWAR check: with every digit below 128, packing
// v's digits (and each configuration row) one byte per class makes
//
//	c <= v (componentwise)  <=>  ((v | H) - c) & H == H,  H = 0x80 repeated,
//
// because v|H raises every byte to >= 128 (so the per-byte subtractions
// cannot borrow across lanes) and byte j of the difference keeps its sign
// bit exactly when c_j <= v_j. Unused high lanes hold v-byte 0x80 and
// c-byte 0, so they always pass. The candidate set and the minimum are
// identical to the generic scan — the differential harness pins this down.
//
//lint:hotpath SWAR kernel, the tightest loop in the repository
func (t *Table) computeEntryPacked(idx int64, v []int32, level int32) {
	s := t.set
	opt := t.Opt
	if idx < 0 || idx >= int64(len(opt)) {
		return // never taken: the fill loops keep idx inside [0, Sigma)
	}
	bound := int(s.Bounds.Upto(level))
	offsets := s.Offsets
	n := len(offsets)
	if bound < n {
		n = bound
	}
	best := int32(math.MaxInt32)
	var v0, v1 uint64
	for j, x := range v {
		if j < 8 {
			v0 |= uint64(uint8(x)) << (8 * j)
		} else {
			v1 |= uint64(uint8(x)) << (8 * (j - 8))
		}
	}
	x0 := v0 | swarHigh
	packed := t.packed
	if t.packW == 1 {
		for ci, p := range packed {
			if ci >= n {
				break
			}
			if (x0-p)&swarHigh == swarHigh {
				if o := idx - offsets[ci]; o >= 0 && o < int64(len(opt)) {
					if e := opt[o]; e < best {
						best = e
					}
				}
			}
		}
	} else {
		x1 := v1 | swarHigh
		rest := packed
		for ci := 0; ci < n; ci++ {
			if len(rest) < 2 {
				break // never taken: two packed words per configuration
			}
			p0, p1 := rest[0], rest[1]
			rest = rest[2:]
			if (x0-p0)&swarHigh == swarHigh && (x1-p1)&swarHigh == swarHigh {
				if o := idx - offsets[ci]; o >= 0 && o < int64(len(opt)) {
					if e := opt[o]; e < best {
						best = e
					}
				}
			}
		}
	}
	opt[idx] = best + 1
}

// computeEntryPerEnum evaluates the recurrence by regenerating the entry's
// own configuration set C_v (paper Algorithm 3, Lines 16-24): every s with
// 0 < s <= v and weight(s) <= T is visited by depth-first search and the
// minimum OPT(v-s) is collected.
func (t *Table) computeEntryPerEnum(idx int64, v []int32) {
	best := int32(math.MaxInt32)
	d := len(t.Sizes)
	var rec func(dim int, weight pcmax.Time, off int64, jobs int32)
	rec = func(dim int, weight pcmax.Time, off int64, jobs int32) {
		if dim == d {
			if jobs > 0 {
				if o := t.Opt[idx-off]; o < best {
					best = o
				}
			}
			return
		}
		for s := int32(0); s <= v[dim]; s++ {
			w := weight + pcmax.Time(s)*t.Sizes[dim]
			if w > t.T {
				break
			}
			rec(dim+1, w, off+int64(s)*t.Stride[dim], jobs+s)
		}
	}
	rec(0, 0, 0, 0)
	t.Opt[idx] = best + 1
}

// fillCheckEvery is the cooperative-cancellation granularity of the
// sequential fill paths: the structured cancellation error lands within this
// many entry relaxations of the context dying, so a mid-fill abort costs
// microseconds, not the rest of the fill. It is amortized over a countdown
// counter — contexts that can never be canceled (nil Done channel) skip the
// checks entirely, keeping the uninterruptible shims overhead-free.
const fillCheckEvery = 1 << 15

// ctxDone returns the context's done channel, or nil when the context can
// never be canceled (Background, TODO, nil), which disables the amortized
// checks on the hot paths.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// FillSequential computes every entry bottom-up with no cancellation point;
// it is the uninterruptible shim over FillSequentialCtx kept for callers
// (benchmarks, ablations) that have no deadline to honor.
//
//lint:ignore ctxfirst deprecated uninterruptible shim; by contract its callers have no context to propagate
func (t *Table) FillSequential() { _ = t.FillSequentialCtx(context.Background()) }

// FillSequentialCtx computes every entry bottom-up, checking ctx every
// fillCheckEvery entries. The default path runs the configuration-outer
// relaxation sweep (fillConfigOuter); LegacyFill and PerEntryEnum keep the
// entry-ordered recurrence sweep, where the digit vector and its level ride
// an odometer increment so no entry pays a division decode. On cancellation
// the table is left unfilled (Opt holds partial garbage) and the structured
// cancel error is returned; an uncanceled fill returns nil and produces a
// table bit-identical to every other fill variant.
func (t *Table) FillSequentialCtx(ctx context.Context) error {
	if !t.LegacyFill && !t.PerEntryEnum {
		return t.fillConfigOuter(ctx)
	}
	done := ctxDone(ctx)
	budget := int64(fillCheckEvery)
	t.Opt[0] = 0
	d := len(t.Stride)
	v := make([]int32, d)
	level := int32(0)
	for idx := int64(1); idx < t.Sigma; idx++ {
		// Odometer increment with the last dimension fastest, mirroring the
		// row-major index order; the digit sum is maintained alongside.
		for i := d - 1; i >= 0; i-- {
			if int(v[i]) < t.Counts[i] {
				v[i]++
				level++
				break
			}
			level -= v[i]
			v[i] = 0
		}
		t.computeEntry(idx, v, level)
		if done != nil {
			if budget--; budget <= 0 {
				select {
				case <-done:
					err := cancel.From(ctx)
					err.EntriesFilled = idx
					return err
				default:
				}
				budget = fillCheckEvery
			}
		}
	}
	t.filled = true
	return nil
}

// fillHuge is the transient "not yet reached" value of the config-outer
// sweep. It must survive a +1 without overflowing; it never appears in a
// finished table because every non-empty entry admits a singleton
// configuration.
const fillHuge = int32(1) << 30

// fillConfigOuter fills the table by loop interchange: instead of scanning
// the configuration list per entry, each configuration c relaxes its whole
// sub-lattice {v : v >= c} in one streaming pass,
//
//	Opt[v] = min(Opt[v], Opt[v-c] + 1),
//
// visiting entries in ascending index order so repeated uses of c chain
// within the pass. This is the unbounded min-coin-change loop interchange on
// the mixed-radix lattice: the final values are the (unique) shortest
// distances of the recurrence, so the table is bit-identical to the
// entry-ordered sweep — but no entry ever pays a fits check or an index
// decode, and the passes are pure strided array traffic.
func (t *Table) fillConfigOuter(ctx context.Context) error {
	opt := t.Opt
	for i := range opt {
		opt[i] = fillHuge
	}
	opt[0] = 0
	s := t.set
	d := s.D
	w := make([]int32, d)   // odometer over the sub-lattice, w = v - c
	lim := make([]int32, d) // per-dimension odometer limits, Counts[j] - c_j
	done := ctxDone(ctx)
	budget := int64(fillCheckEvery)
	var relaxed int64
	for ci := 0; ci < s.N; ci++ {
		row := s.Counts[ci*d : ci*d+d]
		for j, c := range row {
			lim[j] = int32(t.Counts[j]) - c
			w[j] = 0
		}
		off := s.Offsets[ci]
		idx := off
		if done == nil {
			// Uninterruptible hot path: identical to the instrumented loop
			// below minus the amortized countdown, so callers without a
			// cancelable context pay nothing for the plumbing.
			for {
				if o := opt[idx-off] + 1; o < opt[idx] {
					opt[idx] = o
				}
				j := d - 1
				for ; j >= 0; j-- {
					if w[j] < lim[j] {
						w[j]++
						idx += t.Stride[j]
						break
					}
					idx -= int64(w[j]) * t.Stride[j]
					w[j] = 0
				}
				if j < 0 {
					break
				}
			}
			continue
		}
		for {
			if o := opt[idx-off] + 1; o < opt[idx] {
				opt[idx] = o
			}
			if budget--; budget <= 0 {
				select {
				case <-done:
					err := cancel.From(ctx)
					err.EntriesFilled = relaxed
					return err
				default:
				}
				relaxed += fillCheckEvery
				budget = fillCheckEvery
			}
			j := d - 1
			for ; j >= 0; j-- {
				if w[j] < lim[j] {
					w[j]++
					idx += t.Stride[j]
					break
				}
				idx -= int64(w[j]) * t.Stride[j]
				w[j] = 0
			}
			if j < 0 {
				break
			}
		}
	}
	t.filled = true
	return nil
}

// FillRecursive computes the table top-down with memoization, starting from
// the last entry, exactly as the paper describes the sequential Algorithm 2.
// Only entries reachable from N by configuration subtractions are computed;
// unreachable entries keep an internal "unset" marker that OptValue and
// Reconstruct never observe. It is the uninterruptible shim over
// FillRecursiveCtx.
//
//lint:ignore ctxfirst deprecated uninterruptible shim; by contract its callers have no context to propagate
func (t *Table) FillRecursive() { _ = t.FillRecursiveCtx(context.Background()) }

// FillRecursiveCtx is FillRecursive with cooperative cancellation: the
// memoized recursion polls ctx every fillCheckEvery entries, and on
// cancellation unwinds immediately, leaves the table unfilled (memoized
// values are partial garbage) and returns the structured cancel error.
func (t *Table) FillRecursiveCtx(ctx context.Context) error {
	for i := range t.Opt {
		t.Opt[i] = unset
	}
	t.Opt[0] = 0
	t.recDone = ctxDone(ctx)
	t.recBudget = fillCheckEvery
	t.recEntries = 0
	t.fillErr = nil
	t.solveRec(t.Sigma - 1)
	interrupted := t.fillErr != nil
	entries := t.recEntries
	t.recDone, t.fillErr = nil, nil
	if interrupted {
		err := cancel.From(ctx)
		err.EntriesFilled = entries
		return err
	}
	t.filled = true
	return nil
}

func (t *Table) solveRec(idx int64) int32 {
	if t.fillErr != nil {
		return 0
	}
	if t.recDone != nil {
		if t.recBudget--; t.recBudget <= 0 {
			select {
			case <-t.recDone:
				t.fillErr = cancel.ErrCanceled
				return 0
			default:
			}
			t.recBudget = fillCheckEvery
		}
	}
	if t.Opt[idx] != unset {
		return t.Opt[idx]
	}
	t.recEntries++
	v := t.digits(idx, make([]int32, len(t.Stride)))
	best := int32(math.MaxInt32)
	switch {
	case t.PerEntryEnum:
		d := len(t.Sizes)
		var rec func(dim int, weight pcmax.Time, off int64, jobs int32)
		rec = func(dim int, weight pcmax.Time, off int64, jobs int32) {
			if dim == d {
				if jobs > 0 {
					if o := t.solveRec(idx - off); o < best {
						best = o
					}
				}
				return
			}
			for s := int32(0); s <= v[dim]; s++ {
				w := weight + pcmax.Time(s)*t.Sizes[dim]
				if w > t.T {
					break
				}
				rec(dim+1, w, off+int64(s)*t.Stride[dim], jobs+s)
			}
		}
		rec(0, 0, 0, 0)
	case t.LegacyFill:
		for ci := range t.Configs {
			c := &t.Configs[ci]
			if conf.Fits(c.Counts, v) {
				if o := t.solveRec(idx - c.Offset); o < best {
					best = o
				}
			}
		}
	default:
		s := t.set
		bound := int(s.Bounds.Upto(sumDigits(v)))
		for ci := 0; ci < bound; ci++ {
			if conf.Fits(s.Row(ci), v) {
				if o := t.solveRec(idx - s.Offsets[ci]); o < best {
					best = o
				}
			}
		}
	}
	t.Opt[idx] = best + 1
	return t.Opt[idx]
}

// fillLevels writes the digit sum of every entry into levels, using the
// given parallel-for (a pool or barrier-pool dispatch, or an inline loop)
// over workers workers. The optimized path splits the table into contiguous
// chunks, pays one division decode per chunk and advances an odometer inside
// it; LegacyFill reproduces the seed's division decode per entry.
func (t *Table) fillLevels(pfor func(n int, body func(i int)), workers int, levels []int32) {
	if t.LegacyFill {
		pfor(int(t.Sigma), func(i int) {
			levels[i] = t.levelOf(int64(i))
		})
		return
	}
	chunkLen := t.Sigma / int64(8*workers)
	if chunkLen < 1024 {
		chunkLen = 1024
	}
	nChunks := int((t.Sigma + chunkLen - 1) / chunkLen)
	d := len(t.Stride)
	pfor(nChunks, func(c int) {
		lo := int64(c) * chunkLen
		hi := lo + chunkLen
		if hi > t.Sigma {
			hi = t.Sigma
		}
		v := make([]int32, d)
		t.digits(lo, v)
		lvl := sumDigits(v)
		for idx := lo; idx < hi; idx++ {
			levels[idx] = lvl
			lvl += t.advanceOne(v)
		}
	})
}

// levelIndex groups entry indices by anti-diagonal level: order holds the
// indices sorted by (level, index) and start[l] is the first slot of level
// l (len(start) == NPrime+2). It depends only on the per-class counts, so a
// Cache can share it across every table of a bisection with the same
// rounded classes. Read-only after construction.
type levelIndex struct {
	order []int64
	start []int64
}

// buildLevelIndex counting-sorts the entries by level; pfor and workers
// parallelize the level computation (see fillLevels).
func (t *Table) buildLevelIndex(pfor func(n int, body func(i int)), workers int) *levelIndex {
	levels := make([]int32, t.Sigma)
	t.fillLevels(pfor, workers, levels)
	count := make([]int64, t.NPrime+2)
	for _, l := range levels {
		count[l+1]++
	}
	for l := 1; l < len(count); l++ {
		count[l] += count[l-1]
	}
	start := count // start[l] is the first slot of level l
	order := make([]int64, t.Sigma)
	cursor := make([]int64, t.NPrime+1)
	copy(cursor, start[:t.NPrime+1])
	for i := int64(0); i < t.Sigma; i++ {
		l := levels[i]
		order[cursor[l]] = i
		cursor[l]++
	}
	return &levelIndex{order: order, start: start}
}

// FillParallel computes the table with the paper's Parallel DP (Algorithm 3)
// on the given worker pool: level d_i = l entries in parallel, levels in
// sequence. The pool may be reused across calls and bisection iterations. It
// is the uninterruptible shim over FillParallelCtx.
func (t *Table) FillParallel(pool *par.Pool, mode LevelMode, strategy par.Strategy) {
	//lint:ignore ctxfirst deprecated uninterruptible shim; by contract its callers have no context to propagate
	_ = t.FillParallelCtx(context.Background(), pool, mode, strategy)
}

// FillParallelCtx is FillParallel with cooperative cancellation: ctx is
// checked between anti-diagonal levels and, through the pool's ForWorkerCtx,
// every cancelCheckEvery entries inside each level, so an abort lands within
// one level's residual work. Workers stop claiming entries, the level barrier
// still completes (no leaked goroutines, the pool stays reusable) and the
// structured cancel error is returned with the table left unfilled. It
// panics on a LevelMode outside the declared constants, which is a
// programming error at the call site.
func (t *Table) FillParallelCtx(ctx context.Context, pool *par.Pool, mode LevelMode, strategy par.Strategy) error {
	if t.Sigma == 1 {
		if err := cancel.Check(ctx); err != nil {
			return err
		}
		t.Opt[0] = 0
		t.filled = true
		return nil
	}
	decs := newDecoders(t, pool.Workers())
	pfor := func(n int, body func(i int)) { pool.For(n, strategy, body) }

	t.Opt[0] = 0
	switch mode {
	case LevelScan:
		// Lines 4-8: compute the digit sums d_i of every entry in parallel,
		// then (Lines 10-25, faithful) every level scans all sigma entries.
		levels := make([]int32, t.Sigma)
		t.fillLevels(pfor, pool.Workers(), levels)
		for l := int32(1); l <= int32(t.NPrime); l++ {
			for w := range decs {
				decs[w].reset()
			}
			err := pool.ForWorkerCtx(ctx, int(t.Sigma), strategy, 0, func(w, i int) {
				if levels[i] != l {
					return
				}
				idx := int64(i)
				t.computeEntry(idx, decs[w].at(idx), l)
			})
			if err != nil {
				return err
			}
		}
	case LevelBuckets:
		// Counting sort of entries by level (reused from the cache when the
		// same counts vector was bucketed before), then each level processes
		// only its own entries.
		if err := cancel.Check(ctx); err != nil {
			return err
		}
		var li *levelIndex
		if t.cache != nil && !t.LegacyFill {
			li = t.cache.levelIndexFor(t.Counts, func() *levelIndex {
				return t.buildLevelIndex(pfor, pool.Workers())
			})
		} else {
			li = t.buildLevelIndex(pfor, pool.Workers())
		}
		for l := 1; l <= t.NPrime; l++ {
			bucket := li.order[li.start[l]:li.start[l+1]]
			for w := range decs {
				decs[w].reset()
			}
			lvl := int32(l)
			err := pool.ForWorkerCtx(ctx, len(bucket), strategy, 0, func(w, j int) {
				idx := bucket[j]
				t.computeEntry(idx, decs[w].at(idx), lvl)
			})
			if err != nil {
				return err
			}
		}
	default:
		panic(fmt.Sprintf("dp: unknown level mode %d", int(mode)))
	}
	t.filled = true
	return nil
}

// LevelSizes returns q_l for l = 0..sum(counts): the number of table entries
// on each anti-diagonal of a table with the given per-class counts. It is
// computed by convolution, without enumerating entries, and is the input to
// the simulated-multicore model of package simsched (and to the paper's
// Section IV cost analysis).
func LevelSizes(counts []int) []int64 {
	q := []int64{1}
	for _, n := range counts {
		if n < 0 {
			n = 0
		}
		nq := make([]int64, len(q)+n)
		var window int64
		for l := range nq {
			if l < len(q) {
				window += q[l]
			}
			if prev := l - n - 1; prev >= 0 && prev < len(q) {
				window -= q[prev]
			}
			nq[l] = window
		}
		q = nq
	}
	return q
}

// OptValue returns OPT(N), the minimum machine count for the full job vector
// within T.
func (t *Table) OptValue() (int, error) {
	if !t.filled {
		return 0, ErrNotFilled
	}
	return int(t.Opt[t.Sigma-1]), nil
}

// Reconstruct walks the filled table back from the full vector N and returns
// one machine configuration (a per-size-class job count vector) per machine,
// OPT(N) machines in total. The walk tracks the current entry's level and,
// because Configs is Jobs-sorted, stops each scan at the first configuration
// placing more jobs than remain — so a machine's re-search costs only the
// level's candidate prefix instead of the full configuration list.
func (t *Table) Reconstruct() ([][]int32, error) {
	if !t.filled {
		return nil, ErrNotFilled
	}
	d := len(t.Stride)
	v := make([]int32, d)
	t.digits(t.Sigma-1, v)
	idx := t.Sigma - 1
	level := int32(t.NPrime)
	var machines [][]int32
	for idx != 0 {
		target := t.Opt[idx]
		if target <= 0 {
			return nil, fmt.Errorf("%w: entry %d has OPT=%d on the walk", ErrInconsistent, idx, target)
		}
		found := -1
		for ci := range t.Configs {
			c := &t.Configs[ci]
			if c.Jobs > level {
				break // Jobs-sorted: nothing beyond can fit v
			}
			if conf.Fits(c.Counts, v) && t.Opt[idx-c.Offset] == target-1 {
				found = ci
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("%w: no configuration explains OPT=%d at entry %d", ErrInconsistent, target, idx)
		}
		c := &t.Configs[found]
		machines = append(machines, append([]int32(nil), c.Counts...))
		idx -= c.Offset
		level -= c.Jobs
		for i := range v {
			v[i] -= c.Counts[i]
		}
	}
	return machines, nil
}
