package dp

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/cancel"
	"repro/internal/conf"
)

// FillDataflow is an alternative parallel fill that removes the paper's
// per-level barrier: instead of sweeping anti-diagonals synchronously,
// every entry carries an atomic dependency counter (the size of its
// configuration set C_v) and becomes runnable the moment its last
// dependency resolves, independent of what happens on the rest of its
// level. Workers drain a shared ready queue.
//
// Trade-off vs FillParallel (the paper's Algorithm 3): dataflow eliminates
// n' barriers and tolerates imbalanced levels, but pays one extra pass of
// configuration filtering to initialize the in-degrees and a queue
// operation per entry. BenchmarkAblationDataflow quantifies the exchange;
// results are bit-identical to every other fill. It is the uninterruptible
// shim over FillDataflowCtx.
func (t *Table) FillDataflow(workers int) {
	//lint:ignore ctxfirst deprecated uninterruptible shim; by contract its callers have no context to propagate
	_ = t.FillDataflowCtx(context.Background(), workers)
}

// FillDataflowCtx is FillDataflow with cooperative cancellation. Workers
// select on ctx.Done() alongside the ready queue and additionally poll it
// every cancelDataflowEvery processed entries, so an abort both wakes idle
// workers and interrupts busy ones; the in-degree initialization pass checks
// once per chunk. Every goroutine exits before the call returns (the ready
// channel is buffered to Sigma, so in-flight sends never block a stopping
// worker), the table is left unfilled and the structured cancel error is
// returned.
func (t *Table) FillDataflowCtx(ctx context.Context, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	if t.Sigma == 1 {
		t.Opt[0] = 0
		t.filled = true
		return nil
	}
	d := len(t.Stride)
	done := ctxDone(ctx)

	// In-degree of entry v = |C_v| = number of configurations fitting v.
	// Children of v are the entries v+s for configurations s with
	// v+s <= N componentwise. The scan is level-pruned (configurations
	// beyond the entry's digit sum cannot fit) and the digit vector rides
	// an odometer across each worker's contiguous range.
	indeg := make([]int32, t.Sigma)
	{
		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(workers)
		chunk := (t.Sigma + int64(workers) - 1) / int64(workers)
		for w := 0; w < workers; w++ {
			go func(lo int64) {
				defer wg.Done()
				hi := lo + chunk
				if hi > t.Sigma {
					hi = t.Sigma
				}
				if lo >= hi {
					return
				}
				v := make([]int32, d)
				t.digits(lo, v)
				lvl := sumDigits(v)
				budget := int64(fillCheckEvery)
				for idx := lo; idx < hi; idx++ {
					if done != nil {
						if budget--; budget <= 0 {
							select {
							case <-done:
								stop.Store(true)
								return
							default:
							}
							budget = fillCheckEvery
						}
						if stop.Load() {
							return
						}
					}
					var deg int32
					bound := int(t.set.Bounds.Upto(lvl))
					for ci := 0; ci < bound; ci++ {
						if conf.Fits(t.set.Row(ci), v) {
							deg++
						}
					}
					indeg[idx] = deg
					lvl += t.advanceOne(v)
				}
			}(int64(w) * chunk)
		}
		wg.Wait()
		if err := cancel.Check(ctx); err != nil {
			return err
		}
	}

	ready := make(chan int64, t.Sigma)
	var processed atomic.Int64
	var interrupted atomic.Bool
	t.Opt[0] = 0
	// Seed: children of the zero entry whose only dependency is entry 0,
	// plus any entry whose whole configuration set is {singleton} resolved
	// by it. Rather than special-casing, treat entry 0 as processed and
	// decrement its children like any other entry.
	total := t.Sigma
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			v := make([]int32, d)
			limit := make([]int32, d)
			for i := range limit {
				limit[i] = int32(t.Counts[i])
			}
			var handled uint32
			for {
				var idx int64
				var ok bool
				if done != nil {
					select {
					case <-done:
						interrupted.Store(true)
						return
					case idx, ok = <-ready:
					}
				} else {
					idx, ok = <-ready
				}
				if !ok {
					return
				}
				if interrupted.Load() {
					// Another worker observed the cancellation; stop without
					// resolving children so the remaining queue drains fast.
					return
				}
				if done != nil {
					if handled++; handled%cancelDataflowEvery == 0 {
						select {
						case <-done:
							interrupted.Store(true)
							return
						default:
						}
					}
				}
				if idx != 0 {
					t.digits(idx, v)
					t.computeEntry(idx, v, sumDigits(v))
				} else {
					t.digits(idx, v)
				}
				// Resolve children: v + s within bounds.
				for ci := range t.Configs {
					c := &t.Configs[ci]
					child := idx + c.Offset
					ok := true
					for i := 0; i < d; i++ {
						if v[i]+c.Counts[i] > limit[i] {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					if atomic.AddInt32(&indeg[child], -1) == 0 {
						ready <- child
					}
				}
				if processed.Add(1) == total {
					close(ready)
				}
			}
		}()
	}
	ready <- 0
	wg.Wait()
	if interrupted.Load() {
		err := cancel.From(ctx)
		err.EntriesFilled = processed.Load()
		return err
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	t.filled = true
	return nil
}

// cancelDataflowEvery is the per-worker poll granularity of the dataflow
// fill's busy loop. Dataflow entries are heavier than the sequential sweep's
// (each pays a digit decode and a children scan), so the budget is smaller
// than fillCheckEvery for a comparable abort latency.
const cancelDataflowEvery = 1024
