package dp

import (
	"testing"

	"repro/internal/par"
	"repro/pcmax"
)

func TestZeroCountClass(t *testing.T) {
	// A class with count 0 contributes radix 1: it must not break strides,
	// levels or configs.
	tbl, err := New([]pcmax.Time{5, 7}, []int{0, 3}, 21, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Sigma != 4 {
		t.Fatalf("sigma = %d, want 4", tbl.Sigma)
	}
	tbl.FillSequential()
	opt, err := tbl.OptValue()
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs of 7 with T=21: all fit on one machine.
	if opt != 1 {
		t.Fatalf("OPT = %d, want 1", opt)
	}
}

func TestAllZeroCounts(t *testing.T) {
	tbl, err := New([]pcmax.Time{5}, []int{0}, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl.FillSequential()
	if opt, _ := tbl.OptValue(); opt != 0 {
		t.Fatalf("OPT = %d, want 0", opt)
	}
	machines, err := tbl.Reconstruct()
	if err != nil || len(machines) != 0 {
		t.Fatalf("machines = %v, %v", machines, err)
	}
}

func TestSingleEntryPerLevel(t *testing.T) {
	// One class: levels are singletons; parallel fill must handle q_l = 1
	// with many workers (the paper's q_l < P case).
	tbl, err := New([]pcmax.Time{3}, []int{12}, 9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(8)
	defer pool.Close()
	tbl.FillParallel(pool, LevelBuckets, par.RoundRobin)
	opt, err := tbl.OptValue()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 4 { // 12 jobs of 3, 3 per machine
		t.Fatalf("OPT = %d, want 4", opt)
	}
}

func TestTightCapacityOneJobPerMachine(t *testing.T) {
	// T equal to the size: every machine holds exactly one job.
	tbl, err := New([]pcmax.Time{9}, []int{5}, 9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl.FillSequential()
	if opt, _ := tbl.OptValue(); opt != 5 {
		t.Fatalf("OPT = %d, want 5", opt)
	}
	machines, err := tbl.Reconstruct()
	if err != nil || len(machines) != 5 {
		t.Fatalf("machines = %d, %v", len(machines), err)
	}
}

func TestManyDimensionsSmallCounts(t *testing.T) {
	// Eight classes of one job each: sigma = 2^8, deep anti-diagonal
	// structure with tiny levels.
	sizes := []pcmax.Time{10, 11, 12, 13, 14, 15, 16, 17}
	counts := []int{1, 1, 1, 1, 1, 1, 1, 1}
	tbl, err := New(sizes, counts, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(sizes, counts, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.FillSequential()
	pool := par.NewPool(3)
	defer pool.Close()
	tbl.FillParallel(pool, LevelScan, par.Dynamic)
	for i := range tbl.Opt {
		if tbl.Opt[i] != ref.Opt[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	// Total 108 over capacity 30: at least ceil(108/30)=4 machines; pairs
	// sum <= 30 only for (10,...): verify against the sequential value only.
	opt, _ := tbl.OptValue()
	refOpt, _ := ref.OptValue()
	if opt != refOpt {
		t.Fatalf("opt %d != %d", opt, refOpt)
	}
}

func TestLevelSizesSingleClass(t *testing.T) {
	q := LevelSizes([]int{4})
	want := []int64{1, 1, 1, 1, 1}
	if len(q) != len(want) {
		t.Fatalf("q = %v", q)
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
}

func TestLevelSizesNegativeCountClamped(t *testing.T) {
	q := LevelSizes([]int{-3, 2})
	if len(q) != 3 || q[0] != 1 || q[1] != 1 || q[2] != 1 {
		t.Fatalf("q = %v, want [1 1 1]", q)
	}
}
