package dp

import (
	"encoding/binary"
	"sync"

	"repro/internal/conf"
	"repro/pcmax"
)

// Cache memoizes the two expensive table-independent artifacts of a DP
// build across bisection iterations:
//
//   - configuration sets, keyed by the *canonical profile* of the
//     enumeration inputs (see below): the bisection re-attempts its converged
//     target (always one repeated key per solve), speculative probing
//     revisits targets across rounds, warm-started delta solves revisit the
//     previous solution's neighborhood, and a production caller solving many
//     similar instances repeats keys freely;
//   - level-bucket indexes, keyed by the counts vector alone: the bucket
//     order of FillParallel depends only on the per-class counts, which
//     repeat across probes even when T (and therefore sizes and the
//     configuration set) differ.
//
// # Profile-canonical configuration keys
//
// A configuration (s_1, ..., s_d) is feasible iff sum_i s_i*size_i <= T.
// With g = gcd(size_1, ..., size_d) every weight sum is a multiple of g, so
// the inequality is equivalent to sum_i s_i*(size_i/g) <= floor(T/g): the
// whole enumeration — faithful or sparse, dominance checks included, since
// every comparison it makes is of the form weight + size_i <= T — depends
// only on the reduced sizes and the reduced capacity. Config sets are
// therefore cached under (sizes/g, counts, floor(T/g), limits, mode) and
// built from those canonical values, which makes the cached artifact a pure
// function of the key regardless of which probe built it. Two probes at
// different targets whose rounded job profiles coincide after reduction —
// the common case for the warm re-solves of an incremental session, where
// the rounding unit shifts with T but the class structure does not — share
// one enumeration instead of repeating it. Note the canonical build leaves
// conf.Config.Weight expressed in units of g; the DP fills, packing kernels
// and reconstruction consume only Counts, Jobs and Offset, which are
// scale-invariant.
//
// Keys are compact binary strings assembled in a buffer reused across
// lookups (guarded by mu), so the hit path performs no allocation — lookups
// happen once per bisection probe on the solve hot path.
//
// All cached artifacts are immutable and shared by reference; a Cache is
// safe for concurrent use (speculative bisection probes hit it from many
// goroutines). Eviction is generational: when a map outgrows its budget it
// is dropped wholesale, which keeps the bookkeeping trivial and bounds
// retained memory without LRU machinery.
type Cache struct {
	mu      sync.Mutex
	configs map[string]configsEntry
	levels  map[string]*levelIndex
	// levelElems tracks the total retained order-array elements, the
	// dominant memory cost (8 bytes each).
	levelElems int64
	stats      CacheStats
	// keyBuf is the shared key-assembly buffer; it is only touched while mu
	// is held and must be copied (string conversion) before the lock drops.
	keyBuf []byte
}

// configsEntry pairs a Jobs-sorted configuration list with its flat scan
// view and, for sparse enumerations, the sparsification counters.
type configsEntry struct {
	configs []conf.Config
	set     *conf.Set
	sstats  conf.SparseStats
}

// maxCachedConfigSets bounds the configuration map (a bisection probes
// O(log range) distinct targets; 64 covers several solves between resets).
const maxCachedConfigSets = 64

// maxCachedLevelElems bounds the total order-array elements retained across
// cached level indexes — one DefaultMaxEntries-sized table's worth.
const maxCachedLevelElems = int64(DefaultMaxEntries)

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		configs: make(map[string]configsEntry),
		levels:  make(map[string]*levelIndex),
	}
}

// CacheStats counts cache traffic; retrieve a snapshot with Stats.
type CacheStats struct {
	// ConfigHits and ConfigMisses count configuration-set lookups.
	ConfigHits, ConfigMisses int64
	// LevelHits and LevelMisses count level-bucket-index lookups.
	LevelHits, LevelMisses int64
}

// Sub returns the per-counter difference s - prev. Callers sharing one cache
// across solves snapshot the stats before a solve and subtract afterwards to
// report that solve's own traffic rather than the cache's lifetime totals.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		ConfigHits:   s.ConfigHits - prev.ConfigHits,
		ConfigMisses: s.ConfigMisses - prev.ConfigMisses,
		LevelHits:    s.LevelHits - prev.LevelHits,
		LevelMisses:  s.LevelMisses - prev.LevelMisses,
	}
}

// Stats returns a snapshot of the cache counters. A nil cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// gcdTime returns gcd(a, b) for a, b >= 0.
func gcdTime(a, b pcmax.Time) pcmax.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// sizesGCD returns the greatest common divisor of the (positive) sizes, or 1
// for an empty profile.
func sizesGCD(sizes []pcmax.Time) pcmax.Time {
	var g pcmax.Time
	for _, s := range sizes {
		g = gcdTime(g, s)
		if g == 1 {
			return 1
		}
	}
	if g == 0 {
		return 1
	}
	return g
}

// appendConfigKey assembles the canonical binary configuration-set key into
// b: enumeration mode and (when sparse) every sparsification parameter — a
// mixed-mode caller, e.g. the ptas-sparse driver re-verifying its converged
// target with a faithful table at the same profile, must never be handed the
// other mode's configuration set — followed by the limit and the
// gcd-reduced capacity and sizes. Strides derive from counts, so they carry
// no extra information. Every component is length-prefixed or fixed-order
// varint, so the encoding is unambiguous.
func appendConfigKey(b []byte, sizes []pcmax.Time, g pcmax.Time, counts []int, cT pcmax.Time, maxConfigs int, mode EnumMode, sopts conf.SparseOptions) []byte {
	b = append(b, byte(mode))
	if mode == EnumSparse {
		b = binary.AppendUvarint(b, uint64(max64(int64(sopts.MaxSupport), 0)))
		b = binary.AppendUvarint(b, uint64(max64(int64(sopts.KeepJobs), 0)))
		if sopts.NoDominance {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.AppendUvarint(b, uint64(max64(int64(maxConfigs), 0)))
	b = binary.AppendUvarint(b, uint64(cT))
	b = binary.AppendUvarint(b, uint64(len(sizes)))
	for i := range sizes {
		b = binary.AppendUvarint(b, uint64(sizes[i]/g))
		b = binary.AppendUvarint(b, uint64(counts[i]))
	}
	return b
}

// appendCountsKey assembles the binary level-index key: the counts vector,
// length-prefixed.
func appendCountsKey(b []byte, counts []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(counts)))
	for _, n := range counts {
		b = binary.AppendUvarint(b, uint64(max64(int64(n), 0)))
	}
	return b
}

// max64 returns the larger of a and b.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// configSet returns the Jobs-sorted configuration list, its flat view and
// the sparsification counters for the given enumeration inputs, consulting
// the cache when non-nil. Cached sets are built from the gcd-canonical
// profile (see the Cache doc comment), so their Config.Weight values are in
// canonical units; everything the fills and reconstruction consume is
// scale-invariant. Errors (e.g. conf.ErrTooMany) are never cached.
func (c *Cache) configSet(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int, mode EnumMode, sopts conf.SparseOptions) ([]conf.Config, *conf.Set, conf.SparseStats, error) {
	if c == nil {
		return buildConfigSet(sizes, counts, T, stride, maxConfigs, mode, sopts)
	}
	g := sizesGCD(sizes)
	cT := T / g
	c.mu.Lock()
	c.keyBuf = appendConfigKey(c.keyBuf[:0], sizes, g, counts, cT, maxConfigs, mode, sopts)
	if e, ok := c.configs[string(c.keyBuf)]; ok {
		c.stats.ConfigHits++
		c.mu.Unlock()
		return e.configs, e.set, e.sstats, nil
	}
	c.stats.ConfigMisses++
	key := string(c.keyBuf) // materialize: keyBuf is shared and mu drops next
	c.mu.Unlock()

	csizes := make([]pcmax.Time, len(sizes))
	for i, s := range sizes {
		csizes[i] = s / g
	}
	configs, set, sstats, err := buildConfigSet(csizes, counts, cT, stride, maxConfigs, mode, sopts)
	if err != nil {
		return nil, nil, sstats, err
	}
	c.mu.Lock()
	if len(c.configs) >= maxCachedConfigSets {
		c.configs = make(map[string]configsEntry)
	}
	c.configs[key] = configsEntry{configs: configs, set: set, sstats: sstats}
	c.mu.Unlock()
	return configs, set, sstats, nil
}

// buildConfigSet enumerates, Jobs-sorts and flattens a configuration set.
func buildConfigSet(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int, mode EnumMode, sopts conf.SparseOptions) ([]conf.Config, *conf.Set, conf.SparseStats, error) {
	var configs []conf.Config
	var sstats conf.SparseStats
	var err error
	if mode == EnumSparse {
		configs, sstats, err = conf.EnumerateSparse(sizes, counts, T, stride, maxConfigs, sopts)
	} else {
		configs, err = conf.Enumerate(sizes, counts, T, stride, maxConfigs)
	}
	if err != nil {
		return nil, nil, sstats, err
	}
	bounds := conf.SortByJobs(configs)
	return configs, conf.NewSet(configs, len(sizes), bounds), sstats, nil
}

// levelIndexFor returns the level-bucket index for the given counts vector,
// building it with build on a miss. Two goroutines missing concurrently may
// both build; the last store wins — the artifact is deterministic, so either
// copy is correct.
func (c *Cache) levelIndexFor(counts []int, build func() *levelIndex) *levelIndex {
	c.mu.Lock()
	c.keyBuf = appendCountsKey(c.keyBuf[:0], counts)
	if li, ok := c.levels[string(c.keyBuf)]; ok {
		c.stats.LevelHits++
		c.mu.Unlock()
		return li
	}
	c.stats.LevelMisses++
	key := string(c.keyBuf)
	c.mu.Unlock()

	li := build()
	elems := int64(len(li.order))
	c.mu.Lock()
	if c.levelElems+elems > maxCachedLevelElems {
		c.levels = make(map[string]*levelIndex)
		c.levelElems = 0
	}
	if elems <= maxCachedLevelElems {
		c.levels[key] = li
		c.levelElems += elems
	}
	c.mu.Unlock()
	return li
}
