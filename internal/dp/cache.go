package dp

import (
	"strconv"
	"sync"

	"repro/internal/conf"
	"repro/pcmax"
)

// Cache memoizes the two expensive table-independent artifacts of a DP
// build across bisection iterations:
//
//   - configuration sets, keyed by (sizes, counts, T, maxConfigs): the
//     bisection re-attempts its converged target (always one repeated key
//     per solve), speculative probing revisits targets across rounds, and a
//     production caller solving many similar instances repeats keys freely;
//   - level-bucket indexes, keyed by the counts vector alone: the bucket
//     order of FillParallel depends only on the per-class counts, which
//     repeat across probes even when T (and therefore sizes and the
//     configuration set) differ.
//
// All cached artifacts are immutable and shared by reference; a Cache is
// safe for concurrent use (speculative bisection probes hit it from many
// goroutines). Eviction is generational: when a map outgrows its budget it
// is dropped wholesale, which keeps the bookkeeping trivial and bounds
// retained memory without LRU machinery.
type Cache struct {
	mu      sync.Mutex
	configs map[string]configsEntry
	levels  map[string]*levelIndex
	// levelElems tracks the total retained order-array elements, the
	// dominant memory cost (8 bytes each).
	levelElems int64
	stats      CacheStats
}

// configsEntry pairs a Jobs-sorted configuration list with its flat scan
// view and, for sparse enumerations, the sparsification counters.
type configsEntry struct {
	configs []conf.Config
	set     *conf.Set
	sstats  conf.SparseStats
}

// maxCachedConfigSets bounds the configuration map (a bisection probes
// O(log range) distinct targets; 64 covers several solves between resets).
const maxCachedConfigSets = 64

// maxCachedLevelElems bounds the total order-array elements retained across
// cached level indexes — one DefaultMaxEntries-sized table's worth.
const maxCachedLevelElems = int64(DefaultMaxEntries)

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		configs: make(map[string]configsEntry),
		levels:  make(map[string]*levelIndex),
	}
}

// CacheStats counts cache traffic; retrieve a snapshot with Stats.
type CacheStats struct {
	// ConfigHits and ConfigMisses count configuration-set lookups.
	ConfigHits, ConfigMisses int64
	// LevelHits and LevelMisses count level-bucket-index lookups.
	LevelHits, LevelMisses int64
}

// Stats returns a snapshot of the cache counters. A nil cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// configKey serializes the enumeration inputs, including the enumeration
// mode and (when sparse) every sparsification parameter: a mixed-mode caller
// — the ptas-sparse driver re-verifies its converged target with a faithful
// table at the same (sizes, counts, T) — must never be handed the other
// mode's configuration set. Strides derive from counts, so they carry no
// extra information.
func configKey(sizes []pcmax.Time, counts []int, T pcmax.Time, maxConfigs int, mode EnumMode, sopts conf.SparseOptions) string {
	b := make([]byte, 0, 32+8*len(sizes))
	b = strconv.AppendInt(b, int64(T), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(maxConfigs), 10)
	if mode == EnumSparse {
		b = append(b, "|s:"...)
		b = strconv.AppendInt(b, int64(sopts.MaxSupport), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(sopts.KeepJobs), 10)
		b = append(b, ':')
		if sopts.NoDominance {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	for i := range sizes {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(sizes[i]), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(counts[i]), 10)
	}
	return string(b)
}

// countsKey serializes a counts vector.
func countsKey(counts []int) string {
	b := make([]byte, 0, 4*len(counts))
	for i, n := range counts {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(n), 10)
	}
	return string(b)
}

// configSet returns the Jobs-sorted configuration list, its flat view and
// the sparsification counters for the given enumeration inputs, consulting
// the cache when non-nil. Errors (e.g. conf.ErrTooMany) are never cached.
func (c *Cache) configSet(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int, mode EnumMode, sopts conf.SparseOptions) ([]conf.Config, *conf.Set, conf.SparseStats, error) {
	if c == nil {
		return buildConfigSet(sizes, counts, T, stride, maxConfigs, mode, sopts)
	}
	key := configKey(sizes, counts, T, maxConfigs, mode, sopts)
	c.mu.Lock()
	if e, ok := c.configs[key]; ok {
		c.stats.ConfigHits++
		c.mu.Unlock()
		return e.configs, e.set, e.sstats, nil
	}
	c.stats.ConfigMisses++
	c.mu.Unlock()

	configs, set, sstats, err := buildConfigSet(sizes, counts, T, stride, maxConfigs, mode, sopts)
	if err != nil {
		return nil, nil, sstats, err
	}
	c.mu.Lock()
	if len(c.configs) >= maxCachedConfigSets {
		c.configs = make(map[string]configsEntry)
	}
	c.configs[key] = configsEntry{configs: configs, set: set, sstats: sstats}
	c.mu.Unlock()
	return configs, set, sstats, nil
}

// buildConfigSet enumerates, Jobs-sorts and flattens a configuration set.
func buildConfigSet(sizes []pcmax.Time, counts []int, T pcmax.Time, stride []int64, maxConfigs int, mode EnumMode, sopts conf.SparseOptions) ([]conf.Config, *conf.Set, conf.SparseStats, error) {
	var configs []conf.Config
	var sstats conf.SparseStats
	var err error
	if mode == EnumSparse {
		configs, sstats, err = conf.EnumerateSparse(sizes, counts, T, stride, maxConfigs, sopts)
	} else {
		configs, err = conf.Enumerate(sizes, counts, T, stride, maxConfigs)
	}
	if err != nil {
		return nil, nil, sstats, err
	}
	bounds := conf.SortByJobs(configs)
	return configs, conf.NewSet(configs, len(sizes), bounds), sstats, nil
}

// levelIndexFor returns the level-bucket index for the given counts vector,
// building it with build on a miss. Two goroutines missing concurrently may
// both build; the last store wins — the artifact is deterministic, so either
// copy is correct.
func (c *Cache) levelIndexFor(counts []int, build func() *levelIndex) *levelIndex {
	key := countsKey(counts)
	c.mu.Lock()
	if li, ok := c.levels[key]; ok {
		c.stats.LevelHits++
		c.mu.Unlock()
		return li
	}
	c.stats.LevelMisses++
	c.mu.Unlock()

	li := build()
	elems := int64(len(li.order))
	c.mu.Lock()
	if c.levelElems+elems > maxCachedLevelElems {
		c.levels = make(map[string]*levelIndex)
		c.levelElems = 0
	}
	if elems <= maxCachedLevelElems {
		c.levels[key] = li
		c.levelElems += elems
	}
	c.mu.Unlock()
	return li
}
