package dp

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/pcmax"
)

// paperTable builds the paper's Section III example: sizes (6, 11), counts
// N = (2, 3), target makespan T = 30.
func paperTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New([]pcmax.Time{6, 11}, []int{2, 3}, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPaperExampleDimensions(t *testing.T) {
	tbl := paperTable(t)
	if tbl.Sigma != 12 {
		t.Fatalf("sigma = %d, want 12 (the paper's (2+1)(3+1) entries)", tbl.Sigma)
	}
	if tbl.NPrime != 5 {
		t.Fatalf("n' = %d, want 5", tbl.NPrime)
	}
	if len(tbl.Configs) != 7 {
		t.Fatalf("%d configurations, want the paper's 7", len(tbl.Configs))
	}
	if tbl.Stride[0] != 4 || tbl.Stride[1] != 1 {
		t.Fatalf("strides = %v, want [4 1] (row-major)", tbl.Stride)
	}
}

func TestPaperExampleOptValues(t *testing.T) {
	tbl := paperTable(t)
	tbl.FillSequential()
	// Hand-checked values: a machine holds at most (1,2)=28, (2,1)=23,
	// (0,2)=22 etc. OPT(2,3) needs 2 machines: (1,2)+(1,1).
	cases := map[[2]int]int32{
		{0, 0}: 0, {0, 1}: 1, {0, 2}: 1, {0, 3}: 2,
		{1, 0}: 1, {1, 1}: 1, {1, 2}: 1, {1, 3}: 2,
		{2, 0}: 1, {2, 1}: 1, {2, 2}: 2, {2, 3}: 2,
	}
	for v, want := range cases {
		idx := int64(v[0])*4 + int64(v[1])
		if got := tbl.Opt[idx]; got != want {
			t.Fatalf("OPT(%d,%d) = %d, want %d", v[0], v[1], got, want)
		}
	}
	opt, err := tbl.OptValue()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("OPT(N) = %d, want 2", opt)
	}
}

func TestAllFillsAgreeOnPaperExample(t *testing.T) {
	ref := paperTable(t)
	ref.FillSequential()

	rec := paperTable(t)
	rec.FillRecursive()
	if rec.Opt[rec.Sigma-1] != ref.Opt[ref.Sigma-1] {
		t.Fatalf("recursive OPT %d != sequential %d", rec.Opt[rec.Sigma-1], ref.Opt[ref.Sigma-1])
	}

	pool := par.NewPool(3)
	defer pool.Close()
	for _, mode := range []LevelMode{LevelBuckets, LevelScan} {
		for _, strategy := range par.Strategies {
			tbl := paperTable(t)
			tbl.FillParallel(pool, mode, strategy)
			for i := range tbl.Opt {
				if tbl.Opt[i] != ref.Opt[i] {
					t.Fatalf("mode %v strategy %v: entry %d = %d, want %d",
						mode, strategy, i, tbl.Opt[i], ref.Opt[i])
				}
			}
		}
	}
}

func TestPerEntryEnumMatchesShared(t *testing.T) {
	ref := paperTable(t)
	ref.FillSequential()

	tbl := paperTable(t)
	tbl.PerEntryEnum = true
	tbl.FillSequential()
	for i := range tbl.Opt {
		if tbl.Opt[i] != ref.Opt[i] {
			t.Fatalf("per-entry enum entry %d = %d, want %d", i, tbl.Opt[i], ref.Opt[i])
		}
	}

	rec := paperTable(t)
	rec.PerEntryEnum = true
	rec.FillRecursive()
	if rec.Opt[rec.Sigma-1] != ref.Opt[ref.Sigma-1] {
		t.Fatalf("per-entry recursive OPT %d != %d", rec.Opt[rec.Sigma-1], ref.Opt[ref.Sigma-1])
	}

	pool := par.NewPool(2)
	defer pool.Close()
	ptbl := paperTable(t)
	ptbl.PerEntryEnum = true
	ptbl.FillParallel(pool, LevelBuckets, par.RoundRobin)
	for i := range ptbl.Opt {
		if ptbl.Opt[i] != ref.Opt[i] {
			t.Fatalf("per-entry parallel entry %d = %d, want %d", i, ptbl.Opt[i], ref.Opt[i])
		}
	}
}

func TestReconstructPaperExample(t *testing.T) {
	tbl := paperTable(t)
	tbl.FillSequential()
	machines, err := tbl.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 {
		t.Fatalf("reconstructed %d machines, want 2", len(machines))
	}
	var total [2]int32
	for _, cfg := range machines {
		var w pcmax.Time
		for c, cnt := range cfg {
			total[c] += cnt
			w += pcmax.Time(cnt) * tbl.Sizes[c]
		}
		if w > tbl.T {
			t.Fatalf("machine config %v weighs %d > T=%d", cfg, w, tbl.T)
		}
	}
	if total[0] != 2 || total[1] != 3 {
		t.Fatalf("reconstruction covers %v, want (2,3)", total)
	}
}

func TestReconstructAfterRecursiveFill(t *testing.T) {
	tbl := paperTable(t)
	tbl.FillRecursive()
	machines, err := tbl.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 {
		t.Fatalf("reconstructed %d machines, want 2", len(machines))
	}
}

func TestUseBeforeFill(t *testing.T) {
	tbl := paperTable(t)
	if _, err := tbl.OptValue(); !errors.Is(err, ErrNotFilled) {
		t.Fatalf("want ErrNotFilled, got %v", err)
	}
	if _, err := tbl.Reconstruct(); !errors.Is(err, ErrNotFilled) {
		t.Fatalf("want ErrNotFilled, got %v", err)
	}
}

func TestEmptyTable(t *testing.T) {
	tbl, err := New(nil, nil, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Sigma != 1 {
		t.Fatalf("sigma = %d, want 1", tbl.Sigma)
	}
	tbl.FillSequential()
	opt, err := tbl.OptValue()
	if err != nil || opt != 0 {
		t.Fatalf("OPT = %d, %v; want 0", opt, err)
	}
	machines, err := tbl.Reconstruct()
	if err != nil || len(machines) != 0 {
		t.Fatalf("machines = %v, %v", machines, err)
	}

	pool := par.NewPool(2)
	defer pool.Close()
	tbl2, err := New(nil, nil, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl2.FillParallel(pool, LevelBuckets, par.RoundRobin)
	if opt, err := tbl2.OptValue(); err != nil || opt != 0 {
		t.Fatalf("parallel empty table OPT = %d, %v", opt, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]pcmax.Time{5}, []int{1, 2}, 10, 0, 0); err == nil {
		t.Fatal("want mismatched dims error")
	}
	if _, err := New([]pcmax.Time{5}, []int{1}, 0, 0, 0); err == nil {
		t.Fatal("want T<1 error")
	}
	if _, err := New([]pcmax.Time{0}, []int{1}, 10, 0, 0); err == nil {
		t.Fatal("want size<=0 error")
	}
	if _, err := New([]pcmax.Time{11}, []int{1}, 10, 0, 0); err == nil {
		t.Fatal("want size>T error")
	}
	if _, err := New([]pcmax.Time{5, 5}, []int{1, 1}, 10, 0, 0); err == nil {
		t.Fatal("want non-ascending sizes error")
	}
	if _, err := New([]pcmax.Time{5}, []int{-1}, 10, 0, 0); err == nil {
		t.Fatal("want negative count error")
	}
}

func TestTableTooLarge(t *testing.T) {
	_, err := New([]pcmax.Time{1, 2, 3}, []int{100, 100, 100}, 1000, 1000, 0)
	if !errors.Is(err, ErrTableTooLarge) {
		t.Fatalf("want ErrTableTooLarge, got %v", err)
	}
}

func TestLevelSizesPaperExample(t *testing.T) {
	q := LevelSizes([]int{2, 3})
	want := []int64{1, 2, 3, 3, 2, 1}
	if len(q) != len(want) {
		t.Fatalf("levels = %v, want %v", q, want)
	}
	for l := range want {
		if q[l] != want[l] {
			t.Fatalf("q_%d = %d, want %d (paper's anti-diagonal sizes)", l, q[l], want[l])
		}
	}
}

func TestLevelSizesSumsToSigma(t *testing.T) {
	f := func(c1, c2, c3 uint8) bool {
		counts := []int{int(c1 % 7), int(c2 % 7), int(c3 % 7)}
		q := LevelSizes(counts)
		var sum int64
		for _, v := range q {
			sum += v
		}
		sigma := int64(counts[0]+1) * int64(counts[1]+1) * int64(counts[2]+1)
		return sum == sigma && len(q) == counts[0]+counts[1]+counts[2]+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSizesEmpty(t *testing.T) {
	q := LevelSizes(nil)
	if len(q) != 1 || q[0] != 1 {
		t.Fatalf("LevelSizes(nil) = %v, want [1]", q)
	}
}

// randomTable builds a random valid table for property tests.
func randomTable(src *rng.Source) *Table {
	d := 1 + src.Intn(3)
	sizes := make([]pcmax.Time, 0, d)
	counts := make([]int, 0, d)
	s := pcmax.Time(0)
	for i := 0; i < d; i++ {
		s += 1 + pcmax.Time(src.Int64n(15))
		sizes = append(sizes, s)
		counts = append(counts, src.Intn(5))
	}
	T := s + pcmax.Time(src.Int64n(40))
	tbl, err := New(sizes, counts, T, 0, 0)
	if err != nil {
		panic(err)
	}
	return tbl
}

func cloneEmpty(t *Table) *Table {
	tbl, err := New(t.Sizes, t.Counts, t.T, 0, 0)
	if err != nil {
		panic(err)
	}
	return tbl
}

func TestAllFillsAgreeOnRandomTablesProperty(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	f := func(seed uint64) bool {
		src := rng.New(seed)
		ref := randomTable(src)
		ref.FillSequential()

		rec := cloneEmpty(ref)
		rec.FillRecursive()
		if rec.Opt[rec.Sigma-1] != ref.Opt[ref.Sigma-1] {
			return false
		}

		for _, mode := range []LevelMode{LevelBuckets, LevelScan} {
			p := cloneEmpty(ref)
			p.FillParallel(pool, mode, par.Dynamic)
			for i := range p.Opt {
				if p.Opt[i] != ref.Opt[i] {
					return false
				}
			}
		}

		pe := cloneEmpty(ref)
		pe.PerEntryEnum = true
		pe.FillSequential()
		for i := range pe.Opt {
			if pe.Opt[i] != ref.Opt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		tbl := randomTable(src)
		tbl.FillSequential()
		machines, err := tbl.Reconstruct()
		if err != nil {
			return false
		}
		opt, err := tbl.OptValue()
		if err != nil || len(machines) != opt {
			return false
		}
		covered := make([]int32, len(tbl.Sizes))
		for _, cfg := range machines {
			var w pcmax.Time
			for c, cnt := range cfg {
				covered[c] += cnt
				w += pcmax.Time(cnt) * tbl.Sizes[c]
			}
			if w > tbl.T {
				return false
			}
		}
		for c := range covered {
			if int(covered[c]) != tbl.Counts[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptMatchesGreedySingleSize(t *testing.T) {
	// One size class: OPT(n) = ceil(n / floor(T/size)).
	tbl, err := New([]pcmax.Time{7}, []int{10}, 22, 0, 0) // 3 jobs per machine
	if err != nil {
		t.Fatal(err)
	}
	tbl.FillSequential()
	opt, err := tbl.OptValue()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 4 { // ceil(10/3)
		t.Fatalf("OPT = %d, want 4", opt)
	}
}

func TestLevelModeStrings(t *testing.T) {
	if LevelBuckets.String() != "buckets" || LevelScan.String() != "scan" {
		t.Fatal("level mode names changed")
	}
	if LevelMode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}
