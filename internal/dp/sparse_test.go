package dp

import (
	"testing"

	"repro/internal/conf"
	"repro/pcmax"
)

// TestCacheKeysSeparateEnumModes guards the cache-poisoning hazard of the
// sparse pipeline: the driver's certification re-fills the same
// (sizes, counts, T) box faithfully right after sparse probes, so a shared
// cache must never hand one mode the other mode's configuration set.
func TestCacheKeysSeparateEnumModes(t *testing.T) {
	cache := NewCache()
	sizes := []pcmax.Time{6, 11}
	counts := []int{2, 3}
	sopts := conf.SparseOptions{MaxSupport: 1, KeepJobs: 1}

	faithful, err := NewCached(sizes, counts, 30, 0, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparse(sizes, counts, 30, 0, 0, cache, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigHits != 0 || st.ConfigMisses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses (modes must not collide)", st)
	}
	if len(sparse.Configs) >= len(faithful.Configs) {
		t.Fatalf("sparse set (%d) not smaller than faithful (%d) on a prunable box",
			len(sparse.Configs), len(faithful.Configs))
	}
	if faithful.Mode != EnumFaithful || sparse.Mode != EnumSparse {
		t.Fatalf("modes %v/%v", faithful.Mode, sparse.Mode)
	}
	if sparse.SparseStats.Retained != len(sparse.Configs) {
		t.Fatalf("SparseStats.Retained %d != %d configs", sparse.SparseStats.Retained, len(sparse.Configs))
	}
	if faithful.SparseStats != (conf.SparseStats{}) {
		t.Fatalf("faithful table carries sparse stats %+v", faithful.SparseStats)
	}

	// Same-mode rebuilds hit; different sparse parameters miss.
	if _, err := NewSparse(sizes, counts, 30, 0, 0, cache, sopts); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigHits != 1 {
		t.Fatalf("stats = %+v, want the same-parameter sparse rebuild to hit", st)
	}
	if _, err := NewSparse(sizes, counts, 30, 0, 0, cache,
		conf.SparseOptions{MaxSupport: 2, KeepJobs: 1}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.ConfigMisses != 3 {
		t.Fatalf("stats = %+v, want differing sparse parameters to miss", st)
	}
}

// TestSparseTableStaysFeasible checks the retention floor end to end: a
// sparse table's DP stays total (every reachable entry keeps a candidate) and
// its reconstruction is a valid packing, even under an aggressive support
// cap.
func TestSparseTableStaysFeasible(t *testing.T) {
	sizes := []pcmax.Time{5, 7, 9}
	counts := []int{3, 2, 4}
	ref, err := New(sizes, counts, 25, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.FillSequential()
	refOpt, err := ref.OptValue()
	if err != nil {
		t.Fatal(err)
	}

	tbl, err := NewSparse(sizes, counts, 25, 0, 0, nil, conf.SparseOptions{MaxSupport: 1, KeepJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl.FillSequential()
	opt, err := tbl.OptValue()
	if err != nil {
		t.Fatal(err)
	}
	if opt < refOpt {
		t.Fatalf("sparse OPT %d below faithful %d (pruning can only raise it)", opt, refOpt)
	}
	machines, err := tbl.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != int(opt) {
		t.Fatalf("reconstruction used %d machines, OPT says %d", len(machines), opt)
	}
	total := make([]int32, len(counts))
	for _, cfg := range machines {
		var w pcmax.Time
		for c, cnt := range cfg {
			total[c] += cnt
			w += pcmax.Time(cnt) * sizes[c]
		}
		if w > 25 {
			t.Fatalf("machine exceeds capacity: %v", cfg)
		}
	}
	for c := range counts {
		if int(total[c]) != counts[c] {
			t.Fatalf("class %d scheduled %d of %d jobs", c, total[c], counts[c])
		}
	}
}
