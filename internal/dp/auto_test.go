package dp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cancel"
	"repro/internal/par"
	"repro/pcmax"
)

// bigTableSpec is bigTable's instance triple, for cached builds.
func bigTableSpec() ([]pcmax.Time, []int, pcmax.Time) {
	return []pcmax.Time{1, 2, 3, 4, 5}, []int{7, 7, 7, 7, 8}, 15
}

// TestFillAutoStatsRouting forces each calibration regime and checks that
// AutoStats reports the routing truthfully: a hardware-clamped (or tiny)
// fill counts every level inline, a forced-parallel fill uses all three
// arms on a table whose level widths span the grain thresholds, and the
// counters always sum to NPrime.
func TestFillAutoStatsRouting(t *testing.T) {
	ref := bigTable(t)
	ref.FillSequential()

	bp := par.NewBarrierPool(4)
	defer bp.Close()

	t.Run("clamped-sequential", func(t *testing.T) {
		restore := AutoTuneForTest(1, 1<<17, 64, 4096)
		defer restore()
		tbl := bigTable(t)
		if err := tbl.FillAutoCtx(context.Background(), bp); err != nil {
			t.Fatal(err)
		}
		s := tbl.AutoStats
		if s.LevelsInline != tbl.NPrime || s.LevelsFused != 0 || s.LevelsParallel != 0 {
			t.Fatalf("clamped fill routed %+v, want all %d levels inline", s, tbl.NPrime)
		}
		optEqual(t, "clamped FillAuto", tbl.Opt, ref.Opt)
	})

	t.Run("forced-parallel", func(t *testing.T) {
		restore := AutoTuneForTest(8, 1, 8, 64)
		defer restore()
		tbl := bigTable(t)
		if err := tbl.FillAutoCtx(context.Background(), bp); err != nil {
			t.Fatal(err)
		}
		s := tbl.AutoStats
		if s.LevelsInline+s.LevelsFused+s.LevelsParallel != tbl.NPrime {
			t.Fatalf("AutoStats %+v does not sum to NPrime=%d", s, tbl.NPrime)
		}
		// bigTable's level widths run from 5 up into the thousands, so every
		// regime of the forced calibration must be populated.
		if s.LevelsInline == 0 || s.LevelsFused == 0 || s.LevelsParallel == 0 {
			t.Fatalf("forced calibration left an arm unused: %+v", s)
		}
		optEqual(t, "forced FillAuto", tbl.Opt, ref.Opt)
	})

	t.Run("nil-pool", func(t *testing.T) {
		tbl := bigTable(t)
		tbl.FillAuto(nil)
		s := tbl.AutoStats
		if s.LevelsInline != tbl.NPrime || s.LevelsFused != 0 || s.LevelsParallel != 0 {
			t.Fatalf("nil-pool fill routed %+v, want sequential cutover", s)
		}
		optEqual(t, "nil-pool FillAuto", tbl.Opt, ref.Opt)
	})
}

// TestFillAutoCancelAndRecover mirrors the other fills' cancellation
// contract: a canceled context leaves the table unfilled with the structured
// error, and a later fill on the same table succeeds bit-identically.
func TestFillAutoCancelAndRecover(t *testing.T) {
	ref := bigTable(t)
	ref.FillSequential()

	restore := AutoTuneForTest(8, 1, 8, 64)
	defer restore()
	bp := par.NewBarrierPool(4)
	defer bp.Close()

	tbl := bigTable(t)
	if err := tbl.FillAutoCtx(canceledCtx(), bp); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if _, err := tbl.OptValue(); !errors.Is(err, ErrNotFilled) {
		t.Fatalf("canceled fill left table readable: %v", err)
	}
	if err := tbl.FillAutoCtx(context.Background(), bp); err != nil {
		t.Fatalf("recovery fill: %v", err)
	}
	optEqual(t, "recovered FillAuto", tbl.Opt, ref.Opt)
}

// TestFillAutoMidFillCancel cancels after the fill has started (via a
// context canceled by the first dispatched bodies) and checks the unfilled
// contract holds mid-flight too.
func TestFillAutoMidFillCancel(t *testing.T) {
	restore := AutoTuneForTest(8, 1, 8, 64)
	defer restore()
	bp := par.NewBarrierPool(4)
	defer bp.Close()

	tbl := bigTable(t)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := tbl.FillAutoCtx(ctx, bp)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The pool survives the canceled fill for unrelated rounds.
	var n int
	bp.For(1, func(int) { n++ })
	if n != 1 {
		t.Fatalf("barrier pool unusable after canceled fill")
	}
}

// trippingCtx is live for its first Done poll and canceled from the second
// onward: FillAutoCtx's entry check passes, and the fill it routed to dies
// at its own next poll — a deterministic mid-cutover cancellation.
type trippingCtx struct {
	context.Context
	polls atomic.Int32
	done  chan struct{}
}

func newTrippingCtx() *trippingCtx {
	done := make(chan struct{})
	close(done)
	return &trippingCtx{Context: context.Background(), done: done}
}

func (c *trippingCtx) Done() <-chan struct{} {
	if c.polls.Add(1) >= 2 {
		return c.done
	}
	return nil
}

func (c *trippingCtx) Err() error {
	if c.polls.Load() >= 2 {
		return context.Canceled
	}
	return nil
}

// TestFillAutoCanceledCutoverReportsNoInlineLevels pins the stats contract on
// the sequential-cutover arms: a fill that dies inside the cut-over
// FillSequentialCtx must not claim its levels completed inline.
func TestFillAutoCanceledCutoverReportsNoInlineLevels(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seqWork int64
		pool    bool
	}{
		// bp == nil routes to the first cutover arm regardless of table size.
		{"nil-pool", 1 << 17, false},
		// A real pool with the hardware clamp forced to one core exercises
		// the parts < 2 fallback arm (seqWork 1 keeps the small-table arm
		// from swallowing the case first).
		{"hardware-clamped", 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			restore := AutoTuneForTest(1, tc.seqWork, 64, 4096)
			defer restore()
			var bp *par.BarrierPool
			if tc.pool {
				bp = par.NewBarrierPool(4)
				defer bp.Close()
			}
			tbl := bigTable(t)
			if err := tbl.FillAutoCtx(newTrippingCtx(), bp); !errors.Is(err, cancel.ErrCanceled) {
				t.Fatalf("want ErrCanceled, got %v", err)
			}
			if s := tbl.AutoStats; s != (AutoStats{}) {
				t.Fatalf("canceled cutover fill reported stats %+v, want zero", s)
			}
		})
	}
}

// TestFillAutoReusesCachedLevelIndex checks FillAuto participates in the
// same level-index cache as the parallel fill: two fills over one cache must
// record a level-index hit.
func TestFillAutoReusesCachedLevelIndex(t *testing.T) {
	restore := AutoTuneForTest(8, 1, 8, 64)
	defer restore()
	bp := par.NewBarrierPool(4)
	defer bp.Close()

	cache := NewCache()
	sizes, counts, T := bigTableSpec()
	for round := 0; round < 2; round++ {
		tbl, err := NewCached(sizes, counts, T, 0, 0, cache)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.FillAutoCtx(context.Background(), bp); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.LevelHits == 0 {
		t.Fatalf("FillAuto never hit the level-index cache: %+v", st)
	}
}
