package dp

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDataflowMatchesSequentialPaperExample(t *testing.T) {
	ref := paperTable(t)
	ref.FillSequential()
	for _, workers := range []int{1, 2, 4, 8} {
		tbl := paperTable(t)
		tbl.FillDataflow(workers)
		for i := range tbl.Opt {
			if tbl.Opt[i] != ref.Opt[i] {
				t.Fatalf("workers=%d: entry %d = %d, want %d", workers, i, tbl.Opt[i], ref.Opt[i])
			}
		}
	}
}

func TestDataflowEmptyTable(t *testing.T) {
	tbl, err := New(nil, nil, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl.FillDataflow(4)
	if opt, err := tbl.OptValue(); err != nil || opt != 0 {
		t.Fatalf("OPT = %d, %v", opt, err)
	}
}

func TestDataflowReconstruct(t *testing.T) {
	tbl := paperTable(t)
	tbl.FillDataflow(3)
	machines, err := tbl.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 {
		t.Fatalf("machines = %d, want 2", len(machines))
	}
}

func TestDataflowMatchesSequentialProperty(t *testing.T) {
	f := func(seed uint64, wRaw uint8) bool {
		src := rng.New(seed)
		workers := int(wRaw%6) + 1
		ref := randomTable(src)
		ref.FillSequential()
		tbl := cloneEmpty(ref)
		tbl.FillDataflow(workers)
		for i := range tbl.Opt {
			if tbl.Opt[i] != ref.Opt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDataflowWithPerEntryEnum(t *testing.T) {
	ref := paperTable(t)
	ref.FillSequential()
	tbl := paperTable(t)
	tbl.PerEntryEnum = true
	tbl.FillDataflow(4)
	for i := range tbl.Opt {
		if tbl.Opt[i] != ref.Opt[i] {
			t.Fatalf("entry %d = %d, want %d", i, tbl.Opt[i], ref.Opt[i])
		}
	}
}

func TestDataflowWorkerClamp(t *testing.T) {
	tbl := paperTable(t)
	tbl.FillDataflow(0) // clamped to 1
	if opt, err := tbl.OptValue(); err != nil || opt != 2 {
		t.Fatalf("OPT = %d, %v", opt, err)
	}
}
