package dp

// Deterministic cancellation coverage for every fill variant: an
// already-canceled context must abort the fill (the table stays unfilled,
// the structured error matches cancel.ErrCanceled), and the same table must
// recover completely on the next uncanceled fill — partial garbage from the
// aborted attempt must not leak into the final values.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cancel"
	"repro/internal/par"
	"repro/pcmax"
)

// bigTable builds a table with >2^15 entries so the amortized budget
// countdown (fillCheckEvery) is guaranteed to expire mid-fill even when the
// context was canceled before the first entry.
func bigTable(t *testing.T) *Table {
	t.Helper()
	sizes := []pcmax.Time{1, 2, 3, 4, 5}
	counts := []int{7, 7, 7, 7, 8}
	tbl, err := New(sizes, counts, 15, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Sigma <= fillCheckEvery {
		t.Fatalf("table too small for the test: Sigma = %d", tbl.Sigma)
	}
	return tbl
}

func canceledCtx() context.Context {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	return ctx
}

func TestFillVariantsCancelAndRecover(t *testing.T) {
	ref := bigTable(t)
	ref.FillSequential()
	want, err := ref.OptValue()
	if err != nil {
		t.Fatal(err)
	}

	pool := par.NewPool(3)
	defer pool.Close()

	variants := []struct {
		name string
		fill func(tbl *Table, ctx context.Context) error
	}{
		{"sequential", func(tbl *Table, ctx context.Context) error { return tbl.FillSequentialCtx(ctx) }},
		{"sequential-legacy", func(tbl *Table, ctx context.Context) error {
			tbl.LegacyFill = true
			return tbl.FillSequentialCtx(ctx)
		}},
		{"recursive", func(tbl *Table, ctx context.Context) error { return tbl.FillRecursiveCtx(ctx) }},
		{"parallel-buckets", func(tbl *Table, ctx context.Context) error {
			return tbl.FillParallelCtx(ctx, pool, LevelBuckets, par.RoundRobin)
		}},
		{"parallel-scan", func(tbl *Table, ctx context.Context) error {
			return tbl.FillParallelCtx(ctx, pool, LevelScan, par.RoundRobin)
		}},
		{"dataflow", func(tbl *Table, ctx context.Context) error { return tbl.FillDataflowCtx(ctx, 3) }},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			tbl := bigTable(t)

			err := v.fill(tbl, canceledCtx())
			if err == nil {
				t.Fatal("want error from canceled fill")
			}
			if !errors.Is(err, cancel.ErrCanceled) {
				t.Fatalf("error %v does not match cancel.ErrCanceled", err)
			}
			if _, err := tbl.OptValue(); !errors.Is(err, ErrNotFilled) {
				t.Fatalf("canceled fill left the table usable: OptValue error = %v", err)
			}

			// The same table must recover: an uncanceled fill overwrites the
			// aborted attempt's partial garbage completely.
			if err := v.fill(tbl, context.Background()); err != nil {
				t.Fatalf("recovery fill: %v", err)
			}
			got, err := tbl.OptValue()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("recovered OPT = %d, want %d", got, want)
			}
			for i, o := range tbl.Opt {
				if o != ref.Opt[i] {
					t.Fatalf("recovered Opt[%d] = %d, want %d", i, o, ref.Opt[i])
				}
			}
		})
	}
}

func TestFillCancelReportsPartialProgress(t *testing.T) {
	tbl := bigTable(t)
	err := tbl.FillSequentialCtx(canceledCtx())
	var cerr *cancel.Error
	if !errors.As(err, &cerr) {
		t.Fatalf("error %v does not carry *cancel.Error", err)
	}
	if cerr.EntriesFilled < 0 || cerr.EntriesFilled >= tbl.Sigma {
		t.Fatalf("EntriesFilled = %d outside [0, %d)", cerr.EntriesFilled, tbl.Sigma)
	}
}

func TestNilAndBackgroundContextFillsComplete(t *testing.T) {
	// The ctx-less shims delegate with context.Background(); both they and
	// an explicit Background ctx must fill to completion.
	a := bigTable(t)
	a.FillSequential()
	if _, err := a.OptValue(); err != nil {
		t.Fatalf("shim fill left table unfilled: %v", err)
	}
	b := bigTable(t)
	if err := b.FillSequentialCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range a.Opt {
		if a.Opt[i] != b.Opt[i] {
			t.Fatalf("shim and ctx fills differ at %d", i)
		}
	}
}
