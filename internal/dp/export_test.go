package dp

// AutoTuneForTest overrides the adaptive fill's calibration so tests (both
// in-package and the external workload differential suite) can force every
// dispatch arm — sequential cutover, inline, fused batch, wide fan-out — on
// any host, including single-core CI machines where the GOMAXPROCS clamp
// would otherwise route everything sequentially. cores <= 0 restores the
// hardware clamp. The returned func restores the previous calibration.
func AutoTuneForTest(cores int, seqWork, inlineGrain, wideGrain int64) (restore func()) {
	pc, pw, pi, pg := autoAssumeCores, autoSeqWork, autoInlineGrain, autoWideGrain
	autoAssumeCores, autoSeqWork, autoInlineGrain, autoWideGrain = cores, seqWork, inlineGrain, wideGrain
	return func() {
		autoAssumeCores, autoSeqWork, autoInlineGrain, autoWideGrain = pc, pw, pi, pg
	}
}
