package dp

// Adaptive parallel fill (see ALGORITHM.md section 10): the paper's
// level-synchronous Parallel DP pays one dispatch round per anti-diagonal,
// which on paper-scale tables costs more than the level's work — BENCH_dp
// showed the 4-worker parallel fill ~10x slower than sequential. FillAuto
// routes each level by its measured-calibrated width instead:
//
//   - whole tables below autoSeqWork run the sequential config-outer sweep
//     (no coordination at all), as do tables on a pool with no effective
//     parallelism (hardware-clamped);
//   - levels narrower than autoInlineGrain run inline on the caller;
//   - consecutive mid-width levels fuse into a single BarrierPool.ForBatch
//     dispatch — one worker wakeup amortized over many levels, with the
//     batch's internal barriers preserving the level order that correctness
//     requires;
//   - only levels at least autoWideGrain wide fan out as dedicated rounds.
//
// Every arm relaxes entries with the same computeEntry recurrence over the
// same Jobs-pruned candidate sets, so the resulting table is bit-identical
// to FillSequential (the differential harness proves it on every workload
// family).

import (
	"context"
	"runtime"

	"repro/internal/cancel"
	"repro/internal/par"
)

// Adaptive-fill grain thresholds. Calibration (this host's
// BenchmarkDispatchOverhead and BENCH_dp.json): a warm barrier dispatch
// costs on the order of 1-2 microseconds at 4 workers while an inline entry
// relaxation costs ~0.1 microseconds on paper-scale candidate sets, so a
// level needs a few hundred entries before fan-out can win; fused batch
// segments only pay a spin barrier (~0.1 microseconds) and break even much
// earlier. They are variables, not constants, so the differential and race
// tests can force every arm on any host.
var (
	// autoSeqWork is the sigma*|configs| product below which the whole table
	// runs the sequential config-outer sweep (mirrors the solve engine's
	// adaptive-fill threshold; see EXPERIMENTS.md barrier-bound analysis).
	autoSeqWork int64 = 1 << 17
	// autoInlineGrain is the level width below which a level runs inline on
	// the caller rather than joining a fused batch.
	autoInlineGrain int64 = 64
	// autoWideGrain is the level width from which a level gets a dedicated
	// dispatch round instead of fusing with its neighbours.
	autoWideGrain int64 = 4096
	// autoAssumeCores overrides the hardware-parallelism clamp (0 = use
	// runtime.GOMAXPROCS). Tests set it to exercise the dispatch arms on
	// single-core hosts.
	autoAssumeCores = 0
)

// autoCores reports the parallelism the adaptive fill may assume the
// hardware can actually deliver.
func autoCores() int {
	if autoAssumeCores > 0 {
		return autoAssumeCores
	}
	return runtime.GOMAXPROCS(0)
}

// AutoStats reports how FillAuto routed the anti-diagonal levels of one
// fill. The three counters sum to NPrime (all levels except the trivial
// level 0) on a completed fill.
type AutoStats struct {
	// LevelsInline counts levels run inline on the calling goroutine —
	// levels too narrow to amortize any coordination, and every level of a
	// whole-table sequential cutover.
	LevelsInline int
	// LevelsFused counts levels executed inside a fused multi-level batch
	// dispatch (one worker wakeup, internal barriers between levels).
	LevelsFused int
	// LevelsParallel counts levels wide enough for a dedicated dispatch
	// round on the barrier pool.
	LevelsParallel int
}

// FillAuto is the uninterruptible shim over FillAutoCtx for callers
// (benchmarks, ablations) with no deadline to honor.
//
//lint:ignore ctxfirst deprecated uninterruptible shim; by contract its callers have no context to propagate
func (t *Table) FillAuto(bp *par.BarrierPool) { _ = t.FillAutoCtx(context.Background(), bp) }

// FillAutoCtx computes the table with the adaptive parallel fill: the
// whole-table and per-level routing described in the package comment above,
// recording the routing in t.AutoStats. A nil bp (or a pool with no
// effective parallelism on this hardware, or a table below the sequential
// work cutover, or the LegacyFill/PerEntryEnum ablation switches) degrades
// to FillSequentialCtx with every level counted inline. Cancellation
// mirrors the other fills: ctx is polled between levels and, inside
// dispatched rounds, every cancelCheckEvery entries per worker; on
// cancellation the table is left unfilled and the structured cancel error
// is returned. The resulting table is bit-identical to every other fill
// variant.
func (t *Table) FillAutoCtx(ctx context.Context, bp *par.BarrierPool) error {
	t.AutoStats = AutoStats{}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	if t.Sigma == 1 {
		t.Opt[0] = 0
		t.filled = true
		return nil
	}
	// Cutover tests run cheapest-first: the hardware clamp is a runtime
	// query behind the scheduler lock, so it is consulted only for tables
	// already big enough that dispatch is worth considering — the
	// small-table cutover must cost bare nanoseconds over
	// FillSequentialCtx, or the routing itself would erode the very
	// regime it picks.
	if bp == nil || t.LegacyFill || t.PerEntryEnum ||
		t.Sigma*int64(len(t.Configs)) < autoSeqWork {
		if err := t.FillSequentialCtx(ctx); err != nil {
			return err
		}
		// Stats claim the inline levels only once they actually completed —
		// a mid-fill cancellation must not report a fully filled table.
		t.AutoStats.LevelsInline = t.NPrime
		return nil
	}
	parts := bp.Workers()
	if cores := autoCores(); parts > cores {
		// More workers than hardware threads cannot speed a fill up; the
		// sequential arm below sees the truth instead of the request.
		parts = cores
	}
	if parts < 2 {
		if err := t.FillSequentialCtx(ctx); err != nil {
			return err
		}
		t.AutoStats.LevelsInline = t.NPrime
		return nil
	}

	pfor := func(n int, body func(i int)) { bp.For(n, body) }
	var li *levelIndex
	if t.cache != nil {
		li = t.cache.levelIndexFor(t.Counts, func() *levelIndex {
			return t.buildLevelIndex(pfor, bp.Workers())
		})
	} else {
		li = t.buildLevelIndex(pfor, bp.Workers())
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	decs := newDecoders(t, bp.Workers())
	t.Opt[0] = 0

	// Fusion accumulator: consecutive mid-width levels queue up here and
	// flush as one ForBatch dispatch the moment the run breaks (an inline or
	// wide level, or the end of the table). Levels are processed strictly in
	// ascending order across all three arms, so every entry's dependencies
	// (strictly smaller digit sums) are final before it is computed.
	var (
		pending     []int
		pendingSegs []int
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		levels, segs := pending, pendingSegs
		for w := range decs {
			decs[w].reset()
		}
		err := bp.ForBatchCtx(ctx, segs, func(w, s, j int) {
			l := levels[s]
			idx := li.order[li.start[l]+int64(j)]
			t.computeEntry(idx, decs[w].at(idx), int32(l))
		})
		if err != nil {
			return err
		}
		t.AutoStats.LevelsFused += len(levels)
		pending, pendingSegs = pending[:0], pendingSegs[:0]
		return nil
	}

	for l := 1; l <= t.NPrime; l++ {
		bucket := li.order[li.start[l]:li.start[l+1]]
		q := int64(len(bucket))
		switch {
		case q < autoInlineGrain:
			if err := flush(); err != nil {
				return err
			}
			if err := cancel.Check(ctx); err != nil {
				return err
			}
			dc := &decs[0]
			dc.reset()
			for j, idx := range bucket {
				if j&4095 == 0 {
					if err := cancel.Check(ctx); err != nil {
						return err
					}
				}
				t.computeEntry(idx, dc.at(idx), int32(l))
			}
			t.AutoStats.LevelsInline++
		case q >= autoWideGrain:
			if err := flush(); err != nil {
				return err
			}
			for w := range decs {
				decs[w].reset()
			}
			lvl := int32(l)
			err := bp.ForWorkerCtx(ctx, len(bucket), func(w, j int) {
				idx := bucket[j]
				t.computeEntry(idx, decs[w].at(idx), lvl)
			})
			if err != nil {
				return err
			}
			t.AutoStats.LevelsParallel++
		default:
			pending = append(pending, l)
			pendingSegs = append(pendingSegs, int(q))
		}
	}
	if err := flush(); err != nil {
		return err
	}
	t.filled = true
	return nil
}
