package dp_test

// External differential suite: proves FillAuto (and the barrier-pool path
// under it) bit-identical to FillSequential on rounded instances from all
// six workload families of the paper's evaluation. It lives outside package
// dp because deriving the rounded (sizes, counts, T) triples uses
// internal/core, which imports dp.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/par"
	"repro/internal/workload"
)

func TestFillAutoBitIdenticalAcrossWorkloadFamilies(t *testing.T) {
	bp := par.NewBarrierPool(4)
	defer bp.Close()
	// Forced calibration: exercise the inline, fused and wide barrier arms
	// regardless of the host's core count.
	restore := dp.AutoTuneForTest(8, 1, 8, 64)
	defer restore()

	for _, fam := range workload.Families {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			in, err := workload.Generate(workload.Spec{Family: fam, M: 10, N: 50, Seed: 2017})
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			_, st, err := core.Solve(t.Context(), in, opts)
			if err != nil {
				t.Fatal(err)
			}
			sizes, counts, err := core.RoundedClasses(in, st.K, st.FinalT)
			if err != nil {
				t.Fatal(err)
			}
			if len(sizes) == 0 {
				t.Skipf("family %v has no long jobs at T=%d", fam, st.FinalT)
			}
			mk := func() *dp.Table {
				tbl, err := dp.New(sizes, counts, st.FinalT, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				return tbl
			}
			ref := mk()
			ref.FillSequential()

			auto := mk()
			if err := auto.FillAutoCtx(t.Context(), bp); err != nil {
				t.Fatal(err)
			}
			for i := range ref.Opt {
				if auto.Opt[i] != ref.Opt[i] {
					t.Fatalf("family %v: Opt[%d] = %d, want %d", fam, i, auto.Opt[i], ref.Opt[i])
				}
			}
			s := auto.AutoStats
			if s.LevelsInline+s.LevelsFused+s.LevelsParallel != auto.NPrime {
				t.Fatalf("family %v: AutoStats %+v does not sum to NPrime=%d", fam, s, auto.NPrime)
			}
			// If any level is wide enough for the forced calibration, the
			// fill must actually have dispatched to the barrier pool.
			wide := false
			for _, q := range dp.LevelSizes(counts) {
				if q >= 8 {
					wide = true
				}
			}
			if wide && s.LevelsFused+s.LevelsParallel == 0 {
				t.Fatalf("family %v: forced calibration never dispatched (stats %+v, sigma=%d)",
					fam, s, auto.Sigma)
			}
		})
	}
}
