package dp

// Differential coverage for the optimized fill pipeline: every fill variant
// (sequential, recursive, parallel in both level modes under all three
// scheduling strategies, dataflow; shared configs and per-entry enumeration;
// legacy and optimized scan paths; cached and uncached builds) must produce
// the same Opt table and the same reconstruction as a seed-faithful oracle
// on a population of random instances.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/pcmax"
)

// fillOracle computes the Opt table exactly as the seed implementation's
// FillSequential did: division decode per entry and an unpruned scan of the
// full configuration list. It is the reference all optimized paths must
// match bit for bit.
func fillOracle(t *Table) []int32 {
	opt := make([]int32, t.Sigma)
	v := make([]int32, len(t.Stride))
	for idx := int64(1); idx < t.Sigma; idx++ {
		t.digits(idx, v)
		best := int32(math.MaxInt32)
		for ci := range t.Configs {
			c := &t.Configs[ci]
			if conf.Fits(c.Counts, v) {
				if o := opt[idx-c.Offset]; o < best {
					best = o
				}
			}
		}
		opt[idx] = best + 1
	}
	return opt
}

// randomInstance draws a small random (sizes, counts, T) triple; tables stay
// under a few thousand entries so the full sweep is fast.
func randomInstance(src *rng.Source) ([]pcmax.Time, []int, pcmax.Time) {
	d := 1 + src.Intn(4)
	sizes := make([]pcmax.Time, 0, d)
	counts := make([]int, 0, d)
	s := pcmax.Time(0)
	for i := 0; i < d; i++ {
		s += 1 + pcmax.Time(src.Int64n(12))
		sizes = append(sizes, s)
		counts = append(counts, src.Intn(5))
	}
	T := s + pcmax.Time(src.Int64n(35))
	return sizes, counts, T
}

func optEqual(t *testing.T, label string, got, want []int32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: Opt[%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func machinesEqual(t *testing.T, label string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d machines, want %d", label, len(got), len(want))
	}
	for m := range want {
		for c := range want[m] {
			if got[m][c] != want[m][c] {
				t.Fatalf("%s: machine %d = %v, want %v", label, m, got[m], want[m])
			}
		}
	}
}

func TestDifferentialAllFillVariants(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	bpool := par.NewBarrierPool(4)
	defer bpool.Close()
	cache := NewCache()

	const instances = 50
	for seed := uint64(1); seed <= instances; seed++ {
		src := rng.New(seed)
		sizes, counts, T := randomInstance(src)
		mk := func() *Table {
			tbl, err := New(sizes, counts, T, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			return tbl
		}

		ref := mk()
		oracle := fillOracle(ref)
		ref.FillSequential()
		optEqual(t, fmt.Sprintf("seed %d: FillSequential vs oracle", seed), ref.Opt, oracle)
		refMachines, err := ref.Reconstruct()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		check := func(label string, tbl *Table) {
			t.Helper()
			optEqual(t, fmt.Sprintf("seed %d: %s", seed, label), tbl.Opt, oracle)
			machines, err := tbl.Reconstruct()
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, label, err)
			}
			machinesEqual(t, fmt.Sprintf("seed %d: %s", seed, label), machines, refMachines)
		}

		// Legacy scan path (the ablation baseline) must agree entry for entry.
		leg := mk()
		leg.LegacyFill = true
		leg.FillSequential()
		check("legacy FillSequential", leg)

		// Recursive fill leaves unreachable entries unset; compare the
		// computed subset plus the reconstruction.
		rec := mk()
		rec.FillRecursive()
		for i := range rec.Opt {
			if rec.Opt[i] != unset && rec.Opt[i] != oracle[i] {
				t.Fatalf("seed %d: FillRecursive Opt[%d] = %d, want %d", seed, i, rec.Opt[i], oracle[i])
			}
		}
		recMachines, err := rec.Reconstruct()
		if err != nil {
			t.Fatalf("seed %d: recursive: %v", seed, err)
		}
		machinesEqual(t, fmt.Sprintf("seed %d: FillRecursive", seed), recMachines, refMachines)

		// Parallel fills: both level modes x all three strategies, shared
		// and per-entry enumeration, plus the legacy path per mode.
		for _, mode := range []LevelMode{LevelBuckets, LevelScan} {
			for _, strategy := range par.Strategies {
				p := mk()
				p.FillParallel(pool, mode, strategy)
				check(fmt.Sprintf("FillParallel/%v/%v", mode, strategy), p)

				pe := mk()
				pe.PerEntryEnum = true
				pe.FillParallel(pool, mode, strategy)
				check(fmt.Sprintf("FillParallel/%v/%v/per-entry", mode, strategy), pe)
			}
			pl := mk()
			pl.LegacyFill = true
			pl.FillParallel(pool, mode, par.RoundRobin)
			check(fmt.Sprintf("FillParallel/%v/legacy", mode), pl)
		}

		// Dataflow fill.
		df := mk()
		df.FillDataflow(4)
		check("FillDataflow", df)

		// Adaptive fill, default calibration: on small tables (or clamped
		// hardware) this is the sequential-cutover arm of FillAuto.
		ad := mk()
		ad.FillAuto(bpool)
		check("FillAuto/default", ad)

		// Adaptive fill with the calibration forced so these small tables
		// exercise the inline, fused-batch and wide barrier-pool arms.
		restore := AutoTuneForTest(8, 1, 2, 8)
		af := mk()
		af.FillAuto(bpool)
		restore()
		check("FillAuto/forced", af)
		if s := af.AutoStats; s.LevelsInline+s.LevelsFused+s.LevelsParallel != af.NPrime {
			t.Fatalf("seed %d: AutoStats %+v does not sum to NPrime=%d", seed, s, af.NPrime)
		}

		// Cached builds: two rounds through one cache so the second fill
		// exercises the shared config set and level-index hit paths.
		for round := 0; round < 2; round++ {
			ct, err := NewCached(sizes, counts, T, 0, 0, cache)
			if err != nil {
				t.Fatal(err)
			}
			ct.FillParallel(pool, LevelBuckets, par.Dynamic)
			check(fmt.Sprintf("cached round %d", round), ct)
		}
	}
	if st := cache.Stats(); st.ConfigHits == 0 || st.LevelHits == 0 {
		t.Fatalf("cache saw no hits: %+v", cache.Stats())
	}
}

// TestDifferentialPackedBoundaries pins the SWAR packed fits-kernel at its
// gating boundaries. The random population above always stays within one
// packed word (d <= 4, counts <= 4), so these fixed instances cover what it
// cannot: a class count >= 128 that must disable packing entirely, a
// two-word table (8 < d <= 16), and the exact one-word boundary d = 8. Every
// fill variant must still match the unpruned oracle bit for bit.
func TestDifferentialPackedBoundaries(t *testing.T) {
	bpool := par.NewBarrierPool(4)
	defer bpool.Close()
	pool := par.NewPool(4)
	defer pool.Close()

	cases := []struct {
		name   string
		sizes  []pcmax.Time
		counts []int
		T      pcmax.Time
		packW  int // 0 = packing must be disabled
	}{
		{"count>=128-unpacked", []pcmax.Time{2, 9}, []int{150, 2}, 21, 0},
		{"two-word", []pcmax.Time{1, 2, 3, 4, 5, 6, 7, 8, 9}, []int{1, 1, 1, 1, 1, 1, 1, 1, 1}, 13, 2},
		{"one-word-boundary", []pcmax.Time{1, 2, 3, 4, 5, 6, 7, 8}, []int{1, 1, 1, 1, 2, 1, 1, 1}, 12, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Table {
				tbl, err := New(tc.sizes, tc.counts, tc.T, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				return tbl
			}
			ref := mk()
			if tc.packW == 0 {
				if ref.packed != nil {
					t.Fatalf("packing not disabled (packW=%d)", ref.packW)
				}
			} else if ref.packed == nil || ref.packW != tc.packW {
				t.Fatalf("packW = %d (packed=%v), want %d", ref.packW, ref.packed != nil, tc.packW)
			}
			oracle := fillOracle(ref)
			ref.FillSequential()
			optEqual(t, "FillSequential vs oracle", ref.Opt, oracle)

			leg := mk()
			leg.LegacyFill = true
			leg.FillSequential()
			optEqual(t, "legacy FillSequential", leg.Opt, oracle)

			p := mk()
			p.FillParallel(pool, LevelBuckets, par.Dynamic)
			optEqual(t, "FillParallel", p.Opt, oracle)

			restore := AutoTuneForTest(8, 1, 2, 8)
			a := mk()
			a.FillAuto(bpool)
			restore()
			optEqual(t, "FillAuto/forced", a.Opt, oracle)
		})
	}
}

// TestReconstructManyConfigs is the regression test for the level-bounded
// reconstruction walk: a table whose configuration list is large (many
// classes, generous T) must reconstruct correctly, and the Jobs-sorted
// early-exit must agree with an unpruned first-fit over the same order.
func TestReconstructManyConfigs(t *testing.T) {
	sizes := []pcmax.Time{3, 4, 5, 6, 7, 8}
	counts := []int{4, 3, 3, 2, 2, 2}
	tbl, err := New(sizes, counts, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Configs) < 400 {
		t.Fatalf("want a config-heavy table, got %d configs", len(tbl.Configs))
	}
	tbl.FillSequential()
	machines, err := tbl.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := tbl.OptValue()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != opt {
		t.Fatalf("reconstructed %d machines, want OPT=%d", len(machines), opt)
	}
	covered := make([]int32, len(sizes))
	for _, cfg := range machines {
		var w pcmax.Time
		for c, cnt := range cfg {
			covered[c] += cnt
			w += pcmax.Time(cnt) * sizes[c]
		}
		if w > tbl.T {
			t.Fatalf("machine %v weighs %d > T=%d", cfg, w, tbl.T)
		}
	}
	for c := range covered {
		if int(covered[c]) != counts[c] {
			t.Fatalf("class %d covered %d, want %d", c, covered[c], counts[c])
		}
	}

	// The unpruned walk over the same Jobs-sorted order must pick the same
	// configurations: the break only skips configurations that cannot fit.
	naive := func() [][]int32 {
		v := make([]int32, len(tbl.Stride))
		tbl.digits(tbl.Sigma-1, v)
		idx := tbl.Sigma - 1
		var out [][]int32
		for idx != 0 {
			target := tbl.Opt[idx]
			found := -1
			for ci := range tbl.Configs {
				c := &tbl.Configs[ci]
				if conf.Fits(c.Counts, v) && tbl.Opt[idx-c.Offset] == target-1 {
					found = ci
					break
				}
			}
			if found < 0 {
				t.Fatal("naive walk stuck")
			}
			c := &tbl.Configs[found]
			out = append(out, append([]int32(nil), c.Counts...))
			idx -= c.Offset
			for i := range v {
				v[i] -= c.Counts[i]
			}
		}
		return out
	}()
	machinesEqual(t, "pruned vs naive reconstruction", machines, naive)
}
