package lb

import (
	"sort"

	"repro/pcmax"
)

// BinPackingL2 computes the Martello–Toth L2 lower bound on the number of
// bins of capacity c needed for items given in non-increasing order:
//
//	L2 = max over thresholds K in [0, c/2] of
//	     |J1| + |J2| + max(0, ceil((sum(J3) - (|J2|*c - sum(J2))) / c))
//
// where J1 = {x > c-K}, J2 = {c-K >= x > c/2}, J3 = {c/2 >= x >= K}. Items
// larger than c/2 each occupy a distinct bin; J3 items must either fill the
// J2 bins' residual space or open new bins; J1 items' bins admit no J2/J3
// company at threshold K. Only thresholds equal to item sizes (plus 0) can
// change the partition, so those suffice.
//
// The exact solver uses it to refute target makespans without branching,
// which is the expensive half of its binary search on near-tight instances
// (the LPT-adversarial family, triplets).
func BinPackingL2(desc []pcmax.Time, c pcmax.Time) int {
	n := len(desc)
	if n == 0 || c < 1 {
		return 0
	}
	best := 1
	half := c / 2
	evaluate := func(k pcmax.Time) {
		var n1, n2 int
		var sum2, sum3 pcmax.Time
		for _, x := range desc {
			switch {
			case x > c-k:
				n1++
			case x > half:
				n2++
				sum2 += x
			case x >= k:
				sum3 += x
			}
		}
		extra := sum3 - (pcmax.Time(n2)*c - sum2)
		add := 0
		if extra > 0 {
			add = int((extra + c - 1) / c)
		}
		if l := n1 + n2 + add; l > best {
			best = l
		}
	}
	evaluate(0)
	prev := pcmax.Time(-1)
	for i := n - 1; i >= 0; i-- { // ascending sizes
		x := desc[i]
		if x > half {
			break
		}
		if x != prev {
			evaluate(x)
			prev = x
		}
	}
	return best
}

// MartelloToth returns the smallest capacity C for which BinPackingL2 needs
// at most m bins — a lower bound on the optimal makespan that dominates the
// trivial bound and often the pigeonhole bound.
func MartelloToth(in *pcmax.Instance) pcmax.Time {
	if in.M < 1 || in.N() == 0 {
		return 0
	}
	desc := append([]pcmax.Time(nil), in.Times...)
	sort.Slice(desc, func(a, b int) bool { return desc[a] > desc[b] })
	lo := Trivial(in)
	hi := in.UpperBound()
	// BinPackingL2 is monotone non-increasing in c, so binary search works.
	for lo < hi {
		c := lo + (hi-lo)/2
		if BinPackingL2(desc, c) <= in.M {
			hi = c
		} else {
			lo = c + 1
		}
	}
	return lo
}
