package lb_test

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/lb"
	"repro/internal/rng"
	"repro/pcmax"
)

func TestTrivialMatchesInstanceBound(t *testing.T) {
	in := &pcmax.Instance{M: 3, Times: []pcmax.Time{10, 1, 1}}
	if got := lb.Trivial(in); got != 10 {
		t.Fatalf("Trivial = %d, want 10", got)
	}
}

func TestPigeonholeEqualJobs(t *testing.T) {
	// m+1 jobs of size 5 on m machines: two must share, LB2 = 10.
	in := &pcmax.Instance{M: 3, Times: []pcmax.Time{5, 5, 5, 5}}
	if got := lb.Pigeonhole(in); got != 10 {
		t.Fatalf("Pigeonhole = %d, want 10", got)
	}
}

func TestPigeonholeDeeperLevel(t *testing.T) {
	// 2m+1 jobs of size 5 on m=2 machines: h=2 gives three jobs on one
	// machine, LB = 15.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 5, 5, 5, 5}}
	if got := lb.Pigeonhole(in); got != 15 {
		t.Fatalf("Pigeonhole = %d, want 15", got)
	}
}

func TestPigeonholeUsesSmallestOfLargest(t *testing.T) {
	// m=2, jobs 9,8,2: the m+1 largest are all three; the two smallest of
	// them are 8 and 2 -> bound 10.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{9, 8, 2}}
	if got := lb.Pigeonhole(in); got != 10 {
		t.Fatalf("Pigeonhole = %d, want 10", got)
	}
}

func TestPigeonholeNotApplicable(t *testing.T) {
	in := &pcmax.Instance{M: 5, Times: []pcmax.Time{9, 8}}
	if got := lb.Pigeonhole(in); got != 0 {
		t.Fatalf("Pigeonhole with n<=m = %d, want 0", got)
	}
}

func TestBestTakesMaximum(t *testing.T) {
	// Trivial: max(ceil(19/2), 9) = 10. Pigeonhole: 8+2=10. Equal here;
	// craft one where pigeonhole wins: m=2, jobs 6,6,6 -> trivial
	// max(9,6)=9, pigeonhole 12.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{6, 6, 6}}
	if got := lb.Best(in); got != 12 {
		t.Fatalf("Best = %d, want 12", got)
	}
}

func TestBoundsNeverExceedOptimumProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(50))
		}
		in := &pcmax.Instance{M: m, Times: times}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		return lb.Best(in) <= opt.Makespan(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
