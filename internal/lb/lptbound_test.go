package lb_test

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/lb"
	"repro/internal/listsched"
	"repro/internal/rng"
	"repro/pcmax"
)

func TestFromLPTSingleMachine(t *testing.T) {
	// One machine: LPT is optimal, and ratio inversion gives exactly W.
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{7, 3, 2}}
	sched := listsched.LPT(in)
	if got := lb.FromLPT(in, sched); got != 12 {
		t.Fatalf("FromLPT(m=1) = %d, want 12", got)
	}
}

func TestFromLPTGrahamTightExample(t *testing.T) {
	// Graham's tight family for m=2: jobs {3,3,2,2,2}. OPT=6, LPT makespan
	// W=7. Ratio inversion: ceil(3*2*7/7) = 6 — exactly OPT.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{3, 3, 2, 2, 2}}
	sched := listsched.LPT(in)
	if got := lb.FromLPT(in, sched); got != 6 {
		t.Fatalf("FromLPT(Graham tight) = %d, want 6", got)
	}
}

func TestFromLPTTightensTrivialBound(t *testing.T) {
	// m=2, jobs {4,4,4}: trivial bound max(ceil(12/2),4) = 6; LPT gives
	// W=8, c=2 on the critical machine, so the critical-machine bound is
	// ceil(8*(2*2-2+1)/(2*2)) = 6 and ratio inversion ceil(48/7) = 7 wins.
	// OPT is 8, so 7 is valid and strictly beats the trivial 6.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{4, 4, 4}}
	sched := listsched.LPT(in)
	got := lb.FromLPT(in, sched)
	if got != 7 {
		t.Fatalf("FromLPT = %d, want 7", got)
	}
	if trivial := lb.Trivial(in); got <= trivial {
		t.Fatalf("FromLPT = %d does not tighten Trivial = %d", got, trivial)
	}
}

func TestFromLPTIncompleteScheduleIsZero(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 5}}
	sched := pcmax.NewSchedule(2, 2) // all unassigned
	if got := lb.FromLPT(in, sched); got != 0 {
		t.Fatalf("FromLPT(incomplete) = %d, want 0", got)
	}
}

// TestFromLPTNeverExceedsOptimumProperty is the soundness property: the
// bound derived from an LPT run never exceeds the certified optimum, and the
// LPT makespan never falls below it (so [FromLPT, W] brackets OPT).
func TestFromLPTNeverExceedsOptimumProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(50))
		}
		in := &pcmax.Instance{M: m, Times: times}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		optMS := opt.Makespan(in)
		sched := listsched.LPT(in)
		b := lb.FromLPT(in, sched)
		return b <= optMS && sched.Makespan(in) >= optMS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
