package lb_test

import (
	"context"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/lb"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

func descSorted(times []pcmax.Time) []pcmax.Time {
	d := append([]pcmax.Time(nil), times...)
	sort.Slice(d, func(a, b int) bool { return d[a] > d[b] })
	return d
}

// minBins computes the true minimum bin count by brute force (small n).
func minBins(times []pcmax.Time, c pcmax.Time) int {
	for m := 1; ; m++ {
		in := &pcmax.Instance{M: m, Times: times}
		s, res, err := exact.Solve(context.Background(), in, exact.Options{})
		if err != nil || !res.Optimal {
			panic("minBins oracle failed")
		}
		if s.Makespan(in) <= c {
			return m
		}
	}
}

func TestBinPackingL2KnownCases(t *testing.T) {
	// Three items of 6 at capacity 10: each needs its own bin.
	if got := lb.BinPackingL2(descSorted([]pcmax.Time{6, 6, 6}), 10); got != 3 {
		t.Fatalf("L2 = %d, want 3", got)
	}
	// 2m+1 pigeonhole shape: five items of 5, capacity 10 -> ceil(25/10)=3.
	if got := lb.BinPackingL2(descSorted([]pcmax.Time{5, 5, 5, 5, 5}), 10); got != 3 {
		t.Fatalf("L2 = %d, want 3", got)
	}
	// Mixed: 9 occupies a bin alone at K=2 (9 > 10-2), the two 2s need more
	// than the slack of... items {9,2,2} cap 10: L2 with K=2: J1={9}, J3
	// sum=4 -> 1 + ceil(4/10)... actual optimal is 2 bins.
	if got := lb.BinPackingL2(descSorted([]pcmax.Time{9, 2, 2}), 10); got != 2 {
		t.Fatalf("L2 = %d, want 2", got)
	}
	if got := lb.BinPackingL2(nil, 10); got != 0 {
		t.Fatalf("empty L2 = %d", got)
	}
}

func TestBinPackingL2NeverExceedsOptimumProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, capRaw uint16) bool {
		src := rng.New(seed)
		c := pcmax.Time(capRaw%80) + 20
		n := int(nRaw%10) + 1
		times := make([]pcmax.Time, n)
		for i := range times {
			times[i] = pcmax.Time(1 + src.Int64n(int64(c)))
		}
		l2 := lb.BinPackingL2(descSorted(times), c)
		return l2 <= minBins(times, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMartelloTothIsValidLowerBoundProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%10) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: m, Times: times}
		opt, err := exact.BruteForce(in)
		if err != nil {
			return false
		}
		mt := lb.MartelloToth(in)
		return mt <= opt.Makespan(in) && mt >= lb.Trivial(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMartelloTothTightOnTriplets(t *testing.T) {
	in, err := workload.Triplets(6, 120, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := lb.MartelloToth(in); got != 120 {
		t.Fatalf("MT bound %d, want the perfect 120", got)
	}
}

func TestMartelloTothBeatsTrivialSomewhere(t *testing.T) {
	// {6,6,6} on 2 machines: trivial gives max(9,6)=9 but two items of 6
	// cannot share a bin of 9, so MT must reach 12.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{6, 6, 6}}
	if got := lb.MartelloToth(in); got != 12 {
		t.Fatalf("MT bound %d, want 12", got)
	}
}
