// Package lb computes lower bounds on the optimal makespan of a P||Cmax
// instance. The bounds strengthen the exact branch-and-bound solver (early
// optimality proofs, node pruning) and are reported by the experiment
// harness.
package lb

import (
	"sort"

	"repro/pcmax"
)

// Trivial returns L1 = max(ceil(sum/m), max_j t_j), the bound in the paper's
// equation (1) (with the ceiling, valid because loads are integral).
func Trivial(in *pcmax.Instance) pcmax.Time {
	return in.LowerBound()
}

// Pigeonhole returns the strongest h-th pigeonhole bound: for every h >= 1
// with n >= h*m+1, some machine must run at least h+1 of the h*m+1 largest
// jobs, so the sum of the h+1 smallest among those jobs is a lower bound.
// For h=1 this is the classical "two of the m+1 largest share a machine"
// bound. Returns 0 when n <= m (no pigeonhole applies).
func Pigeonhole(in *pcmax.Instance) pcmax.Time {
	n, m := in.N(), in.M
	if n <= m || m < 1 {
		return 0
	}
	desc := append([]pcmax.Time(nil), in.Times...)
	sort.Slice(desc, func(a, b int) bool { return desc[a] > desc[b] })
	var best pcmax.Time
	for h := 1; h*m+1 <= n; h++ {
		// The h+1 smallest of the h*m+1 largest jobs are
		// desc[h*m-h .. h*m] (0-based, inclusive).
		var s pcmax.Time
		for i := h*m - h; i <= h*m; i++ {
			s += desc[i]
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Best returns the maximum of all implemented lower bounds.
func Best(in *pcmax.Instance) pcmax.Time {
	b := Trivial(in)
	if p := Pigeonhole(in); p > b {
		b = p
	}
	if mt := MartelloToth(in); mt > b {
		b = mt
	}
	return b
}
