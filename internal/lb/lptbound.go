package lb

import (
	"repro/pcmax"
)

// FromLPT derives a lower bound on OPT from a finished LPT schedule, in the
// spirit of "Longest Processing Time rule for identical parallel machines
// revisited" (Della Croce–Scatamacchia): the LPT run itself is evidence
// about the instance, and inverting LPT's approximation guarantees turns its
// makespan W into bounds that are usually far tighter than equation (1)'s
// max(ceil(sum/m), max_j t_j). Both bounds below are per-instance exact
// consequences of Graham's LPT analysis:
//
//   - ratio inversion: W <= (4/3 - 1/(3m)) OPT always, so
//     OPT >= ceil(3mW / (4m-1)). For m=1 this gives OPT >= W (LPT is
//     optimal on one machine).
//   - critical-machine refinement: let c be the number of jobs on a machine
//     with load W. Its chronologically last job j* is its smallest (LPT
//     assigns in non-increasing order), so t_{j*} <= W/c; and j* started at
//     the then-least load, at most (sum - t_{j*})/m <= OPT - t_{j*}/m.
//     Hence W <= OPT + t_{j*}(1 - 1/m) and OPT >= ceil(W(cm-m+1) / (cm)),
//     which beats ratio inversion once the critical machine runs four or
//     more jobs.
//
// The returned bound is the best over all critical machines, never negative.
// Together with the upper bound OPT <= W this brackets the PTAS bisection:
// core.Solve seeds its search with [max(eq(1), FromLPT), W] instead of
// [eq(1), eq(2)], cutting probes for both the faithful and sparse variants.
// sched must be a schedule produced by the LPT rule on in; the bound is not
// valid for arbitrary schedules.
func FromLPT(in *pcmax.Instance, sched *pcmax.Schedule) pcmax.Time {
	if in == nil || sched == nil || in.M < 1 {
		return 0
	}
	m := pcmax.Time(in.M)
	loads := make([]pcmax.Time, in.M)
	jobs := make([]pcmax.Time, in.M)
	for j, mi := range sched.Assignment {
		if mi < 0 || mi >= in.M || j >= len(in.Times) {
			return 0 // not a complete schedule; no bound
		}
		loads[mi] += in.Times[j]
		jobs[mi]++
	}
	var w pcmax.Time
	for _, l := range loads {
		if l > w {
			w = l
		}
	}
	if w == 0 {
		return 0
	}
	// Ratio inversion: OPT >= ceil(3mW / (4m-1)).
	best := ceilDiv(3*m*w, 4*m-1)
	// Critical-machine refinement over every machine with load W.
	for mi, l := range loads {
		if l != w || jobs[mi] == 0 {
			continue
		}
		c := jobs[mi]
		if b := ceilDiv(w*(c*m-m+1), c*m); b > best {
			best = b
		}
	}
	return best
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a, b pcmax.Time) pcmax.Time {
	return (a + b - 1) / b
}
