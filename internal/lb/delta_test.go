package lb_test

// External test package: the theorem check compares against internal/exact,
// which itself imports lb for pruning bounds — an in-package test would be
// an import cycle.

import (
	"context"
	"testing"

	"repro/internal/exact"
	"repro/internal/lb"
	"repro/internal/rng"
	"repro/pcmax"
)

func TestFromPreviousValues(t *testing.T) {
	cases := []struct {
		prev, removed, want pcmax.Time
	}{
		{100, 0, 100},  // no removals: bound carries over unchanged
		{100, 30, 70},  // removals shift it down by their total
		{100, 150, 0},  // bound can drop to the floor, never below
		{100, -5, 100}, // defensive: negative totals are treated as zero
		{0, 10, 0},
	}
	for _, c := range cases {
		if got := lb.FromPrevious(c.prev, c.removed); got != c.want {
			t.Fatalf("FromPrevious(%d, %d) = %d, want %d", c.prev, c.removed, got, c.want)
		}
	}
}

func optimalMakespan(t *testing.T, in *pcmax.Instance) pcmax.Time {
	t.Helper()
	_, res, err := exact.Solve(context.Background(), in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("exact solve did not prove optimality")
	}
	return res.Makespan
}

func TestFromPreviousBoundsNewOptimum(t *testing.T) {
	// The theorem behind FromPrevious: with prevLB = OPT_old (the strongest
	// certified bound available), removing jobs totalling R must leave
	// OPT_new >= OPT_old - R. Exercise it with exact optima over random
	// small instances and every removal prefix.
	src := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		m := 2 + int(src.Uint64()%3)
		n := m + 2 + int(src.Uint64()%5)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Uint64()%50)
		}
		in := &pcmax.Instance{M: m, Times: times}
		optOld := optimalMakespan(t, in)
		for cut := 1; cut < n; cut++ {
			var removed pcmax.Time
			for _, tt := range times[n-cut:] {
				removed += tt
			}
			sub := &pcmax.Instance{M: m, Times: times[:n-cut]}
			bound := lb.FromPrevious(optOld, removed)
			if bound == 0 {
				continue
			}
			if optNew := optimalMakespan(t, sub); optNew < bound {
				t.Fatalf("trial %d cut %d: OPT_new=%d below carried bound %d (OPT_old=%d, removed=%d)",
					trial, cut, optNew, bound, optOld, removed)
			}
		}
	}
}

func TestFromPreviousAdditionsOnlyHelp(t *testing.T) {
	// Adding jobs never lowers the optimum, so a bound carried with
	// removedTotal = 0 across pure additions stays valid.
	src := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		m := 2 + int(src.Uint64()%3)
		n := m + 2 + int(src.Uint64()%4)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Uint64()%40)
		}
		in := &pcmax.Instance{M: m, Times: times}
		optOld := optimalMakespan(t, in)
		grown := append(append([]pcmax.Time(nil), times...), pcmax.Time(1+src.Uint64()%40))
		gin := &pcmax.Instance{M: m, Times: grown}
		if optNew := optimalMakespan(t, gin); optNew < lb.FromPrevious(optOld, 0) {
			t.Fatalf("trial %d: adding a job dropped OPT from %d to %d", trial, optOld, optNew)
		}
	}
}
