package lb

import "repro/pcmax"

// FromPrevious carries a certified lower bound across an instance mutation.
//
// Let OPT_old be the optimum of the previous instance and prevLB <= OPT_old a
// certified bound on it. Removing jobs whose processing times total
// removedTotal lowers the optimum by at most removedTotal: take an optimal
// schedule of the new instance and place each removed job back on any
// machine — the makespan grows by at most removedTotal, and the result
// schedules the old job set, so OPT_old <= OPT_new + removedTotal, i.e.
// OPT_new >= prevLB - removedTotal. Added jobs never decrease the optimum
// (dropping them from any schedule of the grown instance never raises its
// makespan), so they cannot invalidate the bound and do not appear in it.
//
// The returned value is therefore a certified lower bound on the mutated
// instance's optimum, floored at zero. Callers combine it (max) with the
// instance's fresh bounds; after heavy removals the fresh bounds dominate.
func FromPrevious(prevLB, removedTotal pcmax.Time) pcmax.Time {
	if removedTotal < 0 {
		removedTotal = 0
	}
	b := prevLB - removedTotal
	if b < 0 {
		return 0
	}
	return b
}
