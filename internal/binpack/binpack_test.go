package binpack

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/pcmax"
)

func binLoads(t *testing.T, items []pcmax.Time, res Result, capacity pcmax.Time) []pcmax.Time {
	t.Helper()
	loads := make([]pcmax.Time, res.Bins)
	for i, b := range res.Assign {
		if b < 0 || b >= res.Bins {
			t.Fatalf("item %d assigned to bin %d of %d", i, b, res.Bins)
		}
		loads[b] += items[i]
	}
	for b, l := range loads {
		if l > capacity {
			t.Fatalf("bin %d overflows: %d > %d", b, l, capacity)
		}
		if l == 0 {
			t.Fatalf("bin %d is empty", b)
		}
	}
	return loads
}

func TestFirstFitExample(t *testing.T) {
	// 6,4 -> bin0; 5 doesn't fit bin0 -> bin1; 3 fits bin1? 5+3=8<=10 yes.
	items := []pcmax.Time{6, 4, 5, 3}
	res, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins != 2 {
		t.Fatalf("bins = %d, want 2", res.Bins)
	}
	if res.Assign[0] != 0 || res.Assign[1] != 0 || res.Assign[2] != 1 || res.Assign[3] != 1 {
		t.Fatalf("assign = %v", res.Assign)
	}
	binLoads(t, items, res, 10)
}

func TestFirstFitOpensNewBins(t *testing.T) {
	items := []pcmax.Time{7, 7, 7}
	res, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins != 3 {
		t.Fatalf("bins = %d, want 3", res.Bins)
	}
}

func TestFirstFitItemTooLarge(t *testing.T) {
	_, err := FirstFit([]pcmax.Time{11}, 10)
	if !errors.Is(err, ErrItemTooLarge) {
		t.Fatalf("want ErrItemTooLarge, got %v", err)
	}
}

func TestFirstFitRejectsNonPositive(t *testing.T) {
	if _, err := FirstFit([]pcmax.Time{5, 0}, 10); err == nil {
		t.Fatal("want error for zero-size item")
	}
	if _, err := FirstFit([]pcmax.Time{-3}, 10); err == nil {
		t.Fatal("want error for negative item")
	}
}

func TestFirstFitEmpty(t *testing.T) {
	res, err := FirstFit(nil, 10)
	if err != nil || res.Bins != 0 {
		t.Fatalf("empty pack: %v bins=%d", err, res.Bins)
	}
}

func TestFFDSortsBeforePacking(t *testing.T) {
	// Ascending input defeats FF (4 bins at cap 10: 2,3 -> b0; 5 -> b0 full
	// at 10; 7 -> b1...). FFD packs 7+3, 5+2+? Let's check concrete:
	// sorted 7,5,3,2: 7->b0, 5->b1, 3->b0(10), 2->b1(7).
	items := []pcmax.Time{2, 3, 5, 7}
	res, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins != 2 {
		t.Fatalf("FFD bins = %d, want 2", res.Bins)
	}
	// Assign is in original item order: item3(7) and item1(3) in bin 0.
	if res.Assign[3] != 0 || res.Assign[1] != 0 || res.Assign[2] != 1 || res.Assign[0] != 1 {
		t.Fatalf("assign = %v", res.Assign)
	}
	binLoads(t, items, res, 10)
}

func TestFFDDeterministicTies(t *testing.T) {
	items := []pcmax.Time{5, 5, 5, 5}
	a, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("FFD not deterministic on ties")
		}
	}
	if a.Bins != 2 {
		t.Fatalf("bins = %d, want 2", a.Bins)
	}
}

func TestFitsFFD(t *testing.T) {
	items := []pcmax.Time{7, 5, 3, 2}
	ok, err := FitsFFD(items, 10, 2)
	if err != nil || !ok {
		t.Fatalf("FitsFFD(10,2) = %v, %v; want true", ok, err)
	}
	ok, err = FitsFFD(items, 10, 1)
	if err != nil || ok {
		t.Fatalf("FitsFFD(10,1) = %v, %v; want false", ok, err)
	}
	// Oversized item: infeasible, not an error.
	ok, err = FitsFFD([]pcmax.Time{11}, 10, 5)
	if err != nil || ok {
		t.Fatalf("FitsFFD oversized = %v, %v; want false, nil", ok, err)
	}
	if _, err = FitsFFD(items, 10, -1); err == nil {
		t.Fatal("want error for negative bin limit")
	}
}

func TestPackingValidProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, capRaw uint16) bool {
		src := rng.New(seed)
		capacity := pcmax.Time(capRaw%200) + 10
		n := int(nRaw % 50)
		items := make([]pcmax.Time, n)
		for i := range items {
			items[i] = pcmax.Time(1 + src.Int64n(int64(capacity)))
		}
		for _, pack := range []func([]pcmax.Time, pcmax.Time) (Result, error){FirstFit, FirstFitDecreasing} {
			res, err := pack(items, capacity)
			if err != nil {
				return false
			}
			loads := make([]pcmax.Time, res.Bins)
			for i, b := range res.Assign {
				if n == 0 {
					break
				}
				if b < 0 || b >= res.Bins {
					return false
				}
				loads[b] += items[i]
			}
			for _, l := range loads {
				if l > capacity || l == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitsFFDMonotoneInCapacityProperty(t *testing.T) {
	// If FFD fits at capacity c, it also fits at c+delta... NOT true in
	// general for first-fit-decreasing bin *counts* (the FFD anomaly), but
	// it IS what MultiFit's binary search assumes within its [CL, CU]
	// window. Test the weaker property actually relied upon: feasibility at
	// the convergence point implies a valid packing can be extracted.
	f := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%30) + 1
		items := make([]pcmax.Time, n)
		for i := range items {
			items[i] = pcmax.Time(1 + src.Int64n(100))
		}
		maxBins := 1 + src.Intn(6)
		// Find the smallest capacity in [max item, sum] where FFD fits.
		var sum, mx pcmax.Time
		for _, it := range items {
			sum += it
			if it > mx {
				mx = it
			}
		}
		lo, hi := mx, sum
		for lo < hi {
			c := lo + (hi-lo)/2
			ok, err := FitsFFD(items, c, maxBins)
			if err != nil {
				return false
			}
			if ok {
				hi = c
			} else {
				lo = c + 1
			}
		}
		res, err := FirstFitDecreasing(items, hi)
		if err != nil {
			return false
		}
		return res.Bins <= maxBins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestFitPrefersTightestBin(t *testing.T) {
	// Bins after 7, 5 at cap 10: spaces 3 and 5. Item 3 goes to the tighter
	// bin (space 3) under best fit, but to the first bin under first fit —
	// identical here; distinguish with spaces 5 and 3: items 5, 7, then 3.
	items := []pcmax.Time{5, 7, 3}
	res, err := BestFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	// spaces: bin0 = 5, bin1 = 3; item 3 must land in bin1 (space 3).
	if res.Assign[2] != 1 {
		t.Fatalf("best fit put item 2 in bin %d, want 1", res.Assign[2])
	}
	// First fit, by contrast, uses bin0.
	ff, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Assign[2] != 0 {
		t.Fatalf("first fit put item 2 in bin %d, want 0", ff.Assign[2])
	}
}

func TestBestFitErrors(t *testing.T) {
	if _, err := BestFit([]pcmax.Time{11}, 10); !errors.Is(err, ErrItemTooLarge) {
		t.Fatalf("want ErrItemTooLarge, got %v", err)
	}
	if _, err := BestFit([]pcmax.Time{0}, 10); err == nil {
		t.Fatal("want non-positive error")
	}
}

func TestBestFitDecreasingValidProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, capRaw uint16) bool {
		src := rng.New(seed)
		capacity := pcmax.Time(capRaw%200) + 10
		n := int(nRaw % 40)
		items := make([]pcmax.Time, n)
		for i := range items {
			items[i] = pcmax.Time(1 + src.Int64n(int64(capacity)))
		}
		res, err := BestFitDecreasing(items, capacity)
		if err != nil {
			return false
		}
		loads := make([]pcmax.Time, res.Bins)
		for i, b := range res.Assign {
			if n == 0 {
				break
			}
			if b < 0 || b >= res.Bins {
				return false
			}
			loads[b] += items[i]
		}
		for _, l := range loads {
			if l > capacity || l == 0 {
				return false
			}
		}
		// Any-fit bound: all but one bin more than half full.
		halfOrLess := 0
		for _, l := range loads {
			if 2*l <= capacity {
				halfOrLess++
			}
		}
		return halfOrLess <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
