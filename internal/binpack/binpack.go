// Package binpack implements first-fit bin packing with fixed capacity.
// It is the substrate under MultiFit (Coffman, Garey, Johnson — the MF
// algorithm discussed in the paper's related work) and under the exact
// solver's feasibility heuristics.
package binpack

import (
	"errors"
	"fmt"
	"sort"

	"repro/pcmax"
)

// ErrItemTooLarge reports an item that exceeds the bin capacity: no packing
// exists at all.
var ErrItemTooLarge = errors.New("binpack: item larger than capacity")

// Result describes a packing: Assign[i] is the bin of item i (0-based) and
// Bins is the number of bins opened.
type Result struct {
	Assign []int
	Bins   int
}

// FirstFit packs the items in the given order: each item goes into the
// lowest-indexed bin it fits in, opening a new bin if none fits.
func FirstFit(items []pcmax.Time, capacity pcmax.Time) (Result, error) {
	res := Result{Assign: make([]int, len(items))}
	var space []pcmax.Time // remaining capacity per open bin
	for i, t := range items {
		if t <= 0 {
			return Result{}, fmt.Errorf("binpack: item %d has non-positive size %d", i, t)
		}
		if t > capacity {
			return Result{}, fmt.Errorf("%w (item %d size %d, capacity %d)", ErrItemTooLarge, i, t, capacity)
		}
		placed := false
		for b := range space {
			if space[b] >= t {
				space[b] -= t
				res.Assign[i] = b
				placed = true
				break
			}
		}
		if !placed {
			space = append(space, capacity-t)
			res.Assign[i] = len(space) - 1
		}
	}
	res.Bins = len(space)
	return res, nil
}

// BestFit packs the items in the given order: each item goes into the
// feasible bin with the least remaining space (ties toward the lowest
// index), opening a new bin when none fits.
func BestFit(items []pcmax.Time, capacity pcmax.Time) (Result, error) {
	res := Result{Assign: make([]int, len(items))}
	var space []pcmax.Time
	for i, t := range items {
		if t <= 0 {
			return Result{}, fmt.Errorf("binpack: item %d has non-positive size %d", i, t)
		}
		if t > capacity {
			return Result{}, fmt.Errorf("%w (item %d size %d, capacity %d)", ErrItemTooLarge, i, t, capacity)
		}
		best := -1
		for b := range space {
			if space[b] >= t && (best < 0 || space[b] < space[best]) {
				best = b
			}
		}
		if best < 0 {
			space = append(space, capacity-t)
			res.Assign[i] = len(space) - 1
		} else {
			space[best] -= t
			res.Assign[i] = best
		}
	}
	res.Bins = len(space)
	return res, nil
}

// decreasing runs pack on the items sorted by non-increasing size (stably,
// ties by index); Assign still refers to the original item order.
func decreasing(items []pcmax.Time, capacity pcmax.Time, pack func([]pcmax.Time, pcmax.Time) (Result, error)) (Result, error) {
	order := sortedDesc(items)
	reordered := make([]pcmax.Time, len(items))
	for k, i := range order {
		reordered[k] = items[i]
	}
	inner, err := pack(reordered, capacity)
	if err != nil {
		return Result{}, err
	}
	res := Result{Assign: make([]int, len(items)), Bins: inner.Bins}
	for k, i := range order {
		res.Assign[i] = inner.Assign[k]
	}
	return res, nil
}

// FirstFitDecreasing sorts the items by non-increasing size and runs
// FirstFit.
func FirstFitDecreasing(items []pcmax.Time, capacity pcmax.Time) (Result, error) {
	return decreasing(items, capacity, FirstFit)
}

// BestFitDecreasing sorts the items by non-increasing size and runs BestFit.
func BestFitDecreasing(items []pcmax.Time, capacity pcmax.Time) (Result, error) {
	return decreasing(items, capacity, BestFit)
}

// FitsFFD reports whether first-fit-decreasing packs the items into at most
// maxBins bins of the given capacity. It is the feasibility test that
// MultiFit binary-searches over.
func FitsFFD(items []pcmax.Time, capacity pcmax.Time, maxBins int) (bool, error) {
	if maxBins < 0 {
		return false, fmt.Errorf("binpack: negative bin limit %d", maxBins)
	}
	res, err := FirstFitDecreasing(items, capacity)
	if err != nil {
		if errors.Is(err, ErrItemTooLarge) {
			return false, nil
		}
		return false, err
	}
	return res.Bins <= maxBins, nil
}

// sortedDesc returns item indices by non-increasing size, ties by index, so
// FFD is fully deterministic.
func sortedDesc(items []pcmax.Time) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if items[ia] != items[ib] {
			return items[ia] > items[ib]
		}
		return ia < ib
	})
	return order
}
