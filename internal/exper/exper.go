// Package exper is the experiment harness that regenerates every figure and
// table of the paper's evaluation (Section V):
//
//   - Figures 2, 3, 4: average speedup of the parallel PTAS with respect to
//     the sequential PTAS (panel a) and to the IP/exact baseline (panel b),
//     plus running times (panel c), for (m=20,n=100), (m=10,n=50) and
//     (m=10,n=30) over the four uniform instance families.
//   - Tables II and III + Figure 5: actual approximation ratios of the
//     parallel PTAS, LPT and LS against the optimal makespan on best-case
//     and worst-case instance sets.
//
// Speedups are reported twice: measured wall clock (honest on whatever
// hardware runs the harness — meaningless on a single-core container) and
// simulated on the paper's Section IV cost model via package simsched,
// calibrated by the measured sequential fill time of the same tables.
package exper

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/listsched"
	"repro/internal/simsched"
	"repro/internal/workload"
	"repro/pcmax"
)

// Config controls a harness run.
type Config struct {
	// Reps is the number of random instances per type; the paper uses 20.
	Reps int
	// Cores lists the worker counts to evaluate; the paper uses 2..16.
	Cores []int
	// Epsilon is the PTAS relative error; the paper uses 0.3.
	Epsilon float64
	// Seed is the base RNG seed; instance (type, rep) derives from it.
	Seed uint64
	// ExactNodeLimit / ExactTimeLimit bound each exact solve.
	ExactNodeLimit int64
	ExactTimeLimit time.Duration
	// BarrierNs sets the simulated per-level barrier (0 = library default).
	BarrierNs float64
	// WallClock also measures real parallel runs per core count.
	WallClock bool
	// PaperFaithful switches the PTAS to the presentation-faithful DP
	// variants (per-entry configuration enumeration, level scans).
	PaperFaithful bool
	// SkipIP skips the exact baselines entirely (used by the scaled
	// speedup experiment, which studies DP scaling, not IP times).
	SkipIP bool
	// SkipIPBaseline skips only the assignment-formulation IP timing while
	// keeping the strong solver's certified optimum (used by the ratio
	// experiments, which need optima but not IP times).
	SkipIPBaseline bool
	// Out receives the rendered tables; nil means os.Stdout.
	Out io.Writer
	// CSV renders tables as CSV instead of aligned text.
	CSV bool
}

// DefaultConfig returns the harness defaults: the paper's eps and core
// range, 5 repetitions (pass 20 to match the paper's protocol exactly).
func DefaultConfig() Config {
	return Config{
		Reps:           5,
		Cores:          []int{1, 2, 4, 8, 16},
		Epsilon:        0.3,
		Seed:           2017,
		ExactTimeLimit: 30 * time.Second,
		WallClock:      true,
	}
}

func (cfg *Config) out() io.Writer {
	if cfg.Out != nil {
		return cfg.Out
	}
	return os.Stdout
}

func (cfg *Config) validate() error {
	if cfg.Reps < 1 {
		return fmt.Errorf("exper: Reps must be >= 1, got %d", cfg.Reps)
	}
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("exper: Epsilon must be positive, got %v", cfg.Epsilon)
	}
	if len(cfg.Cores) == 0 {
		return fmt.Errorf("exper: Cores must not be empty")
	}
	for _, c := range cfg.Cores {
		if c < 1 {
			return fmt.Errorf("exper: core count %d < 1", c)
		}
	}
	return nil
}

// measurement holds everything the harness learns from one instance.
type measurement struct {
	seqSeconds   float64         // sequential PTAS wall clock
	wallSeconds  map[int]float64 // parallel PTAS wall clock per core count
	simSeconds   map[int]float64 // simulated parallel PTAS total per core count
	exactSeconds float64         // IP (assignment B&B) wall clock
	ipProven     bool            // IP baseline proved optimality within its limits
	exactProven  bool            // optimum certified (by either solver)

	optMakespan  pcmax.Time // exact (or best-known) makespan
	ptasMakespan pcmax.Time
	lptMakespan  pcmax.Time
	lsMakespan   pcmax.Time
}

// measure runs every solver on one instance.
func (cfg *Config) measure(in *pcmax.Instance) (*measurement, error) {
	m := &measurement{
		wallSeconds: make(map[int]float64),
		simSeconds:  make(map[int]float64),
	}

	// Sequential PTAS with profile collection (calibrates the simulator).
	profile := &simsched.Profile{}
	copts := core.Options{Epsilon: cfg.Epsilon, Workers: 1, Profile: profile, PerEntryConfigs: cfg.PaperFaithful}
	t0 := time.Now()
	seqSched, seqStats, err := core.Solve(in, copts)
	if err != nil {
		return nil, fmt.Errorf("sequential PTAS: %w", err)
	}
	m.seqSeconds = time.Since(t0).Seconds()
	m.ptasMakespan = seqSched.Makespan(in)

	// Simulated parallel total time: sequential non-DP part plus the
	// simulated fill on P cores.
	nonDP := m.seqSeconds - seqStats.FillTime.Seconds()
	if nonDP < 0 {
		nonDP = 0
	}
	for _, c := range cfg.Cores {
		if profile.SeqFill > 0 && profile.TotalWork() > 0 {
			fill, err := simsched.Machine{Workers: c, BarrierNs: cfg.BarrierNs}.FillTime(profile)
			if err != nil {
				return nil, fmt.Errorf("simulate %d cores: %w", c, err)
			}
			m.simSeconds[c] = nonDP + fill.Seconds()
		} else {
			m.simSeconds[c] = m.seqSeconds
		}
	}

	// Measured wall-clock parallel runs (also verifies that the parallel
	// schedule matches the sequential one).
	if cfg.WallClock {
		for _, c := range cfg.Cores {
			t0 = time.Now()
			parSched, _, err := core.Solve(in, core.Options{
				Epsilon: cfg.Epsilon, Workers: c, PerEntryConfigs: cfg.PaperFaithful,
			})
			if err != nil {
				return nil, fmt.Errorf("parallel PTAS (%d workers): %w", c, err)
			}
			m.wallSeconds[c] = time.Since(t0).Seconds()
			if got, want := parSched.Makespan(in), m.ptasMakespan; got != want {
				return nil, fmt.Errorf("parallel PTAS (%d workers) makespan %d != sequential %d", c, got, want)
			}
		}
	}

	// Classical baselines.
	m.lptMakespan = listsched.LPT(in).Makespan(in)
	m.lsMakespan = listsched.LS(in).Makespan(in)

	if cfg.SkipIP {
		m.optMakespan = in.LowerBound() // reported but unused without IP
		return m, nil
	}

	// IP baseline timing (assignment-formulation branch-and-bound, the
	// shape the paper measured with CPLEX).
	limits := exact.Options{NodeLimit: cfg.ExactNodeLimit, TimeLimit: cfg.ExactTimeLimit}
	if !cfg.SkipIPBaseline {
		t0 = time.Now()
		_, ipRes, err := exact.SolveAssignment(in, limits)
		if err != nil {
			return nil, fmt.Errorf("IP baseline: %w", err)
		}
		m.exactSeconds = time.Since(t0).Seconds()
		m.ipProven = ipRes.Optimal
		m.exactProven = ipRes.Optimal
		m.optMakespan = ipRes.Makespan
	}

	// Certified optimum for ratios from the strong combinatorial solver
	// (fast on all evaluation families).
	_, res, err := exact.Solve(in, limits)
	if err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	if m.optMakespan == 0 || res.Makespan < m.optMakespan || res.Optimal {
		m.optMakespan = res.Makespan
	}
	if res.Optimal {
		m.exactProven = true
	}
	return m, nil
}

// specFor derives the deterministic instance spec of one (family, rep) cell.
func (cfg *Config) specFor(fam workload.Family, m, n, rep int) workload.Spec {
	return workload.Spec{Family: fam, M: m, N: n, Seed: cfg.Seed + uint64(rep)*1000003}
}
