// Package exper is the experiment harness that regenerates every figure and
// table of the paper's evaluation (Section V):
//
//   - Figures 2, 3, 4: average speedup of the parallel PTAS with respect to
//     the sequential PTAS (panel a) and to the IP/exact baseline (panel b),
//     plus running times (panel c), for (m=20,n=100), (m=10,n=50) and
//     (m=10,n=30) over the four uniform instance families.
//   - Tables II and III + Figure 5: actual approximation ratios of the
//     parallel PTAS, LPT and LS against the optimal makespan on best-case
//     and worst-case instance sets.
//
// Speedups are reported twice: measured wall clock (honest on whatever
// hardware runs the harness — meaningless on a single-core container) and
// simulated on the paper's Section IV cost model via package simsched,
// calibrated by the measured sequential fill time of the same tables.
package exper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/simsched"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// Config controls a harness run.
type Config struct {
	// Reps is the number of random instances per type; the paper uses 20.
	Reps int
	// Cores lists the worker counts to evaluate; the paper uses 2..16.
	Cores []int
	// Epsilon is the PTAS relative error; the paper uses 0.3.
	Epsilon float64
	// Seed is the base RNG seed; instance (type, rep) derives from it.
	Seed uint64
	// ExactNodeLimit / ExactTimeLimit bound each exact solve.
	ExactNodeLimit int64
	ExactTimeLimit time.Duration
	// AlgoTimeout bounds every individual algorithm invocation with a
	// context deadline (0 = unbounded). Timed-out cells are logged to
	// stderr and skipped or filled from the fallback/incumbent instead of
	// aborting the whole experiment.
	AlgoTimeout time.Duration
	// BarrierNs sets the simulated per-level barrier (0 = library default).
	BarrierNs float64
	// WallClock also measures real parallel runs per core count.
	WallClock bool
	// PaperFaithful switches the PTAS to the presentation-faithful DP
	// variants (per-entry configuration enumeration, level scans).
	PaperFaithful bool
	// SkipIP skips the exact baselines entirely (used by the scaled
	// speedup experiment, which studies DP scaling, not IP times).
	SkipIP bool
	// SkipIPBaseline skips only the assignment-formulation IP timing while
	// keeping the strong solver's certified optimum (used by the ratio
	// experiments, which need optima but not IP times).
	SkipIPBaseline bool
	// Out receives the rendered tables; nil means os.Stdout.
	Out io.Writer
	// CSV renders tables as CSV instead of aligned text.
	CSV bool
}

// DefaultConfig returns the harness defaults: the paper's eps and core
// range, 5 repetitions (pass 20 to match the paper's protocol exactly).
func DefaultConfig() Config {
	return Config{
		Reps:           5,
		Cores:          []int{1, 2, 4, 8, 16},
		Epsilon:        0.3,
		Seed:           2017,
		ExactTimeLimit: 30 * time.Second,
		WallClock:      true,
	}
}

func (cfg *Config) out() io.Writer {
	if cfg.Out != nil {
		return cfg.Out
	}
	return os.Stdout
}

// algoCtx returns the context bounding one algorithm invocation: ctx
// narrowed by an AlgoTimeout deadline when set, ctx unchanged otherwise.
// The harness never mints a root context; cancelling the context a Run*
// entry point was given aborts the whole experiment cooperatively.
func (cfg *Config) algoCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if cfg.AlgoTimeout > 0 {
		return context.WithTimeout(ctx, cfg.AlgoTimeout)
	}
	return ctx, func() {}
}

// runAlgo dispatches one algorithm through the solver registry under the
// per-algorithm timeout, with variant capability checking (an instance using
// features the algorithm does not support fails fast with a typed error —
// see solver.Solve). A timed-out cell is logged to stderr; the caller still
// receives the fallback/incumbent schedule (when the algorithm provides one)
// next to the ErrCanceled-matching error and decides whether the cell is
// usable.
func (cfg *Config) runAlgo(ctx context.Context, name string, in *pcmax.Instance, opts solver.Options) (*pcmax.Schedule, solver.Report, error) {
	ctx, cancel := cfg.algoCtx(ctx)
	defer cancel()
	sched, rep, err := solver.Solve(ctx, name, in, opts)
	if err != nil && errors.Is(err, solver.ErrCanceled) {
		fmt.Fprintf(os.Stderr, "exper: %s timed out after %v on m=%d n=%d\n",
			name, cfg.AlgoTimeout, in.M, in.N())
	}
	return sched, rep, err
}

// exactLimits packages the exact-solver bounds as registry options.
func (cfg *Config) exactLimits() solver.Options {
	return solver.Options{Exact: solver.ExactOptions{
		NodeLimit: cfg.ExactNodeLimit,
		TimeLimit: cfg.ExactTimeLimit,
	}}
}

// ptasOptions packages the harness's PTAS configuration for registry
// dispatch. The LPT fallback is disabled so the measured schedule is the
// PTAS construction itself, as in the paper's protocol (the registry default
// would silently substitute LPT's schedule when it wins).
func (cfg *Config) ptasOptions(workers int) solver.Options {
	return solver.Options{PTAS: solver.PTASOptions{
		Epsilon:       cfg.Epsilon,
		Workers:       workers,
		PaperFaithful: cfg.PaperFaithful,
		NoLPTFallback: true,
	}}
}

func (cfg *Config) validate() error {
	if cfg.Reps < 1 {
		return fmt.Errorf("exper: Reps must be >= 1, got %d", cfg.Reps)
	}
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("exper: Epsilon must be positive, got %v", cfg.Epsilon)
	}
	if len(cfg.Cores) == 0 {
		return fmt.Errorf("exper: Cores must not be empty")
	}
	for _, c := range cfg.Cores {
		if c < 1 {
			return fmt.Errorf("exper: core count %d < 1", c)
		}
	}
	return nil
}

// measurement holds everything the harness learns from one instance.
type measurement struct {
	seqSeconds   float64         // sequential PTAS wall clock
	wallSeconds  map[int]float64 // parallel PTAS wall clock per core count
	simSeconds   map[int]float64 // simulated parallel PTAS total per core count
	exactSeconds float64         // IP (assignment B&B) wall clock
	ipProven     bool            // IP baseline proved optimality within its limits
	exactProven  bool            // optimum certified (by either solver)

	optMakespan  pcmax.Time // exact (or best-known) makespan
	ptasMakespan pcmax.Time
	lptMakespan  pcmax.Time
	lsMakespan   pcmax.Time
}

// measure runs every solver on one instance under ctx.
func (cfg *Config) measure(ctx context.Context, in *pcmax.Instance) (*measurement, error) {
	m := &measurement{
		wallSeconds: make(map[int]float64),
		simSeconds:  make(map[int]float64),
	}

	// Sequential PTAS with profile collection (calibrates the simulator).
	// This is the one call that bypasses the registry: the Profile hook is
	// an internal instrumentation knob the public options don't expose. It
	// still runs under the per-algorithm timeout.
	profile := &simsched.Profile{}
	copts := core.Options{Epsilon: cfg.Epsilon, Workers: 1, Profile: profile, PerEntryConfigs: cfg.PaperFaithful}
	seqCtx, cancelSeq := cfg.algoCtx(ctx)
	t0 := time.Now()
	seqSched, seqStats, err := core.Solve(seqCtx, in, copts)
	cancelSeq()
	if err != nil {
		return nil, fmt.Errorf("sequential PTAS: %w", err)
	}
	m.seqSeconds = time.Since(t0).Seconds()
	m.ptasMakespan = seqSched.Makespan(in)

	// Simulated parallel total time: sequential non-DP part plus the
	// simulated fill on P cores.
	nonDP := m.seqSeconds - seqStats.FillTime.Seconds()
	if nonDP < 0 {
		nonDP = 0
	}
	for _, c := range cfg.Cores {
		if profile.SeqFill > 0 && profile.TotalWork() > 0 {
			fill, err := simsched.Machine{Workers: c, BarrierNs: cfg.BarrierNs}.FillTime(profile)
			if err != nil {
				return nil, fmt.Errorf("simulate %d cores: %w", c, err)
			}
			m.simSeconds[c] = nonDP + fill.Seconds()
		} else {
			m.simSeconds[c] = m.seqSeconds
		}
	}

	// Measured wall-clock parallel runs (also verifies that the parallel
	// schedule matches the sequential one). A timed-out cell is logged by
	// runAlgo and skipped rather than failing the whole figure.
	if cfg.WallClock {
		for _, c := range cfg.Cores {
			parSched, parRep, err := cfg.runAlgo(ctx, "ptas", in, cfg.ptasOptions(c))
			if err != nil {
				if errors.Is(err, solver.ErrCanceled) {
					continue
				}
				return nil, fmt.Errorf("parallel PTAS (%d workers): %w", c, err)
			}
			m.wallSeconds[c] = parRep.Elapsed.Seconds()
			if got, want := parSched.Makespan(in), m.ptasMakespan; got != want {
				return nil, fmt.Errorf("parallel PTAS (%d workers) makespan %d != sequential %d", c, got, want)
			}
		}
	}

	// Classical baselines.
	for name, dst := range map[string]*pcmax.Time{"lpt": &m.lptMakespan, "ls": &m.lsMakespan} {
		_, rep, err := cfg.runAlgo(ctx, name, in, solver.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		*dst = rep.Makespan
	}

	if cfg.SkipIP {
		m.optMakespan = in.LowerBound() // reported but unused without IP
		return m, nil
	}

	// IP baseline timing (assignment-formulation branch-and-bound, the
	// shape the paper measured with CPLEX). A per-algorithm timeout leaves
	// the incumbent with ipProven = false, like a MIP time limit.
	limits := cfg.exactLimits()
	if !cfg.SkipIPBaseline {
		_, ipRep, err := cfg.runAlgo(ctx, "ip", in, limits)
		if err != nil && !errors.Is(err, solver.ErrCanceled) {
			return nil, fmt.Errorf("IP baseline: %w", err)
		}
		if ipRep.Exact == nil {
			return nil, fmt.Errorf("IP baseline: no result for m=%d n=%d", in.M, in.N())
		}
		m.exactSeconds = ipRep.Elapsed.Seconds()
		m.ipProven = ipRep.Exact.Optimal
		m.exactProven = ipRep.Exact.Optimal
		m.optMakespan = ipRep.Exact.Makespan
	}

	// Certified optimum for ratios from the strong combinatorial solver
	// (fast on all evaluation families).
	_, exRep, err := cfg.runAlgo(ctx, "exact", in, limits)
	if err != nil && !errors.Is(err, solver.ErrCanceled) {
		return nil, fmt.Errorf("exact: %w", err)
	}
	if exRep.Exact == nil {
		return nil, fmt.Errorf("exact: no result for m=%d n=%d", in.M, in.N())
	}
	res := exRep.Exact
	if m.optMakespan == 0 || res.Makespan < m.optMakespan || res.Optimal {
		m.optMakespan = res.Makespan
	}
	if res.Optimal {
		m.exactProven = true
	}
	return m, nil
}

// specFor derives the deterministic instance spec of one (family, rep) cell.
func (cfg *Config) specFor(fam workload.Family, m, n, rep int) workload.Spec {
	return workload.Spec{Family: fam, M: m, N: n, Seed: cfg.Seed + uint64(rep)*1000003}
}
