package exper

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// AblationRow is one measured design variant.
type AblationRow struct {
	Group    string
	Variant  string
	Seconds  float64    // mean wall-clock over the reps
	Makespan pcmax.Time // mean-free: the (identical across reps? no) — max observed makespan
}

// AblationResult is the output of RunAblations.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblations measures the design choices DESIGN.md calls out, each over
// cfg.Reps instances of the LPT-adversarial family at m=20 (whose DP tables
// are the largest among the paper's instance shapes):
//
//   - anti-diagonal discovery: level buckets vs the paper's full scans
//   - level scheduling: round-robin vs chunked vs dynamic
//   - sequential fill: bottom-up sweep vs paper's memoized recursion
//   - configuration sets: shared filtered list vs per-entry re-enumeration
//   - short-job rule: LPT (paper) vs LS (original Hochbaum–Shmoys)
//   - bisection: sequential vs speculative multi-probe
//   - exact-solver incumbent: LPT+MultiFit vs LPT only
func (cfg Config) RunAblations(ctx context.Context) (*AblationResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{}

	instances := make([]*pcmax.Instance, cfg.Reps)
	for rep := range instances {
		in, err := workload.Generate(cfg.specFor(workload.Um_2m1, 20, 41, rep))
		if err != nil {
			return nil, err
		}
		instances[rep] = in
	}

	// The ablation variants toggle internal core knobs (level modes, fill
	// strategies, ...) the public registry options deliberately don't
	// expose, so this driver calls core.Solve directly — still under the
	// per-algorithm timeout, with timed-out cells logged and skipped.
	solveVariant := func(group, variant string, opts core.Options) error {
		var total float64
		var worst pcmax.Time
		for _, in := range instances {
			actx, cancel := cfg.algoCtx(ctx)
			t0 := time.Now()
			sched, _, err := core.Solve(actx, in, opts)
			cancel()
			if err != nil {
				if errors.Is(err, solver.ErrCanceled) {
					fmt.Fprintf(os.Stderr, "exper: ablation %s/%s timed out after %v; cell skipped\n",
						group, variant, cfg.AlgoTimeout)
					return nil
				}
				return fmt.Errorf("%s/%s: %w", group, variant, err)
			}
			total += time.Since(t0).Seconds()
			if ms := sched.Makespan(in); ms > worst {
				worst = ms
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Group: group, Variant: variant,
			Seconds: total / float64(len(instances)), Makespan: worst,
		})
		return nil
	}

	eps := cfg.Epsilon
	for _, mode := range []dp.LevelMode{dp.LevelBuckets, dp.LevelScan} {
		if err := solveVariant("level discovery (4 workers)", mode.String(),
			core.Options{Epsilon: eps, Workers: 4, LevelMode: mode}); err != nil {
			return nil, err
		}
	}
	for _, strategy := range par.Strategies {
		if err := solveVariant("level scheduling (4 workers)", strategy.String(),
			core.Options{Epsilon: eps, Workers: 4, Strategy: strategy}); err != nil {
			return nil, err
		}
	}
	for fill, name := range map[core.SeqFill]string{core.SeqBottomUp: "bottom-up", core.SeqRecursive: "recursive (paper)"} {
		if err := solveVariant("sequential fill", name,
			core.Options{Epsilon: eps, SeqFill: fill}); err != nil {
			return nil, err
		}
	}
	for _, perEntry := range []bool{false, true} {
		name := "shared list"
		if perEntry {
			name = "per-entry (paper)"
		}
		if err := solveVariant("configuration enumeration", name,
			core.Options{Epsilon: eps, PerEntryConfigs: perEntry}); err != nil {
			return nil, err
		}
	}
	for rule, name := range map[core.ShortRule]string{core.ShortLPT: "LPT (paper)", core.ShortLS: "LS (Hochbaum–Shmoys)"} {
		if err := solveVariant("short-job rule", name,
			core.Options{Epsilon: eps, ShortRule: rule}); err != nil {
			return nil, err
		}
	}
	if err := solveVariant("bisection", "sequential",
		core.Options{Epsilon: eps}); err != nil {
		return nil, err
	}
	if err := solveVariant("bisection", "speculative x4",
		core.Options{Epsilon: eps, SpeculativeProbes: 4}); err != nil {
		return nil, err
	}

	for _, disable := range []bool{false, true} {
		name := "LPT+MultiFit"
		if disable {
			name = "LPT only"
		}
		var total float64
		for _, in := range instances {
			actx, cancel := cfg.algoCtx(ctx)
			t0 := time.Now()
			// DisableMultiFitIncumbent is likewise internal-only; the exact
			// solver's MIP contract turns a timeout into a bounded run, so
			// the cell stays usable.
			_, _, err := exact.Solve(actx, in, exact.Options{
				NodeLimit:                cfg.ExactNodeLimit,
				TimeLimit:                cfg.ExactTimeLimit,
				DisableMultiFitIncumbent: disable,
			})
			cancel()
			if err != nil {
				return nil, err
			}
			total += time.Since(t0).Seconds()
		}
		res.Rows = append(res.Rows, AblationRow{
			Group: "exact incumbent", Variant: name,
			Seconds: total / float64(len(instances)),
		})
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render(cfg Config) error {
	tbl := stats.NewTable(
		fmt.Sprintf("Ablations on U(m,2m-1) m=20 n=41 (eps=%.2f, %d instances per variant)", cfg.Epsilon, cfg.Reps),
		"group", "variant", "mean time (s)", "worst makespan")
	for _, row := range r.Rows {
		ms := ""
		if row.Makespan > 0 {
			ms = fmt.Sprintf("%d", row.Makespan)
		}
		tbl.AddRow(row.Group, row.Variant, fmt.Sprintf("%.6f", row.Seconds), ms)
	}
	if cfg.CSV {
		return tbl.RenderCSV(cfg.out())
	}
	return tbl.Render(cfg.out())
}
