package exper

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// HardRow is one machine count of the hard-instance study.
type HardRow struct {
	M              int
	BinCompletion  float64 // mean seconds, certified optimum
	AssignmentIP   float64 // mean seconds (the CPLEX-shaped baseline)
	IPProven       int
	ParallelExact4 float64 // mean seconds, SolveParallel with 4 workers
	PTASSeconds    float64
	PTASRatio      float64 // worst actual ratio vs the certified optimum
}

// HardResult is the output of RunHard.
type HardResult struct {
	B    pcmax.Time
	Rows []HardRow
}

// RunHard studies the triplet family (3-partition-shaped instances with a
// perfect schedule of makespan B): the known hard case for exact solvers and
// a favourable one for the PTAS, which keeps its guarantee while the IP
// baseline's search explodes with m.
func (cfg Config) RunHard(ctx context.Context, ms []int, b pcmax.Time) (*HardResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		ms = []int{4, 6, 8, 10}
	}
	if b <= 0 {
		b = 400
	}
	res := &HardResult{B: b}
	limits := cfg.exactLimits()
	wide := limits
	wide.Exact.Workers = 4
	for _, m := range ms {
		row := HardRow{M: m, PTASRatio: 1}
		var bc, ip, par4, ptas []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			in, err := workload.Triplets(m, b, cfg.Seed+uint64(rep))
			if err != nil {
				return nil, err
			}
			// The exact solvers keep their MIP contract under limits and
			// timeouts: the incumbent comes back with Optimal == false, so a
			// timed-out cell still yields a timing and a usable bound.
			_, bcRep, err := cfg.runAlgo(ctx, "exact", in, limits)
			if err != nil && !errors.Is(err, solver.ErrCanceled) {
				return nil, err
			}
			if bcRep.Exact == nil {
				return nil, fmt.Errorf("exper: exact solver returned no result for m=%d", m)
			}
			bc = append(bc, bcRep.Elapsed.Seconds())
			opt := bcRep.Exact.Makespan
			if !bcRep.Exact.Optimal {
				opt = b // the construction guarantees OPT = B
			}

			_, ipRep, err := cfg.runAlgo(ctx, "ip", in, limits)
			if err != nil && !errors.Is(err, solver.ErrCanceled) {
				return nil, err
			}
			if ipRep.Exact == nil {
				return nil, fmt.Errorf("exper: IP solver returned no result for m=%d", m)
			}
			ip = append(ip, ipRep.Elapsed.Seconds())
			if ipRep.Exact.Optimal {
				row.IPProven++
			}

			_, parRep, err := cfg.runAlgo(ctx, "exact", in, wide)
			if err != nil && !errors.Is(err, solver.ErrCanceled) {
				return nil, err
			}
			par4 = append(par4, parRep.Elapsed.Seconds())

			sched, pRep, err := cfg.runAlgo(ctx, "ptas", in, cfg.ptasOptions(1))
			if err != nil {
				if errors.Is(err, solver.ErrCanceled) {
					continue // logged by runAlgo; the fallback has no guarantee to report
				}
				return nil, err
			}
			ptas = append(ptas, pRep.Elapsed.Seconds())
			if r := sched.Ratio(in, opt); r > row.PTASRatio {
				row.PTASRatio = r
			}
		}
		row.BinCompletion = stats.Mean(bc)
		row.AssignmentIP = stats.Mean(ip)
		row.ParallelExact4 = stats.Mean(par4)
		row.PTASSeconds = stats.Mean(ptas)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the hard-instance table.
func (r *HardResult) Render(cfg Config) error {
	tbl := stats.NewTable(
		fmt.Sprintf("Hard (triplet) instances, B=%d, n=3m (%d instances per row)", r.B, cfg.Reps),
		"m", "bin-completion (s)", "assignment-IP (s)", "IP proved",
		"parallel exact x4 (s)", "PTAS (s)", "PTAS worst ratio")
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.M),
			fmt.Sprintf("%.6f", row.BinCompletion),
			fmt.Sprintf("%.6f", row.AssignmentIP),
			fmt.Sprintf("%d/%d", row.IPProven, cfg.Reps),
			fmt.Sprintf("%.6f", row.ParallelExact4),
			fmt.Sprintf("%.6f", row.PTASSeconds),
			stats.FmtFloat(row.PTASRatio, 4),
		)
	}
	if cfg.CSV {
		return tbl.RenderCSV(cfg.out())
	}
	return tbl.Render(cfg.out())
}
