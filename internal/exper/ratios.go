package exper

import (
	"context"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// RatioInstance is one row of the paper's Table II / Table III: an instance
// type on which the actual approximation ratios of the algorithms are
// compared (Figure 5).
type RatioInstance struct {
	ID   string
	Fam  workload.Family
	M, N int
	Note string
}

// TableII lists the best-case instance types for the parallel PTAS's
// approximation ratio. The paper names the families involved (the
// LPT-adversarial U(m,2m-1) with n=2m+1, the narrow U(95,105) range, and the
// uniform families) without printing every parameter of I1..I6, so the set
// below instantiates those families at the paper's machine/job scales; I6 is
// the family where the paper reports LPT at 1.28 vs the PTAS at 1.0.
func TableII() []RatioInstance {
	return []RatioInstance{
		{ID: "I1", Fam: workload.U95_105, M: 20, N: 100, Note: "narrow range"},
		{ID: "I2", Fam: workload.U95_105, M: 10, N: 30, Note: "narrow range"},
		{ID: "I3", Fam: workload.Um_2m1, M: 20, N: 41, Note: "n=2m+1, LPT-adversarial"},
		{ID: "I4", Fam: workload.U1_10, M: 20, N: 100, Note: "small processing times"},
		{ID: "I5", Fam: workload.U1_10n, M: 10, N: 50, Note: "large processing times"},
		{ID: "I6", Fam: workload.Um_2m1, M: 10, N: 21, Note: "n=2m+1, LPT-adversarial (paper's headline case)"},
	}
}

// TableIII lists the worst-case instance types for the parallel PTAS's
// approximation ratio (where its ratio is closest to LPT's; the paper bounds
// the gap at 0.13).
func TableIII() []RatioInstance {
	return []RatioInstance{
		{ID: "I7", Fam: workload.U1_100, M: 10, N: 30, Note: "medium range, few jobs"},
		{ID: "I8", Fam: workload.U1_10n, M: 10, N: 30, Note: "large processing times, few jobs"},
		{ID: "I9", Fam: workload.U1_2m1, M: 10, N: 30, Note: "machine-coupled range, few jobs"},
		{ID: "I10", Fam: workload.U1_100, M: 20, N: 100, Note: "medium range"},
		{ID: "I11", Fam: workload.U1_2m1, M: 20, N: 100, Note: "machine-coupled range"},
		{ID: "I12", Fam: workload.U1_10, M: 10, N: 50, Note: "small processing times"},
	}
}

// RatioResult aggregates one ratio figure (the paper's Figure 5 panels).
type RatioResult struct {
	Fig       string
	Instances []RatioInstance
	// Mean actual approximation ratios per instance, aligned with
	// Instances: makespan(algorithm) / makespan(exact).
	PTAS, LPT, LS []float64
	// Proven counts how many of the Reps exact solves were proved optimal.
	Proven []int
}

// RunRatioFigure measures the actual approximation ratios over one instance
// set.
func (cfg Config) RunRatioFigure(ctx context.Context, fig string, instances []RatioInstance) (*RatioResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &RatioResult{Fig: fig, Instances: instances}
	for _, ri := range instances {
		var ptas, lpt, ls []float64
		proven := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			in, err := workload.Generate(cfg.specFor(ri.Fam, ri.M, ri.N, rep))
			if err != nil {
				return nil, err
			}
			// Ratios only need the sequential run (the parallel algorithm
			// computes the identical schedule; measure() asserts that) and
			// the certified optimum, not the IP baseline timing.
			sub := cfg
			sub.WallClock = false
			sub.Cores = []int{1}
			sub.SkipIPBaseline = true
			meas, err := sub.measure(ctx, in)
			if err != nil {
				return nil, fmt.Errorf("%s %s rep %d: %w", fig, ri.ID, rep, err)
			}
			if meas.exactProven {
				proven++
			}
			opt := float64(meas.optMakespan)
			ptas = append(ptas, float64(meas.ptasMakespan)/opt)
			lpt = append(lpt, float64(meas.lptMakespan)/opt)
			ls = append(ls, float64(meas.lsMakespan)/opt)
		}
		res.PTAS = append(res.PTAS, stats.Mean(ptas))
		res.LPT = append(res.LPT, stats.Mean(lpt))
		res.LS = append(res.LS, stats.Mean(ls))
		res.Proven = append(res.Proven, proven)
	}
	return res, nil
}

// Render prints the instance inventory (Table II/III shape) and the ratio
// panel (Figure 5 shape).
func (r *RatioResult) Render(cfg Config, inventoryTitle, panelTitle string) error {
	w := cfg.out()
	render := func(t *stats.Table) error {
		if cfg.CSV {
			return t.RenderCSV(w)
		}
		return t.Render(w)
	}
	inv := stats.NewTable(inventoryTitle, "instance", "distribution", "m", "n", "note")
	for _, ri := range r.Instances {
		inv.AddRow(ri.ID, ri.Fam.String(), fmt.Sprintf("%d", ri.M), fmt.Sprintf("%d", ri.N), ri.Note)
	}
	if err := render(inv); err != nil {
		return err
	}
	panel := stats.NewTable(panelTitle,
		"instance", "parallel PTAS", "LPT", "LS", "opt proved")
	for i, ri := range r.Instances {
		panel.AddRow(ri.ID,
			stats.FmtFloat(r.PTAS[i], 3),
			stats.FmtFloat(r.LPT[i], 3),
			stats.FmtFloat(r.LS[i], 3),
			fmt.Sprintf("%d/%d", r.Proven[i], cfg.Reps))
	}
	return render(panel)
}

// RunFig5a measures the best-case ratio panel (Table II instances).
func (cfg Config) RunFig5a(ctx context.Context) (*RatioResult, error) {
	return cfg.RunRatioFigure(ctx, "fig5a", TableII())
}

// RunFig5b measures the worst-case ratio panel (Table III instances).
func (cfg Config) RunFig5b(ctx context.Context) (*RatioResult, error) {
	return cfg.RunRatioFigure(ctx, "fig5b", TableIII())
}
