package exper

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// EpsilonPoint is one measured accuracy setting.
type EpsilonPoint struct {
	Epsilon    float64
	K          int
	MeanRatio  float64 // vs certified optimum
	WorstRatio float64
	MeanSecs   float64
	MeanTable  float64 // mean final DP-table entries
	Failures   int     // table/config budget errors at this epsilon
}

// EpsilonResult is the output of RunEpsilonSweep.
type EpsilonResult struct {
	M, N   int
	Fam    workload.Family
	Points []EpsilonPoint
}

// DefaultEpsilonGrid is the sweep used by the harness. It stops at 0.2: the
// next useful step (k=7, k^2=49 classes) needs minutes per instance at the
// paper's scale, the `(n/eps)^(1/eps^2)` wall the paper's introduction calls
// "not feasible to use in practice" for the sequential scheme.
var DefaultEpsilonGrid = []float64{1.0, 0.5, 0.4, 1.0 / 3.0, 0.3, 0.25, 0.2}

// RunEpsilonSweep quantifies the accuracy/effort exchange of the scheme on
// the paper's U(1,100) family: for each epsilon, the actual approximation
// ratio against the certified optimum and the running time/table size.
func (cfg Config) RunEpsilonSweep(ctx context.Context, m, n int, grid []float64) (*EpsilonResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(grid) == 0 {
		grid = DefaultEpsilonGrid
	}
	res := &EpsilonResult{M: m, N: n, Fam: workload.U1_100}

	type inst struct {
		in  *pcmax.Instance
		opt pcmax.Time
	}
	instances := make([]inst, cfg.Reps)
	for rep := range instances {
		in, err := workload.Generate(cfg.specFor(res.Fam, m, n, rep))
		if err != nil {
			return nil, err
		}
		_, exRep, err := cfg.runAlgo(ctx, "exact", in, cfg.exactLimits())
		if err != nil && !errors.Is(err, solver.ErrCanceled) {
			return nil, err
		}
		if exRep.Exact == nil || !exRep.Exact.Optimal {
			return nil, fmt.Errorf("exper: optimum not certified for rep %d; raise the exact limits", rep)
		}
		instances[rep] = inst{in: in, opt: exRep.Exact.Makespan}
	}

	for _, eps := range grid {
		k, err := core.KFor(eps)
		if err != nil {
			return nil, err
		}
		pt := EpsilonPoint{Epsilon: eps, K: k, WorstRatio: 1}
		var ratios, secs, tables []float64
		sweep := cfg
		sweep.Epsilon = eps
		for _, it := range instances {
			sched, rep, err := sweep.runAlgo(ctx, "ptas", it.in, sweep.ptasOptions(1))
			if err != nil || rep.PTAS == nil {
				pt.Failures++
				continue
			}
			secs = append(secs, rep.Elapsed.Seconds())
			tables = append(tables, float64(rep.PTAS.TableEntries))
			r := sched.Ratio(it.in, it.opt)
			ratios = append(ratios, r)
			if r > pt.WorstRatio {
				pt.WorstRatio = r
			}
			if r > 1+eps+1e-9 {
				return nil, fmt.Errorf("exper: eps=%v guarantee violated (ratio %v)", eps, r)
			}
		}
		pt.MeanRatio = stats.Mean(ratios)
		pt.MeanSecs = stats.Mean(secs)
		pt.MeanTable = stats.Mean(tables)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the sweep.
func (r *EpsilonResult) Render(cfg Config) error {
	tbl := stats.NewTable(
		fmt.Sprintf("Epsilon sweep on %v m=%d n=%d (%d instances per point, certified optima)", r.Fam, r.M, r.N, cfg.Reps),
		"epsilon", "k", "mean ratio", "worst ratio", "guarantee", "mean time (s)", "mean table entries", "failures")
	for _, p := range r.Points {
		tbl.AddRow(
			stats.FmtFloat(p.Epsilon, 3),
			fmt.Sprintf("%d", p.K),
			stats.FmtFloat(p.MeanRatio, 4),
			stats.FmtFloat(p.WorstRatio, 4),
			stats.FmtFloat(1+p.Epsilon, 3),
			fmt.Sprintf("%.6f", p.MeanSecs),
			fmt.Sprintf("%.0f", p.MeanTable),
			fmt.Sprintf("%d", p.Failures),
		)
	}
	if cfg.CSV {
		return tbl.RenderCSV(cfg.out())
	}
	return tbl.Render(cfg.out())
}
