package exper

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// The variants experiment measures the registry's variant-capable solvers
// against certified optima on the decorated instance families: for each
// (variant, family) cell it generates small instances, certifies the optimum
// with the exhaustive variant solver, and reports each algorithm's mean
// actual ratio. Algorithms whose capability set does not cover a variant are
// reported as skipped, demonstrating the typed-dispatch path rather than
// erroring out.

// VariantAlgos are the algorithms compared by RunVariants; "brute" is the
// reference and not repeated as a column.
var VariantAlgos = []string{"ls", "lpt", "ptas-tr", "ptas"}

// VariantGrid lists the variants RunVariants evaluates: each single feature
// plus the full combination.
var VariantGrid = []pcmax.Variant{
	pcmax.ReleaseTimes,
	pcmax.SetupTimes,
	pcmax.TimeRestricted,
	pcmax.ReleaseTimes | pcmax.SetupTimes | pcmax.TimeRestricted,
}

// VariantCell is one (variant, family) row of the experiment.
type VariantCell struct {
	Variant pcmax.Variant
	Fam     workload.Family
	M, N    int
	// MeanOpt is the mean certified-optimal makespan over the repetitions.
	MeanOpt float64
	// Ratios maps algorithm name to its mean actual ratio against the
	// certified optimum; an algorithm skipped for this variant is absent.
	Ratios map[string]float64
	// Skipped lists the algorithms whose capability sets exclude the
	// variant.
	Skipped []string
}

// VariantResult aggregates the experiment.
type VariantResult struct {
	M, N  int
	Cells []VariantCell
}

// variantFamilies is the family subset the experiment decorates; small
// processing-time scales keep the exhaustive reference fast.
var variantFamilies = []workload.Family{workload.U1_10, workload.U1_100, workload.Um_2m1}

// RunVariants evaluates the variant-capable algorithms on decorated
// instances. The shapes are deliberately small (the reference optimum is
// exhaustive); the experiment is about correctness ratios and dispatch, not
// scale.
func (cfg Config) RunVariants(ctx context.Context, m, n int) (*VariantResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &VariantResult{M: m, N: n}
	for _, v := range VariantGrid {
		for _, fam := range variantFamilies {
			nn := n
			if fam == workload.Um_2m1 {
				nn = 2*m + 1
			}
			cell, err := cfg.runVariantCell(ctx, v, fam, m, nn)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, *cell)
		}
	}
	return res, nil
}

func (cfg Config) runVariantCell(ctx context.Context, v pcmax.Variant, fam workload.Family, m, n int) (*VariantCell, error) {
	cell := &VariantCell{Variant: v, Fam: fam, M: m, N: n, Ratios: map[string]float64{}}
	sums := map[string]float64{}
	counts := map[string]int{}
	skipped := map[string]bool{}
	var optSum float64

	for rep := 0; rep < cfg.Reps; rep++ {
		spec := workload.VariantSpec{Spec: cfg.specFor(fam, m, n, rep), Variant: v}
		in, err := workload.GenerateVariant(spec)
		if err != nil {
			return nil, err
		}
		if got := in.Variant(); got&^v != 0 {
			return nil, fmt.Errorf("exper: generated variant %s outside requested %s", got, v)
		}

		refSched, _, err := cfg.runAlgo(ctx, "brute", in, solver.Options{})
		if err != nil {
			return nil, fmt.Errorf("exper: variant reference failed: %w", err)
		}
		opt := refSched.Makespan(in)
		optSum += float64(opt)

		for _, name := range VariantAlgos {
			opts := solver.Options{TR: solver.TROptions{Epsilon: cfg.Epsilon}}
			sched, _, err := cfg.runAlgo(ctx, name, in, opts)
			if errors.Is(err, solver.ErrUnsupportedVariant) {
				skipped[name] = true
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("exper: %s on %s %v: %w", name, v, fam, err)
			}
			sums[name] += float64(sched.Makespan(in)) / float64(opt)
			counts[name]++
		}
	}

	cell.MeanOpt = optSum / float64(cfg.Reps)
	for name, s := range sums {
		cell.Ratios[name] = s / float64(counts[name])
	}
	for _, name := range VariantAlgos {
		if skipped[name] {
			cell.Skipped = append(cell.Skipped, name)
		}
	}
	return cell, nil
}

// Render prints the variant comparison table.
func (r *VariantResult) Render(cfg Config) error {
	cols := append([]string{"variant", "family", "m", "n", "mean opt"}, VariantAlgos...)
	tbl := stats.NewTable(
		fmt.Sprintf("Variant solvers vs certified optima (%d instances per cell, exhaustive reference)", cfg.Reps),
		cols...)
	for _, c := range r.Cells {
		row := []string{
			c.Variant.Letters(),
			c.Fam.String(),
			fmt.Sprintf("%d", c.M),
			fmt.Sprintf("%d", c.N),
			stats.FmtFloat(c.MeanOpt, 1),
		}
		for _, name := range VariantAlgos {
			if ratio, ok := c.Ratios[name]; ok {
				row = append(row, stats.FmtFloat(ratio, 4))
			} else {
				row = append(row, "unsupported")
			}
		}
		tbl.AddRow(row...)
	}
	if cfg.CSV {
		return tbl.RenderCSV(cfg.out())
	}
	return tbl.Render(cfg.out())
}
