package exper

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestRunEpsilonSweepSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := cfg.RunEpsilonSweep(context.Background(), 4, 20, []float64{1.0, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Failures != 0 {
			t.Fatalf("eps=%v: %d failures", p.Epsilon, p.Failures)
		}
		if p.MeanRatio < 1.0-1e-9 || p.MeanRatio > 1+p.Epsilon+1e-9 {
			t.Fatalf("eps=%v: mean ratio %v outside [1, 1+eps]", p.Epsilon, p.MeanRatio)
		}
		if p.WorstRatio < p.MeanRatio-1e-9 {
			t.Fatalf("eps=%v: worst %v below mean %v", p.Epsilon, p.WorstRatio, p.MeanRatio)
		}
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Epsilon sweep") {
		t.Fatalf("render output:\n%s", out.String())
	}
}

func TestRunEpsilonSweepDefaultGridParses(t *testing.T) {
	// Every grid point must map to a valid k; this guards the default grid
	// against values that KFor rejects.
	for _, eps := range DefaultEpsilonGrid {
		if eps <= 0 {
			t.Fatalf("bad grid point %v", eps)
		}
	}
}

func TestRunAblationsSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := cfg.RunAblations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	for _, row := range res.Rows {
		groups[row.Group]++
		if row.Seconds <= 0 {
			t.Fatalf("%s/%s: non-positive time", row.Group, row.Variant)
		}
	}
	for _, g := range []string{
		"level discovery (4 workers)", "level scheduling (4 workers)",
		"sequential fill", "configuration enumeration", "short-job rule",
		"bisection", "exact incumbent",
	} {
		if groups[g] < 2 {
			t.Fatalf("group %q has %d variants", g, groups[g])
		}
	}
	// Every PTAS variant on the same instances must report the same worst
	// makespan except the short-job rule (which legitimately differs).
	var ref *AblationRow
	for i := range res.Rows {
		row := &res.Rows[i]
		if row.Makespan == 0 || row.Group == "short-job rule" {
			continue
		}
		if ref == nil {
			ref = row
			continue
		}
		if row.Makespan != ref.Makespan {
			t.Fatalf("%s/%s makespan %d != %s/%s %d — variants must be behaviour-preserving",
				row.Group, row.Variant, row.Makespan, ref.Group, ref.Variant, ref.Makespan)
		}
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Ablations") {
		t.Fatal("render missing title")
	}
}

func TestRunFigSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figS is not short")
	}
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.WallClock = false
	cfg.Cores = []int{1, 8}
	res, err := cfg.RunFigS(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoIP {
		t.Fatal("figS must skip the IP baseline")
	}
	// The adversarial family at m=40 has the largest tables; its simulated
	// speedup at 8 cores must clearly exceed 1.
	adv := res.SimSpeedupPTAS[workload.Um_2m1]
	if adv[len(adv)-1] < 4 {
		t.Fatalf("scaled adversarial speedup %v too small for 8 cores", adv)
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "(b):") {
		t.Fatal("IP panel rendered for figS")
	}
}

func TestSkipIPMeasurement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reps = 1
	cfg.Cores = []int{1}
	cfg.WallClock = false
	cfg.SkipIP = true
	cfg.ExactTimeLimit = time.Second
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 16, Seed: 2})
	meas, err := cfg.measure(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if meas.exactSeconds != 0 || meas.ipProven {
		t.Fatalf("IP ran despite SkipIP: %+v", meas)
	}
	if meas.lptMakespan == 0 || meas.lsMakespan == 0 {
		t.Fatal("baselines skipped")
	}
}

func TestRunHardSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := cfg.RunHard(context.Background(), []int{3, 4}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PTASRatio < 1 || row.PTASRatio > 1.3+1e-9 {
			t.Fatalf("m=%d: PTAS ratio %v outside guarantee", row.M, row.PTASRatio)
		}
		if row.BinCompletion <= 0 || row.AssignmentIP <= 0 || row.ParallelExact4 <= 0 {
			t.Fatalf("m=%d: non-positive timings %+v", row.M, row)
		}
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triplet") {
		t.Fatal("render missing title")
	}
}

func TestMeasurePaperFaithful(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reps = 1
	cfg.Cores = []int{1, 2}
	cfg.PaperFaithful = true
	cfg.ExactTimeLimit = 5 * time.Second
	cfg.ExactNodeLimit = 1_000_000
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 16, Seed: 6})
	meas, err := cfg.measure(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// The faithful variants compute the same schedule, just slower.
	ref := cfg
	ref.PaperFaithful = false
	refMeas, err := ref.measure(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if meas.ptasMakespan != refMeas.ptasMakespan {
		t.Fatalf("faithful makespan %d != optimized %d", meas.ptasMakespan, refMeas.ptasMakespan)
	}
}
