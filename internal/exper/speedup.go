package exper

import (
	"context"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// SpeedupResult aggregates one speedup figure (the paper's Figures 2, 3 or
// 4): per family, mean times and mean speedups per core count.
type SpeedupResult struct {
	Fig      string
	M, N     int
	Families []workload.Family
	Cores    []int
	// NoIP marks a run whose exact baselines were skipped (RunFigS).
	NoIP bool

	// Means over Reps instances, per family (seconds).
	SeqPTAS map[workload.Family]float64
	Exact   map[workload.Family]float64
	// ExactProven counts instances whose optimum was proved.
	ExactProven map[workload.Family]int

	// Per family, aligned with Cores: mean simulated / wall-clock parallel
	// total times (seconds) and mean speedups.
	SimTime         map[workload.Family][]float64
	WallTime        map[workload.Family][]float64
	SimSpeedupPTAS  map[workload.Family][]float64
	WallSpeedupPTAS map[workload.Family][]float64
	SimSpeedupIP    map[workload.Family][]float64
}

// RunSpeedupFigure measures one of the paper's speedup figures for the given
// machine/job counts over the four uniform families.
func (cfg Config) RunSpeedupFigure(ctx context.Context, fig string, m, n int) (*SpeedupResult, error) {
	return cfg.RunSpeedupFigureFamilies(ctx, fig, m, n, workload.SpeedupFamilies)
}

// RunSpeedupFigureFamilies is RunSpeedupFigure over an explicit family set.
// The LPT-adversarial family always uses n = 2m+1 regardless of n, as in the
// paper.
func (cfg Config) RunSpeedupFigureFamilies(ctx context.Context, fig string, m, n int, families []workload.Family) (*SpeedupResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &SpeedupResult{
		Fig: fig, M: m, N: n, NoIP: cfg.SkipIP,
		Families:        families,
		Cores:           cfg.Cores,
		SeqPTAS:         map[workload.Family]float64{},
		Exact:           map[workload.Family]float64{},
		ExactProven:     map[workload.Family]int{},
		SimTime:         map[workload.Family][]float64{},
		WallTime:        map[workload.Family][]float64{},
		SimSpeedupPTAS:  map[workload.Family][]float64{},
		WallSpeedupPTAS: map[workload.Family][]float64{},
		SimSpeedupIP:    map[workload.Family][]float64{},
	}
	for _, fam := range res.Families {
		var (
			seq, ip    []float64
			proven     int
			simByCore  = make([][]float64, len(cfg.Cores))
			wallByCore = make([][]float64, len(cfg.Cores))
			simSpPTAS  = make([][]float64, len(cfg.Cores))
			wallSpPTAS = make([][]float64, len(cfg.Cores))
			simSpIP    = make([][]float64, len(cfg.Cores))
		)
		nFam := n
		if fam == workload.Um_2m1 {
			nFam = 2*m + 1
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			in, err := workload.Generate(cfg.specFor(fam, m, nFam, rep))
			if err != nil {
				return nil, err
			}
			meas, err := cfg.measure(ctx, in)
			if err != nil {
				return nil, fmt.Errorf("%s %v rep %d: %w", fig, fam, rep, err)
			}
			seq = append(seq, meas.seqSeconds)
			ip = append(ip, meas.exactSeconds)
			if meas.ipProven {
				proven++
			}
			for ci, c := range cfg.Cores {
				sim := meas.simSeconds[c]
				simByCore[ci] = append(simByCore[ci], sim)
				if sim > 0 {
					simSpPTAS[ci] = append(simSpPTAS[ci], meas.seqSeconds/sim)
					simSpIP[ci] = append(simSpIP[ci], meas.exactSeconds/sim)
				}
				if cfg.WallClock {
					wall := meas.wallSeconds[c]
					wallByCore[ci] = append(wallByCore[ci], wall)
					if wall > 0 {
						wallSpPTAS[ci] = append(wallSpPTAS[ci], meas.seqSeconds/wall)
					}
				}
			}
		}
		res.SeqPTAS[fam] = stats.Mean(seq)
		res.Exact[fam] = stats.Mean(ip)
		res.ExactProven[fam] = proven
		for ci := range cfg.Cores {
			res.SimTime[fam] = append(res.SimTime[fam], stats.Mean(simByCore[ci]))
			res.WallTime[fam] = append(res.WallTime[fam], stats.Mean(wallByCore[ci]))
			res.SimSpeedupPTAS[fam] = append(res.SimSpeedupPTAS[fam], stats.Mean(simSpPTAS[ci]))
			res.WallSpeedupPTAS[fam] = append(res.WallSpeedupPTAS[fam], stats.Mean(wallSpPTAS[ci]))
			res.SimSpeedupIP[fam] = append(res.SimSpeedupIP[fam], stats.Mean(simSpIP[ci]))
		}
	}
	return res, nil
}

// Render prints the figure's three panels as tables.
func (r *SpeedupResult) Render(cfg Config) error {
	w := cfg.out()
	render := func(t *stats.Table) error {
		if cfg.CSV {
			return t.RenderCSV(w)
		}
		return t.Render(w)
	}

	header := []string{"cores"}
	for _, fam := range r.Families {
		header = append(header, fam.String())
	}

	panelA := stats.NewTable(
		fmt.Sprintf("%s(a): average speedup of the parallel PTAS vs the sequential PTAS (m=%d, n=%d, simulated cost model)", r.Fig, r.M, r.N),
		header...)
	for ci, c := range r.Cores {
		row := []string{fmt.Sprintf("%d", c)}
		for _, fam := range r.Families {
			row = append(row, stats.FmtFloat(r.SimSpeedupPTAS[fam][ci], 2))
		}
		panelA.AddRow(row...)
	}
	if err := render(panelA); err != nil {
		return err
	}

	if len(r.WallSpeedupPTAS[r.Families[0]]) > 0 && r.WallSpeedupPTAS[r.Families[0]][0] != 0 {
		wall := stats.NewTable(
			fmt.Sprintf("%s(a'): measured wall-clock speedup on this host (GOMAXPROCS-bound; flat on single-core hosts)", r.Fig),
			header...)
		for ci, c := range r.Cores {
			row := []string{fmt.Sprintf("%d", c)}
			for _, fam := range r.Families {
				row = append(row, stats.FmtFloat(r.WallSpeedupPTAS[fam][ci], 2))
			}
			wall.AddRow(row...)
		}
		if err := render(wall); err != nil {
			return err
		}
	}

	if !r.NoIP {
		panelB := stats.NewTable(
			fmt.Sprintf("%s(b): average speedup of the parallel PTAS vs IP (exact branch-and-bound, simulated cost model)", r.Fig),
			header...)
		for ci, c := range r.Cores {
			row := []string{fmt.Sprintf("%d", c)}
			for _, fam := range r.Families {
				row = append(row, stats.FmtFloat(r.SimSpeedupIP[fam][ci], 2))
			}
			panelB.AddRow(row...)
		}
		if err := render(panelB); err != nil {
			return err
		}
	}

	maxCores := r.Cores[len(r.Cores)-1]
	panelC := stats.NewTable(
		fmt.Sprintf("%s(c): average running times (m=%d, n=%d)", r.Fig, r.M, r.N),
		"instance type", "IP (s)", "IP proved", "seq PTAS (s)",
		fmt.Sprintf("par PTAS @%d (sim s)", maxCores),
		fmt.Sprintf("par PTAS @%d (wall s)", maxCores))
	for _, fam := range r.Families {
		last := len(r.Cores) - 1
		wall := ""
		if len(r.WallTime[fam]) > 0 && r.WallTime[fam][last] > 0 {
			wall = fmt.Sprintf("%.6f", r.WallTime[fam][last])
		}
		panelC.AddRow(
			fam.String(),
			fmt.Sprintf("%.6f", r.Exact[fam]),
			fmt.Sprintf("%d/%d", r.ExactProven[fam], cfg.Reps),
			fmt.Sprintf("%.6f", r.SeqPTAS[fam]),
			fmt.Sprintf("%.6f", r.SimTime[fam][last]),
			wall,
		)
	}
	return render(panelC)
}

// RunFig2 reproduces Figure 2: m=20, n=100.
func (cfg Config) RunFig2(ctx context.Context) (*SpeedupResult, error) {
	return cfg.RunSpeedupFigure(ctx, "fig2", 20, 100)
}

// RunFig3 reproduces Figure 3: m=10, n=50.
func (cfg Config) RunFig3(ctx context.Context) (*SpeedupResult, error) {
	return cfg.RunSpeedupFigure(ctx, "fig3", 10, 50)
}

// RunFig4 reproduces Figure 4: m=10, n=30.
func (cfg Config) RunFig4(ctx context.Context) (*SpeedupResult, error) {
	return cfg.RunSpeedupFigure(ctx, "fig4", 10, 30)
}

// RunFigS is the scaled speedup experiment beyond the paper: the same code
// paths at m=40 with n=200 jobs (n=2m+1 for the adversarial family), where
// the DP tables reach 10^5..10^6 entries. At these sizes the anti-diagonal
// parallelization has enough work per level for the simulated speedup to
// approach the paper's reported scaling even with a fast per-entry kernel;
// see EXPERIMENTS.md. The IP baseline is skipped (it is not the object of
// study and would dominate the runtime).
func (cfg Config) RunFigS(ctx context.Context) (*SpeedupResult, error) {
	sub := cfg
	sub.SkipIP = true
	fams := []workload.Family{workload.U1_2m1, workload.U1_100, workload.U1_10n, workload.Um_2m1}
	return sub.RunSpeedupFigureFamilies(ctx, "figS", 40, 200, fams)
}
