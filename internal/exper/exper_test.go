package exper

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/solver"
)

// tinyConfig keeps harness tests fast: one rep, two core counts, small
// instances, tight exact limits.
func tinyConfig(out *bytes.Buffer) Config {
	cfg := DefaultConfig()
	cfg.Reps = 1
	cfg.Cores = []int{1, 2}
	cfg.ExactTimeLimit = 5 * time.Second
	cfg.ExactNodeLimit = 2_000_000
	cfg.Out = out
	return cfg
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reps = 0
	if err := cfg.validate(); err == nil {
		t.Fatal("want error for Reps=0")
	}
	cfg = DefaultConfig()
	cfg.Epsilon = -1
	if err := cfg.validate(); err == nil {
		t.Fatal("want error for bad epsilon")
	}
	cfg = DefaultConfig()
	cfg.Cores = nil
	if err := cfg.validate(); err == nil {
		t.Fatal("want error for empty cores")
	}
	cfg = DefaultConfig()
	cfg.Cores = []int{2, 0}
	if err := cfg.validate(); err == nil {
		t.Fatal("want error for zero core count")
	}
}

func TestSpecForDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := cfg.specFor(workload.U1_100, 5, 10, 3)
	b := cfg.specFor(workload.U1_100, 5, 10, 3)
	if a != b {
		t.Fatal("specFor not deterministic")
	}
	if a == cfg.specFor(workload.U1_100, 5, 10, 4) {
		t.Fatal("reps must differ")
	}
}

func TestRunSpeedupFigureSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := cfg.RunSpeedupFigure(context.Background(), "figT", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 4 || res.N != 16 || len(res.Cores) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, fam := range res.Families {
		if res.SeqPTAS[fam] <= 0 {
			t.Fatalf("%v: non-positive sequential time", fam)
		}
		if len(res.SimSpeedupPTAS[fam]) != 2 {
			t.Fatalf("%v: speedup series length %d", fam, len(res.SimSpeedupPTAS[fam]))
		}
		// 1 core means speedup 1 by definition of the model.
		if s := res.SimSpeedupPTAS[fam][0]; s < 0.99 || s > 1.01 {
			t.Fatalf("%v: simulated speedup at 1 core = %v, want ~1", fam, s)
		}
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"figT(a)", "figT(b)", "figT(c)", "U(1,100)", "cores"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestRunSpeedupFigureNoWallClock(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.WallClock = false
	res, err := cfg.RunSpeedupFigure(context.Background(), "figT", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "figT(a')") {
		t.Fatal("wall-clock panel rendered despite WallClock=false")
	}
}

func TestRunSpeedupFigureCSV(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.CSV = true
	cfg.WallClock = false
	res, err := cfg.RunSpeedupFigure(context.Background(), "figT", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `cores,"U(1,2m-1)"`) {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestRunRatioFigureSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	instances := []RatioInstance{
		{ID: "T1", Fam: workload.U1_10, M: 3, N: 12, Note: "tiny"},
		{ID: "T2", Fam: workload.Um_2m1, M: 3, N: 7, Note: "adversarial"},
	}
	res, err := cfg.RunRatioFigure(context.Background(), "figR", instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PTAS) != 2 || len(res.LPT) != 2 || len(res.LS) != 2 {
		t.Fatalf("series lengths: %+v", res)
	}
	for i, ri := range instances {
		for algo, ratio := range map[string]float64{
			"ptas": res.PTAS[i], "lpt": res.LPT[i], "ls": res.LS[i],
		} {
			if ratio < 1.0-1e-9 {
				t.Fatalf("%s %s ratio %v below 1 — optimum must not be beaten", ri.ID, algo, ratio)
			}
			if ratio > 2.0 {
				t.Fatalf("%s %s ratio %v above the LS guarantee", ri.ID, algo, ratio)
			}
		}
		// The PTAS at eps=0.3 must respect its guarantee.
		if res.PTAS[i] > 1.3+1e-9 {
			t.Fatalf("%s PTAS ratio %v breaks the 1.3 guarantee", ri.ID, res.PTAS[i])
		}
	}
	if err := res.Render(cfg, "inventory", "panel"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"inventory", "panel", "T1", "T2", "parallel PTAS", "LPT", "LS"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestTableIIandIIIWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, ri := range append(TableII(), TableIII()...) {
		if seen[ri.ID] {
			t.Fatalf("duplicate instance id %s", ri.ID)
		}
		seen[ri.ID] = true
		if ri.M < 1 || ri.N < 1 {
			t.Fatalf("%s has degenerate dimensions", ri.ID)
		}
		if _, err := workload.Generate(workload.Spec{Family: ri.Fam, M: ri.M, N: ri.N, Seed: 1}); err != nil {
			t.Fatalf("%s cannot generate: %v", ri.ID, err)
		}
	}
	if len(TableII()) != 6 || len(TableIII()) != 6 {
		t.Fatal("tables must have six instances each, like the paper")
	}
}

func TestMeasureParallelMatchesSequential(t *testing.T) {
	// measure() itself asserts the parallel makespan equals the sequential
	// one; a successful run of a wall-clock config is the assertion.
	cfg := DefaultConfig()
	cfg.Reps = 1
	cfg.Cores = []int{1, 3}
	cfg.ExactTimeLimit = 5 * time.Second
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 20, Seed: 11})
	meas, err := cfg.measure(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if meas.ptasMakespan < meas.optMakespan {
		t.Fatalf("PTAS %d beat the optimum %d", meas.ptasMakespan, meas.optMakespan)
	}
	if meas.lsMakespan < meas.optMakespan || meas.lptMakespan < meas.optMakespan {
		t.Fatal("baseline beat the optimum")
	}
}

func TestRunAlgoTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AlgoTimeout = time.Nanosecond // expires before the solve starts
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 16, Seed: 9})
	sched, rep, err := cfg.runAlgo(context.Background(), "ptas", in, cfg.ptasOptions(1))
	if !errors.Is(err, solver.ErrCanceled) {
		t.Fatalf("error %v does not match solver.ErrCanceled", err)
	}
	if sched == nil {
		t.Fatal("timed-out PTAS cell lost its fallback schedule")
	}
	if !rep.Interrupted {
		t.Fatal("timed-out cell not marked interrupted")
	}

	// Without a timeout the same dispatch completes.
	cfg.AlgoTimeout = 0
	if _, _, err := cfg.runAlgo(context.Background(), "ptas", in, cfg.ptasOptions(1)); err != nil {
		t.Fatal(err)
	}
}
