package exper

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/pcmax"
)

func TestRunVariantsSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := cfg.RunVariants(context.Background(), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(VariantGrid)*len(variantFamilies) {
		t.Fatalf("cell count %d, want %d", len(res.Cells), len(VariantGrid)*len(variantFamilies))
	}
	for _, cell := range res.Cells {
		if cell.MeanOpt <= 0 {
			t.Fatalf("%v/%v: non-positive mean optimum", cell.Variant, cell.Fam)
		}
		for name, ratio := range cell.Ratios {
			if ratio < 1-1e-9 {
				t.Fatalf("%v/%v: %s ratio %v below 1 — beat a certified optimum", cell.Variant, cell.Fam, name, ratio)
			}
		}
		// ptas is plain-only, so every decorated cell must skip it.
		found := false
		for _, s := range cell.Skipped {
			if s == "ptas" {
				found = true
			}
			if _, ok := cell.Ratios[s]; ok {
				t.Fatalf("%v/%v: %s both skipped and scored", cell.Variant, cell.Fam, s)
			}
		}
		if !found {
			t.Fatalf("%v/%v: ptas not skipped on a decorated variant", cell.Variant, cell.Fam)
		}
		// ptas-tr certifies the optimum on its supported variants.
		if cell.Variant&^(pcmax.SetupTimes|pcmax.TimeRestricted) == 0 {
			if r, ok := cell.Ratios["ptas-tr"]; !ok || r > 1+1e-9 {
				t.Fatalf("%v/%v: ptas-tr ratio %v (present %v), want 1.0", cell.Variant, cell.Fam, r, ok)
			}
		}
	}
	if err := res.Render(cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"variant", "unsupported", "ptas-tr", "lpt"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}
