package exact

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/cancel"
	"repro/internal/lb"
	"repro/internal/listsched"
	"repro/internal/multifit"
	"repro/pcmax"
)

// SolveParallel is a shared-memory parallel variant of Solve, in the spirit
// of the paper's program of parallelizing algorithms for NP-hard problems:
// each feasibility probe of the makespan search is parallelized by splitting
// the search at the root. The completions of the first bin (which seed-job
// and which maximal filling it gets) are enumerated sequentially, then the
// resulting independent subtrees are explored by `workers` goroutines, each
// on its own searcher state; the first goroutine to find a packing publishes
// it and cancels the rest through a shared atomic flag.
//
// The result is identical to Solve's (the same optimal makespan — though
// possibly a different optimal schedule, since subtree completion order
// varies); only wall-clock time changes.
func SolveParallel(ctx context.Context, in *pcmax.Instance, opts Options, workers int) (*pcmax.Schedule, Result, error) {
	if err := in.Validate(); err != nil {
		return nil, Result{}, err
	}
	if workers < 1 {
		workers = 1
	}
	if opts.NodeLimit <= 0 {
		opts.NodeLimit = DefaultNodeLimit
	}
	ctx, cancelTL := cancel.WithTimeout(ctx, opts.TimeLimit)
	defer cancelTL()
	res := Result{LowerBound: lb.Best(in)}
	if in.N() == 0 {
		res.Optimal = true
		return pcmax.NewSchedule(in.M, 0), res, nil
	}
	best := listsched.LPT(in)
	if !opts.DisableMultiFitIncumbent {
		if mf, err := multifit.Solve(ctx, in); err == nil && mf.Makespan(in) < best.Makespan(in) {
			best = mf
		}
	}
	res.Makespan = best.Makespan(in)
	if res.Makespan == res.LowerBound {
		res.Optimal = true
		return best, res, nil
	}

	ps := &parSearch{
		in:      in,
		workers: workers,
		budget:  opts.NodeLimit,
	}
	if ctx != nil {
		ps.done = ctx.Done()
	}

	lo, hi := res.LowerBound, res.Makespan
	for lo < hi {
		c := lo + (hi-lo)/2
		sched, ok, aborted := ps.feasible(c)
		if aborted {
			break
		}
		if ok {
			hi = c
			best = sched
		} else {
			lo = c + 1
		}
	}
	res.Nodes = ps.nodes.Load()
	res.Makespan = best.Makespan(in)
	res.Optimal = !ps.abortedFlag.Load()
	return best, res, best.Validate(in)
}

// parSearch coordinates parallel feasibility probes.
type parSearch struct {
	in      *pcmax.Instance
	workers int

	nodes       atomic.Int64
	budget      int64
	done        <-chan struct{} // context cancellation, shared by all searchers
	abortedFlag atomic.Bool
}

// rootTask is one completed first bin: the jobs it holds (positions in the
// sorted order) and the remaining unassigned total.
type rootTask struct {
	used []bool
	bin  []int
	rem  pcmax.Time
}

// maxRootTasks caps the first-bin split fan-out; beyond it the probe falls
// back to the sequential search (splitting overhead would dominate anyway).
const maxRootTasks = 4096

// feasible reports whether the jobs pack into m bins of capacity c, racing
// the root subtrees across workers. On success the winning packing's
// schedule is returned.
func (ps *parSearch) feasible(c pcmax.Time) (*pcmax.Schedule, bool, bool) {
	// Enumerate the first bin's maximal completions sequentially using a
	// plain searcher. Each completion becomes an independent subtree.
	seed := newSearcher(nil, ps.in, Options{NodeLimit: 1 << 62})
	if lb.BinPackingL2(seed.times, c) > ps.in.M {
		return nil, false, false
	}
	seed.c = c
	var tasks []rootTask
	overflow := !collectFirstBinCompletions(seed, &tasks)
	if len(tasks) == 0 && !overflow {
		return nil, false, false
	}
	if overflow || ps.in.M == 1 || len(tasks) == 1 || ps.workers == 1 {
		// No useful split: run the plain searcher under the shared budget.
		s := newSearcher(nil, ps.in, Options{NodeLimit: ps.budget - ps.nodes.Load()})
		s.done = ps.done
		ok := s.feasible(c)
		ps.nodes.Add(s.nodes)
		if s.aborted {
			ps.abortedFlag.Store(true)
			return nil, false, true
		}
		if !ok {
			return nil, false, false
		}
		return s.takeSchedule(), true, false
	}

	var (
		found    atomic.Bool
		winner   atomic.Pointer[pcmax.Schedule]
		wg       sync.WaitGroup
		cursor   atomic.Int64
		perSplit = (ps.budget - ps.nodes.Load()) / int64(len(tasks))
	)
	if perSplit < 1 {
		ps.abortedFlag.Store(true)
		return nil, false, true
	}
	for w := 0; w < ps.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := int(cursor.Add(1)) - 1
				if ti >= len(tasks) || found.Load() || ps.abortedFlag.Load() {
					return
				}
				task := tasks[ti]
				s := newSearcher(nil, ps.in, Options{NodeLimit: perSplit})
				s.done = ps.done
				s.c = c
				copy(s.used, task.used)
				copy(s.bin, task.bin)
				ok := s.packBin(1, task.rem)
				ps.nodes.Add(s.nodes)
				if s.aborted {
					ps.abortedFlag.Store(true)
					return
				}
				if ok && found.CompareAndSwap(false, true) {
					winner.Store(s.takeSchedule())
					return
				}
			}
		}()
	}
	wg.Wait()
	if sched := winner.Load(); sched != nil {
		return sched, true, false
	}
	return nil, false, ps.abortedFlag.Load()
}

// collectFirstBinCompletions fills tasks with every maximal completion of
// bin 0 (seeded by the largest job), by running the fill search with a
// sentinel continuation that records the state instead of recursing to the
// next bin. It reports false when the fan-out exceeded maxRootTasks.
func collectFirstBinCompletions(s *searcher, tasks *[]rootTask) bool {
	if len(s.times) == 0 || s.times[0] > s.c {
		return true
	}
	s.used[0] = true
	s.bin[0] = 0
	ok := s.collectCompletions(1, s.c-s.times[0], s.total-s.times[0], tasks)
	s.used[0] = false
	return ok
}

// collectCompletions mirrors fillBin but records states at bin closure.
func (s *searcher) collectCompletions(from int, space, rem pcmax.Time, tasks *[]rootTask) bool {
	p := from
	for p < len(s.times) && (s.used[p] || s.times[p] > space) {
		p++
	}
	if p == len(s.times) {
		if len(*tasks) >= maxRootTasks {
			return false
		}
		*tasks = append(*tasks, rootTask{
			used: append([]bool(nil), s.used...),
			bin:  append([]int(nil), s.bin...),
			rem:  rem,
		})
		return true
	}
	t := s.times[p]
	s.used[p] = true
	s.bin[p] = 0
	if !s.collectCompletions(p+1, space-t, rem-t, tasks) {
		s.used[p] = false
		return false
	}
	s.used[p] = false
	q := p + 1
	for q < len(s.times) && (s.used[q] || s.times[q] == t) {
		q++
	}
	fitsLater := false
	for r := q; r < len(s.times); r++ {
		if !s.used[r] && s.times[r] <= space {
			fitsLater = true
			break
		}
	}
	if !fitsLater {
		return true
	}
	return s.collectCompletions(q, space, rem, tasks)
}
