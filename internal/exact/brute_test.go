package exact

import (
	"context"
	"errors"
	"testing"

	"repro/internal/listsched"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestBruteForceVariantMatchesPlainOracle(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		in := workload.MustGenerate(workload.Spec{Family: workload.U1_10, M: 3, N: 9, Seed: seed})
		plain, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		sched, res, err := BruteForceVariant(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sched.Makespan(in), plain.Makespan(in); got != want {
			t.Fatalf("seed %d: variant brute %d, plain brute %d", seed, got, want)
		}
		if res.Makespan != sched.Makespan(in) || !res.Optimal {
			t.Fatalf("seed %d: result %+v inconsistent with schedule", seed, res)
		}
		if err := sched.Validate(in); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBruteForceVariantWindowsHandInstance(t *testing.T) {
	// Two identical machines, each available [0,5) and [10,14). Jobs
	// 4,4,3,3: no first window holds two jobs (smallest pair 3+3=6 > 5), so
	// at most two jobs finish by t=5 and the other two must run in the
	// second window, finishing at 13 or 14. Optimum: each machine runs a 4
	// in [0,4) and a 3 in [10,13) — makespan 13.
	ws := []pcmax.Window{{Start: 0, End: 5}, {Start: 10, End: 14}}
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{4, 4, 3, 3},
		Windows: [][]pcmax.Window{ws, ws}}
	sched, res, err := BruteForceVariant(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 13 {
		t.Fatalf("makespan %d, want 13", res.Makespan)
	}
	if err := sched.Feasible(in); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceVariantReleaseHandInstance(t *testing.T) {
	// One machine, jobs 5 and 5 released at 0 and 8: optimum 13 no matter
	// the order the DP picks.
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{5, 5}, Release: []pcmax.Time{0, 8}}
	_, res, err := BruteForceVariant(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 13 {
		t.Fatalf("makespan %d, want 13", res.Makespan)
	}
}

func TestBruteForceVariantSetupAsymmetry(t *testing.T) {
	// Machine 0 pays setup 10 per job, machine 1 pays 0: everything should
	// go to machine 1 (2+3+4 = 9 < 12 = cheapest single job on machine 0).
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{2, 3, 4}, Setup: []pcmax.Time{10, 0}}
	sched, res, err := BruteForceVariant(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 9 {
		t.Fatalf("makespan %d, want 9", res.Makespan)
	}
	for j, mi := range sched.Assignment {
		if mi != 1 {
			t.Fatalf("job %d on machine %d, want 1", j, mi)
		}
	}
}

func TestBruteForceVariantNeverWorseThanGreedy(t *testing.T) {
	for _, v := range []pcmax.Variant{pcmax.SetupTimes, pcmax.TimeRestricted,
		pcmax.ReleaseTimes | pcmax.SetupTimes | pcmax.TimeRestricted} {
		for seed := uint64(1); seed <= 4; seed++ {
			in := workload.MustGenerateVariant(workload.VariantSpec{
				Spec:    workload.Spec{Family: workload.U1_10, M: 3, N: 8, Seed: seed},
				Variant: v,
			})
			sched, res, err := BruteForceVariant(context.Background(), in)
			if err != nil {
				t.Fatalf("%v seed %d: %v", v, seed, err)
			}
			if err := sched.Feasible(in); err != nil {
				t.Fatalf("%v seed %d: optimal schedule infeasible: %v", v, seed, err)
			}
			lpt, err := listsched.LPTGeneral(in)
			if err != nil {
				t.Fatalf("%v seed %d: greedy failed on feasible-by-construction instance: %v", v, seed, err)
			}
			if res.Makespan > lpt.Makespan(in) {
				t.Fatalf("%v seed %d: brute %d worse than LPT %d", v, seed, res.Makespan, lpt.Makespan(in))
			}
		}
	}
}

func TestBruteForceVariantInfeasible(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{7},
		Windows: [][]pcmax.Window{{{Start: 0, End: 5}}}}
	if _, _, err := BruteForceVariant(context.Background(), in); !errors.Is(err, ErrInfeasibleInstance) {
		t.Fatalf("want ErrInfeasibleInstance, got %v", err)
	}
}

func TestBruteForceVariantTooLarge(t *testing.T) {
	times := make([]pcmax.Time, BruteForceMaxJobs+1)
	for j := range times {
		times[j] = 1
	}
	in := &pcmax.Instance{M: 2, Times: times}
	if _, _, err := BruteForceVariant(context.Background(), in); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestBruteForceVariantCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 14, Seed: 1})
	if _, _, err := BruteForceVariant(ctx, in); err == nil {
		t.Fatal("want cancellation error")
	}
}
