// Package exact computes optimal P||Cmax schedules. It stands in for the
// CPLEX-based integer-program solver the paper uses as its optimality
// baseline ("IP"): both produce the optimal makespan, which is what the
// paper compares against for running time and approximation ratios.
//
// The solver binary-searches the smallest feasible makespan C in
// [lower bound, LPT/MultiFit incumbent] and decides feasibility of each C
// with a depth-first bin-completion search:
//
//   - bins (machines) are completed one at a time; when a bin opens it
//     receives the largest unassigned job (bins are interchangeable, and that
//     job has to go somewhere);
//   - the bin is completed with further jobs in non-increasing size order,
//     branching on include/exclude, where excluding a size excludes all
//     remaining jobs of that size (identical jobs are interchangeable);
//   - a bin may only be closed when no unassigned job fits its residual
//     capacity (if a fitting job lived in another bin, moving it here keeps
//     feasibility, so maximal bins dominate);
//   - a branch dies when the unassigned total exceeds the capacity of the
//     remaining bins.
//
// Search effort is bounded by node and wall-clock limits; when a limit
// triggers, the best incumbent is returned with Optimal=false, mirroring a
// MIP solver hitting its time limit.
package exact

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cancel"
	"repro/internal/lb"
	"repro/internal/listsched"
	"repro/internal/multifit"
	"repro/pcmax"
)

// Options bounds the search.
type Options struct {
	// NodeLimit caps decision nodes over the whole solve; <= 0 selects
	// DefaultNodeLimit.
	NodeLimit int64
	// TimeLimit caps wall-clock time; <= 0 means no limit. It is a
	// back-compat shim over context deadlines (the solvers install it with
	// context.WithTimeout on the caller's ctx); new callers should pass a
	// context with a deadline instead. Either way an expired clock stops
	// the search and the best incumbent is returned with Optimal == false.
	TimeLimit time.Duration
	// DisableMultiFitIncumbent drops the MultiFit upper bound and keeps
	// only LPT (ablation of the incumbent choice).
	DisableMultiFitIncumbent bool
}

// DefaultNodeLimit is large enough for every instance family in the paper's
// evaluation while still terminating pathological searches.
const DefaultNodeLimit = 50_000_000

// Result reports how the solve went.
type Result struct {
	Makespan pcmax.Time
	// Optimal is true when Makespan is proved optimal; false when a node or
	// time limit interrupted the proof.
	Optimal bool
	// Nodes is the number of decision nodes explored.
	Nodes int64
	// LowerBound is the best combinatorial lower bound (also the optimality
	// certificate when Makespan == LowerBound).
	LowerBound pcmax.Time
}

// ErrLimit is wrapped into errors reported by strict callers when a limit
// interrupted the proof of optimality.
var ErrLimit = errors.New("exact: search limit reached before optimality was proved")

// Solve returns an optimal schedule for the instance (or the best incumbent
// with Result.Optimal == false when limits interrupt the proof).
//
// Cancellation mirrors a MIP solver's time limit: when ctx dies mid-search
// the best incumbent is returned with Optimal == false and a nil error — a
// valid schedule, just without the optimality proof. Callers who need the
// interruption surfaced as an error should test ctx after the call (the
// solver registry does exactly that).
func Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Result, error) {
	if err := in.Validate(); err != nil {
		return nil, Result{}, err
	}
	if opts.NodeLimit <= 0 {
		opts.NodeLimit = DefaultNodeLimit
	}
	ctx, cancelTL := cancel.WithTimeout(ctx, opts.TimeLimit)
	defer cancelTL()
	n := in.N()
	res := Result{LowerBound: lb.Best(in)}
	if n == 0 {
		res.Optimal = true
		return pcmax.NewSchedule(in.M, 0), res, nil
	}

	// Incumbent: the better of LPT and MultiFit.
	best := listsched.LPT(in)
	if !opts.DisableMultiFitIncumbent {
		if mf, err := multifit.Solve(ctx, in); err == nil && mf.Makespan(in) < best.Makespan(in) {
			best = mf
		}
	}
	res.Makespan = best.Makespan(in)
	if res.Makespan == res.LowerBound {
		res.Optimal = true
		return best, res, nil
	}

	s := newSearcher(ctx, in, opts)
	lo, hi := res.LowerBound, res.Makespan
	// Invariant: a schedule with makespan hi is known (best); lo <= OPT.
	for lo < hi {
		c := lo + (hi-lo)/2
		ok := s.feasible(c)
		if s.aborted {
			break
		}
		if ok {
			hi = c
			best = s.takeSchedule()
		} else {
			lo = c + 1
		}
	}
	res.Nodes = s.nodes
	res.Makespan = best.Makespan(in)
	res.Optimal = !s.aborted
	if err := best.Validate(in); err != nil {
		return nil, res, fmt.Errorf("exact: internal error: %v", err)
	}
	return best, res, nil
}

// searcher carries the DFS state across feasibility probes.
type searcher struct {
	in    *pcmax.Instance
	order []int        // job indices by non-increasing size
	times []pcmax.Time // times in that order
	total pcmax.Time   // sum of all times
	used  []bool       // per position in order
	bin   []int        // bin per position in order (valid on success)
	m     int
	c     pcmax.Time // capacity of the current probe

	nodes     int64
	nodeLimit int64
	done      <-chan struct{} // context cancellation, polled by tick
	aborted   bool
}

func newSearcher(ctx context.Context, in *pcmax.Instance, opts Options) *searcher {
	order := in.SortedIndex()
	times := make([]pcmax.Time, len(order))
	for p, j := range order {
		times[p] = in.Times[j]
	}
	s := &searcher{
		in:        in,
		order:     order,
		times:     times,
		total:     in.TotalTime(),
		used:      make([]bool, len(order)),
		bin:       make([]int, len(order)),
		m:         in.M,
		nodeLimit: opts.NodeLimit,
	}
	if ctx != nil {
		s.done = ctx.Done()
	}
	return s
}

// feasible reports whether all jobs pack into m bins of capacity c.
// On success the packing is left in s.bin.
func (s *searcher) feasible(c pcmax.Time) bool {
	if s.aborted {
		return false
	}
	// Certified refutation without search: the Martello–Toth bound on bins
	// of capacity c already exceeds m.
	if lb.BinPackingL2(s.times, c) > s.m {
		return false
	}
	s.c = c
	for p := range s.used {
		s.used[p] = false
	}
	return s.packBin(0, s.total)
}

// tick counts a node and applies the limits: the node budget on every call
// and the context every 8192 nodes (a non-blocking poll of Done, cheap
// enough to keep the abort latency in the microseconds at B&B node rates).
// It reports whether the search must abort.
func (s *searcher) tick() bool {
	s.nodes++
	if s.nodes > s.nodeLimit {
		s.aborted = true
	} else if s.nodes&8191 == 0 && s.done != nil {
		select {
		case <-s.done:
			s.aborted = true
		default:
		}
	}
	return s.aborted
}

// packBin opens bin b, seeds it with the largest unassigned job, and tries
// every maximal completion. rem is the total unassigned processing time.
func (s *searcher) packBin(b int, rem pcmax.Time) bool {
	if rem == 0 {
		return true
	}
	if b == s.m {
		return false
	}
	// Remaining bins cannot hold the remaining work.
	if rem > pcmax.Time(s.m-b)*s.c {
		return false
	}
	if s.tick() {
		return false
	}
	seed := -1
	for p := range s.used {
		if !s.used[p] {
			seed = p
			break
		}
	}
	if s.times[seed] > s.c {
		return false
	}
	s.used[seed] = true
	s.bin[seed] = b
	ok := s.fillBin(b, seed+1, s.c-s.times[seed], rem-s.times[seed])
	s.used[seed] = false
	return ok
}

// fillBin extends bin b with jobs at positions >= from, space left in the
// bin, rem total unassigned time. It enumerates maximal completions only.
func (s *searcher) fillBin(b, from int, space, rem pcmax.Time) bool {
	if s.aborted {
		return false
	}
	// Find the first unassigned job that fits.
	p := from
	for p < len(s.times) && (s.used[p] || s.times[p] > space) {
		p++
	}
	if p == len(s.times) {
		// Bin is maximal w.r.t. jobs at positions >= from. Jobs before
		// 'from' were all excluded at larger sizes, so none of them fits
		// either (sizes are non-increasing: excluded sizes > current fits
		// were already > space at exclusion time... they may fit now only
		// if space grew, which it never does). Close the bin.
		return s.packBin(b+1, rem)
	}
	if s.tick() {
		return false
	}
	t := s.times[p]
	// Branch 1: include job p.
	s.used[p] = true
	s.bin[p] = b
	if s.fillBin(b, p+1, space-t, rem-t) {
		s.used[p] = false // restore probe state; s.bin keeps the packing
		return true
	}
	s.used[p] = false
	// Branch 2: exclude job p and every remaining unassigned job of equal
	// size (identical jobs are interchangeable, so including a later equal
	// job instead of p is symmetric).
	q := p + 1
	for q < len(s.times) && (s.used[q] || s.times[q] == t) {
		q++
	}
	// Maximality: if excluding size t leaves no smaller fitting job, the bin
	// would close while job p still fits — dominated, prune the branch.
	fitsLater := false
	for r := q; r < len(s.times); r++ {
		if !s.used[r] && s.times[r] <= space {
			fitsLater = true
			break
		}
	}
	if !fitsLater {
		return false
	}
	return s.fillBin(b, q, space, rem)
}

// takeSchedule converts the searcher's packing into a schedule.
func (s *searcher) takeSchedule() *pcmax.Schedule {
	sched := pcmax.NewSchedule(s.in.M, s.in.N())
	for p, j := range s.order {
		sched.Assignment[j] = s.bin[p]
	}
	return sched
}

// BruteForce enumerates all m^n assignments and returns a provably optimal
// schedule. It is a test oracle; n is capped to keep it tractable.
func BruteForce(in *pcmax.Instance) (*pcmax.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n, m := in.N(), in.M
	if n > 14 {
		return nil, fmt.Errorf("exact: BruteForce limited to 14 jobs, got %d", n)
	}
	bestMS := pcmax.Time(-1)
	best := pcmax.NewSchedule(m, n)
	cur := make([]int, n)
	loads := make([]pcmax.Time, m)
	var rec func(j int, curMax pcmax.Time)
	rec = func(j int, curMax pcmax.Time) {
		if bestMS >= 0 && curMax >= bestMS {
			return
		}
		if j == n {
			bestMS = curMax
			copy(best.Assignment, cur)
			return
		}
		// Symmetry: only the first machine of any given load value.
		for mi := 0; mi < m; mi++ {
			dup := false
			for mj := 0; mj < mi; mj++ {
				if loads[mj] == loads[mi] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			loads[mi] += in.Times[j]
			cur[j] = mi
			nm := curMax
			if loads[mi] > nm {
				nm = loads[mi]
			}
			rec(j+1, nm)
			loads[mi] -= in.Times[j]
		}
	}
	rec(0, 0)
	return best, nil
}

// TwoMachineOpt returns the optimal makespan for m=2 via subset-sum dynamic
// programming, as an independent oracle for tests. The instance must have
// exactly two machines and a total time at most 1<<22.
func TwoMachineOpt(in *pcmax.Instance) (pcmax.Time, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.M != 2 {
		return 0, fmt.Errorf("exact: TwoMachineOpt needs m=2, got m=%d", in.M)
	}
	total := in.TotalTime()
	if total > 1<<22 {
		return 0, fmt.Errorf("exact: TwoMachineOpt total %d exceeds 1<<22", total)
	}
	half := total / 2
	reach := make([]bool, half+1)
	reach[0] = true
	for _, t := range in.Times {
		for v := half; v >= t; v-- {
			if reach[v-t] {
				reach[v] = true
			}
		}
	}
	for v := half; v >= 0; v-- {
		if reach[v] {
			return total - v, nil
		}
	}
	return total, nil
}
