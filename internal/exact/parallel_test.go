package exact

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestSolveParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, wRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%5) + 1
		n := int(nRaw%20) + 1
		workers := int(wRaw%6) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(80))
		}
		in := &pcmax.Instance{M: m, Times: times}
		seq, rs, err := Solve(context.Background(), in, Options{})
		if err != nil || !rs.Optimal {
			return false
		}
		par, rp, err := SolveParallel(context.Background(), in, Options{}, workers)
		if err != nil || !rp.Optimal {
			return false
		}
		return par.Validate(in) == nil &&
			par.Makespan(in) == seq.Makespan(in) &&
			rp.Makespan == rs.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveParallelOnTriplets(t *testing.T) {
	// The hard family: the parallel solver must still prove the optimum B.
	for _, m := range []int{4, 6, 8} {
		in, err := workload.Triplets(m, 300, uint64(m))
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := SolveParallel(context.Background(), in, Options{TimeLimit: 30 * time.Second}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal || res.Makespan != 300 {
			t.Fatalf("m=%d: makespan %d optimal=%v, want 300", m, res.Makespan, res.Optimal)
		}
	}
}

func TestSolveParallelEmptyAndTrivial(t *testing.T) {
	empty := &pcmax.Instance{M: 3}
	_, res, err := SolveParallel(context.Background(), empty, Options{}, 4)
	if err != nil || !res.Optimal || res.Makespan != 0 {
		t.Fatalf("empty: %+v %v", res, err)
	}
	one := &pcmax.Instance{M: 1, Times: []pcmax.Time{5, 6}}
	sched, res, err := SolveParallel(context.Background(), one, Options{}, 4)
	if err != nil || !res.Optimal || sched.Makespan(one) != 11 {
		t.Fatalf("m=1: %+v %v", res, err)
	}
}

func TestSolveParallelNodeBudget(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U95_105, M: 10, N: 37, Seed: 44})
	sched, res, err := SolveParallel(context.Background(), in, Options{NodeLimit: 50}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	// The returned incumbent must still be a real schedule no worse than
	// the heuristics can certify.
	if res.Makespan < res.LowerBound {
		t.Fatalf("makespan %d below bound %d", res.Makespan, res.LowerBound)
	}
}

func TestSolveParallelWorkerCountClamped(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 20, Seed: 5})
	a, ra, err := SolveParallel(context.Background(), in, Options{}, 0) // clamped to 1
	if err != nil || !ra.Optimal {
		t.Fatal(err)
	}
	b, rb, err := SolveParallel(context.Background(), in, Options{}, 16)
	if err != nil || !rb.Optimal {
		t.Fatal(err)
	}
	if a.Makespan(in) != b.Makespan(in) {
		t.Fatalf("worker counts disagree: %d vs %d", a.Makespan(in), b.Makespan(in))
	}
}

func TestCollectCompletionsCoverage(t *testing.T) {
	// Bin 0 completions at capacity 10 for jobs 6,4,4,3: seed 6, then the
	// maximal completions are {6,4(first)} and {6,3}; excluding both 4s and
	// the 3 would leave the bin non-maximal, so exactly 2 tasks.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{6, 4, 4, 3}}
	s := newSearcher(nil, in, Options{NodeLimit: 1 << 30})
	s.c = 10
	var tasks []rootTask
	if ok := collectFirstBinCompletions(s, &tasks); !ok {
		t.Fatal("overflow on a tiny instance")
	}
	if len(tasks) != 2 {
		t.Fatalf("got %d root tasks, want 2", len(tasks))
	}
}
