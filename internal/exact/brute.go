package exact

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/internal/listsched"
	"repro/pcmax"
)

// Brute-force optima for the variant instance model. The branch-and-bound
// solvers in this package assume plain P||Cmax semantics (a machine's
// completion is its load); under release times, setup times or availability
// windows that no longer holds, so variant instances get a small exhaustive
// solver instead: depth-first search over job-to-machine assignments, with
// the per-machine minimal completion time computed by a subset dynamic
// program that is exact for every variant combination.
//
// The subset DP rests on the observation that a machine's minimal completion
// for a job set S only depends on S: C(S) = min over j in S of
// step(C(S \ {j}), j), where step places j at the machine's earliest
// feasible start (release, setup and windows included) after the prefix
// completes. step is monotone in its first argument, so the recurrence is
// exact; memoizing it over (machine, subset) makes every assignment's
// evaluation incremental.
//
// This is deliberately a small-instance tool: it exists to certify optima in
// guarantee tests for the variant solvers, the way the plain branch-and-bound
// certifies the PTAS. BruteForceMaxJobs bounds n.

// BruteForceMaxJobs bounds the exhaustive variant solver; the subset DP
// holds m*2^n states.
const BruteForceMaxJobs = 16

// ErrTooLarge reports an instance beyond the brute-force budget.
var ErrTooLarge = errors.New("exact: instance too large for the brute-force variant solver")

// ErrInfeasibleInstance reports that no assignment of some job can ever
// complete under the instance's availability windows.
var ErrInfeasibleInstance = errors.New("exact: no feasible schedule exists for the instance")

// BruteForceVariant computes a certified-optimal schedule for any instance variant
// (plain, release times, setup times, availability windows, or any
// combination) by exhaustive search over assignments with memoized
// per-machine completion DPs. It errors beyond BruteForceMaxJobs jobs. The
// returned schedule carries an explicit Order realizing the optimal
// per-machine sequences.
func BruteForceVariant(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, Result, error) {
	var res Result
	if err := in.Validate(); err != nil {
		return nil, res, err
	}
	n := in.N()
	if n > BruteForceMaxJobs {
		return nil, res, fmt.Errorf("%w (n=%d, limit %d)", ErrTooLarge, n, BruteForceMaxJobs)
	}
	if err := cancel.Check(ctx); err != nil {
		return nil, res, err
	}

	// Memoized per-machine completion DP over job subsets. comp[mi] maps a
	// subset mask to the machine's minimal completion time (Infeasible when
	// some job fits no window).
	comp := make([]map[uint32]pcmax.Time, in.M)
	for mi := range comp {
		comp[mi] = map[uint32]pcmax.Time{0: 0}
	}
	var minDone func(mi int, mask uint32) pcmax.Time
	minDone = func(mi int, mask uint32) pcmax.Time {
		if c, ok := comp[mi][mask]; ok {
			return c
		}
		best := pcmax.Infeasible
		setup := in.SetupTime(mi)
		for j := 0; j < n; j++ {
			bit := uint32(1) << j
			if mask&bit == 0 {
				continue
			}
			prev := minDone(mi, mask&^bit)
			if prev == pcmax.Infeasible {
				continue
			}
			est := prev
			if r := in.ReleaseTime(j); r > est {
				est = r
			}
			dur := setup + in.Times[j]
			start, ok := in.EarliestStart(mi, est, dur)
			if !ok {
				continue
			}
			if done := start + dur; done < best {
				best = done
			}
		}
		comp[mi][mask] = best
		return best
	}

	// Upper bound from the generalized greedy when it succeeds.
	incumbent := pcmax.Infeasible
	if lpt, err := listsched.LPTGeneral(in); err == nil {
		if ms := lpt.Makespan(in); ms < incumbent {
			incumbent = ms
		}
	}

	// DFS over jobs in non-increasing size order (big jobs prune earlier).
	order := in.SortedIndex()
	assign := make([]int, n)
	bestAssign := make([]int, n)
	masks := make([]uint32, in.M)
	found := false
	bestMS := incumbent
	var nodes int64
	var dfs func(k int, curMax pcmax.Time) error
	dfs = func(k int, curMax pcmax.Time) error {
		nodes++
		if nodes&1023 == 0 {
			if err := cancel.Check(ctx); err != nil {
				return err
			}
		}
		if curMax >= bestMS {
			return nil // a completed machine already matches the incumbent
		}
		if k == n {
			bestMS = curMax
			copy(bestAssign, assign)
			found = true
			return nil
		}
		j := order[k]
		for mi := 0; mi < in.M; mi++ {
			if masks[mi] == 0 {
				// Empty machines with the same setup and windows are
				// interchangeable; open only the lowest-indexed one of each
				// signature.
				interchangeable := false
				for i := 0; i < mi; i++ {
					if masks[i] == 0 && sameMachine(in, i, mi) {
						interchangeable = true
						break
					}
				}
				if interchangeable {
					continue
				}
			}
			bit := uint32(1) << j
			masks[mi] |= bit
			done := minDone(mi, masks[mi])
			assign[j] = mi
			next := curMax
			if done > next {
				next = done
			}
			if done != pcmax.Infeasible {
				if err := dfs(k+1, next); err != nil {
					return err
				}
			}
			masks[mi] &^= bit
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, res, err
	}
	if !found && incumbent == pcmax.Infeasible {
		return nil, res, ErrInfeasibleInstance
	}

	sched := pcmax.NewSchedule(in.M, n)
	if found {
		copy(sched.Assignment, bestAssign)
	} else {
		// The DFS could not beat the greedy incumbent; re-derive it.
		lpt, err := listsched.LPTGeneral(in)
		if err != nil {
			return nil, res, ErrInfeasibleInstance
		}
		sched = lpt
	}
	sched.Order = optimalOrder(in, sched, minDone)
	res.Makespan = sched.Makespan(in)
	res.Optimal = true
	res.Nodes = nodes
	res.LowerBound = res.Makespan
	return sched, res, nil
}

// sameMachine supports the empty-machine symmetry pruning: two machines are
// interchangeable when they share setup and windows.
func sameMachine(in *pcmax.Instance, a, b int) bool {
	if a == b {
		return true
	}
	if in.SetupTime(a) != in.SetupTime(b) {
		return false
	}
	var wa, wb []pcmax.Window
	if a < len(in.Windows) {
		wa = in.Windows[a]
	}
	if b < len(in.Windows) {
		wb = in.Windows[b]
	}
	if len(wa) != len(wb) {
		return false
	}
	for i := range wa {
		if wa[i] != wb[i] {
			return false
		}
	}
	return true
}

// optimalOrder recovers, per machine, a job sequence achieving the memoized
// minimal completion, and concatenates the sequences machine by machine into
// a global Order.
func optimalOrder(in *pcmax.Instance, sched *pcmax.Schedule, minDone func(int, uint32) pcmax.Time) []int {
	n := len(sched.Assignment)
	orderOut := make([]int, 0, n)
	for mi := 0; mi < sched.M; mi++ {
		var mask uint32
		for j, a := range sched.Assignment {
			if a == mi {
				mask |= uint32(1) << j
			}
		}
		// Peel jobs off the back: j can be last iff completing the rest and
		// then j reproduces the subset's minimal completion.
		var rev []int
		for mask != 0 {
			target := minDone(mi, mask)
			setup := in.SetupTime(mi)
			picked := -1
			for j := 0; j < n; j++ {
				bit := uint32(1) << j
				if mask&bit == 0 {
					continue
				}
				prev := minDone(mi, mask&^bit)
				if prev == pcmax.Infeasible {
					continue
				}
				est := prev
				if r := in.ReleaseTime(j); r > est {
					est = r
				}
				start, ok := in.EarliestStart(mi, est, setup+in.Times[j])
				if ok && start+setup+in.Times[j] == target {
					picked = j
					break
				}
			}
			if picked < 0 {
				// Defensive: fall back to canonical order for this machine.
				rev = rev[:0]
				for j := n - 1; j >= 0; j-- {
					if mask&(uint32(1)<<j) != 0 {
						rev = append(rev, j)
					}
				}
				sort.SliceStable(rev, func(a, b int) bool {
					ra, rb := in.ReleaseTime(rev[a]), in.ReleaseTime(rev[b])
					if ra != rb {
						return ra > rb
					}
					return rev[a] > rev[b]
				})
				break
			}
			rev = append(rev, picked)
			mask &^= uint32(1) << picked
		}
		for i := len(rev) - 1; i >= 0; i-- {
			orderOut = append(orderOut, rev[i])
		}
	}
	return orderOut
}
