package exact

import (
	"context"

	"repro/internal/cancel"
	"repro/internal/listsched"
	"repro/pcmax"
)

// SolveAssignment is an IP-style branch-and-bound over the assignment
// formulation of P||Cmax: binary variables x[j][i] ("job j runs on machine
// i"), branched job by job in non-increasing size order, bounded by the LP
// relaxation bound max(ceil(sum/m), max t) and the incumbent, with
// equal-load machine symmetry breaking.
//
// This mirrors how a MIP solver attacks the paper's integer program far more
// closely than the bin-completion search in Solve: no combinatorial lower
// bounds, no MultiFit incumbent, no bin-oriented dominance. The experiment
// harness uses it as the "IP" baseline so that the IP running-time profile
// (strongly family-dependent, occasionally exploding) reproduces the paper's
// CPLEX observations, while Solve provides the certified optimum for
// approximation ratios.
func SolveAssignment(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Result, error) {
	if err := in.Validate(); err != nil {
		return nil, Result{}, err
	}
	if opts.NodeLimit <= 0 {
		opts.NodeLimit = DefaultNodeLimit
	}
	ctx, cancelTL := cancel.WithTimeout(ctx, opts.TimeLimit)
	defer cancelTL()
	res := Result{LowerBound: in.LowerBound()} // the LP relaxation bound
	if in.N() == 0 {
		res.Optimal = true
		return pcmax.NewSchedule(in.M, 0), res, nil
	}

	s := &assignSearcher{
		in:        in,
		order:     in.SortedIndex(),
		loads:     make([]pcmax.Time, in.M),
		cur:       make([]int, in.N()),
		lower:     in.LowerBound(),
		nodeLimit: opts.NodeLimit,
	}
	s.times = make([]pcmax.Time, in.N())
	for p, j := range s.order {
		s.times[p] = in.Times[j]
	}
	if ctx != nil {
		s.done = ctx.Done()
	}

	// Incumbent: the root heuristic (LPT), like a MIP solver's first
	// feasible solution from rounding/heuristics.
	lpt := listsched.LPT(in)
	s.best = lpt.Makespan(in)
	s.bestAssign = append([]int(nil), lpt.Assignment...)

	s.dfs(0, 0)

	res.Nodes = s.nodes
	res.Makespan = s.best
	res.Optimal = !s.aborted
	sched := pcmax.NewSchedule(in.M, in.N())
	copy(sched.Assignment, s.bestAssign)
	return sched, res, nil
}

type assignSearcher struct {
	in    *pcmax.Instance
	order []int
	times []pcmax.Time
	loads []pcmax.Time
	cur   []int

	best       pcmax.Time
	bestAssign []int
	lower      pcmax.Time

	nodes     int64
	nodeLimit int64
	done      <-chan struct{} // context cancellation, polled every 8192 nodes
	aborted   bool
}

func (s *assignSearcher) dfs(p int, curMax pcmax.Time) {
	if s.aborted || s.best == s.lower {
		return
	}
	if p == len(s.times) {
		if curMax < s.best {
			s.best = curMax
			for q, j := range s.order {
				s.bestAssign[j] = s.cur[q]
			}
		}
		return
	}
	s.nodes++
	if s.nodes > s.nodeLimit {
		s.aborted = true
		return
	}
	if s.nodes&8191 == 0 && s.done != nil {
		select {
		case <-s.done:
			s.aborted = true
			return
		default:
		}
	}
	t := s.times[p]
	for mi := 0; mi < s.in.M; mi++ {
		l := s.loads[mi]
		// Prune: this branch cannot beat the incumbent.
		if l+t >= s.best {
			continue
		}
		// Symmetry: machines with equal loads are interchangeable; keep the
		// first.
		dup := false
		for mj := 0; mj < mi; mj++ {
			if s.loads[mj] == l {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.loads[mi] = l + t
		s.cur[p] = mi
		nm := curMax
		if l+t > nm {
			nm = l + t
		}
		s.dfs(p+1, nm)
		s.loads[mi] = l
		if s.aborted {
			return
		}
	}
}
