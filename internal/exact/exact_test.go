package exact

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lb"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestSolveKnownInstances(t *testing.T) {
	cases := []struct {
		m     int
		times []pcmax.Time
		want  pcmax.Time
	}{
		{2, []pcmax.Time{5, 4, 3, 2}, 7},
		{3, []pcmax.Time{9, 9, 9}, 9},
		{2, []pcmax.Time{10}, 10},
		{1, []pcmax.Time{2, 3, 4}, 9},
		{3, []pcmax.Time{7, 6, 5, 4, 3, 2, 1}, 10}, // sum 28, ceil(28/3)=10 achievable: 7+3, 6+4, 5+2+1? =8.. 10,10,8
		{2, []pcmax.Time{3, 3, 2, 2, 2}, 6},        // perfect split 3+3 / 2+2+2
	}
	for i, c := range cases {
		in := &pcmax.Instance{M: c.m, Times: c.times}
		sched, res, err := Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !res.Optimal {
			t.Fatalf("case %d: not proved optimal", i)
		}
		if got := sched.Makespan(in); got != c.want {
			t.Fatalf("case %d: makespan %d, want %d", i, got, c.want)
		}
		if err := sched.Validate(in); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestSolveAdversarialFamilyOptimum(t *testing.T) {
	for _, m := range []int{2, 3, 5, 10, 15} {
		in, err := workload.AdversarialLPT(m)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal || res.Makespan != pcmax.Time(3*m) {
			t.Fatalf("m=%d: makespan %d (optimal %v), want %d", m, res.Makespan, res.Optimal, 3*m)
		}
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	in := &pcmax.Instance{M: 4}
	sched, res, err := Solve(context.Background(), in, Options{})
	if err != nil || !res.Optimal || res.Makespan != 0 {
		t.Fatalf("empty: %v %+v", err, res)
	}
	if sched.Makespan(in) != 0 {
		t.Fatal("empty schedule has nonzero makespan")
	}
}

func TestSolveMoreMachinesThanJobs(t *testing.T) {
	in := &pcmax.Instance{M: 9, Times: []pcmax.Time{4, 7}}
	_, res, err := Solve(context.Background(), in, Options{})
	if err != nil || !res.Optimal || res.Makespan != 7 {
		t.Fatalf("got %+v, %v", res, err)
	}
}

func TestSolveNodeLimitReturnsIncumbent(t *testing.T) {
	// A hard-ish instance with a 1-node budget: the incumbent (LPT or
	// MultiFit) must come back, flagged non-optimal unless the bounds
	// already closed the gap.
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10n, M: 5, N: 25, Seed: 8})
	sched, res, err := Solve(context.Background(), in, Options{NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.Makespan != sched.Makespan(in) {
		t.Fatalf("result/schedule mismatch: %d vs %d", res.Makespan, sched.Makespan(in))
	}
	if res.Makespan < res.LowerBound {
		t.Fatalf("makespan %d below lower bound %d", res.Makespan, res.LowerBound)
	}
}

func TestSolveTimeLimit(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U95_105, M: 10, N: 37, Seed: 3})
	start := time.Now()
	_, _, err := Solve(context.Background(), in, Options{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("time limit ignored: took %v", time.Since(start))
	}
}

func TestSolveResultAtLeastLowerBoundProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%6) + 1
		n := int(nRaw%30) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(100))
		}
		in := &pcmax.Instance{M: m, Times: times}
		sched, res, err := Solve(context.Background(), in, Options{})
		if err != nil {
			return false
		}
		return sched.Validate(in) == nil &&
			res.Makespan >= lb.Best(in) &&
			res.Makespan == sched.Makespan(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoMachineOptMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%11) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(80))
		}
		in := &pcmax.Instance{M: 2, Times: times}
		dp, err := TwoMachineOpt(in)
		if err != nil {
			return false
		}
		bf, err := BruteForce(in)
		if err != nil {
			return false
		}
		return dp == bf.Makespan(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoMachineOptValidation(t *testing.T) {
	if _, err := TwoMachineOpt(&pcmax.Instance{M: 3, Times: []pcmax.Time{1}}); err == nil {
		t.Fatal("want m!=2 error")
	}
	big := &pcmax.Instance{M: 2, Times: []pcmax.Time{1 << 23}}
	if _, err := TwoMachineOpt(big); err == nil {
		t.Fatal("want total-too-large error")
	}
}

func TestBruteForceLimits(t *testing.T) {
	times := make([]pcmax.Time, 15)
	for i := range times {
		times[i] = 1
	}
	if _, err := BruteForce(&pcmax.Instance{M: 2, Times: times}); err == nil {
		t.Fatal("want n>14 error")
	}
}

func TestSolveAgreesWithTwoMachineDP(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 50; trial++ {
		n := 5 + src.Intn(30)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(200))
		}
		in := &pcmax.Instance{M: 2, Times: times}
		_, res, err := Solve(context.Background(), in, Options{})
		if err != nil || !res.Optimal {
			t.Fatalf("trial %d: %v optimal=%v", trial, err, res.Optimal)
		}
		want, err := TwoMachineOpt(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want {
			t.Fatalf("trial %d: B&B %d, subset-sum DP %d (times %v)", trial, res.Makespan, want, times)
		}
	}
}

func TestAssignmentSolverMatchesBinCompletionProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%4) + 1
		n := int(nRaw%14) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(60))
		}
		in := &pcmax.Instance{M: m, Times: times}
		a, ra, err := Solve(context.Background(), in, Options{})
		if err != nil || !ra.Optimal {
			return false
		}
		b, rb, err := SolveAssignment(context.Background(), in, Options{})
		if err != nil || !rb.Optimal {
			return false
		}
		return a.Makespan(in) == b.Makespan(in) && b.Validate(in) == nil &&
			rb.Makespan == b.Makespan(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentSolverLimits(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 2})
	sched, res, err := SolveAssignment(context.Background(), in, Options{NodeLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("100 nodes cannot prove optimality here")
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.Makespan < in.LowerBound() {
		t.Fatalf("incumbent %d below lower bound %d", res.Makespan, in.LowerBound())
	}
}

func TestAssignmentSolverEmpty(t *testing.T) {
	in := &pcmax.Instance{M: 2}
	_, res, err := SolveAssignment(context.Background(), in, Options{})
	if err != nil || !res.Optimal || res.Makespan != 0 {
		t.Fatalf("%+v %v", res, err)
	}
}

func TestDisableMultiFitIncumbentStillOptimal(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		m := 1 + src.Intn(4)
		n := 1 + src.Intn(12)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(50))
		}
		in := &pcmax.Instance{M: m, Times: times}
		a, ra, err := Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, rb, err := Solve(context.Background(), in, Options{DisableMultiFitIncumbent: true})
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Optimal || !rb.Optimal || a.Makespan(in) != b.Makespan(in) {
			t.Fatalf("trial %d: %d vs %d", trial, a.Makespan(in), b.Makespan(in))
		}
	}
}

func TestPaperScaleFamiliesSolveQuickly(t *testing.T) {
	// The bin-completion solver must handle every paper family at the
	// paper's largest scale within a tight budget; this is what makes it a
	// usable optimal baseline for the ratio experiments.
	for _, fam := range workload.Families {
		m, n := 20, 100
		if fam == workload.Um_2m1 {
			n = 2*m + 1
		}
		in := workload.MustGenerate(workload.Spec{Family: fam, M: m, N: n, Seed: 77})
		_, res, err := Solve(context.Background(), in, Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if !res.Optimal {
			t.Logf("%v: optimum not proved within limits (nodes=%d) — acceptable but noted", fam, res.Nodes)
		}
	}
}

func TestMTBoundClosesGapWithoutSearch(t *testing.T) {
	// {6,6,6} on 2 machines: no two items share a bin of size < 12, which
	// the Martello–Toth bound proves outright, so the solver must certify
	// optimality with zero search nodes (LPT incumbent == bound).
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{6, 6, 6}}
	sched, res, err := Solve(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Makespan != 12 {
		t.Fatalf("got %+v", res)
	}
	if res.LowerBound != 12 {
		t.Fatalf("lower bound %d, want 12 from the MT bound", res.LowerBound)
	}
	if res.Nodes != 0 {
		t.Fatalf("expected a search-free proof, used %d nodes", res.Nodes)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestMTRefutationInsideProbe(t *testing.T) {
	// Near-tight adversarial instance: the binary search's infeasible side
	// must be refuted quickly. This is a smoke test that the L2 call sits on
	// the probe path: total nodes should stay far below the search-only cost.
	in, err := workload.AdversarialLPT(12)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := Solve(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Makespan != 36 {
		t.Fatalf("got %+v, want optimum 36", res)
	}
}
