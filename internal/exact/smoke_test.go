package exact

import (
	"context"
	"testing"

	"repro/internal/rng"
	"repro/pcmax"
)

// TestSmokeSolveAgainstBruteForce cross-checks the branch-and-bound against
// full enumeration on small random instances.
func TestSmokeSolveAgainstBruteForce(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		m := 1 + src.Intn(4)
		n := 1 + src.Intn(10)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(30))
		}
		in := &pcmax.Instance{M: m, Times: times}
		bf, err := BruteForce(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sched, res, err := Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: not proved optimal (nodes=%d)", trial, res.Nodes)
		}
		if got, want := sched.Makespan(in), bf.Makespan(in); got != want {
			t.Fatalf("trial %d m=%d times=%v: B&B makespan %d, brute force %d", trial, m, times, got, want)
		}
		if res.Makespan != sched.Makespan(in) {
			t.Fatalf("trial %d: result makespan %d != schedule %d", trial, res.Makespan, sched.Makespan(in))
		}
	}
}
