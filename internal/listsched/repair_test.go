package listsched

import (
	"testing"

	"repro/pcmax"
)

func TestRepairKeepsAssignmentsAndPlacesRest(t *testing.T) {
	in := &pcmax.Instance{M: 3, Times: []pcmax.Time{8, 6, 5, 4, 3}}
	keep := []int{0, 1, 2, -1, -1}
	sched := Repair(in, keep)
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if sched.Assignment[j] != keep[j] {
			t.Fatalf("kept job %d moved to machine %d", j, sched.Assignment[j])
		}
	}
	// Loose jobs 3 (t=4) and 4 (t=3) go LPT-first onto the least-loaded
	// machines: loads after keeps are [8,6,5], so job 3 -> machine 2 (5+4=9),
	// job 4 -> machine 1 (6+3=9).
	if sched.Assignment[3] != 2 || sched.Assignment[4] != 1 {
		t.Fatalf("loose placement = %v, want jobs 3,4 on machines 2,1", sched.Assignment)
	}
}

func TestRepairAllLooseMatchesLPT(t *testing.T) {
	in := &pcmax.Instance{M: 4, Times: []pcmax.Time{9, 7, 7, 5, 4, 3, 2, 2, 1}}
	keep := make([]int, in.N())
	for j := range keep {
		keep[j] = -1
	}
	got := Repair(in, keep)
	want := LPT(in)
	for j := range want.Assignment {
		if got.Assignment[j] != want.Assignment[j] {
			t.Fatalf("job %d: Repair -> %d, LPT -> %d", j, got.Assignment[j], want.Assignment[j])
		}
	}
}

func TestRepairOutOfRangeKeepsTreatedAsLoose(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 5, 5}}
	// Machine 7 does not exist and -3 is nonsense; both jobs must be placed
	// fresh rather than leaving holes or panicking.
	sched := Repair(in, []int{7, -3, 0})
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if sched.Assignment[2] != 0 {
		t.Fatalf("valid keep was not honored: %v", sched.Assignment)
	}
}

func TestRepairShortKeepSlice(t *testing.T) {
	// keep shorter than n (e.g. jobs appended since the snapshot): the tail
	// jobs are loose.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{6, 4, 3}}
	sched := Repair(in, []int{1})
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if sched.Assignment[0] != 1 {
		t.Fatalf("kept job moved: %v", sched.Assignment)
	}
}

func TestRepairEmptyInstance(t *testing.T) {
	in := &pcmax.Instance{M: 2}
	sched := Repair(in, nil)
	if got := len(sched.Assignment); got != 0 {
		t.Fatalf("empty repair produced %d assignments", got)
	}
}
