package listsched

import (
	"errors"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
)

func TestGeneralMatchesPlainBitForBit(t *testing.T) {
	// On plain instances the general greedy must route through the classic
	// heap path and return the identical schedule, assignment by assignment.
	for seed := uint64(1); seed <= 8; seed++ {
		in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 4, N: 30, Seed: seed})
		ls, err := LSGeneral(in)
		if err != nil {
			t.Fatal(err)
		}
		lpt, err := LPTGeneral(in)
		if err != nil {
			t.Fatal(err)
		}
		wantLS, wantLPT := LS(in), LPT(in)
		for j := range in.Times {
			if ls.Assignment[j] != wantLS.Assignment[j] {
				t.Fatalf("seed %d: LSGeneral diverges from LS at job %d", seed, j)
			}
			if lpt.Assignment[j] != wantLPT.Assignment[j] {
				t.Fatalf("seed %d: LPTGeneral diverges from LPT at job %d", seed, j)
			}
		}
	}
}

func TestGeneralVariantFeasible(t *testing.T) {
	variants := []pcmax.Variant{
		pcmax.ReleaseTimes, pcmax.SetupTimes, pcmax.TimeRestricted, pcmax.AllVariants,
	}
	for _, v := range variants {
		for seed := uint64(1); seed <= 4; seed++ {
			in := workload.MustGenerateVariant(workload.VariantSpec{
				Spec:    workload.Spec{Family: workload.U1_100, M: 3, N: 20, Seed: seed},
				Variant: v,
			})
			for name, fn := range map[string]func(*pcmax.Instance) (*pcmax.Schedule, error){
				"ls": LSGeneral, "lpt": LPTGeneral,
			} {
				sched, err := fn(in)
				if err != nil {
					t.Fatalf("%s %v seed %d: %v", name, v, seed, err)
				}
				if err := sched.Validate(in); err != nil {
					t.Fatalf("%s %v seed %d: invalid: %v", name, v, seed, err)
				}
				if err := sched.Feasible(in); err != nil {
					t.Fatalf("%s %v seed %d: infeasible: %v", name, v, seed, err)
				}
				if len(sched.Order) != in.N() {
					t.Fatalf("%s %v seed %d: Order has %d entries for %d jobs",
						name, v, seed, len(sched.Order), in.N())
				}
			}
		}
	}
}

func TestGeneralEarliestCompletionBeatsLoad(t *testing.T) {
	// Machine 0 pays setup 10, machine 1 pays 0. Least-load would alternate;
	// earliest-completion sends every job to machine 1 (0+2+3+4 = 9 < 12).
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{4, 3, 2}, Setup: []pcmax.Time{10, 0}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sched, err := LPTGeneral(in)
	if err != nil {
		t.Fatal(err)
	}
	for j, mi := range sched.Assignment {
		if mi != 1 {
			t.Fatalf("job %d on machine %d, want 1", j, mi)
		}
	}
	if ms := sched.Makespan(in); ms != 9 {
		t.Fatalf("makespan %d, want 9", ms)
	}
}

func TestGeneralNoFit(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{7},
		Windows: [][]pcmax.Window{{{Start: 0, End: 5}}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := LSGeneral(in); !errors.Is(err, ErrNoFit) {
		t.Fatalf("LSGeneral: want ErrNoFit, got %v", err)
	}
	if _, err := LPTGeneral(in); !errors.Is(err, ErrNoFit) {
		t.Fatalf("LPTGeneral: want ErrNoFit, got %v", err)
	}
}
