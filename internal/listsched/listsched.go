// Package listsched implements the classical list-scheduling algorithms for
// P||Cmax used as baselines in the paper:
//
//   - LS (Graham): scan jobs in input order, always placing the next job on
//     the machine that becomes available first. 2-approximation.
//   - LPT (Graham): LS on jobs sorted by non-increasing processing time.
//     4/3-approximation.
//
// Ties between machines with equal loads are broken toward the lowest
// machine index, exactly like the paper's Lines 45-48 which scan machines in
// index order and keep the first strict minimum. This makes both algorithms
// fully deterministic.
package listsched

import "repro/pcmax"

// machineHeap is a binary min-heap of machines keyed by (load, index).
type machineHeap struct {
	load []pcmax.Time
	idx  []int
}

func newMachineHeap(loads []pcmax.Time) *machineHeap {
	h := &machineHeap{
		load: append([]pcmax.Time(nil), loads...),
		idx:  make([]int, len(loads)),
	}
	for i := range h.idx {
		h.idx[i] = i
	}
	// Heapify: sift down from the last internal node.
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

func (h *machineHeap) less(a, b int) bool {
	if h.load[a] != h.load[b] {
		return h.load[a] < h.load[b]
	}
	return h.idx[a] < h.idx[b]
}

func (h *machineHeap) swap(a, b int) {
	h.load[a], h.load[b] = h.load[b], h.load[a]
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
}

func (h *machineHeap) down(i int) {
	n := len(h.idx)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// assign places job time t on the least-loaded machine and returns its index.
func (h *machineHeap) assign(t pcmax.Time) int {
	mi := h.idx[0]
	h.load[0] += t
	h.down(0)
	return mi
}

// AssignGreedy appends the jobs listed in order (indices into in.Times) to
// the schedule, each on the currently least-loaded machine, starting from the
// machine loads implied by the schedule's existing assignments. This is the
// primitive shared by LS, LPT and the PTAS short-job phase (paper Lines
// 41-51, which extend the long-job schedule).
func AssignGreedy(in *pcmax.Instance, sched *pcmax.Schedule, order []int) {
	h := newMachineHeap(sched.Loads(in))
	for _, j := range order {
		sched.Assignment[j] = h.assign(in.Times[j])
	}
}

// LS runs Graham's list scheduling over the jobs in input order.
func LS(in *pcmax.Instance) *pcmax.Schedule {
	sched := pcmax.NewSchedule(in.M, in.N())
	order := make([]int, in.N())
	for j := range order {
		order[j] = j
	}
	AssignGreedy(in, sched, order)
	return sched
}

// LPT runs Graham's longest-processing-time rule: list scheduling over the
// jobs sorted by non-increasing processing time (ties by job index).
func LPT(in *pcmax.Instance) *pcmax.Schedule {
	sched := pcmax.NewSchedule(in.M, in.N())
	AssignGreedy(in, sched, in.SortedIndex())
	return sched
}
