package listsched

import (
	"fmt"

	"repro/pcmax"
)

// Variant-capable list scheduling: LS and LPT generalized to release times,
// machine-dependent setup times and availability windows. The greedy keeps
// the classical priority list (input order for LS, longest-processing-time
// order for LPT) but replaces "least loaded machine" with "machine that
// completes the job earliest" under the variant semantics: a job starts no
// earlier than its release time, pays the machine's setup, and on a
// restricted machine must fit — setup included — entirely inside one
// availability window. Ties break toward the lower machine index, like the
// plain rule.
//
// On plain instances earliest completion time degenerates to least load with
// identical tie-breaking, so LSGeneral/LPTGeneral route plain instances
// through the untouched heap-based plain code path and return bit-identical
// schedules.

// ErrNoFit reports a job that fits no machine's availability windows at any
// time, making the instance itself infeasible for sequential placement.
var ErrNoFit = fmt.Errorf("listsched: job fits no machine availability window")

// assignVariantGreedy extends sched by the listed jobs in order, each on the
// machine that completes it earliest. It records the placement order on
// sched.Order so Makespan/Completions reproduce exactly the simulated
// timeline.
func assignVariantGreedy(in *pcmax.Instance, sched *pcmax.Schedule, order []int) error {
	free := make([]pcmax.Time, in.M)
	for _, j := range order {
		best, bestDone := -1, pcmax.Infeasible
		for mi := 0; mi < in.M; mi++ {
			est := free[mi]
			if r := in.ReleaseTime(j); r > est {
				est = r
			}
			dur := in.SetupTime(mi) + in.Times[j]
			start, ok := in.EarliestStart(mi, est, dur)
			if !ok {
				continue
			}
			if done := start + dur; done < bestDone {
				best, bestDone = mi, done
			}
		}
		if best < 0 {
			return fmt.Errorf("%w (job %d, t=%d)", ErrNoFit, j, in.Times[j])
		}
		sched.Assignment[j] = best
		free[best] = bestDone
		sched.Order = append(sched.Order, j)
	}
	return nil
}

// LSGeneral runs list scheduling in job input order on any instance variant.
// Plain instances take the classic heap path and return exactly LS's
// schedule.
func LSGeneral(in *pcmax.Instance) (*pcmax.Schedule, error) {
	if in.Variant() == pcmax.Plain {
		return LS(in), nil
	}
	sched := pcmax.NewSchedule(in.M, in.N())
	sched.Order = make([]int, 0, in.N())
	order := make([]int, in.N())
	for j := range order {
		order[j] = j
	}
	if err := assignVariantGreedy(in, sched, order); err != nil {
		return nil, err
	}
	return sched, nil
}

// LPTGeneral runs longest-processing-time list scheduling on any instance
// variant: the priority list is the plain LPT order (non-increasing
// processing time, ties by job index), machines are chosen by earliest
// completion. Plain instances take the classic heap path and return exactly
// LPT's schedule.
func LPTGeneral(in *pcmax.Instance) (*pcmax.Schedule, error) {
	if in.Variant() == pcmax.Plain {
		return LPT(in), nil
	}
	sched := pcmax.NewSchedule(in.M, in.N())
	sched.Order = make([]int, 0, in.N())
	if err := assignVariantGreedy(in, sched, in.SortedIndex()); err != nil {
		return nil, err
	}
	return sched, nil
}
