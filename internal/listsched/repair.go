package listsched

import (
	"sort"

	"repro/pcmax"
)

// Repair incrementally rebuilds a schedule after an instance mutation: keep
// maps every job of in to the machine it kept from the previous solution
// (0..M-1) or -1 for jobs that need (re)placement — added jobs, or jobs
// whose previous machine no longer exists. Kept jobs stay where they were;
// the unplaced ones are appended in LPT order (non-increasing time, ties by
// index) onto the least-loaded machines, exactly the greedy primitive the
// PTAS short-job phase uses.
//
// The repaired makespan is a valid upper bound for warm-starting a
// bisection, and when the delta is small it is frequently already within the
// (1+eps) certificate of the updated lower bound — the caller decides by
// comparing against its bound (see solver.Session). The returned schedule is
// always complete and valid; Repair never returns nil. keep must have length
// in.N(); entries outside [0, M) are treated as -1.
func Repair(in *pcmax.Instance, keep []int) *pcmax.Schedule {
	n, m := in.N(), in.M
	sched := pcmax.NewSchedule(m, n)
	var loose []int
	for j := 0; j < n; j++ {
		if j < len(keep) && keep[j] >= 0 && keep[j] < m {
			sched.Assignment[j] = keep[j]
		} else {
			loose = append(loose, j)
		}
	}
	sort.SliceStable(loose, func(a, b int) bool {
		ta, tb := in.Times[loose[a]], in.Times[loose[b]]
		if ta != tb {
			return ta > tb
		}
		return loose[a] < loose[b]
	})
	AssignGreedy(in, sched, loose)
	return sched
}
