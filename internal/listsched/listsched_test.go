package listsched

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
)

func TestLSAssignsInInputOrder(t *testing.T) {
	// Jobs 4,3,3 on 2 machines in input order: 4->m0, 3->m1, 3->m1 (load 3
	// < 4), makespan 6.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{4, 3, 3}}
	s := LS(in)
	if got := s.Makespan(in); got != 6 {
		t.Fatalf("LS makespan = %d, want 6", got)
	}
	if s.Assignment[0] != 0 || s.Assignment[1] != 1 || s.Assignment[2] != 1 {
		t.Fatalf("LS assignment = %v", s.Assignment)
	}
}

func TestLPTSortsFirst(t *testing.T) {
	// Same jobs ordered adversarially for LS; LPT must reach the optimum 5:
	// {4,3} sorted desc is 4,3,3 -> m0:4, m1:3, m1? no: m1 has 3 < 4 -> 3+3=6?
	// Use the classic: jobs 3,3,2,2,2 on 2 machines: LPT gives 3+3=6 vs
	// 3+2+2=7? LPT: 3->m0, 3->m1, 2->m0(3<=3 tie lowest index), 2->m1, 2->m0
	// makespan 7? Let's assert against the known LPT trace instead.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{2, 3, 2, 3, 2}}
	s := LPT(in)
	// LPT order: 3(j1),3(j3),2(j0),2(j2),2(j4)
	// m0: 3(j1), m1: 3(j3), m0: 2(j0) -> 5, m1: 2(j2) -> 5, m0: 2(j4) -> 7.
	if got := s.Makespan(in); got != 7 {
		t.Fatalf("LPT makespan = %d, want 7", got)
	}
}

func TestLPTOptimalOnEqualJobs(t *testing.T) {
	in := &pcmax.Instance{M: 3, Times: []pcmax.Time{5, 5, 5, 5, 5, 5}}
	if got := LPT(in).Makespan(in); got != 10 {
		t.Fatalf("LPT on equal jobs = %d, want 10", got)
	}
}

func TestLPTKnownWorstCase(t *testing.T) {
	// The classic adversarial family: LPT achieves exactly 4m-1 against the
	// optimum 3m, i.e. ratio 4/3 - 1/(3m).
	for _, m := range []int{2, 3, 5, 10} {
		in, err := workload.AdversarialLPT(m)
		if err != nil {
			t.Fatal(err)
		}
		got := LPT(in).Makespan(in)
		want := pcmax.Time(4*m - 1)
		if got != want {
			t.Fatalf("m=%d: LPT makespan %d, want %d", m, got, want)
		}
	}
}

func TestTieBreakTowardLowestMachine(t *testing.T) {
	// All machines empty: the first job must land on machine 0, the second
	// (equal loads except machine 0) on machine 1, etc.
	in := &pcmax.Instance{M: 4, Times: []pcmax.Time{1, 1, 1, 1}}
	s := LS(in)
	for j := 0; j < 4; j++ {
		if s.Assignment[j] != j {
			t.Fatalf("job %d went to machine %d, want %d", j, s.Assignment[j], j)
		}
	}
}

func TestAssignGreedyRespectsExistingLoads(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{10, 2, 3}}
	sched := pcmax.NewSchedule(2, 3)
	sched.Assignment[0] = 0 // machine 0 preloaded with 10
	AssignGreedy(in, sched, []int{1, 2})
	if sched.Assignment[1] != 1 || sched.Assignment[2] != 1 {
		t.Fatalf("greedy ignored preload: %v", sched.Assignment)
	}
	if got := sched.Makespan(in); got != 10 {
		t.Fatalf("makespan = %d, want 10", got)
	}
}

func TestAssignGreedyPartialOrder(t *testing.T) {
	// Only the listed jobs get assigned.
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 6, 7}}
	sched := pcmax.NewSchedule(2, 3)
	AssignGreedy(in, sched, []int{2})
	if sched.Assignment[0] != -1 || sched.Assignment[1] != -1 || sched.Assignment[2] != 0 {
		t.Fatalf("assignment = %v", sched.Assignment)
	}
}

// naiveGreedy re-implements least-loaded assignment with a linear scan, as
// an oracle for the heap.
func naiveGreedy(in *pcmax.Instance, order []int) *pcmax.Schedule {
	sched := pcmax.NewSchedule(in.M, in.N())
	loads := make([]pcmax.Time, in.M)
	for _, j := range order {
		mi := 0
		for i := 1; i < in.M; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += in.Times[j]
		sched.Assignment[j] = mi
	}
	return sched
}

func TestHeapMatchesNaiveGreedyProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%10) + 1
		n := int(nRaw%50) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(100))
		}
		in := &pcmax.Instance{M: m, Times: times}
		order := make([]int, n)
		for j := range order {
			order[j] = j
		}
		want := naiveGreedy(in, order)
		got := pcmax.NewSchedule(m, n)
		AssignGreedy(in, got, order)
		for j := range order {
			if got.Assignment[j] != want.Assignment[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLSTwoApproxProperty(t *testing.T) {
	// LS makespan < LB + max t <= 2*OPT (Graham's bound in LB terms).
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%8) + 1
		n := int(nRaw%40) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(200))
		}
		in := &pcmax.Instance{M: m, Times: times}
		ms := LS(in).Makespan(in)
		return ms <= in.LowerBound()+in.MaxTime() && ms >= in.LowerBound()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLPTNeverWorseThanUpperBoundProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%8) + 1
		n := int(nRaw%40) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(200))
		}
		in := &pcmax.Instance{M: m, Times: times}
		s := LPT(in)
		if err := s.Validate(in); err != nil {
			return false
		}
		ms := s.Makespan(in)
		// 4/3 bound against the lower bound (a relaxation of the true 4/3
		// OPT bound, so it must hold):
		// LPT <= 4/3 OPT + ... actually LPT <= 4/3 OPT - 1/(3m); use the
		// list-scheduling bound which is certain: LPT <= LB + max.
		return ms <= in.LowerBound()+in.MaxTime() && ms >= in.LowerBound()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulesAreAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%12) + 1
		n := int(nRaw % 60)
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(50))
		}
		in := &pcmax.Instance{M: m, Times: times}
		if n == 0 {
			return LS(in).Makespan(in) == 0 && LPT(in).Makespan(in) == 0
		}
		return LS(in).Validate(in) == nil && LPT(in).Validate(in) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleMachine(t *testing.T) {
	in := &pcmax.Instance{M: 1, Times: []pcmax.Time{4, 5, 6}}
	if got := LS(in).Makespan(in); got != 15 {
		t.Fatalf("LS on one machine = %d, want 15", got)
	}
	if got := LPT(in).Makespan(in); got != 15 {
		t.Fatalf("LPT on one machine = %d, want 15", got)
	}
}

func TestMoreMachinesThanJobs(t *testing.T) {
	in := &pcmax.Instance{M: 10, Times: []pcmax.Time{9, 4}}
	s := LPT(in)
	if got := s.Makespan(in); got != 9 {
		t.Fatalf("makespan = %d, want 9", got)
	}
}
