// Package stats provides the small statistical and reporting toolkit used by
// the experiment harness: summaries over repetition sets, speedup series,
// and fixed-width/CSV table rendering.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (average of the middle pair for even lengths),
// or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Stdev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func Stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive samples; non-positive
// samples make it return 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Summary bundles the descriptive statistics of one sample set.
type Summary struct {
	N                   int
	Mean, Median, Stdev float64
	Min, Max            float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Stdev:  Stdev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// Speedups divides the baseline by each measurement: the paper's speedup
// definition ("ratio of the running time of the sequential PTAS and the
// running time of the parallel approximation algorithm"). Non-positive
// measurements yield 0 entries.
func Speedups(baseline float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = baseline / t
		}
	}
	return out
}
