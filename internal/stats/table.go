package stats

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a simple fixed-width text table with an optional CSV rendering,
// used by cmd/schedbench to print the paper's figures and tables as rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := append([]string(nil), cells...)
	for len(row) < len(t.Header) {
		row = append(row, "")
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for c, h := range t.Header {
		widths[c] = len(h)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for c := range t.Header {
			if c > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FmtDuration renders a duration with three significant digits, stable
// across magnitudes (µs to minutes), for table cells.
func FmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FmtFloat renders a float with the given number of decimals.
func FmtFloat(x float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, x)
}
