package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean of 1..4")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
	if !almost(Mean([]float64{7}), 7) {
		t.Fatal("mean of singleton")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median sorted the input: %v", xs)
	}
}

func TestStdev(t *testing.T) {
	// Sample stdev of {2,4,4,4,5,5,7,9} is 2.138... (population 2); sample
	// uses n-1: variance 32/7.
	got := Stdev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got*got, 32.0/7.0) {
		t.Fatalf("Stdev^2 = %v, want 32/7", got*got)
	}
	if Stdev([]float64{5}) != 0 || Stdev(nil) != 0 {
		t.Fatal("stdev of <2 samples must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean of {1,4}")
	}
	if GeoMean([]float64{2, 0}) != 0 {
		t.Fatal("geomean with zero sample")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) || !almost(s.Min, 1) || !almost(s.Max, 3) {
		t.Fatalf("summary %+v", s)
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups(10, []float64{10, 5, 2, 0})
	want := []float64{1, 2, 5, 0}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("speedups = %v, want %v", got, want)
		}
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianWithinMinMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Median(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
