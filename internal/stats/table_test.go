package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := NewTable("Title here", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Title here", "name", "value", "alpha", "22222", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Columns align: every data line has "  " at the same offset as the
	// header separator.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableRenderPadsShortRows(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only") {
		t.Fatal("row lost")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("ignored", "name", "value")
	tbl.AddRow("plain", "1")
	tbl.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "name,value\n") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.50µs",
		2500 * time.Microsecond: "2.50ms",
		1500 * time.Millisecond: "1.500s",
		90 * time.Second:        "90.000s",
	}
	for d, want := range cases {
		if got := FmtDuration(d); got != want {
			t.Fatalf("FmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFmtFloat(t *testing.T) {
	if got := FmtFloat(3.14159, 2); got != "3.14" {
		t.Fatalf("FmtFloat = %q", got)
	}
	if got := FmtFloat(2, 0); got != "2" {
		t.Fatalf("FmtFloat = %q", got)
	}
}
