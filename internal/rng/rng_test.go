package rng

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	src := New(0)
	if src.Uint64() == 0 && src.Uint64() == 0 && src.Uint64() == 0 {
		t.Fatal("seed 0 produced a degenerate stream")
	}
}

func TestInt64nRange(t *testing.T) {
	src := New(3)
	for i := 0; i < 10000; i++ {
		v := src.Int64n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int64n(7) = %d out of range", v)
		}
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(0) did not panic")
		}
	}()
	New(1).Int64n(0)
}

func TestInt64nUniformity(t *testing.T) {
	// Chi-square-ish sanity: 10 buckets, 100k draws, each bucket should be
	// within 5% of expectation.
	src := New(9)
	const draws, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[src.Int64n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d has %d draws, want %.0f±5%%", b, c, want)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	src := New(5)
	for i := 0; i < 10000; i++ {
		v, err := src.Uniform(10, 20)
		if err != nil {
			t.Fatal(err)
		}
		if v < 10 || v > 20 {
			t.Fatalf("Uniform(10,20) = %d", v)
		}
	}
}

func TestUniformSinglePoint(t *testing.T) {
	src := New(5)
	for i := 0; i < 10; i++ {
		if v := src.MustUniform(7, 7); v != 7 {
			t.Fatalf("Uniform(7,7) = %d", v)
		}
	}
}

func TestUniformInvertedInterval(t *testing.T) {
	_, err := New(1).Uniform(5, 4)
	if !errors.Is(err, ErrBadInterval) {
		t.Fatalf("want ErrBadInterval, got %v", err)
	}
}

func TestMustUniformPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustUniform(5,4) did not panic")
		}
	}()
	New(1).MustUniform(5, 4)
}

func TestUniformHitsEndpoints(t *testing.T) {
	src := New(11)
	seenLo, seenHi := false, false
	for i := 0; i < 10000 && !(seenLo && seenHi); i++ {
		switch src.MustUniform(1, 5) {
		case 1:
			seenLo = true
		case 5:
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatalf("endpoints not reached: lo=%v hi=%v", seenLo, seenHi)
	}
}

func TestUniformWithinBoundsProperty(t *testing.T) {
	f := func(seed uint64, loRaw int32, span uint16) bool {
		lo := int64(loRaw)
		hi := lo + int64(span)
		v, err := New(seed).Uniform(lo, hi)
		return err == nil && v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(13)
	for i := 0; i < 10000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := src.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermNotIdentityUsually(t *testing.T) {
	src := New(19)
	identity := 0
	for trial := 0; trial < 50; trial++ {
		p := src.Perm(20)
		id := true
		for i, v := range p {
			if v != i {
				id = false
				break
			}
		}
		if id {
			identity++
		}
	}
	if identity > 1 {
		t.Fatalf("%d/50 permutations were the identity", identity)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	src := New(23)
	xs := []int64{5, 5, 1, 9, 2}
	sum := int64(0)
	for _, x := range xs {
		sum += x
	}
	src.Shuffle(xs)
	got := int64(0)
	for _, x := range xs {
		got += x
	}
	if got != sum || len(xs) != 5 {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(29)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between parent and child", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(31).Split()
	b := New(31).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}
