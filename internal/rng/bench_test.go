package rng

import "testing"

// BenchmarkUint64 measures raw generator throughput.
func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= src.Uint64()
	}
	_ = sink
}

// BenchmarkUniform measures bounded draws (rejection sampling included).
func BenchmarkUniform(b *testing.B) {
	src := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink ^= src.MustUniform(1, 1000)
	}
	_ = sink
}

// BenchmarkPerm measures Fisher-Yates on a workload-sized slice.
func BenchmarkPerm(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		src.Perm(100)
	}
}
