// Package rng provides a small, deterministic pseudo-random number generator
// for workload generation. Every experiment in the repository derives its
// randomness from an explicit seed so that results are reproducible across
// runs and machines; nothing in the repository uses math/rand global state.
//
// The generator is xoshiro256++ seeded through SplitMix64, the combination
// recommended by the xoshiro authors. Both are implemented from the public
// reference algorithms.
package rng

import "errors"

// Source is a deterministic xoshiro256++ generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand a single seed into the xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// independent streams; the same seed always gives the same stream.
func New(seed uint64) *Source {
	src := &Source{}
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int64n returns a uniform integer in [0, n). It panics if n <= 0, matching
// the contract of math/rand.
func (src *Source) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n called with n <= 0")
	}
	// Rejection sampling to remove modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := src.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (src *Source) Intn(n int) int { return int(src.Int64n(int64(n))) }

// ErrBadInterval reports an inverted uniform interval.
var ErrBadInterval = errors.New("rng: uniform interval has hi < lo")

// Uniform returns a uniform integer in the closed interval [lo, hi],
// matching the paper's U(lo, hi) notation. It returns an error if hi < lo.
func (src *Source) Uniform(lo, hi int64) (int64, error) {
	if hi < lo {
		return 0, ErrBadInterval
	}
	return lo + src.Int64n(hi-lo+1), nil
}

// MustUniform is Uniform for callers with statically valid intervals.
// It panics if hi < lo.
func (src *Source) MustUniform(lo, hi int64) int64 {
	v, err := src.Uniform(lo, hi)
	if err != nil {
		panic(err)
	}
	return v
}

// Float64 returns a uniform float64 in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) * (1.0 / (1 << 53))
}

// Perm returns a uniformly random permutation of [0, n) using Fisher-Yates.
func (src *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place using Fisher-Yates.
func (src *Source) Shuffle(xs []int64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Split derives an independent child generator. The child stream is a
// deterministic function of the parent's current state, so seeding one
// parent and splitting per task keeps whole experiment suites reproducible.
func (src *Source) Split() *Source {
	return New(src.Uint64() ^ 0xd2b74407b1ce6e93)
}
