package main

import (
	"strings"
	"testing"
)

// A setup+windows instance: two machines, setups 1 and 0, machine 1
// restricted to [0,20) and [30,90).
const variantText = "m 2\nvariant sw\ns 1 0\nw 0 0 100\nw 1 0 20 30 90\n5 3 7 2 6\n"

func TestRunVariantAuto(t *testing.T) {
	path := writeInstance(t, variantText)
	var out strings.Builder
	if err := run([]string{"-algo", "auto", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "auto: instance variant setup+windows, selected ptas-tr") {
		t.Fatalf("missing auto selection line:\n%s", s)
	}
	if !strings.Contains(s, "ptas-tr makespan:") {
		t.Fatalf("missing makespan line:\n%s", s)
	}
	if !strings.Contains(s, "ptas-tr: exact mode") {
		t.Fatalf("missing TR stats line:\n%s", s)
	}
}

func TestRunVariantUnsupportedAlgo(t *testing.T) {
	path := writeInstance(t, variantText)
	var out strings.Builder
	err := run([]string{"-algo", "ptas", path}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "supports only") {
		t.Fatalf("want variant error, got %v", err)
	}
}

func TestRunVariantRatioUsesBrute(t *testing.T) {
	path := writeInstance(t, variantText)
	var out strings.Builder
	if err := run([]string{"-algo", "lpt", "-ratio", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "variant=setup+windows") {
		t.Fatalf("instance line missing variant:\n%s", s)
	}
	if !strings.Contains(s, "ratio") {
		t.Fatalf("missing ratio line:\n%s", s)
	}
}

func TestRunVariantCompareAll(t *testing.T) {
	path := writeInstance(t, variantText)
	var out strings.Builder
	if err := run([]string{"-algo", "all", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "unsupported variant setup+windows") {
		t.Fatalf("comparison table missing unsupported rows:\n%s", s)
	}
	for _, name := range []string{"ls", "lpt", "ptas-tr"} {
		if !strings.Contains(s, name) {
			t.Fatalf("comparison table missing %s:\n%s", name, s)
		}
	}
}

func TestRunVariantGantt(t *testing.T) {
	path := writeInstance(t, variantText)
	var out strings.Builder
	if err := run([]string{"-algo", "lpt", "-gantt", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "makespan") {
		t.Fatalf("missing gantt output:\n%s", out.String())
	}
}
