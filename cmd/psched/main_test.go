package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInstance(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEveryAlgorithm(t *testing.T) {
	path := writeInstance(t, "m 3\n9 8 7 6 5 4 3 2 1\n")
	for _, algo := range []string{"ls", "lpt", "multifit", "ptas", "exact"} {
		var out strings.Builder
		err := run([]string{"-algo", algo, path}, nil, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), algo+" makespan:") {
			t.Fatalf("%s output missing makespan line:\n%s", algo, out.String())
		}
	}
}

func TestRunReadsStdin(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-algo", "lpt"}, strings.NewReader("m 2\n4 3 3\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lpt makespan: 6") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunRatioFlag(t *testing.T) {
	path := writeInstance(t, "m 2\n5 4 3 2\n")
	var out strings.Builder
	if err := run([]string{"-algo", "ptas", "-ratio", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exact makespan: 7") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "actual ratio") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunGanttFlag(t *testing.T) {
	path := writeInstance(t, "m 2\n5 4\n")
	var out strings.Builder
	if err := run([]string{"-algo", "lpt", "-gantt", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "machine 0") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	path := writeInstance(t, "m 2\n5 4\n")
	if err := run([]string{"-algo", "nope", path}, nil, &strings.Builder{}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent/instance.txt"}, nil, &strings.Builder{}); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestRunTooManyArgs(t *testing.T) {
	if err := run([]string{"a", "b"}, nil, &strings.Builder{}); err == nil {
		t.Fatal("want error for extra args")
	}
}

func TestRunBadInstance(t *testing.T) {
	path := writeInstance(t, "not an instance\n")
	if err := run([]string{path}, nil, &strings.Builder{}); err == nil {
		t.Fatal("want parse error")
	}
}

func TestRunCompareAll(t *testing.T) {
	path := writeInstance(t, "m 3\n9 8 7 6 5 4 3 2 1\n")
	var out strings.Builder
	if err := run([]string{"-algo", "all", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm", "ls", "lpt", "multifit", "ptas", "exact", "ratio"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("compare output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeInstance(t, "m 2\n5 4 3\n")
	var out strings.Builder
	if err := run([]string{"-algo", "lpt", "-json", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Algorithm string `json:"algorithm"`
		Makespan  int64  `json:"makespan"`
		Schedule  struct {
			M          int   `json:"m"`
			Assignment []int `json:"assignment"`
		} `json:"schedule"`
	}
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if decoded.Algorithm != "lpt" || decoded.Makespan != 7 || len(decoded.Schedule.Assignment) != 3 {
		t.Fatalf("decoded %+v", decoded)
	}
}
