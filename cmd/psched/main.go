// Command psched schedules a P||Cmax instance read from a file (or stdin)
// with a chosen algorithm and prints the schedule, makespan and, optionally,
// the approximation ratio against the exact optimum.
//
// Usage:
//
//	psched -algo ptas -eps 0.3 -workers 4 instance.txt
//	psched -algo ptas -deadline 100ms instance.txt
//
// Algorithms are dispatched through the solver registry, so -algo accepts
// every registered name (ls, lpt, multifit, ptas, exact, ip, sahni) plus
// "all" for a comparison table. -deadline bounds the whole solve through
// context cancellation; an interrupted solve prints the fallback schedule
// when the algorithm provides one.
//
// The instance format is the one written by cmd/instgen:
//
//	m 4
//	10 7 7 5 5 4 4 3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/pcmax"
	"repro/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psched:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("psched", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "ptas", "algorithm name from the solver registry, or all (comparison table)")
		eps      = fs.Float64("eps", 0.3, "PTAS relative error")
		workers  = fs.Int("workers", 0, "PTAS workers (0 = all cores, 1 = sequential)")
		ratio    = fs.Bool("ratio", false, "also solve exactly and print the actual approximation ratio")
		gantt    = fs.Bool("gantt", false, "print the per-machine job lists")
		asJSON   = fs.Bool("json", false, "emit the schedule as JSON instead of text")
		timeout  = fs.Duration("exact-timeout", time.Minute, "time limit for exact solves")
		deadline = fs.Duration("deadline", 0, "overall deadline for the solve (0 = none); interrupted solves print the fallback schedule when available")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: psched [flags] [instance-file]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	default:
		fs.Usage()
		return fmt.Errorf("at most one instance file, got %d args", fs.NArg())
	}
	in, err := pcmax.ReadText(r)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	opts := solver.Options{Exact: solver.ExactOptions{TimeLimit: *timeout}}
	opts.PTAS = solver.DefaultPTASOptions()
	opts.PTAS.Epsilon = *eps
	opts.PTAS.Workers = *workers

	if *algo == "all" {
		return compareAll(ctx, stdout, in, opts)
	}

	alg, err := solver.Lookup(*algo)
	if err != nil {
		return err
	}
	sched, rep, err := alg.Solve(ctx, in, opts)
	if err != nil {
		if !errors.Is(err, solver.ErrCanceled) || sched == nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: interrupted (%v), showing fallback schedule\n", *algo, err)
	}
	if rep.PTAS != nil && !rep.Interrupted {
		st := rep.PTAS
		fmt.Fprintf(stdout, "ptas: k=%d iterations=%d finalT=%d table=%d entries, %d configs\n",
			st.K, st.Iterations, st.FinalT, st.TableEntries, st.Configs)
	}
	if rep.Exact != nil && !rep.Exact.Optimal {
		fmt.Fprintf(stdout, "%s: limit reached, best incumbent shown (lower bound %d)\n", *algo, rep.Exact.LowerBound)
	}

	if *asJSON {
		out := struct {
			Algorithm string          `json:"algorithm"`
			Makespan  int64           `json:"makespan"`
			Seconds   float64         `json:"seconds"`
			Schedule  *pcmax.Schedule `json:"schedule"`
		}{*algo, int64(sched.Makespan(in)), rep.Elapsed.Seconds(), sched}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d max=%d (lower bound %d)\n",
		in.M, in.N(), in.TotalTime(), in.MaxTime(), in.LowerBound())
	fmt.Fprintf(stdout, "%s makespan: %d (%.3fms)\n", *algo, sched.Makespan(in), rep.Elapsed.Seconds()*1000)
	if *gantt {
		fmt.Fprint(stdout, sched.Gantt(in))
	}
	if *ratio {
		exactAlg, err := solver.Lookup("exact")
		if err != nil {
			return err
		}
		_, exRep, err := exactAlg.Solve(ctx, in, opts)
		if err != nil && !errors.Is(err, solver.ErrCanceled) {
			return err
		}
		qual := "optimal"
		if exRep.Exact == nil || !exRep.Exact.Optimal {
			qual = "best known (limit reached)"
		}
		fmt.Fprintf(stdout, "exact makespan: %d (%s), actual ratio %.4f\n",
			exRep.Exact.Makespan, qual, sched.Ratio(in, exRep.Exact.Makespan))
	}
	return nil
}

// compareAll runs every registered algorithm on the instance and prints one
// comparison row per algorithm, with ratios against the exact makespan.
// Algorithms that fail (e.g. sahni beyond its machine budget) or run into
// the deadline are logged as such instead of aborting the table.
func compareAll(ctx context.Context, stdout io.Writer, in *pcmax.Instance, opts solver.Options) error {
	exactAlg, err := solver.Lookup("exact")
	if err != nil {
		return err
	}
	exactSched, res, err := exactAlg.Solve(ctx, in, opts)
	if err != nil && !errors.Is(err, solver.ErrCanceled) {
		return err
	}
	if exactSched == nil {
		return fmt.Errorf("exact reference unavailable: %w", err)
	}
	opt := res.Exact.Makespan
	qual := "optimal"
	if !res.Exact.Optimal {
		qual = "best known (limit reached)"
	}
	fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d lower-bound=%d\n", in.M, in.N(), in.TotalTime(), in.LowerBound())
	fmt.Fprintf(stdout, "reference: exact makespan %d (%s)\n\n", opt, qual)
	fmt.Fprintf(stdout, "%-10s %-10s %-8s %-12s\n", "algorithm", "makespan", "ratio", "time")

	for _, name := range solver.Names() {
		alg, err := solver.Lookup(name)
		if err != nil {
			return err
		}
		var (
			sched *pcmax.Schedule
			rep   solver.Report
		)
		if name == "exact" {
			sched, rep = exactSched, res // don't pay the reference solve twice
		} else {
			sched, rep, err = alg.Solve(ctx, in, opts)
		}
		switch {
		case err != nil && errors.Is(err, solver.ErrCanceled) && sched != nil:
			fmt.Fprintf(stdout, "%-10s %-10d %-8.4f %-12s (interrupted, fallback)\n",
				name, sched.Makespan(in), sched.Ratio(in, opt), rep.Elapsed.Round(time.Microsecond))
		case err != nil:
			fmt.Fprintf(stdout, "%-10s %-10s %-8s %v\n", name, "-", "-", err)
		default:
			fmt.Fprintf(stdout, "%-10s %-10d %-8.4f %-12s\n",
				name, sched.Makespan(in), sched.Ratio(in, opt), rep.Elapsed.Round(time.Microsecond))
		}
	}
	return nil
}
