// Command psched schedules a P||Cmax instance read from a file (or stdin)
// with a chosen algorithm and prints the schedule, makespan and, optionally,
// the approximation ratio against the exact optimum.
//
// Usage:
//
//	psched -algo ptas -eps 0.3 -workers 4 instance.txt
//
// The instance format is the one written by cmd/instgen:
//
//	m 4
//	10 7 7 5 5 4 4 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/pcmax"
	"repro/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psched:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("psched", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "ptas", "algorithm: ls, lpt, multifit, ptas, exact, or all (comparison table)")
		eps     = fs.Float64("eps", 0.3, "PTAS relative error")
		workers = fs.Int("workers", 0, "PTAS workers (0 = all cores, 1 = sequential)")
		ratio   = fs.Bool("ratio", false, "also solve exactly and print the actual approximation ratio")
		gantt   = fs.Bool("gantt", false, "print the per-machine job lists")
		asJSON  = fs.Bool("json", false, "emit the schedule as JSON instead of text")
		timeout = fs.Duration("exact-timeout", time.Minute, "time limit for exact solves")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: psched [flags] [instance-file]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	default:
		fs.Usage()
		return fmt.Errorf("at most one instance file, got %d args", fs.NArg())
	}
	in, err := pcmax.ReadText(r)
	if err != nil {
		return err
	}

	if *algo == "all" {
		return compareAll(stdout, in, *eps, *workers, *timeout)
	}

	start := time.Now()
	var sched *pcmax.Schedule
	switch *algo {
	case "ls":
		sched, err = solver.LS(in)
	case "lpt":
		sched, err = solver.LPT(in)
	case "multifit":
		sched, err = solver.MultiFit(in)
	case "ptas":
		opts := solver.DefaultPTASOptions()
		opts.Epsilon = *eps
		opts.Workers = *workers
		var st *solver.PTASStats
		sched, st, err = solver.PTAS(in, opts)
		if err == nil {
			fmt.Fprintf(stdout, "ptas: k=%d iterations=%d finalT=%d table=%d entries, %d configs\n",
				st.K, st.Iterations, st.FinalT, st.TableEntries, st.Configs)
		}
	case "exact":
		var res solver.ExactResult
		sched, res, err = solver.Exact(in, solver.ExactOptions{TimeLimit: *timeout})
		if err == nil && !res.Optimal {
			fmt.Fprintf(stdout, "exact: limit reached, best incumbent shown (lower bound %d)\n", res.LowerBound)
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want ls, lpt, multifit, ptas, exact or all)", *algo)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *asJSON {
		out := struct {
			Algorithm string          `json:"algorithm"`
			Makespan  int64           `json:"makespan"`
			Seconds   float64         `json:"seconds"`
			Schedule  *pcmax.Schedule `json:"schedule"`
		}{*algo, int64(sched.Makespan(in)), elapsed.Seconds(), sched}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d max=%d (lower bound %d)\n",
		in.M, in.N(), in.TotalTime(), in.MaxTime(), in.LowerBound())
	fmt.Fprintf(stdout, "%s makespan: %d (%.3fms)\n", *algo, sched.Makespan(in), elapsed.Seconds()*1000)
	if *gantt {
		fmt.Fprint(stdout, sched.Gantt(in))
	}
	if *ratio {
		_, res, err := solver.Exact(in, solver.ExactOptions{TimeLimit: *timeout})
		if err != nil {
			return err
		}
		qual := "optimal"
		if !res.Optimal {
			qual = "best known (limit reached)"
		}
		fmt.Fprintf(stdout, "exact makespan: %d (%s), actual ratio %.4f\n",
			res.Makespan, qual, sched.Ratio(in, res.Makespan))
	}
	return nil
}

// compareAll runs every algorithm on the instance and prints one comparison
// row per algorithm, with ratios against the exact makespan.
func compareAll(stdout io.Writer, in *pcmax.Instance, eps float64, workers int, timeout time.Duration) error {
	exactSched, res, err := solver.Exact(in, solver.ExactOptions{TimeLimit: timeout})
	if err != nil {
		return err
	}
	opt := res.Makespan
	qual := "optimal"
	if !res.Optimal {
		qual = "best known (limit reached)"
	}
	fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d lower-bound=%d\n", in.M, in.N(), in.TotalTime(), in.LowerBound())
	fmt.Fprintf(stdout, "reference: exact makespan %d (%s)\n\n", opt, qual)
	fmt.Fprintf(stdout, "%-10s %-10s %-8s %-12s\n", "algorithm", "makespan", "ratio", "time")

	type runFn func() (*pcmax.Schedule, error)
	ptasOpts := solver.DefaultPTASOptions()
	ptasOpts.Epsilon = eps
	ptasOpts.Workers = workers
	rows := []struct {
		name string
		fn   runFn
	}{
		{"ls", func() (*pcmax.Schedule, error) { return solver.LS(in) }},
		{"lpt", func() (*pcmax.Schedule, error) { return solver.LPT(in) }},
		{"multifit", func() (*pcmax.Schedule, error) { return solver.MultiFit(in) }},
		{"ptas", func() (*pcmax.Schedule, error) { s, _, err := solver.PTAS(in, ptasOpts); return s, err }},
		{"exact", func() (*pcmax.Schedule, error) { return exactSched, nil }},
	}
	for _, row := range rows {
		start := time.Now()
		sched, err := row.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		fmt.Fprintf(stdout, "%-10s %-10d %-8.4f %-12s\n",
			row.name, sched.Makespan(in), sched.Ratio(in, opt), time.Since(start).Round(time.Microsecond))
	}
	return nil
}
