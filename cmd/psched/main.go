// Command psched schedules a P||Cmax instance read from a file (or stdin)
// with a chosen algorithm and prints the schedule, makespan and, optionally,
// the approximation ratio against the exact optimum.
//
// Usage:
//
//	psched -algo ptas -eps 0.3 -workers 4 instance.txt
//	psched -algo ptas -deadline 100ms instance.txt
//
// Algorithms are dispatched through the solver registry with variant
// capability checking, so -algo accepts every registered name (ls, lpt,
// multifit, ptas, ptas-sparse, exact, ip, sahni, ptas-tr, brute) plus "all"
// for a comparison table and "auto" to pick the default algorithm for the
// instance's variant (ptas on plain instances, ptas-tr on setup/window
// instances, lpt otherwise). Selecting an algorithm that does not support
// the instance's variant fails with a descriptive error. -deadline bounds
// the whole solve through context cancellation; an interrupted solve prints
// the fallback schedule when the algorithm provides one.
//
// The instance format is the one written by cmd/instgen:
//
//	m 4
//	10 7 7 5 5 4 4 3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/pcmax"
	"repro/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psched:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("psched", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "ptas", "algorithm name from the solver registry, all (comparison table), or auto (pick by instance variant)")
		eps      = fs.Float64("eps", 0.3, "PTAS relative error")
		workers  = fs.Int("workers", 0, "PTAS workers (0 = all cores, 1 = sequential)")
		ratio    = fs.Bool("ratio", false, "also solve exactly and print the actual approximation ratio")
		gantt    = fs.Bool("gantt", false, "print the per-machine job lists")
		asJSON   = fs.Bool("json", false, "emit the schedule as JSON instead of text")
		timeout  = fs.Duration("exact-timeout", time.Minute, "time limit for exact solves")
		deadline = fs.Duration("deadline", 0, "overall deadline for the solve (0 = none); interrupted solves print the fallback schedule when available")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: psched [flags] [instance-file]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	default:
		fs.Usage()
		return fmt.Errorf("at most one instance file, got %d args", fs.NArg())
	}
	in, err := pcmax.ReadText(r)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	opts := solver.Options{Exact: solver.ExactOptions{TimeLimit: *timeout}}
	opts.PTAS = solver.DefaultPTASOptions()
	opts.PTAS.Epsilon = *eps
	opts.PTAS.Workers = *workers
	opts.TR = solver.TROptions{Epsilon: *eps}

	if *algo == "all" {
		return compareAll(ctx, stdout, in, opts)
	}
	name := *algo
	if name == "auto" {
		name = solver.DefaultAlgorithm(in.Variant())
		fmt.Fprintf(stdout, "auto: instance variant %s, selected %s\n", in.Variant(), name)
	}

	sched, rep, err := solver.Solve(ctx, name, in, opts)
	if err != nil {
		if !errors.Is(err, solver.ErrCanceled) || sched == nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: interrupted (%v), showing fallback schedule\n", name, err)
	}
	if rep.PTAS != nil && !rep.Interrupted {
		st := rep.PTAS
		fmt.Fprintf(stdout, "ptas: k=%d iterations=%d finalT=%d table=%d entries, %d configs\n",
			st.K, st.Iterations, st.FinalT, st.TableEntries, st.Configs)
	}
	if rep.TR != nil && !rep.Interrupted {
		st := rep.TR
		mode := "grouped"
		if st.Exact {
			mode = "exact"
		}
		fmt.Fprintf(stdout, "ptas-tr: %s mode, iterations=%d finalT=%d classes=%d configs=%d states=%d\n",
			mode, st.Iterations, st.FinalT, st.SizeClasses, st.Configs, st.States)
	}
	if rep.Exact != nil && !rep.Exact.Optimal {
		fmt.Fprintf(stdout, "%s: limit reached, best incumbent shown (lower bound %d)\n", name, rep.Exact.LowerBound)
	}

	if *asJSON {
		out := struct {
			Algorithm string          `json:"algorithm"`
			Makespan  int64           `json:"makespan"`
			Seconds   float64         `json:"seconds"`
			Schedule  *pcmax.Schedule `json:"schedule"`
		}{name, int64(sched.Makespan(in)), rep.Elapsed.Seconds(), sched}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	if v := in.Variant(); v == pcmax.Plain {
		fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d max=%d (lower bound %d)\n",
			in.M, in.N(), in.TotalTime(), in.MaxTime(), in.LowerBound())
	} else {
		fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d max=%d variant=%s (lower bound %d)\n",
			in.M, in.N(), in.TotalTime(), in.MaxTime(), v, in.LowerBound())
	}
	fmt.Fprintf(stdout, "%s makespan: %d (%.3fms)\n", name, sched.Makespan(in), rep.Elapsed.Seconds()*1000)
	if *gantt {
		fmt.Fprint(stdout, sched.Gantt(in))
	}
	if *ratio {
		refName := referenceAlgorithm(in)
		_, exRep, err := solver.Solve(ctx, refName, in, opts)
		if err != nil && !errors.Is(err, solver.ErrCanceled) {
			return err
		}
		qual := "optimal"
		if exRep.Exact == nil || !exRep.Exact.Optimal {
			qual = "best known (limit reached)"
		}
		fmt.Fprintf(stdout, "%s makespan: %d (%s), actual ratio %.4f\n",
			refName, exRep.Exact.Makespan, qual, sched.Ratio(in, exRep.Exact.Makespan))
	}
	return nil
}

// referenceAlgorithm picks the certified-optimal reference for ratio
// reporting: the branch-and-bound on plain instances, the exhaustive variant
// solver otherwise (it is the only certified optimum for release/setup/window
// instances; it caps n, so ratio tables for large variant instances fail with
// its descriptive error).
func referenceAlgorithm(in *pcmax.Instance) string {
	if in.Variant() == pcmax.Plain {
		return "exact"
	}
	return "brute"
}

// compareAll runs every registered algorithm on the instance and prints one
// comparison row per algorithm, with ratios against the reference optimum
// (the branch-and-bound on plain instances, the exhaustive variant solver
// otherwise). Algorithms that fail (e.g. sahni beyond its machine budget),
// don't support the instance's variant, or run into the deadline are logged
// as such instead of aborting the table.
func compareAll(ctx context.Context, stdout io.Writer, in *pcmax.Instance, opts solver.Options) error {
	refName := referenceAlgorithm(in)
	refSched, res, err := solver.Solve(ctx, refName, in, opts)
	if err != nil && !errors.Is(err, solver.ErrCanceled) {
		return err
	}
	if refSched == nil {
		return fmt.Errorf("%s reference unavailable: %w", refName, err)
	}
	opt := res.Exact.Makespan
	qual := "optimal"
	if !res.Exact.Optimal {
		qual = "best known (limit reached)"
	}
	if v := in.Variant(); v == pcmax.Plain {
		fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d lower-bound=%d\n", in.M, in.N(), in.TotalTime(), in.LowerBound())
	} else {
		fmt.Fprintf(stdout, "instance: m=%d n=%d sum=%d lower-bound=%d variant=%s\n",
			in.M, in.N(), in.TotalTime(), in.LowerBound(), v)
	}
	fmt.Fprintf(stdout, "reference: %s makespan %d (%s)\n\n", refName, opt, qual)
	fmt.Fprintf(stdout, "%-11s %-10s %-8s %-12s\n", "algorithm", "makespan", "ratio", "time")

	for _, name := range solver.Names() {
		var (
			sched *pcmax.Schedule
			rep   solver.Report
			err   error
		)
		if name == refName {
			sched, rep = refSched, res // don't pay the reference solve twice
		} else {
			sched, rep, err = solver.Solve(ctx, name, in, opts)
		}
		switch {
		case errors.Is(err, solver.ErrUnsupportedVariant):
			fmt.Fprintf(stdout, "%-11s %-10s %-8s unsupported variant %s\n", name, "-", "-", in.Variant())
		case err != nil && errors.Is(err, solver.ErrCanceled) && sched != nil:
			fmt.Fprintf(stdout, "%-11s %-10d %-8.4f %-12s (interrupted, fallback)\n",
				name, sched.Makespan(in), sched.Ratio(in, opt), rep.Elapsed.Round(time.Microsecond))
		case err != nil:
			fmt.Fprintf(stdout, "%-11s %-10s %-8s %v\n", name, "-", "-", err)
		default:
			fmt.Fprintf(stdout, "%-11s %-10d %-8.4f %-12s\n",
				name, sched.Makespan(in), sched.Ratio(in, opt), rep.Elapsed.Round(time.Microsecond))
		}
	}
	return nil
}
