// The dp subcommand micro-benchmarks the DP fill path in isolation: for each
// figure workload it freezes the rounded instance at the PTAS's converged
// target makespan and times the table fill — optimized (Jobs-sorted pruned
// scan, odometer decoding, cached level index) against the legacy seed path
// (full configuration scan, division decoding), plus the adaptive
// barrier-pool path (FillAuto) — across worker counts and level modes.
// Results print as a table and, with -json, land in BENCH_dp.json for
// regression tracking; -baseline diffs the run against a committed
// BENCH_dp.json and fails on regressions beyond -baseline-threshold.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/par"
	"repro/internal/workload"
)

// dpShape names a figure workload: the (m, n) pair of one of the paper's
// speedup experiments.
type dpShape struct {
	Name string
	M, N int
}

// dpShapes mirrors the instance sizes of Figures 2-4.
var dpShapes = []dpShape{
	{"fig2", 20, 100},
	{"fig3", 10, 50},
	{"fig4", 10, 30},
}

// dpRecord is one measured configuration, serialized into BENCH_dp.json.
type dpRecord struct {
	Workload  string  `json:"workload"`
	Family    string  `json:"family"`
	M         int     `json:"m"`
	N         int     `json:"n"`
	Workers   int     `json:"workers"`
	LevelMode string  `json:"level_mode"`
	Path      string  `json:"path"` // "optimized", "legacy" or "auto"
	NsPerOp   int64   `json:"ns_per_op"`
	Entries   int64   `json:"table_entries"`
	Configs   int     `json:"configs"`
	Speedup   float64 `json:"speedup_vs_legacy,omitempty"`
	// SpeedupSeq is ns/op of the 1-worker optimized sequential fill of the
	// same (workload, family) divided by this record's ns/op — the paper's
	// speedup axis, with the sequential fill as the T(1) reference.
	SpeedupSeq float64 `json:"speedup_vs_seq,omitempty"`
}

// benchJSONName is the artifact the acceptance criteria track.
const benchJSONName = "BENCH_dp.json"

// dpBenchConfig carries the dp subcommand's flags.
type dpBenchConfig struct {
	WriteJSON bool    // write the records to Out
	Out       string  // output JSON path (default benchJSONName)
	Baseline  string  // committed BENCH_dp.json to diff against ("" = off)
	Threshold float64 // allowed fractional slowdown before -baseline fails
	// BaselineReport makes the -baseline diff informational: regressions are
	// printed but never fail the run. CI uses this because its shared runners
	// are a different host than the one that committed BENCH_dp.json, so
	// absolute ns/op comparisons carry no cross-host signal.
	BaselineReport bool
	// MinSpeedup, when > 0, fails the run if any adaptive (auto) cell's
	// speedup_vs_seq — measured against the same run's sequential fill, so
	// host speed cancels out — falls below it.
	MinSpeedup float64
	Windows    int // measurement windows per cell (more = less noise)
}

// measureFill times fill() after one warm-up call. It takes the best of
// several short measurement windows — the minimum is the standard defense
// against GC pauses and frequency wobble contaminating a single window. A
// fill error (context cancellation) aborts the measurement immediately.
func measureFill(fill func() error, windows int) (int64, error) {
	if err := fill(); err != nil {
		return 0, err
	}
	if windows < 1 {
		windows = 1
	}
	const minWindow = 10 * time.Millisecond
	best := int64(0)
	for w := 0; w < windows; w++ {
		reps := 0
		start := time.Now()
		for {
			if err := fill(); err != nil {
				return 0, err
			}
			reps++
			if d := time.Since(start); d >= minWindow && reps >= 3 {
				if ns := d.Nanoseconds() / int64(reps); best == 0 || ns < best {
					best = ns
				}
				break
			}
		}
	}
	return best, nil
}

// runDPBench measures every (shape, family, workers, mode, path) cell and
// renders the result. Table entries are identical between the paths (the
// differential tests enforce it), so ns/op is the only varying quantity.
// When ctx dies mid-sweep, the cells measured so far are still rendered and
// the cancellation error is returned.
func runDPBench(ctx context.Context, cores []int, eps float64, seed uint64, cfg dpBenchConfig) error {
	cache := dp.NewCache()
	var records []dpRecord
	var benchErr error

sweep:
	for _, shape := range dpShapes {
		for _, fam := range workload.SpeedupFamilies {
			in, err := workload.Generate(workload.Spec{Family: fam, M: shape.M, N: shape.N, Seed: seed})
			if err != nil {
				return err
			}
			opts := core.DefaultOptions()
			opts.Epsilon = eps
			_, st, err := core.Solve(ctx, in, opts)
			if err != nil {
				benchErr = err
				break sweep
			}
			sizes, counts, err := core.RoundedClasses(in, st.K, st.FinalT)
			if err != nil {
				return err
			}
			if len(sizes) == 0 {
				continue // no long jobs at this T; nothing to fill
			}
			tbl, err := dp.NewCached(sizes, counts, st.FinalT, 0, 0, cache)
			if err != nil {
				return err
			}

			measure := func(workers int, mode, path string, fill func() error) bool {
				tbl.LegacyFill = path == "legacy"
				ns, err := measureFill(fill, cfg.Windows)
				if err != nil {
					benchErr = err
					return false
				}
				records = append(records, dpRecord{
					Workload: shape.Name, Family: fam.String(), M: shape.M, N: shape.N,
					Workers: workers, LevelMode: mode, Path: path,
					NsPerOp: ns, Entries: tbl.Sigma, Configs: len(tbl.Configs),
				})
				return true
			}

			// Sequential fill (workers = 1); level mode is moot, report as
			// buckets for a stable key.
			bkt := dp.LevelBuckets.String()
			seq := func() error { return tbl.FillSequentialCtx(ctx) }
			if !measure(1, bkt, "legacy", seq) || !measure(1, bkt, "optimized", seq) {
				break sweep
			}

			for _, workers := range cores {
				if workers <= 1 {
					continue
				}
				// Adaptive path: FillAuto on a persistent barrier pool, the
				// production default through the solver facade. Measured
				// immediately after the sequential reference cells — its
				// speedup_vs_seq column divides the two, so keeping them
				// adjacent in time stops host-load drift from contaminating
				// the ratio.
				bpool := par.NewBarrierPool(workers)
				afill := func() error { return tbl.FillAutoCtx(ctx, bpool) }
				ok := measure(workers, "auto", "auto", afill)
				bpool.Close()
				if !ok {
					break sweep
				}

				pool := par.NewPool(workers)
				for _, mode := range []dp.LevelMode{dp.LevelBuckets, dp.LevelScan} {
					fill := func() error { return tbl.FillParallelCtx(ctx, pool, mode, par.RoundRobin) }
					if !measure(workers, mode.String(), "optimized", fill) || !measure(workers, mode.String(), "legacy", fill) {
						pool.Close()
						break sweep
					}
				}
				pool.Close()
			}
		}
	}

	attachSpeedups(records)
	renderDPRecords(records)
	fmt.Printf("\nDP cache across workloads: %+v\n", cache.Stats())
	if benchErr != nil {
		fmt.Printf("\nsweep interrupted after %d cells: %v\n", len(records), benchErr)
		return benchErr
	}
	if cfg.WriteJSON {
		out := cfg.Out
		if out == "" {
			out = benchJSONName
		}
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", out, len(records))
	}
	if cfg.Baseline != "" {
		if err := compareBaseline(records, cfg.Baseline, cfg.Threshold); err != nil {
			if !cfg.BaselineReport {
				return err
			}
			fmt.Printf("baseline diff is report-only; not failing: %v\n", err)
		}
	}
	if cfg.MinSpeedup > 0 {
		return gateSpeedup(records, cfg.MinSpeedup)
	}
	return nil
}

// gateSpeedup enforces the host-invariant regression gate: every adaptive
// (auto) cell must reach at least min times the speed of this same run's
// 1-worker sequential fill of the same workload. Both sides of the ratio come
// from the same process on the same host minutes apart, so runner speed and
// load cancel out — unlike the cross-host ns/op diff of -baseline, a failure
// here means the adaptive routing itself regressed (e.g. back to paying a
// dispatch round per narrow level).
func gateSpeedup(records []dpRecord, min float64) error {
	var failures []string
	checked := 0
	for _, r := range records {
		if r.Path != "auto" || r.Workers <= 1 || r.SpeedupSeq <= 0 {
			continue
		}
		checked++
		if r.SpeedupSeq < min {
			failures = append(failures,
				fmt.Sprintf("  %s/%s wrk=%d: %.2fx vs same-run sequential (floor %.2fx)",
					r.Workload, r.Family, r.Workers, r.SpeedupSeq, min))
		}
	}
	fmt.Printf("\nspeedup gate: %d auto cells checked against %.2fx floor, %d below\n",
		checked, min, len(failures))
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Println(f)
		}
		return fmt.Errorf("%d auto cells below the %.2fx same-run speedup floor", len(failures), min)
	}
	return nil
}

// dpKey identifies a benchmark cell across runs for baseline diffing.
type dpKey struct {
	Workload, Family, Mode, Path string
	Workers                      int
}

// compareBaseline diffs the run's ns/op row-by-row against the committed
// baseline JSON and returns a non-nil error (for a nonzero exit) when any
// shared cell regressed by more than the threshold fraction. Cells present
// on only one side are reported but never fail the gate, so adding or
// retiring benchmark cells does not break CI.
func compareBaseline(records []dpRecord, path string, threshold float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []dpRecord
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseNs := make(map[dpKey]int64, len(base))
	for _, r := range base {
		baseNs[dpKey{r.Workload, r.Family, r.LevelMode, r.Path, r.Workers}] = r.NsPerOp
	}
	var regressions []string
	compared, missing := 0, 0
	for _, r := range records {
		k := dpKey{r.Workload, r.Family, r.LevelMode, r.Path, r.Workers}
		bns, ok := baseNs[k]
		if !ok {
			missing++
			continue
		}
		delete(baseNs, k)
		if bns <= 0 || r.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := float64(r.NsPerOp) / float64(bns)
		if ratio > 1+threshold {
			regressions = append(regressions,
				fmt.Sprintf("  %s/%s wrk=%d mode=%s path=%s: %d -> %d ns/op (%.2fx > %.2fx allowed)",
					k.Workload, k.Family, k.Workers, k.Mode, k.Path, bns, r.NsPerOp, ratio, 1+threshold))
		}
	}
	fmt.Printf("\nbaseline %s: %d cells compared, %d new, %d retired, %d regressions (threshold %.0f%%)\n",
		path, compared, missing, len(baseNs), len(regressions), threshold*100)
	if len(regressions) > 0 {
		sort.Strings(regressions)
		for _, r := range regressions {
			fmt.Println(r)
		}
		return fmt.Errorf("%d benchmark cells regressed beyond %.0f%% vs %s", len(regressions), threshold*100, path)
	}
	return nil
}

// attachSpeedups fills Speedup on each optimized record from its matching
// legacy measurement, and SpeedupSeq on every parallel/auto record from the
// 1-worker optimized sequential fill of the same workload.
func attachSpeedups(records []dpRecord) {
	type key struct {
		w, f, mode string
		workers    int
	}
	legacy := make(map[key]int64)
	type seqKey struct{ w, f string }
	seq := make(map[seqKey]int64)
	for _, r := range records {
		if r.Path == "legacy" {
			legacy[key{r.Workload, r.Family, r.LevelMode, r.Workers}] = r.NsPerOp
		}
		if r.Path == "optimized" && r.Workers == 1 {
			seq[seqKey{r.Workload, r.Family}] = r.NsPerOp
		}
	}
	for i := range records {
		r := &records[i]
		if r.NsPerOp <= 0 {
			continue
		}
		if r.Path == "optimized" {
			if base, ok := legacy[key{r.Workload, r.Family, r.LevelMode, r.Workers}]; ok {
				r.Speedup = float64(base) / float64(r.NsPerOp)
			}
		}
		if r.Workers > 1 && r.Path != "legacy" {
			if base, ok := seq[seqKey{r.Workload, r.Family}]; ok {
				r.SpeedupSeq = float64(base) / float64(r.NsPerOp)
			}
		}
	}
}

func renderDPRecords(records []dpRecord) {
	fmt.Printf("%-6s %-11s %3s %4s %8s %-8s %-9s %12s %8s %8s\n",
		"fig", "family", "wrk", "mode", "entries", "configs", "path", "ns/op", "vs-lgcy", "vs-seq")
	for _, r := range records {
		speedup, vseq := "", ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.SpeedupSeq > 0 {
			vseq = fmt.Sprintf("%.2fx", r.SpeedupSeq)
		}
		fmt.Printf("%-6s %-11s %3d %4s %8d %-8d %-9s %12d %8s %8s\n",
			r.Workload, r.Family, r.Workers, shortMode(r.LevelMode), r.Entries, r.Configs,
			r.Path, r.NsPerOp, speedup, vseq)
	}
}

func shortMode(m string) string {
	switch m {
	case dp.LevelScan.String():
		return "scan"
	case "auto":
		return "auto"
	default:
		return "bkt"
	}
}
